//! Quickstart: write a small probabilistic program, compile it to its
//! big-step stochastic-matrix representation, and ask questions.
//!
//! Run with: `cargo run --example quickstart`

use mcnetkat::core::{Field, Packet, Pred, Prog};
use mcnetkat::fdd::Manager;
use mcnetkat::num::Ratio;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A coin-flipping loop: while f = 0, set f to 1 with probability ½.
    let f = Field::named("f");
    let body = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 2), Prog::skip());
    let lossy_loop = Prog::while_(Pred::test(f, 0), body);

    // Compile to a probabilistic FDD. The loop is solved in *closed form*
    // via an absorbing Markov chain — no unrolling, no approximation.
    let mgr = Manager::new();
    let fdd = mgr.compile(&lossy_loop)?;

    let input = Packet::new(); // f = 0
    println!("program : {lossy_loop}");
    println!("P[deliver] on f=0 : {}", mgr.prob_delivery(fdd, &input));
    println!("output dist       : {:?}", mgr.output_dist(fdd, &input));

    // Program equivalence is decidable (Corollary 3.2): the loop is
    // equivalent to the straight-line program `f <- 1` on every input.
    let spec = Prog::ite(Pred::test(f, 0), Prog::assign(f, 1), Prog::skip());
    let spec_fdd = mgr.compile(&spec)?;
    println!("loop ≡ (if f=0 then f<-1) : {}", mgr.equiv(fdd, spec_fdd));

    // Refinement: a program that sometimes drops is strictly below one
    // that always delivers.
    let flaky = Prog::ite(
        Pred::test(f, 0),
        Prog::choice2(Prog::assign(f, 1), Ratio::new(9, 10), Prog::drop()),
        Prog::skip(),
    );
    let flaky_fdd = mgr.compile(&flaky)?;
    println!("flaky < loop : {}", mgr.less(flaky_fdd, fdd));
    Ok(())
}
