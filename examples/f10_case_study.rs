//! A condensed version of the §7 case study: F10 routing on an AB FatTree
//! under link failures — resilience, delivery probability, and path
//! stretch.
//!
//! Run with: `cargo run --release --example f10_case_study`

use mcnetkat::fdd::Manager;
use mcnetkat::net::{FailureModel, NetworkModel, Queries, RoutingScheme};
use mcnetkat::num::Ratio;
use mcnetkat::topo::ab_fattree;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").expect("destination exists");
    println!(
        "AB FatTree p=4: {} switches, destination {}",
        topo.switches().len(),
        topo.info(dst).name
    );

    // k-resilience: is the scheme equivalent to teleportation when at
    // most k links fail?
    println!("\nresilience (≡ teleport under at most k failures):");
    for scheme in [
        RoutingScheme::Ecmp,
        RoutingScheme::F10_3,
        RoutingScheme::F10_3_5,
    ] {
        let mut ks = Vec::new();
        for k in 0..=4u32 {
            let model = NetworkModel::new(
                topo.clone(),
                dst,
                scheme,
                FailureModel::bounded(Ratio::new(1, 100), k),
            );
            let mgr = Manager::new();
            let q = Queries::new(&mgr, &model)?;
            ks.push(if q.equiv_teleport_within(1e-9)? {
                '✓'
            } else {
                '✗'
            });
        }
        println!("  {:8} k=0..4: {:?}", scheme.name(), ks);
    }

    // Delivery probability and expected path length under heavy failures.
    println!("\nunder unbounded failures with pr = 1/8:");
    for scheme in [
        RoutingScheme::Ecmp,
        RoutingScheme::F10_3,
        RoutingScheme::F10_3_5,
    ] {
        let model = NetworkModel::new(
            topo.clone(),
            dst,
            scheme,
            FailureModel::independent(Ratio::new(1, 8)),
        )
        .with_hop_cap(14);
        let mgr = Manager::new();
        let q = Queries::new(&mgr, &model)?;
        let stats = q.hop_stats_avg();
        println!(
            "  {:8} P[deliver] = {:.4}   E[hops | delivered] = {:.3}",
            scheme.name(),
            stats.delivery,
            stats.expected_hops
        );
    }
    Ok(())
}
