//! The paper's §2 running example, end to end: a three-switch network,
//! a naive and a fault-tolerant routing scheme, and three failure models.
//!
//! Run with: `cargo run --example fault_tolerance`

use mcnetkat::fdd::Manager;
use mcnetkat::net::running_example;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ex = running_example();
    let mgr = Manager::new();
    let teleport = mgr.compile(&ex.teleport())?;
    let pk = ex.ingress_packet();

    println!("== sanity: both schemes are correct without failures ==");
    for (name, policy) in [("naive p", &ex.naive), ("resilient p̂", &ex.resilient)] {
        let m = mgr.compile(&ex.model(policy, &ex.f0))?;
        println!("  M({name}, t̂, f0) ≡ teleport: {}", mgr.equiv(m, teleport));
    }

    println!("\n== 1-resilience: at most one link fails (f1) ==");
    let naive = mgr.compile(&ex.model(&ex.naive, &ex.f1))?;
    let resilient = mgr.compile(&ex.model(&ex.resilient, &ex.f1))?;
    println!("  naive     ≡ teleport: {}", mgr.equiv(naive, teleport));
    println!("  resilient ≡ teleport: {}", mgr.equiv(resilient, teleport));

    println!("\n== quantitative SLA check under independent failures (f2) ==");
    let naive = mgr.compile(&ex.model(&ex.naive, &ex.f2))?;
    let resilient = mgr.compile(&ex.model(&ex.resilient, &ex.f2))?;
    let pn = mgr.prob_delivery(naive, &pk);
    let pr = mgr.prob_delivery(resilient, &pk);
    println!(
        "  P[deliver | naive]     = {pn} ({:.0}%)",
        pn.to_f64() * 100.0
    );
    println!(
        "  P[deliver | resilient] = {pr} ({:.0}%)",
        pr.to_f64() * 100.0
    );
    println!(
        "  naive < resilient (refinement): {}",
        mgr.less(naive, resilient)
    );
    Ok(())
}
