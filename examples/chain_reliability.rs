//! The Figure 9/10 chain benchmark run through all three engines: the
//! native FDD backend, the PRISM translation + in-repo model checker, and
//! the general-purpose exact-inference baseline. All agree exactly.
//!
//! Run with: `cargo run --release --example chain_reliability`

use mcnetkat::baseline::ExactInference;
use mcnetkat::fdd::Manager;
use mcnetkat::net::{chain_benchmark, chain_expected_delivery};
use mcnetkat::num::Ratio;
use mcnetkat::prism::{check_reachability, to_prism_source, translate, McMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 3;
    let pfail = Ratio::new(1, 1000);
    let bench = chain_benchmark(k, pfail.clone());
    println!(
        "chain of {k} diamonds ({} switches), pfail = {pfail}",
        bench.topo.switches().len()
    );

    // 1. Native backend: closed-form loop solving.
    let mgr = Manager::new();
    let fdd = mgr.compile(&bench.program)?;
    let p_native = mgr.prob_matching(fdd, &bench.input, &bench.accept);
    println!("native FDD backend : {p_native}");

    // 2. PRISM backend: syntactic translation, then our DTMC checker.
    let auto = translate(&bench.program)?;
    let exact = check_reachability(&auto, &bench.input, &bench.accept, McMode::Exact)
        .map_err(std::io::Error::other)?;
    println!(
        "PRISM backend      : {} ({} explicit states)",
        exact.exact.clone().unwrap(),
        exact.states
    );

    // 3. General-purpose exact inference (Bayonet/PSI stand-in).
    let base = ExactInference::new(64 * k).query(&bench.program, &bench.input, &bench.accept);
    println!(
        "baseline inference : {} (residual {})",
        base.probability, base.residual
    );

    let expect = chain_expected_delivery(k, &pfail);
    assert_eq!(p_native, expect);
    assert_eq!(exact.exact, Some(expect.clone()));
    println!("\nclosed form (1 - pfail/2)^k = {expect} — all engines agree");

    // Bonus: emit actual PRISM source for the model.
    let src = to_prism_source(&auto, &bench.input);
    println!("\nPRISM model ({} lines):", src.lines().count());
    for line in src.lines().take(8) {
        println!("  {line}");
    }
    println!("  ...");
    Ok(())
}
