//! Exact rationals, always stored in lowest terms with positive denominator.
//!
//! The representation is a two-variant enum mirroring Zarith's small-integer
//! fast path: values whose numerator and denominator fit machine words live
//! inline as a pair of `i64`s and all arithmetic on them runs in `i128`
//! intermediates without touching the heap; everything else falls back to a
//! boxed [`BigInt`] pair. Results are *demoted* back to the inline form
//! whenever they fit, so representation is canonical: a value is `Small`
//! iff it is representable as `Small`. Equality and hashing rely on this.

use crate::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// Largest numerator/denominator magnitude representable inline.
///
/// The numerator range is symmetric (`i64::MIN` is excluded) so negation
/// and `abs` of a `Small` value never overflow.
const SMALL_MAX: i128 = i64::MAX as i128;

#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// `num / den` with `den > 0`, `gcd(|num|, den) == 1`, and both within
    /// `±SMALL_MAX`. Zero is `Small(0, 1)`.
    Small(i64, i64),
    /// Lowest terms, positive denominator, and **not** representable as
    /// `Small` (otherwise demotion would have fired). The box keeps
    /// `Ratio` itself two words wide.
    Big(Box<(BigInt, BigInt)>),
}

/// An exact rational number.
///
/// Invariants: `den > 0` and `gcd(|num|, den) == 1`; zero is `0/1`.
/// Values representable with `i64` numerator and denominator are stored
/// inline and their arithmetic never allocates.
///
/// # Examples
///
/// ```
/// use mcnetkat_num::Ratio;
/// let p = Ratio::new(1, 4) + Ratio::new(1, 4);
/// assert_eq!(p, Ratio::new(1, 2));
/// assert_eq!(p.to_f64(), 0.5);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ratio {
    repr: Repr,
}

/// Error returned when parsing a [`Ratio`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatioError;

impl fmt::Display for ParseRatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational syntax")
    }
}

impl std::error::Error for ParseRatioError {}

/// Euclidean gcd over `u128`, dropping to `u64` arithmetic when both
/// operands fit (the overwhelmingly common case — `u128` division is a
/// software routine on most targets).
fn gcd_u128(a: u128, b: u128) -> u128 {
    if a <= u64::MAX as u128 && b <= u64::MAX as u128 {
        let (mut a, mut b) = (a as u64, b as u64);
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a as u128
    } else {
        let (mut a, mut b) = (a, b);
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
}

impl Ratio {
    /// Builds `n / d` from `i128` intermediates, normalising and demoting.
    ///
    /// `|n|` and `|d|` must be below `2^127` (guaranteed for single
    /// products/sums of `Small` parts); `d` must be non-zero.
    fn from_i128(mut n: i128, mut d: i128) -> Ratio {
        assert!(d != 0, "rational with zero denominator");
        if d < 0 {
            n = -n;
            d = -d;
        }
        if n == 0 {
            return Ratio::zero();
        }
        let g = gcd_u128(n.unsigned_abs(), d as u128) as i128;
        let (n, d) = (n / g, d / g);
        if (-SMALL_MAX..=SMALL_MAX).contains(&n) && d <= SMALL_MAX {
            Ratio {
                repr: Repr::Small(n as i64, d as i64),
            }
        } else {
            Ratio {
                repr: Repr::Big(Box::new((BigInt::from(n), BigInt::from(d)))),
            }
        }
    }

    /// Wraps an already-normalised big pair, demoting to `Small` if it
    /// fits (which keeps the representation canonical).
    fn from_normalised_bigints(num: BigInt, den: BigInt) -> Ratio {
        if let (Some(n), Some(d)) = (num.to_i128(), den.to_i128()) {
            if (-SMALL_MAX..=SMALL_MAX).contains(&n) && d <= SMALL_MAX {
                return Ratio {
                    repr: Repr::Small(n as i64, d as i64),
                };
            }
        }
        Ratio {
            repr: Repr::Big(Box::new((num, den))),
        }
    }

    /// The numerator as a [`BigInt`] regardless of representation.
    fn num_big(&self) -> BigInt {
        match &self.repr {
            Repr::Small(n, _) => BigInt::from(*n),
            Repr::Big(b) => b.0.clone(),
        }
    }

    /// The denominator as a [`BigInt`] regardless of representation.
    fn den_big(&self) -> BigInt {
        match &self.repr {
            Repr::Small(_, d) => BigInt::from(*d),
            Repr::Big(b) => b.1.clone(),
        }
    }

    /// Both parts as [`BigInt`]s, borrowing them when the value is
    /// already `Big` — the mixed/overflow operator arms use this so they
    /// never clone the heap pair just to read it.
    fn big_parts(&self) -> (std::borrow::Cow<'_, BigInt>, std::borrow::Cow<'_, BigInt>) {
        use std::borrow::Cow;
        match &self.repr {
            Repr::Small(n, d) => (Cow::Owned(BigInt::from(*n)), Cow::Owned(BigInt::from(*d))),
            Repr::Big(b) => (Cow::Borrowed(&b.0), Cow::Borrowed(&b.1)),
        }
    }

    /// Creates `num/den` from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Self {
        Ratio::from_i128(num as i128, den as i128)
    }

    /// Creates `num/den` from big integers, normalising the result (and
    /// demoting it to the inline representation when it fits).
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn from_bigints(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        // Fast path: both parts already fit machine words. `i128::MIN` is
        // excluded — `from_i128`'s sign normalisation negates, which
        // would overflow on it.
        if let (Some(n), Some(d)) = (num.to_i128(), den.to_i128()) {
            if n != i128::MIN && d != i128::MIN {
                return Ratio::from_i128(n, d);
            }
        }
        let (num, den) = if den.is_negative() {
            (-num, -den)
        } else {
            (num, den)
        };
        if num.is_zero() {
            return Ratio::zero();
        }
        let g = num.gcd(&den);
        if g.is_one() {
            return Ratio::from_normalised_bigints(num, den);
        }
        Ratio::from_normalised_bigints(num.divmod(&g).0, den.divmod(&g).0)
    }

    /// The rational zero.
    pub fn zero() -> Self {
        Ratio {
            repr: Repr::Small(0, 1),
        }
    }

    /// The rational one.
    pub fn one() -> Self {
        Ratio {
            repr: Repr::Small(1, 1),
        }
    }

    /// Creates the integer `n` as a rational.
    pub fn from_integer(n: i64) -> Self {
        Ratio::from_i128(n as i128, 1)
    }

    /// The numerator (sign-carrying), widened to a [`BigInt`].
    pub fn numer(&self) -> BigInt {
        self.num_big()
    }

    /// The denominator (always positive), widened to a [`BigInt`].
    pub fn denom(&self) -> BigInt {
        self.den_big()
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Small(0, _))
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        matches!(self.repr, Repr::Small(1, 1))
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        match &self.repr {
            Repr::Small(n, _) => *n < 0,
            Repr::Big(b) => b.0.is_negative(),
        }
    }

    /// Returns `true` if this is a valid probability, i.e. in `[0, 1]`.
    pub fn is_probability(&self) -> bool {
        !self.is_negative() && *self <= Ratio::one()
    }

    /// Whether the value is in canonical form: lowest terms, positive
    /// denominator, zero stored as `0/1`, and demoted to the inline
    /// representation whenever numerator and denominator both fit.
    ///
    /// Always true for values built through this crate's operations —
    /// equality and hashing rely on it — so a `false` here means a
    /// representation invariant was broken somewhere. Exposed by name for
    /// invariant auditors (the FDD manager's `audit()` pass checks every
    /// interned leaf probability with it).
    pub fn is_canonical(&self) -> bool {
        match &self.repr {
            Repr::Small(n, d) => {
                *d > 0
                    && (*n != 0 || *d == 1)
                    && gcd_u128(n.unsigned_abs() as u128, *d as u128) <= 1
            }
            Repr::Big(b) => {
                let (n, d) = (&b.0, &b.1);
                if !n.is_normalised() || !d.is_normalised() || d.is_negative() || d.is_zero() {
                    return false;
                }
                // Demotion must have fired if both parts fit inline.
                if let (Some(ni), Some(di)) = (n.to_i128(), d.to_i128()) {
                    if (-SMALL_MAX..=SMALL_MAX).contains(&ni) && di <= SMALL_MAX {
                        return false;
                    }
                }
                n.gcd(d).is_one()
            }
        }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Ratio {
        assert!(!self.is_zero(), "reciprocal of zero");
        match &self.repr {
            // Parts stay within ±SMALL_MAX, gcd is unchanged: flip inline.
            &Repr::Small(n, d) => Ratio {
                repr: if n < 0 {
                    Repr::Small(-d, -n)
                } else {
                    Repr::Small(d, n)
                },
            },
            Repr::Big(b) => Ratio::from_bigints(b.1.clone(), b.0.clone()),
        }
    }

    /// Lossy conversion to `f64`.
    ///
    /// Scales numerator and denominator down together so the division stays
    /// in `f64` range even for huge exact values.
    pub fn to_f64(&self) -> f64 {
        let (num, den) = match &self.repr {
            &Repr::Small(n, d) => return n as f64 / d as f64,
            Repr::Big(b) => (&b.0, &b.1),
        };
        let nbits = num.bits();
        let dbits = den.bits();
        if nbits < 1000 && dbits < 1000 {
            return num.to_f64() / den.to_f64();
        }
        // Shift both down so the larger fits in ~900 bits.
        let excess = nbits.max(dbits).saturating_sub(900) as u32;
        let scale = BigInt::from(2u64).pow(excess);
        let n = num.divmod(&scale).0;
        let d = den.divmod(&scale).0;
        if d.is_zero() {
            return if num.is_negative() {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            };
        }
        n.to_f64() / d.to_f64()
    }

    /// Approximates an `f64` by an exact dyadic rational (exact for finite
    /// floats).
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN or infinite.
    pub fn from_f64(v: f64) -> Ratio {
        assert!(v.is_finite(), "cannot represent non-finite float exactly");
        if v == 0.0 {
            return Ratio::zero();
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exponent = ((bits >> 52) & 0x7ff) as i64;
        let mantissa = if exponent == 0 {
            bits & 0xf_ffff_ffff_ffff
        } else {
            (bits & 0xf_ffff_ffff_ffff) | 0x10_0000_0000_0000
        };
        let exp2 = exponent.max(1) - 1075;
        let m = BigInt::from(mantissa) * BigInt::from(sign);
        if exp2 >= 0 {
            Ratio::from_bigints(m * BigInt::from(2u64).pow(exp2 as u32), BigInt::one())
        } else {
            Ratio::from_bigints(m, BigInt::from(2u64).pow((-exp2) as u32))
        }
    }

    /// Raises to a small integer power.
    pub fn pow(&self, exp: u32) -> Ratio {
        if let Repr::Small(n, d) = self.repr {
            if let (Some(np), Some(dp)) =
                ((n as i128).checked_pow(exp), (d as i128).checked_pow(exp))
            {
                return Ratio::from_i128(np, dp);
            }
        }
        Ratio::from_bigints(self.num_big().pow(exp), self.den_big().pow(exp))
    }

    /// Absolute value.
    pub fn abs(&self) -> Ratio {
        match &self.repr {
            // |n| ≤ SMALL_MAX by invariant, so negation cannot overflow.
            &Repr::Small(n, d) => Ratio {
                repr: Repr::Small(n.abs(), d),
            },
            // Magnitudes are unchanged, so the value stays non-`Small`.
            Repr::Big(b) => Ratio {
                repr: Repr::Big(Box::new((b.0.abs(), b.1.clone()))),
            },
        }
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::zero()
    }
}

impl Add for &Ratio {
    type Output = Ratio;
    fn add(self, rhs: &Ratio) -> Ratio {
        match (&self.repr, &rhs.repr) {
            (&Repr::Small(n1, d1), &Repr::Small(n2, d2)) => {
                let (n1, d1, n2, d2) = (n1 as i128, d1 as i128, n2 as i128, d2 as i128);
                Ratio::from_i128(n1 * d2 + n2 * d1, d1 * d2)
            }
            _ => {
                let (an, ad) = self.big_parts();
                let (bn, bd) = rhs.big_parts();
                Ratio::from_bigints(&(&*an * &*bd) + &(&*bn * &*ad), &*ad * &*bd)
            }
        }
    }
}

impl Sub for &Ratio {
    type Output = Ratio;
    fn sub(self, rhs: &Ratio) -> Ratio {
        match (&self.repr, &rhs.repr) {
            (&Repr::Small(n1, d1), &Repr::Small(n2, d2)) => {
                let (n1, d1, n2, d2) = (n1 as i128, d1 as i128, n2 as i128, d2 as i128);
                Ratio::from_i128(n1 * d2 - n2 * d1, d1 * d2)
            }
            _ => {
                let (an, ad) = self.big_parts();
                let (bn, bd) = rhs.big_parts();
                Ratio::from_bigints(&(&*an * &*bd) - &(&*bn * &*ad), &*ad * &*bd)
            }
        }
    }
}

impl Mul for &Ratio {
    type Output = Ratio;
    fn mul(self, rhs: &Ratio) -> Ratio {
        match (&self.repr, &rhs.repr) {
            (&Repr::Small(n1, d1), &Repr::Small(n2, d2)) => {
                Ratio::from_i128(n1 as i128 * n2 as i128, d1 as i128 * d2 as i128)
            }
            _ => {
                let (an, ad) = self.big_parts();
                let (bn, bd) = rhs.big_parts();
                Ratio::from_bigints(&*an * &*bn, &*ad * &*bd)
            }
        }
    }
}

impl Div for &Ratio {
    type Output = Ratio;
    fn div(self, rhs: &Ratio) -> Ratio {
        assert!(!rhs.is_zero(), "division by zero rational");
        match (&self.repr, &rhs.repr) {
            (&Repr::Small(n1, d1), &Repr::Small(n2, d2)) => {
                Ratio::from_i128(n1 as i128 * d2 as i128, d1 as i128 * n2 as i128)
            }
            _ => {
                let (an, ad) = self.big_parts();
                let (bn, bd) = rhs.big_parts();
                Ratio::from_bigints(&*an * &*bd, &*ad * &*bn)
            }
        }
    }
}

macro_rules! forward_owned {
    ($trait:ident, $method:ident) => {
        impl $trait for Ratio {
            type Output = Ratio;
            fn $method(self, rhs: Ratio) -> Ratio {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Ratio> for Ratio {
            type Output = Ratio;
            fn $method(self, rhs: &Ratio) -> Ratio {
                (&self).$method(rhs)
            }
        }
    };
}
forward_owned!(Add, add);
forward_owned!(Sub, sub);
forward_owned!(Mul, mul);
forward_owned!(Div, div);

impl AddAssign<&Ratio> for Ratio {
    fn add_assign(&mut self, rhs: &Ratio) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Ratio> for Ratio {
    fn sub_assign(&mut self, rhs: &Ratio) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Ratio> for Ratio {
    fn mul_assign(&mut self, rhs: &Ratio) {
        *self = &*self * rhs;
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        match self.repr {
            // |n| ≤ SMALL_MAX by invariant, so negation cannot overflow.
            Repr::Small(n, d) => Ratio {
                repr: Repr::Small(-n, d),
            },
            // Magnitudes are unchanged, so the value stays non-`Small`.
            Repr::Big(b) => {
                let (num, den) = *b;
                Ratio {
                    repr: Repr::Big(Box::new((-num, den))),
                }
            }
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        // Cross-multiply: denominators are positive so order is preserved.
        match (&self.repr, &other.repr) {
            (&Repr::Small(n1, d1), &Repr::Small(n2, d2)) => {
                (n1 as i128 * d2 as i128).cmp(&(n2 as i128 * d1 as i128))
            }
            _ => {
                let (an, ad) = self.big_parts();
                let (bn, bd) = other.big_parts();
                (&*an * &*bd).cmp(&(&*bn * &*ad))
            }
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Small(n, 1) => write!(f, "{n}"),
            Repr::Small(n, d) => write!(f, "{n}/{d}"),
            Repr::Big(b) if b.1.is_one() => write!(f, "{}", b.0),
            Repr::Big(b) => write!(f, "{}/{}", b.0, b.1),
        }
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ratio({self})")
    }
}

impl FromStr for Ratio {
    type Err = ParseRatioError;

    /// Parses `"a"`, `"a/b"` or a decimal literal such as `"0.125"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((n, d)) = s.split_once('/') {
            let num = BigInt::parse(n.trim()).ok_or(ParseRatioError)?;
            let den = BigInt::parse(d.trim()).ok_or(ParseRatioError)?;
            if den.is_zero() {
                return Err(ParseRatioError);
            }
            return Ok(Ratio::from_bigints(num, den));
        }
        if let Some((int, frac)) = s.split_once('.') {
            let int = if int.is_empty() { "0" } else { int };
            let neg = int.starts_with('-');
            let whole = BigInt::parse(int).ok_or(ParseRatioError)?;
            let fnum = BigInt::parse(frac).ok_or(ParseRatioError)?;
            if fnum.is_negative() {
                return Err(ParseRatioError);
            }
            let scale = BigInt::from(10u64).pow(frac.len() as u32);
            let mag = &(&whole.abs() * &scale) + &fnum;
            let num = if neg { -mag } else { mag };
            return Ok(Ratio::from_bigints(num, scale));
        }
        let num = BigInt::parse(s.trim()).ok_or(ParseRatioError)?;
        Ok(Ratio::from_bigints(num, BigInt::one()))
    }
}

impl From<i64> for Ratio {
    fn from(v: i64) -> Self {
        Ratio::from_integer(v)
    }
}

impl From<u32> for Ratio {
    fn from(v: u32) -> Self {
        Ratio::from_integer(v as i64)
    }
}

impl std::iter::Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::zero(), |acc, x| acc + x)
    }
}

impl<'a> std::iter::Sum<&'a Ratio> for Ratio {
    fn sum<I: Iterator<Item = &'a Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::zero(), |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Whether the value is held in the inline representation.
    fn is_small(r: &Ratio) -> bool {
        matches!(r.repr, Repr::Small(..))
    }

    #[test]
    fn normalisation() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, 7), Ratio::zero());
        assert_eq!(Ratio::new(0, 7).denom(), BigInt::one());
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(1, 2);
        let b = Ratio::new(1, 3);
        assert_eq!(&a + &b, Ratio::new(5, 6));
        assert_eq!(&a - &b, Ratio::new(1, 6));
        assert_eq!(&a * &b, Ratio::new(1, 6));
        assert_eq!(&a / &b, Ratio::new(3, 2));
    }

    #[test]
    fn probability_range() {
        assert!(Ratio::new(1, 2).is_probability());
        assert!(Ratio::zero().is_probability());
        assert!(Ratio::one().is_probability());
        assert!(!Ratio::new(3, 2).is_probability());
        assert!(!Ratio::new(-1, 2).is_probability());
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::zero());
        assert!(Ratio::new(2, 3) > Ratio::new(3, 5));
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(Ratio::new(1, 2).to_string(), "1/2");
        assert_eq!(Ratio::from_integer(5).to_string(), "5");
        assert_eq!("3/4".parse::<Ratio>().unwrap(), Ratio::new(3, 4));
        assert_eq!("7".parse::<Ratio>().unwrap(), Ratio::from_integer(7));
        assert_eq!("0.125".parse::<Ratio>().unwrap(), Ratio::new(1, 8));
        assert_eq!("-0.5".parse::<Ratio>().unwrap(), Ratio::new(-1, 2));
        assert!("1/0".parse::<Ratio>().is_err());
        assert!("x".parse::<Ratio>().is_err());
    }

    #[test]
    fn f64_round_trips() {
        for v in [0.0, 0.5, 0.25, -0.75, 1.0, 0.001, 1.0 / 3.0] {
            let r = Ratio::from_f64(v);
            assert_eq!(r.to_f64(), v, "round trip {v}");
        }
        assert_eq!(Ratio::from_f64(0.5), Ratio::new(1, 2));
        assert_eq!(Ratio::from_f64(0.2).to_f64(), 0.2);
    }

    #[test]
    fn pow_and_recip() {
        assert_eq!(Ratio::new(2, 3).pow(3), Ratio::new(8, 27));
        assert_eq!(Ratio::new(2, 3).recip(), Ratio::new(3, 2));
        assert_eq!(Ratio::new(-2, 3).recip(), Ratio::new(-3, 2));
        assert_eq!(Ratio::new(2, 3).pow(0), Ratio::one());
        // Power past the i128 fast path still lands on the exact value.
        let big = Ratio::new(3, 2).pow(100);
        assert_eq!(big, &Ratio::new(3, 2).pow(50) * &Ratio::new(3, 2).pow(50));
    }

    #[test]
    fn sum_iterator() {
        let parts = vec![Ratio::new(1, 4); 4];
        let total: Ratio = parts.into_iter().sum();
        assert_eq!(total, Ratio::one());
    }

    #[test]
    fn large_values_stay_exact() {
        // (1/3 + 1/3 + 1/3) stays exactly 1 even after many operations.
        let third = Ratio::new(1, 3);
        let mut acc = Ratio::zero();
        for _ in 0..99 {
            acc += &third;
        }
        assert_eq!(acc, Ratio::from_integer(33));
    }

    #[test]
    fn small_values_stay_inline() {
        // Probability arithmetic keeps the inline representation.
        let a = Ratio::new(1, 1000);
        let b = Ratio::new(999, 1000);
        assert!(is_small(&(&a + &b)));
        assert!(is_small(&(&a * &b)));
        assert!(is_small(&(&b - &a)));
        assert!(is_small(&(&a / &b)));
        assert!(is_small(&(-a)));
    }

    #[test]
    fn overflow_promotes_and_demotes() {
        let big = Ratio::new(i64::MAX, 1);
        let sq = &big * &big; // > i64::MAX: must promote
        assert!(!is_small(&sq));
        let back = &sq / &big; // exact division demotes again
        assert!(is_small(&back));
        assert_eq!(back, big);
        // i64::MIN does not fit the symmetric Small range.
        let min = Ratio::new(i64::MIN, 1);
        assert!(!is_small(&min));
        assert_eq!(-min, &Ratio::new(i64::MAX, 1) + &Ratio::one());
    }

    #[test]
    fn from_bigints_handles_i128_min() {
        // i128::MIN cannot be negated in i128; the machine-word fast path
        // must skip it rather than overflow.
        let min = BigInt::from(i128::MIN);
        let r = Ratio::from_bigints(BigInt::from(1i64), min.clone());
        assert_eq!(r, Ratio::from_bigints(BigInt::from(-1i64), -min.clone()));
        assert!(r.is_negative());
        assert_eq!(r.denom(), -min.clone());
        let n = Ratio::from_bigints(min.clone(), BigInt::from(2i64));
        assert_eq!(n.numer(), min.divmod(&BigInt::from(2i64)).0);
        assert_eq!(n.denom(), BigInt::one());
    }

    #[test]
    fn representation_is_canonical_for_eq_and_hash() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // The same value reached via the big path and the small path must
        // compare and hash identically.
        let via_big = Ratio::from_bigints(
            BigInt::from(7u64) * BigInt::from(1u64 << 40),
            BigInt::from(14u64) * BigInt::from(1u64 << 40),
        );
        let via_small = Ratio::new(1, 2);
        assert_eq!(via_big, via_small);
        let hash = |r: &Ratio| {
            let mut h = DefaultHasher::new();
            r.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&via_big), hash(&via_small));
        assert!(is_small(&via_big));
    }
}
