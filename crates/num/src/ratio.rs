//! Exact rationals, always stored in lowest terms with positive denominator.

use crate::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number.
///
/// Invariants: `den > 0` and `gcd(|num|, den) == 1`; zero is `0/1`.
///
/// # Examples
///
/// ```
/// use mcnetkat_num::Ratio;
/// let p = Ratio::new(1, 4) + Ratio::new(1, 4);
/// assert_eq!(p, Ratio::new(1, 2));
/// assert_eq!(p.to_f64(), 0.5);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: BigInt,
    den: BigInt,
}

/// Error returned when parsing a [`Ratio`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatioError;

impl fmt::Display for ParseRatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational syntax")
    }
}

impl std::error::Error for ParseRatioError {}

impl Ratio {
    /// Creates `num/den` from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Self {
        Self::from_bigints(BigInt::from(num), BigInt::from(den))
    }

    /// Creates `num/den` from big integers, normalising the result.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn from_bigints(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        let (num, den) = if den.is_negative() {
            (-num, -den)
        } else {
            (num, den)
        };
        let g = num.gcd(&den);
        if g.is_one() || num.is_zero() {
            if num.is_zero() {
                return Ratio {
                    num: BigInt::zero(),
                    den: BigInt::one(),
                };
            }
            return Ratio { num, den };
        }
        Ratio {
            num: num.divmod(&g).0,
            den: den.divmod(&g).0,
        }
    }

    /// The rational zero.
    pub fn zero() -> Self {
        Ratio {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The rational one.
    pub fn one() -> Self {
        Ratio {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Creates the integer `n` as a rational.
    pub fn from_integer(n: i64) -> Self {
        Ratio::new(n, 1)
    }

    /// The numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` if this is a valid probability, i.e. in `[0, 1]`.
    pub fn is_probability(&self) -> bool {
        !self.is_negative() && *self <= Ratio::one()
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Ratio {
        assert!(!self.is_zero(), "reciprocal of zero");
        Ratio::from_bigints(self.den.clone(), self.num.clone())
    }

    /// Lossy conversion to `f64`.
    ///
    /// Scales numerator and denominator down together so the division stays
    /// in `f64` range even for huge exact values.
    pub fn to_f64(&self) -> f64 {
        let nbits = self.num.bits();
        let dbits = self.den.bits();
        if nbits < 1000 && dbits < 1000 {
            return self.num.to_f64() / self.den.to_f64();
        }
        // Shift both down so the larger fits in ~900 bits.
        let excess = nbits.max(dbits).saturating_sub(900) as u32;
        let scale = BigInt::from(2u64).pow(excess);
        let n = self.num.divmod(&scale).0;
        let d = self.den.divmod(&scale).0;
        if d.is_zero() {
            return if self.num.is_negative() {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            };
        }
        n.to_f64() / d.to_f64()
    }

    /// Approximates an `f64` by an exact dyadic rational (exact for finite
    /// floats).
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN or infinite.
    pub fn from_f64(v: f64) -> Ratio {
        assert!(v.is_finite(), "cannot represent non-finite float exactly");
        if v == 0.0 {
            return Ratio::zero();
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exponent = ((bits >> 52) & 0x7ff) as i64;
        let mantissa = if exponent == 0 {
            bits & 0xf_ffff_ffff_ffff
        } else {
            (bits & 0xf_ffff_ffff_ffff) | 0x10_0000_0000_0000
        };
        let exp2 = exponent.max(1) - 1075;
        let m = BigInt::from(mantissa) * BigInt::from(sign);
        if exp2 >= 0 {
            Ratio::from_bigints(m * BigInt::from(2u64).pow(exp2 as u32), BigInt::one())
        } else {
            Ratio::from_bigints(m, BigInt::from(2u64).pow((-exp2) as u32))
        }
    }

    /// Raises to a small integer power.
    pub fn pow(&self, exp: u32) -> Ratio {
        Ratio::from_bigints(self.num.pow(exp), self.den.pow(exp))
    }

    /// Absolute value.
    pub fn abs(&self) -> Ratio {
        Ratio {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::zero()
    }
}

impl Add for &Ratio {
    type Output = Ratio;
    fn add(self, rhs: &Ratio) -> Ratio {
        Ratio::from_bigints(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &Ratio {
    type Output = Ratio;
    fn sub(self, rhs: &Ratio) -> Ratio {
        Ratio::from_bigints(
            &(&self.num * &rhs.den) - &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Mul for &Ratio {
    type Output = Ratio;
    fn mul(self, rhs: &Ratio) -> Ratio {
        Ratio::from_bigints(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &Ratio {
    type Output = Ratio;
    fn div(self, rhs: &Ratio) -> Ratio {
        assert!(!rhs.is_zero(), "division by zero rational");
        Ratio::from_bigints(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! forward_owned {
    ($trait:ident, $method:ident) => {
        impl $trait for Ratio {
            type Output = Ratio;
            fn $method(self, rhs: Ratio) -> Ratio {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Ratio> for Ratio {
            type Output = Ratio;
            fn $method(self, rhs: &Ratio) -> Ratio {
                (&self).$method(rhs)
            }
        }
    };
}
forward_owned!(Add, add);
forward_owned!(Sub, sub);
forward_owned!(Mul, mul);
forward_owned!(Div, div);

impl AddAssign<&Ratio> for Ratio {
    fn add_assign(&mut self, rhs: &Ratio) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Ratio> for Ratio {
    fn sub_assign(&mut self, rhs: &Ratio) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Ratio> for Ratio {
    fn mul_assign(&mut self, rhs: &Ratio) {
        *self = &*self * rhs;
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        // Cross-multiply: denominators are positive so order is preserved.
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ratio({self})")
    }
}

impl FromStr for Ratio {
    type Err = ParseRatioError;

    /// Parses `"a"`, `"a/b"` or a decimal literal such as `"0.125"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((n, d)) = s.split_once('/') {
            let num = BigInt::parse(n.trim()).ok_or(ParseRatioError)?;
            let den = BigInt::parse(d.trim()).ok_or(ParseRatioError)?;
            if den.is_zero() {
                return Err(ParseRatioError);
            }
            return Ok(Ratio::from_bigints(num, den));
        }
        if let Some((int, frac)) = s.split_once('.') {
            let int = if int.is_empty() { "0" } else { int };
            let neg = int.starts_with('-');
            let whole = BigInt::parse(int).ok_or(ParseRatioError)?;
            let fnum = BigInt::parse(frac).ok_or(ParseRatioError)?;
            if fnum.is_negative() {
                return Err(ParseRatioError);
            }
            let scale = BigInt::from(10u64).pow(frac.len() as u32);
            let mag = &(&whole.abs() * &scale) + &fnum;
            let num = if neg { -mag } else { mag };
            return Ok(Ratio::from_bigints(num, scale));
        }
        let num = BigInt::parse(s.trim()).ok_or(ParseRatioError)?;
        Ok(Ratio::from_bigints(num, BigInt::one()))
    }
}

impl From<i64> for Ratio {
    fn from(v: i64) -> Self {
        Ratio::from_integer(v)
    }
}

impl From<u32> for Ratio {
    fn from(v: u32) -> Self {
        Ratio::from_integer(v as i64)
    }
}

impl std::iter::Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::zero(), |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, 7), Ratio::zero());
        assert_eq!(Ratio::new(0, 7).denom(), &mcnetkat_num_one());
    }

    fn mcnetkat_num_one() -> BigInt {
        BigInt::one()
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(1, 2);
        let b = Ratio::new(1, 3);
        assert_eq!(&a + &b, Ratio::new(5, 6));
        assert_eq!(&a - &b, Ratio::new(1, 6));
        assert_eq!(&a * &b, Ratio::new(1, 6));
        assert_eq!(&a / &b, Ratio::new(3, 2));
    }

    #[test]
    fn probability_range() {
        assert!(Ratio::new(1, 2).is_probability());
        assert!(Ratio::zero().is_probability());
        assert!(Ratio::one().is_probability());
        assert!(!Ratio::new(3, 2).is_probability());
        assert!(!Ratio::new(-1, 2).is_probability());
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::zero());
        assert!(Ratio::new(2, 3) > Ratio::new(3, 5));
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(Ratio::new(1, 2).to_string(), "1/2");
        assert_eq!(Ratio::from_integer(5).to_string(), "5");
        assert_eq!("3/4".parse::<Ratio>().unwrap(), Ratio::new(3, 4));
        assert_eq!("7".parse::<Ratio>().unwrap(), Ratio::from_integer(7));
        assert_eq!("0.125".parse::<Ratio>().unwrap(), Ratio::new(1, 8));
        assert_eq!("-0.5".parse::<Ratio>().unwrap(), Ratio::new(-1, 2));
        assert!("1/0".parse::<Ratio>().is_err());
        assert!("x".parse::<Ratio>().is_err());
    }

    #[test]
    fn f64_round_trips() {
        for v in [0.0, 0.5, 0.25, -0.75, 1.0, 0.001, 1.0 / 3.0] {
            let r = Ratio::from_f64(v);
            assert_eq!(r.to_f64(), v, "round trip {v}");
        }
        assert_eq!(Ratio::from_f64(0.5), Ratio::new(1, 2));
        assert_eq!(Ratio::from_f64(0.2).to_f64(), 0.2);
    }

    #[test]
    fn pow_and_recip() {
        assert_eq!(Ratio::new(2, 3).pow(3), Ratio::new(8, 27));
        assert_eq!(Ratio::new(2, 3).recip(), Ratio::new(3, 2));
        assert_eq!(Ratio::new(2, 3).pow(0), Ratio::one());
    }

    #[test]
    fn sum_iterator() {
        let parts = vec![Ratio::new(1, 4); 4];
        let total: Ratio = parts.into_iter().sum();
        assert_eq!(total, Ratio::one());
    }

    #[test]
    fn large_values_stay_exact() {
        // (1/3 + 1/3 + 1/3) stays exactly 1 even after many operations.
        let third = Ratio::new(1, 3);
        let mut acc = Ratio::zero();
        for _ in 0..99 {
            acc += &third;
        }
        assert_eq!(acc, Ratio::from_integer(33));
    }
}
