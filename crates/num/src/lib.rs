//! Arbitrary-precision integers and exact rationals.
//!
//! McNetKAT's frontend and FDD backend use *exact* rational arithmetic to
//! preempt numerical-precision concerns (§5 of the paper); only the final
//! sparse linear solve runs on 64-bit floats. The OCaml implementation
//! leaned on Zarith/GMP; this crate is the equivalent substrate, built from
//! scratch: a sign-magnitude [`BigInt`] over `u32` limbs and a normalised
//! rational [`Ratio`].
//!
//! # Examples
//!
//! ```
//! use mcnetkat_num::Ratio;
//! let half = Ratio::new(1, 2);
//! let third = Ratio::new(1, 3);
//! assert_eq!((half + third).to_string(), "5/6");
//! ```

#![forbid(unsafe_code)]

mod bigint;
mod ratio;

pub use bigint::BigInt;
pub use ratio::{ParseRatioError, Ratio};
