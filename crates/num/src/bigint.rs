//! Sign-magnitude arbitrary-precision integers over base-2^32 limbs.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

const BASE_BITS: u32 = 32;

/// An arbitrary-precision signed integer.
///
/// Representation: little-endian `u32` limbs with no trailing zero limb;
/// zero is the empty limb vector with `negative == false`.
///
/// # Examples
///
/// ```
/// use mcnetkat_num::BigInt;
/// let a = BigInt::from(1u64 << 40);
/// let b = BigInt::from(3u64);
/// assert_eq!((&a * &b).to_string(), "3298534883328");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigInt {
    negative: bool,
    limbs: Vec<u32>,
}

impl BigInt {
    /// The integer zero.
    pub fn zero() -> Self {
        BigInt::default()
    }

    /// The integer one.
    pub fn one() -> Self {
        BigInt::from(1u64)
    }

    /// Returns `true` if this integer is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if this integer is one.
    pub fn is_one(&self) -> bool {
        !self.negative && self.limbs == [1]
    }

    /// Returns `true` if this integer is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Returns the absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            negative: false,
            limbs: self.limbs.clone(),
        }
    }

    /// Whether the representation invariant holds: no trailing zero limb,
    /// and zero is the empty limb vector with `negative == false`.
    ///
    /// Always true for values built through this crate's constructors
    /// (every magnitude passes through the private `trim`); exposed by name
    /// so invariant auditors — [`crate::Ratio::is_canonical`] and the FDD
    /// manager's `audit()` pass — can verify stored values instead of
    /// re-deriving the rule.
    pub fn is_normalised(&self) -> bool {
        self.limbs.last() != Some(&0) && !(self.limbs.is_empty() && self.negative)
    }

    fn trim(mut limbs: Vec<u32>, negative: bool) -> BigInt {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        let negative = negative && !limbs.is_empty();
        BigInt { negative, limbs }
    }

    /// Number of significant bits in the magnitude (0 for zero).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * BASE_BITS as u64 + (32 - top.leading_zeros()) as u64
            }
        }
    }

    fn cmp_abs(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    fn add_abs(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let sum = limb as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
            out.push(sum as u32);
            carry = sum >> BASE_BITS;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// `sub_abs`'s precondition: the minuend's magnitude is at least the
    /// subtrahend's. Named so the assertion failures below say which
    /// contract broke, not just which expression was false.
    fn sub_abs_ordered(a: &[u32], b: &[u32]) -> bool {
        Self::cmp_abs(a, b) != Ordering::Less
    }

    /// Computes `a - b` assuming `|a| >= |b|`.
    fn sub_abs(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(
            Self::sub_abs_ordered(a, b),
            "sub_abs: |a| < |b| — callers must pass the larger magnitude first"
        );
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i64;
        for (i, &limb) in a.iter().enumerate() {
            let mut diff = limb as i64 - *b.get(i).unwrap_or(&0) as i64 - borrow;
            if diff < 0 {
                diff += 1 << BASE_BITS;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(diff as u32);
        }
        debug_assert_eq!(
            borrow, 0,
            "sub_abs: borrow escaped the top limb — the |a| >= |b| precondition was violated"
        );
        out
    }

    fn mul_abs(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let mut carry = 0u64;
            for (j, &y) in b.iter().enumerate() {
                let cur = out[i + j] as u64 + x as u64 * y as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> BASE_BITS;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> BASE_BITS;
                k += 1;
            }
        }
        out
    }

    /// Divides magnitude by a single limb, returning (quotient, remainder).
    fn divmod_small(a: &[u32], d: u32) -> (Vec<u32>, u32) {
        debug_assert!(
            d != 0,
            "divmod_small: zero divisor limb — divmod_abs must reject zero divisors first"
        );
        let mut out = vec![0u32; a.len()];
        let mut rem = 0u64;
        for i in (0..a.len()).rev() {
            let cur = (rem << BASE_BITS) | a[i] as u64;
            out[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        (out, rem as u32)
    }

    /// Magnitude division: returns `(|a| / |b|, |a| % |b|)`.
    ///
    /// Schoolbook long division (Knuth Algorithm D with normalisation).
    fn divmod_abs(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert!(!b.is_empty(), "division by zero");
        if Self::cmp_abs(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            let (q, r) = Self::divmod_small(a, b[0]);
            return (q, if r == 0 { Vec::new() } else { vec![r] });
        }
        // Normalise so the divisor's top limb has its high bit set.
        let shift = b.last().unwrap().leading_zeros();
        let bn = shl_bits(b, shift);
        let mut an = shl_bits(a, shift);
        an.push(0); // guarantee an extra high limb
        let n = bn.len();
        let m = an.len() - n - 1;
        let mut q = vec![0u32; m + 1];
        let btop = *bn.last().unwrap() as u64;
        let bsecond = bn[n - 2] as u64;
        for j in (0..=m).rev() {
            // Estimate q̂ from the top three limbs.
            let top2 = ((an[j + n] as u64) << BASE_BITS) | an[j + n - 1] as u64;
            let mut qhat = top2 / btop;
            let mut rhat = top2 % btop;
            while qhat >> BASE_BITS != 0
                || qhat * bsecond > ((rhat << BASE_BITS) | an[j + n - 2] as u64)
            {
                qhat -= 1;
                rhat += btop;
                if rhat >> BASE_BITS != 0 {
                    break;
                }
            }
            // Multiply-and-subtract qhat * bn from an[j .. j+n].
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let prod = qhat * bn[i] as u64 + carry;
                carry = prod >> BASE_BITS;
                let mut diff = an[j + i] as i64 - (prod as u32) as i64 - borrow;
                if diff < 0 {
                    diff += 1 << BASE_BITS;
                    borrow = 1;
                } else {
                    borrow = 0;
                }
                an[j + i] = diff as u32;
            }
            let mut diff = an[j + n] as i64 - carry as i64 - borrow;
            if diff < 0 {
                // q̂ was one too large: add bn back.
                diff += 1 << BASE_BITS;
                qhat -= 1;
                let mut c = 0u64;
                for i in 0..n {
                    let sum = an[j + i] as u64 + bn[i] as u64 + c;
                    an[j + i] = sum as u32;
                    c = sum >> BASE_BITS;
                }
                diff += c as i64;
            }
            an[j + n] = diff as u32;
            q[j] = qhat as u32;
        }
        let rem = shr_bits(&an[..n], shift);
        let mut qv = q;
        while qv.last() == Some(&0) {
            qv.pop();
        }
        (qv, rem)
    }

    /// Returns `(quotient, remainder)` with truncation towards zero.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn divmod(&self, other: &BigInt) -> (BigInt, BigInt) {
        let (q, r) = Self::divmod_abs(&self.limbs, &other.limbs);
        (
            Self::trim(q, self.negative != other.negative),
            Self::trim(r, self.negative),
        )
    }

    /// The greatest common divisor of the magnitudes (always non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let (_, r) = a.divmod(&b);
            a = b;
            b = r.abs();
        }
        a
    }

    /// Lossy conversion to `f64` (round-to-nearest for in-range values,
    /// ±∞ on overflow).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * (1u64 << BASE_BITS) as f64 + limb as f64;
        }
        if self.negative {
            -acc
        } else {
            acc
        }
    }

    /// Conversion to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        if self.negative || self.limbs.len() > 2 {
            return None;
        }
        let lo = *self.limbs.first().unwrap_or(&0) as u64;
        let hi = *self.limbs.get(1).unwrap_or(&0) as u64;
        Some((hi << BASE_BITS) | lo)
    }

    /// Conversion to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.negative || self.limbs.len() > 4 {
            return None;
        }
        let mut out = 0u128;
        for (i, &limb) in self.limbs.iter().enumerate() {
            out |= (limb as u128) << (BASE_BITS as usize * i);
        }
        Some(out)
    }

    /// Conversion to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        let mag = self.abs().to_u128()?;
        if self.negative {
            if mag <= 1u128 << 127 {
                Some((mag as i128).wrapping_neg())
            } else {
                None
            }
        } else {
            i128::try_from(mag).ok()
        }
    }

    /// Conversion to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        let mag = self.abs().to_u64()?;
        if self.negative {
            if mag <= 1u64 << 63 {
                Some((mag as i64).wrapping_neg())
            } else {
                None
            }
        } else {
            i64::try_from(mag).ok()
        }
    }

    /// `self * 10^k`, used by the decimal printer/parser.
    fn mul_pow10(&self, k: u32) -> BigInt {
        let mut out = self.clone();
        for _ in 0..k {
            out = &out * &BigInt::from(10u64);
        }
        out
    }

    /// Parses a decimal string with optional leading `-`.
    pub fn parse(s: &str) -> Option<BigInt> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut acc = BigInt::zero();
        for chunk in digits.as_bytes().chunks(9) {
            let part: u64 = std::str::from_utf8(chunk).ok()?.parse().ok()?;
            acc = acc.mul_pow10(chunk.len() as u32) + BigInt::from(part);
        }
        acc.negative = neg && !acc.is_zero();
        Some(acc)
    }

    /// Raises `self` to a small power.
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }
}

fn shl_bits(v: &[u32], shift: u32) -> Vec<u32> {
    if shift == 0 {
        return v.to_vec();
    }
    let mut out = Vec::with_capacity(v.len() + 1);
    let mut carry = 0u32;
    for &x in v {
        out.push((x << shift) | carry);
        carry = x >> (BASE_BITS - shift);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

fn shr_bits(v: &[u32], shift: u32) -> Vec<u32> {
    let mut out = v.to_vec();
    if shift != 0 {
        for i in 0..out.len() {
            let hi = if i + 1 < v.len() { v[i + 1] } else { 0 };
            out[i] = (v[i] >> shift) | (hi << (BASE_BITS - shift));
        }
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        let mut limbs = vec![v as u32, (v >> BASE_BITS) as u32];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigInt {
            negative: false,
            limbs,
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        let mut b = BigInt::from(v.unsigned_abs());
        b.negative = v < 0;
        b
    }
}

impl From<u32> for BigInt {
    fn from(v: u32) -> Self {
        BigInt::from(v as u64)
    }
}

impl From<u128> for BigInt {
    fn from(v: u128) -> Self {
        let mut limbs = vec![
            v as u32,
            (v >> 32) as u32,
            (v >> 64) as u32,
            (v >> 96) as u32,
        ];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigInt {
            negative: false,
            limbs,
        }
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        let mut b = BigInt::from(v.unsigned_abs());
        b.negative = v < 0;
        b
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i64)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => Self::cmp_abs(&self.limbs, &other.limbs),
            (true, true) => Self::cmp_abs(&other.limbs, &self.limbs),
        }
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.negative == rhs.negative {
            BigInt::trim(BigInt::add_abs(&self.limbs, &rhs.limbs), self.negative)
        } else {
            match BigInt::cmp_abs(&self.limbs, &rhs.limbs) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::trim(BigInt::sub_abs(&self.limbs, &rhs.limbs), self.negative)
                }
                Ordering::Less => {
                    BigInt::trim(BigInt::sub_abs(&rhs.limbs, &self.limbs), rhs.negative)
                }
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs.clone())
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::trim(
            BigInt::mul_abs(&self.limbs, &rhs.limbs),
            self.negative != rhs.negative,
        )
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.divmod(rhs).1
    }
}

macro_rules! forward_owned {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
    };
}
forward_owned!(Add, add);
forward_owned!(Sub, sub);
forward_owned!(Mul, mul);
forward_owned!(Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        if !self.is_zero() {
            self.negative = !self.negative;
        }
        self
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        if self.negative {
            write!(f, "-")?;
        }
        // Repeated division by 10^9 produces base-10^9 digits.
        let mut limbs = self.limbs.clone();
        let mut chunks = Vec::new();
        while !limbs.is_empty() {
            let (q, r) = BigInt::divmod_small(&limbs, 1_000_000_000);
            limbs = q;
            while limbs.last() == Some(&0) {
                limbs.pop();
            }
            chunks.push(r);
        }
        write!(f, "{}", chunks.last().unwrap())?;
        for chunk in chunks.iter().rev().skip(1) {
            write!(f, "{chunk:09}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigInt::zero().is_zero());
        assert!(BigInt::one().is_one());
        assert_eq!(BigInt::zero().to_string(), "0");
    }

    #[test]
    fn add_small() {
        assert_eq!(big(2) + big(3), big(5));
        assert_eq!(big(-2) + big(3), big(1));
        assert_eq!(big(2) + big(-3), big(-1));
        assert_eq!(big(-2) + big(-3), big(-5));
    }

    #[test]
    fn sub_small() {
        assert_eq!(big(10) - big(3), big(7));
        assert_eq!(big(3) - big(10), big(-7));
        assert_eq!(big(5) - big(5), BigInt::zero());
    }

    #[test]
    fn mul_small() {
        assert_eq!(big(7) * big(6), big(42));
        assert_eq!(big(-7) * big(6), big(-42));
        assert_eq!(big(0) * big(123), BigInt::zero());
    }

    #[test]
    fn mul_carries_across_limbs() {
        let a = BigInt::from(u64::MAX);
        let sq = &a * &a;
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        assert_eq!(sq.to_string(), "340282366920938463426481119284349108225");
    }

    #[test]
    fn divmod_small_values() {
        let (q, r) = big(17).divmod(&big(5));
        assert_eq!((q, r), (big(3), big(2)));
        let (q, r) = big(-17).divmod(&big(5));
        assert_eq!((q, r), (big(-3), big(-2)));
        let (q, r) = big(17).divmod(&big(-5));
        assert_eq!((q, r), (big(-3), big(2)));
    }

    #[test]
    fn divmod_multi_limb() {
        let a = BigInt::parse("123456789012345678901234567890").unwrap();
        let b = BigInt::parse("987654321098765").unwrap();
        let (q, r) = a.divmod(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn division_by_zero_panics() {
        let result = std::panic::catch_unwind(|| big(1).divmod(&BigInt::zero()));
        assert!(result.is_err());
    }

    #[test]
    fn gcd_values() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(-12).gcd(&big(18)), big(6));
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(7).gcd(&big(13)), big(1));
    }

    #[test]
    fn display_round_trips_parse() {
        for s in [
            "0",
            "1",
            "-1",
            "999999999",
            "1000000000",
            "123456789012345678901234567890",
            "-98765432109876543210",
        ] {
            assert_eq!(BigInt::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BigInt::parse("").is_none());
        assert!(BigInt::parse("-").is_none());
        assert!(BigInt::parse("12a3").is_none());
    }

    #[test]
    fn to_f64_matches() {
        assert_eq!(big(12345).to_f64(), 12345.0);
        assert_eq!(big(-7).to_f64(), -7.0);
        let a = BigInt::from(1u64 << 53);
        assert_eq!(a.to_f64(), 9007199254740992.0);
    }

    #[test]
    fn conversions() {
        assert_eq!(big(42).to_u64(), Some(42));
        assert_eq!(big(-42).to_u64(), None);
        assert_eq!(big(-42).to_i64(), Some(-42));
        assert_eq!(BigInt::from(u64::MAX).to_i64(), None);
        assert_eq!(BigInt::from(i64::MIN).to_i64(), Some(i64::MIN));
    }

    #[test]
    fn pow_values() {
        assert_eq!(big(2).pow(10), big(1024));
        assert_eq!(big(10).pow(0), big(1));
        assert_eq!(big(3).pow(40).to_string(), "12157665459056928801");
    }

    #[test]
    fn ordering() {
        assert!(big(-5) < big(3));
        assert!(big(3) < big(5));
        assert!(big(-3) > big(-5));
        let a = BigInt::parse("123456789012345678901").unwrap();
        assert!(a > big(i64::MAX));
    }

    #[test]
    fn bits_counts() {
        assert_eq!(BigInt::zero().bits(), 0);
        assert_eq!(big(1).bits(), 1);
        assert_eq!(big(255).bits(), 8);
        assert_eq!(BigInt::from(1u64 << 40).bits(), 41);
    }
}
