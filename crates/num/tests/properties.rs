//! Property-based tests for the exact-arithmetic substrate.

use mcnetkat_num::{BigInt, Ratio};
use proptest::prelude::*;

fn arb_bigint() -> impl Strategy<Value = BigInt> {
    // Mix of small values and multi-limb values built from parts.
    prop_oneof![
        any::<i64>().prop_map(BigInt::from),
        (any::<u64>(), any::<u64>(), any::<bool>()).prop_map(|(a, b, neg)| {
            let v = BigInt::from(a) * BigInt::from(u64::MAX) + BigInt::from(b);
            if neg {
                -v
            } else {
                v
            }
        }),
    ]
}

fn arb_ratio() -> impl Strategy<Value = Ratio> {
    (any::<i32>(), 1..=10_000i64).prop_map(|(n, d)| Ratio::new(n as i64, d))
}

proptest! {
    #[test]
    fn add_commutes(a in arb_bigint(), b in arb_bigint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in arb_bigint(), b in arb_bigint(), c in arb_bigint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_distributes(a in arb_bigint(), b in arb_bigint(), c in arb_bigint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_inverts_add(a in arb_bigint(), b in arb_bigint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn divmod_identity(a in arb_bigint(), b in arb_bigint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.divmod(&b);
        prop_assert_eq!(&(&q * &b) + &r, a.clone());
        prop_assert!(r.abs() < b.abs());
        // Remainder has the sign of the dividend (or is zero).
        prop_assert!(r.is_zero() || r.is_negative() == a.is_negative());
    }

    #[test]
    fn gcd_divides_both(a in arb_bigint(), b in arb_bigint()) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(&b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
    }

    #[test]
    fn display_parse_round_trip(a in arb_bigint()) {
        let s = a.to_string();
        prop_assert_eq!(BigInt::parse(&s).unwrap(), a);
    }

    #[test]
    fn ratio_field_axioms(a in arb_ratio(), b in arb_ratio(), c in arb_ratio()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&(&a + &b) - &b, a.clone());
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a);
        }
    }

    #[test]
    fn ratio_normalised(n in any::<i32>(), d in 1..=10_000i64) {
        let r = Ratio::new(n as i64, d);
        prop_assert!(!r.denom().is_negative());
        prop_assert!(!r.denom().is_zero());
        let g = r.numer().gcd(&r.denom());
        prop_assert!(g.is_one() || r.is_zero());
    }

    #[test]
    fn ratio_matches_f64(a in arb_ratio(), b in arb_ratio()) {
        let exact = (&a + &b).to_f64();
        let approx = a.to_f64() + b.to_f64();
        // Relative tolerance: the operands may be large.
        let scale = 1.0f64.max(exact.abs());
        prop_assert!((exact - approx).abs() < 1e-9 * scale);
    }

    #[test]
    fn ratio_ordering_matches_f64(a in arb_ratio(), b in arb_ratio()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }

    #[test]
    fn ratio_string_round_trip(a in arb_ratio()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Ratio>().unwrap(), a);
    }

    #[test]
    fn from_f64_exact(v in -1.0e9..1.0e9f64) {
        prop_assert_eq!(Ratio::from_f64(v).to_f64(), v);
    }
}

// ---------------------------------------------------------------------------
// Small/big fast-path agreement.
//
// `Ratio` stores machine-word-sized values inline and computes on them with
// `i128` intermediates; only overflowing results promote to heap `BigInt`
// pairs. These properties drive operands across the promotion boundary
// (i64::MAX-adjacent numerators and denominators) and pin every operator
// against a reference computed entirely in `BigInt` arithmetic, which both
// paths must agree with.
// ---------------------------------------------------------------------------

/// Operands clustered at the `Small` representation's edges: huge positive,
/// huge negative, and ordinary magnitudes.
fn arb_boundary_i64() -> impl Strategy<Value = i64> {
    prop_oneof![
        (0..1000i64).prop_map(|k| i64::MAX - k),
        (0..1000i64).prop_map(|k| -(i64::MAX - k)),
        -1000..1000i64,
        any::<i64>(),
    ]
}

fn arb_boundary_den() -> impl Strategy<Value = i64> {
    prop_oneof![1..1000i64, (0..1000i64).prop_map(|k| i64::MAX - k)]
}

fn arb_boundary_ratio() -> impl Strategy<Value = Ratio> {
    (arb_boundary_i64(), arb_boundary_den()).prop_map(|(n, d)| Ratio::new(n, d))
}

/// Reference addition computed wholly in `BigInt` arithmetic.
fn ref_add(a: &Ratio, b: &Ratio) -> Ratio {
    Ratio::from_bigints(
        a.numer() * b.denom() + b.numer() * a.denom(),
        a.denom() * b.denom(),
    )
}

fn ref_sub(a: &Ratio, b: &Ratio) -> Ratio {
    Ratio::from_bigints(
        a.numer() * b.denom() - b.numer() * a.denom(),
        a.denom() * b.denom(),
    )
}

fn ref_mul(a: &Ratio, b: &Ratio) -> Ratio {
    Ratio::from_bigints(a.numer() * b.numer(), a.denom() * b.denom())
}

fn ref_div(a: &Ratio, b: &Ratio) -> Ratio {
    Ratio::from_bigints(a.numer() * b.denom(), a.denom() * b.numer())
}

fn std_hash(r: &Ratio) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    r.hash(&mut h);
    h.finish()
}

proptest! {
    #[test]
    fn boundary_add_matches_bigint_reference(a in arb_boundary_ratio(), b in arb_boundary_ratio()) {
        prop_assert_eq!(&a + &b, ref_add(&a, &b));
    }

    #[test]
    fn boundary_sub_matches_bigint_reference(a in arb_boundary_ratio(), b in arb_boundary_ratio()) {
        prop_assert_eq!(&a - &b, ref_sub(&a, &b));
    }

    #[test]
    fn boundary_mul_matches_bigint_reference(a in arb_boundary_ratio(), b in arb_boundary_ratio()) {
        prop_assert_eq!(&a * &b, ref_mul(&a, &b));
    }

    #[test]
    fn boundary_div_matches_bigint_reference(a in arb_boundary_ratio(), b in arb_boundary_ratio()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!(&a / &b, ref_div(&a, &b));
    }

    #[test]
    fn boundary_cmp_matches_bigint_reference(a in arb_boundary_ratio(), b in arb_boundary_ratio()) {
        let reference = (a.numer() * b.denom()).cmp(&(b.numer() * a.denom()));
        prop_assert_eq!(a.cmp(&b), reference);
    }

    #[test]
    fn boundary_results_stay_in_lowest_terms(a in arb_boundary_ratio(), b in arb_boundary_ratio()) {
        for r in [&a + &b, &a - &b, &a * &b] {
            prop_assert!(!r.denom().is_negative() && !r.denom().is_zero());
            let g = r.numer().gcd(&r.denom());
            prop_assert!(g.is_one() || r.is_zero(), "not in lowest terms: {:?}", r);
        }
    }

    #[test]
    fn boundary_hash_is_representation_independent(a in arb_boundary_ratio(), b in arb_boundary_ratio()) {
        // The same value rebuilt through the all-BigInt constructor (which
        // may enter via the promoted path) must hash identically — the
        // canonical-representation invariant Eq/Hash rely on.
        let sum = &a + &b;
        let rebuilt = Ratio::from_bigints(sum.numer(), sum.denom());
        prop_assert_eq!(&sum, &rebuilt);
        prop_assert_eq!(std_hash(&sum), std_hash(&rebuilt));
    }

    #[test]
    fn boundary_add_round_trips_through_sub(a in arb_boundary_ratio(), b in arb_boundary_ratio()) {
        // Exercises promote-then-demote: (a + b) - b must land back on a
        // exactly, whatever representations the intermediates took.
        prop_assert_eq!(&(&a + &b) - &b, a);
    }
}
