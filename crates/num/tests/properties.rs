//! Property-based tests for the exact-arithmetic substrate.

use mcnetkat_num::{BigInt, Ratio};
use proptest::prelude::*;

fn arb_bigint() -> impl Strategy<Value = BigInt> {
    // Mix of small values and multi-limb values built from parts.
    prop_oneof![
        any::<i64>().prop_map(BigInt::from),
        (any::<u64>(), any::<u64>(), any::<bool>()).prop_map(|(a, b, neg)| {
            let v = BigInt::from(a) * BigInt::from(u64::MAX) + BigInt::from(b);
            if neg {
                -v
            } else {
                v
            }
        }),
    ]
}

fn arb_ratio() -> impl Strategy<Value = Ratio> {
    (any::<i32>(), 1..=10_000i64).prop_map(|(n, d)| Ratio::new(n as i64, d))
}

proptest! {
    #[test]
    fn add_commutes(a in arb_bigint(), b in arb_bigint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in arb_bigint(), b in arb_bigint(), c in arb_bigint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_distributes(a in arb_bigint(), b in arb_bigint(), c in arb_bigint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_inverts_add(a in arb_bigint(), b in arb_bigint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn divmod_identity(a in arb_bigint(), b in arb_bigint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.divmod(&b);
        prop_assert_eq!(&(&q * &b) + &r, a.clone());
        prop_assert!(r.abs() < b.abs());
        // Remainder has the sign of the dividend (or is zero).
        prop_assert!(r.is_zero() || r.is_negative() == a.is_negative());
    }

    #[test]
    fn gcd_divides_both(a in arb_bigint(), b in arb_bigint()) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(&b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
    }

    #[test]
    fn display_parse_round_trip(a in arb_bigint()) {
        let s = a.to_string();
        prop_assert_eq!(BigInt::parse(&s).unwrap(), a);
    }

    #[test]
    fn ratio_field_axioms(a in arb_ratio(), b in arb_ratio(), c in arb_ratio()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&(&a + &b) - &b, a.clone());
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a);
        }
    }

    #[test]
    fn ratio_normalised(n in any::<i32>(), d in 1..=10_000i64) {
        let r = Ratio::new(n as i64, d);
        prop_assert!(!r.denom().is_negative());
        prop_assert!(!r.denom().is_zero());
        let g = r.numer().gcd(r.denom());
        prop_assert!(g.is_one() || r.is_zero());
    }

    #[test]
    fn ratio_matches_f64(a in arb_ratio(), b in arb_ratio()) {
        let exact = (&a + &b).to_f64();
        let approx = a.to_f64() + b.to_f64();
        // Relative tolerance: the operands may be large.
        let scale = 1.0f64.max(exact.abs());
        prop_assert!((exact - approx).abs() < 1e-9 * scale);
    }

    #[test]
    fn ratio_ordering_matches_f64(a in arb_ratio(), b in arb_ratio()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }

    #[test]
    fn ratio_string_round_trip(a in arb_ratio()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Ratio>().unwrap(), a);
    }

    #[test]
    fn from_f64_exact(v in -1.0e9..1.0e9f64) {
        prop_assert_eq!(Ratio::from_f64(v).to_f64(), v);
    }
}
