//! Dense matrices with generic Gaussian elimination.

use crate::{LinalgError, Scalar};

/// A row-major dense matrix over any [`Scalar`].
///
/// # Examples
///
/// ```
/// use mcnetkat_linalg::DenseMatrix;
/// let a = DenseMatrix::from_rows(vec![vec![2.0, 0.0], vec![0.0, 4.0]]);
/// let x = a.solve(&[2.0, 8.0]).unwrap();
/// assert_eq!(x, vec![1.0, 2.0]);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct DenseMatrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// The `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, T::one());
        }
        m
    }

    /// Builds a matrix from nested row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: Vec<Vec<T>>) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|r| r.len() == ncols),
            "ragged rows in dense matrix"
        );
        DenseMatrix {
            rows: nrows,
            cols: ncols,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> &T {
        &self.data[i * self.cols + j]
    }

    /// Writes entry `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        self.data[i * self.cols + j] = v;
    }

    /// Matrix–matrix product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &DenseMatrix<T>) -> DenseMatrix<T> {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = DenseMatrix::<T>::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a.is_zero() {
                    continue;
                }
                for j in 0..other.cols {
                    let prod = a.mul(other.get(k, j));
                    let cur = out.get(i, j).add(&prod);
                    out.set(i, j, cur);
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[T]) -> Vec<T> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = T::zero();
                for (j, vj) in v.iter().enumerate() {
                    acc = acc.add(&self.get(i, j).mul(vj));
                }
                acc
            })
            .collect()
    }

    /// Solves `A x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when no usable pivot exists and
    /// [`LinalgError::DimensionMismatch`] when `b` has the wrong length.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, LinalgError> {
        let rhs = DenseMatrix {
            rows: b.len(),
            cols: 1,
            data: b.to_vec(),
        };
        let sol = self.solve_multi(&rhs)?;
        Ok(sol.data)
    }

    /// Solves `A X = B` for a matrix of right-hand sides.
    ///
    /// # Errors
    ///
    /// See [`DenseMatrix::solve`].
    pub fn solve_multi(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>, LinalgError> {
        if self.rows != self.cols || b.rows != self.rows {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.clone();
        for k in 0..n {
            // Partial pivoting: pick the row with the largest magnitude.
            let pivot_row = (k..n)
                .max_by(|&i, &j| {
                    a.get(i, k)
                        .pivot_magnitude()
                        .total_cmp(&a.get(j, k).pivot_magnitude())
                })
                .unwrap();
            if !a.get(pivot_row, k).is_usable_pivot() {
                return Err(LinalgError::Singular(k));
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = a.get(k, j).clone();
                    a.set(k, j, a.get(pivot_row, j).clone());
                    a.set(pivot_row, j, tmp);
                }
                for j in 0..x.cols {
                    let tmp = x.get(k, j).clone();
                    x.set(k, j, x.get(pivot_row, j).clone());
                    x.set(pivot_row, j, tmp);
                }
            }
            let pivot = a.get(k, k).clone();
            for i in (k + 1)..n {
                let factor = a.get(i, k).div(&pivot);
                if factor.is_zero() {
                    continue;
                }
                for j in k..n {
                    let v = a.get(i, j).sub(&factor.mul(a.get(k, j)));
                    a.set(i, j, v);
                }
                for j in 0..x.cols {
                    let v = x.get(i, j).sub(&factor.mul(x.get(k, j)));
                    x.set(i, j, v);
                }
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let pivot = a.get(k, k).clone();
            for j in 0..x.cols {
                let mut acc = x.get(k, j).clone();
                for m in (k + 1)..n {
                    acc = acc.sub(&a.get(k, m).mul(x.get(m, j)));
                }
                x.set(k, j, acc.div(&pivot));
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnetkat_num::Ratio;

    #[test]
    fn identity_solves_trivially() {
        let a = DenseMatrix::<f64>::identity(3);
        let x = a.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_small_float_system() {
        // [[2,1],[1,3]] x = [3,5] → x = [4/5, 7/5]
        let a = DenseMatrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solves_exactly_over_rationals() {
        let r = |n, d| Ratio::new(n, d);
        let a = DenseMatrix::from_rows(vec![vec![r(2, 1), r(1, 1)], vec![r(1, 1), r(3, 1)]]);
        let x = a.solve(&[r(3, 1), r(5, 1)]).unwrap();
        assert_eq!(x, vec![r(4, 5), r(7, 5)]);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = DenseMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(LinalgError::Singular(_))
        ));
    }

    #[test]
    fn matmul_matches_by_hand() {
        let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = DenseMatrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(
            c,
            DenseMatrix::from_rows(vec![vec![19.0, 22.0], vec![43.0, 50.0]])
        );
    }

    #[test]
    fn matvec_matches_by_hand() {
        let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn solve_multi_many_rhs() {
        let a = DenseMatrix::from_rows(vec![vec![2.0, 0.0], vec![0.0, 4.0]]);
        let b = DenseMatrix::from_rows(vec![vec![2.0, 4.0], vec![8.0, 12.0]]);
        let x = a.solve_multi(&b).unwrap();
        assert_eq!(
            x,
            DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 3.0]])
        );
    }
}
