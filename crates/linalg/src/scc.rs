//! Strongly connected components and the condensation DAG.
//!
//! The absorbing-chain solver decomposes the transient subgraph into its
//! SCCs (Tarjan's algorithm, implemented iteratively so deep chains cannot
//! overflow the stack) and solves absorption probabilities one component
//! at a time in reverse topological order: by the time a component is
//! processed, every transient state it can reach outside itself is already
//! solved, so each block reduces to a small independent linear system.

/// The condensation of a directed graph on states `0..n`.
///
/// Components are emitted in *reverse topological order* of the
/// condensation DAG: every edge out of `components[c]` lands either inside
/// the component or in some `components[c']` with `c' < c`. Processing
/// components in index order therefore visits all successors of a
/// component before the component itself.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// Map state → index of its component in [`Condensation::components`].
    pub comp_of: Vec<usize>,
    /// The components, each a list of member states, in reverse
    /// topological order.
    pub components: Vec<Vec<usize>>,
}

impl Condensation {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` if the graph had no states.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

/// Computes the condensation of the graph on `0..n` whose successor lists
/// are `succ` (parallel edges and self-loops are fine).
///
/// # Panics
///
/// Panics if `succ.len() != n` or an edge target is out of range.
pub fn condense(n: usize, succ: &[Vec<usize>]) -> Condensation {
    assert_eq!(succ.len(), n, "successor list length mismatch");
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comp_of = vec![UNVISITED; n];
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan: each call frame is (state, next child position).
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succ[v].get(*ci) {
                *ci += 1;
                assert!(w < n, "edge target {w} out of range");
                if index[w] == UNVISITED {
                    call.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // All children explored: close the frame.
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    // v is the root of an SCC: pop it off the Tarjan stack.
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp_of[w] = components.len();
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(comp);
                }
            }
        }
    }
    Condensation {
        comp_of,
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
        let mut succ = vec![Vec::new(); n];
        for &(u, v) in edges {
            succ[u].push(v);
        }
        succ
    }

    /// Every edge must point into the same or an earlier component —
    /// the reverse-topological invariant the solver relies on.
    fn assert_reverse_topological(n: usize, succ: &[Vec<usize>], c: &Condensation) {
        for (u, out) in succ.iter().enumerate().take(n) {
            for &v in out {
                assert!(
                    c.comp_of[v] <= c.comp_of[u],
                    "edge {u}→{v} crosses components backwards"
                );
            }
        }
    }

    #[test]
    fn dag_gives_singletons_in_reverse_topo_order() {
        let succ = graph(4, &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        let c = condense(4, &succ);
        assert_eq!(c.len(), 4);
        assert!(c.components.iter().all(|comp| comp.len() == 1));
        assert_reverse_topological(4, &succ, &c);
        // The sink (3) must come first.
        assert_eq!(c.components[0], vec![3]);
    }

    #[test]
    fn cycle_is_one_component() {
        let succ = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let c = condense(3, &succ);
        assert_eq!(c.len(), 1);
        assert_eq!(c.components[0].len(), 3);
    }

    #[test]
    fn two_cycles_bridge() {
        // {0,1} → {2,3}: the downstream cycle must be emitted first.
        let succ = graph(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let c = condense(4, &succ);
        assert_eq!(c.len(), 2);
        assert_reverse_topological(4, &succ, &c);
        let mut first = c.components[0].clone();
        first.sort_unstable();
        assert_eq!(first, vec![2, 3]);
    }

    #[test]
    fn self_loops_stay_singletons() {
        let succ = graph(2, &[(0, 0), (0, 1), (1, 1)]);
        let c = condense(2, &succ);
        assert_eq!(c.len(), 2);
        assert_reverse_topological(2, &succ, &c);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-state path: the recursive formulation would blow the stack.
        let n = 100_000;
        let mut succ = vec![Vec::new(); n];
        for (i, out) in succ.iter_mut().enumerate().take(n - 1) {
            out.push(i + 1);
        }
        let c = condense(n, &succ);
        assert_eq!(c.len(), n);
        assert_eq!(c.components[0], vec![n - 1]);
    }

    #[test]
    fn empty_graph() {
        let c = condense(0, &[]);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }
}
