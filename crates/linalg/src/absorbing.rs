//! Absorbing Markov chain solver: the closed form of §4.
//!
//! Given an absorbing chain with transient states `T` and absorbing states
//! `A`, reorder the transition matrix as
//!
//! ```text
//!     [ I  0 ]
//!     [ R  Q ]
//! ```
//!
//! Then the absorption probabilities are `A = (I − Q)^{-1} R`
//! (equation 2 / Theorem 4.7). This module computes `A` with a pluggable
//! backend: the sparse LU (production), iterative Gauss–Seidel/Jacobi
//! (large, very sparse chains), a dense float LU, or *exact* rational
//! elimination (validation).

use crate::{gauss_seidel, jacobi, DenseMatrix, IterativeOptions, LinalgError, SparseLu, Triplets};
use mcnetkat_num::Ratio;

/// Which linear-solver backend computes `(I − Q)^{-1} R`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SolverBackend {
    /// Sparse left-looking LU (the UMFPACK-replacement production path).
    #[default]
    SparseLu,
    /// Gauss–Seidel sweeps; good for huge, very sparse chains.
    GaussSeidel,
    /// Jacobi fixed-point iteration.
    Jacobi,
    /// Dense float LU; only sensible for small chains.
    DenseLu,
}

/// An absorbing Markov chain under construction.
///
/// States are `0..n`. Mark absorbing states with [`set_absorbing`]
/// (they implicitly self-loop with probability 1); add transitions out of
/// transient states with [`add`]. Rows of transient states must sum to 1.
///
/// [`set_absorbing`]: AbsorbingChain::set_absorbing
/// [`add`]: AbsorbingChain::add
///
/// # Examples
///
/// ```
/// use mcnetkat_linalg::{AbsorbingChain, SolverBackend};
/// use mcnetkat_num::Ratio;
///
/// // Gambler's ruin on {0,1,2} with fair coin: states 0 and 2 absorb.
/// let mut chain = AbsorbingChain::new(3);
/// chain.set_absorbing(0);
/// chain.set_absorbing(2);
/// chain.add(1, 0, Ratio::new(1, 2));
/// chain.add(1, 2, Ratio::new(1, 2));
/// let sol = chain.solve(SolverBackend::SparseLu).unwrap();
/// assert!((sol.prob(1, 0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct AbsorbingChain {
    n: usize,
    absorbing: Vec<bool>,
    transitions: Vec<(usize, usize, Ratio)>,
}

/// Absorption probabilities of an [`AbsorbingChain`].
#[derive(Clone, Debug)]
pub struct AbsorptionResult {
    n: usize,
    /// Map original state → compact transient index (or MAX).
    transient_ix: Vec<usize>,
    /// Map original state → compact absorbing index (or MAX).
    absorbing_ix: Vec<usize>,
    /// Original ids of absorbing states, in compact order.
    absorbing_states: Vec<usize>,
    /// `probs[t][a]`: probability that transient `t` absorbs in `a`
    /// (compact indices).
    probs: Vec<Vec<f64>>,
}

impl AbsorbingChain {
    /// Creates a chain with states `0..n` and no transitions.
    pub fn new(n: usize) -> Self {
        AbsorbingChain {
            n,
            absorbing: vec![false; n],
            transitions: Vec::new(),
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the chain has no states.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Marks state `s` as absorbing.
    pub fn set_absorbing(&mut self, s: usize) {
        self.absorbing[s] = true;
    }

    /// Returns `true` if `s` was marked absorbing.
    pub fn is_absorbing(&self, s: usize) -> bool {
        self.absorbing[s]
    }

    /// Adds a transition `from → to` with exact probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `from` was marked absorbing or `p` is not a probability.
    pub fn add(&mut self, from: usize, to: usize, p: Ratio) {
        assert!(!self.absorbing[from], "transition out of absorbing state");
        assert!(p.is_probability(), "invalid transition probability {p}");
        if !p.is_zero() {
            self.transitions.push((from, to, p));
        }
    }

    /// Checks that every transient row sums to exactly 1.
    pub fn validate(&self) -> Result<(), String> {
        let mut sums = vec![Ratio::zero(); self.n];
        for (from, _, p) in &self.transitions {
            sums[*from] += p;
        }
        for (s, sum) in sums.iter().enumerate() {
            if !self.absorbing[s] && *sum != Ratio::one() {
                return Err(format!("row {s} sums to {sum}, expected 1"));
            }
        }
        Ok(())
    }

    /// Computes the absorption probabilities `A = (I − Q)^{-1} R` with the
    /// chosen float backend.
    ///
    /// # Errors
    ///
    /// Propagates solver failures; a [`LinalgError::Singular`] typically
    /// means some transient state cannot reach any absorbing state (the
    /// chain is not actually absorbing).
    pub fn solve(&self, backend: SolverBackend) -> Result<AbsorptionResult, LinalgError> {
        let (transient_ix, absorbing_ix, transients, absorbing_states) = self.partition();
        let nt = transients.len();
        let na = absorbing_states.len();
        let mut q = Triplets::new(nt, nt);
        let mut r = vec![vec![0.0f64; na]; nt];
        for (from, to, p) in &self.transitions {
            let ti = transient_ix[*from];
            let pf = p.to_f64();
            if self.absorbing[*to] {
                r[ti][absorbing_ix[*to]] += pf;
            } else {
                q.push(ti, transient_ix[*to], pf);
            }
        }
        let qm = q.to_csr();
        let probs = match backend {
            SolverBackend::SparseLu => {
                // Factor (I - Q) once; back-solve one column of R at a time.
                let mut iq = Triplets::new(nt, nt);
                for i in 0..nt {
                    iq.push(i, i, 1.0);
                }
                for i in 0..nt {
                    for (j, v) in qm.row(i) {
                        iq.push(i, j, -v);
                    }
                }
                let lu = SparseLu::factor(&iq.to_csr())?;
                let mut cols = Vec::with_capacity(na);
                for a in 0..na {
                    let rhs: Vec<f64> = r.iter().take(nt).map(|row| row[a]).collect();
                    cols.push(lu.solve(&rhs));
                }
                transpose(cols, nt)
            }
            SolverBackend::GaussSeidel | SolverBackend::Jacobi => {
                let opts = IterativeOptions::default();
                let mut cols = Vec::with_capacity(na);
                for a in 0..na {
                    let rhs: Vec<f64> = r.iter().take(nt).map(|row| row[a]).collect();
                    let x = match backend {
                        SolverBackend::GaussSeidel => gauss_seidel(&qm, &rhs, opts)?,
                        _ => jacobi(&qm, &rhs, opts)?,
                    };
                    cols.push(x);
                }
                transpose(cols, nt)
            }
            SolverBackend::DenseLu => {
                let mut iq = DenseMatrix::<f64>::identity(nt);
                for i in 0..nt {
                    for (j, v) in qm.row(i) {
                        iq.set(i, j, iq.get(i, j) - v);
                    }
                }
                let rhs = DenseMatrix::from_rows(r.clone());
                let x = iq.solve_multi(&rhs)?;
                (0..nt)
                    .map(|i| (0..na).map(|j| *x.get(i, j)).collect())
                    .collect()
            }
        };
        Ok(AbsorptionResult {
            n: self.n,
            transient_ix,
            absorbing_ix,
            absorbing_states,
            probs,
        })
    }

    /// Computes the absorption probabilities exactly, over rationals, with
    /// dense Gaussian elimination. Exponentially slower than [`solve`] but
    /// bit-for-bit exact; used to validate the float pipeline.
    ///
    /// [`solve`]: AbsorbingChain::solve
    ///
    /// # Errors
    ///
    /// Same conditions as [`AbsorbingChain::solve`].
    pub fn solve_exact(&self) -> Result<Vec<Vec<Ratio>>, LinalgError> {
        let (transient_ix, absorbing_ix, transients, absorbing_states) = self.partition();
        let nt = transients.len();
        let na = absorbing_states.len();
        let mut iq = DenseMatrix::<Ratio>::identity(nt);
        let mut r = DenseMatrix::<Ratio>::zeros(nt, na);
        for (from, to, p) in &self.transitions {
            let ti = transient_ix[*from];
            if self.absorbing[*to] {
                let ai = absorbing_ix[*to];
                r.set(ti, ai, r.get(ti, ai).clone() + p.clone());
            } else {
                let tj = transient_ix[*to];
                iq.set(ti, tj, iq.get(ti, tj).clone() - p.clone());
            }
        }
        let x = iq.solve_multi(&r)?;
        Ok((0..nt)
            .map(|i| (0..na).map(|j| x.get(i, j).clone()).collect())
            .collect())
    }

    fn partition(&self) -> (Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>) {
        let mut transient_ix = vec![usize::MAX; self.n];
        let mut absorbing_ix = vec![usize::MAX; self.n];
        let mut transients = Vec::new();
        let mut absorbing_states = Vec::new();
        for s in 0..self.n {
            if self.absorbing[s] {
                absorbing_ix[s] = absorbing_states.len();
                absorbing_states.push(s);
            } else {
                transient_ix[s] = transients.len();
                transients.push(s);
            }
        }
        (transient_ix, absorbing_ix, transients, absorbing_states)
    }
}

fn transpose(cols: Vec<Vec<f64>>, nt: usize) -> Vec<Vec<f64>> {
    let na = cols.len();
    (0..nt)
        .map(|t| (0..na).map(|a| cols[a][t]).collect())
        .collect()
}

impl AbsorptionResult {
    /// Probability that transient state `from` (original id) is absorbed in
    /// absorbing state `to` (original id).
    ///
    /// For an absorbing `from`, returns 1 if `from == to` and 0 otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not absorbing or ids are out of range.
    pub fn prob(&self, from: usize, to: usize) -> f64 {
        assert!(from < self.n && to < self.n, "state out of range");
        let a = self.absorbing_ix[to];
        assert!(a != usize::MAX, "target state {to} is not absorbing");
        if self.transient_ix[from] == usize::MAX {
            return if from == to { 1.0 } else { 0.0 };
        }
        self.probs[self.transient_ix[from]][a]
    }

    /// The absorbing states (original ids) in column order.
    pub fn absorbing_states(&self) -> &[usize] {
        &self.absorbing_states
    }

    /// The full absorption row for `from` as `(absorbing_state, prob)`.
    pub fn row(&self, from: usize) -> Vec<(usize, f64)> {
        self.absorbing_states
            .iter()
            .map(|&a| (a, self.prob(from, a)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> [SolverBackend; 4] {
        [
            SolverBackend::SparseLu,
            SolverBackend::GaussSeidel,
            SolverBackend::Jacobi,
            SolverBackend::DenseLu,
        ]
    }

    #[test]
    fn gamblers_ruin_all_backends() {
        // States 0..=4; 0 and 4 absorb; fair coin. Classic result:
        // P(absorb at 4 | start i) = i/4.
        for backend in backends() {
            let mut chain = AbsorbingChain::new(5);
            chain.set_absorbing(0);
            chain.set_absorbing(4);
            for i in 1..4 {
                chain.add(i, i - 1, Ratio::new(1, 2));
                chain.add(i, i + 1, Ratio::new(1, 2));
            }
            chain.validate().unwrap();
            let sol = chain.solve(backend).unwrap();
            for i in 1..4 {
                assert!(
                    (sol.prob(i, 4) - i as f64 / 4.0).abs() < 1e-9,
                    "{backend:?} start {i}"
                );
                assert!((sol.prob(i, 0) - (1.0 - i as f64 / 4.0)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn exact_matches_float() {
        let mut chain = AbsorbingChain::new(4);
        chain.set_absorbing(3);
        chain.add(0, 1, Ratio::new(1, 3));
        chain.add(0, 2, Ratio::new(2, 3));
        chain.add(1, 3, Ratio::one());
        chain.add(2, 0, Ratio::new(1, 2));
        chain.add(2, 3, Ratio::new(1, 2));
        let exact = chain.solve_exact().unwrap();
        let float = chain.solve(SolverBackend::SparseLu).unwrap();
        // Single absorbing state: everything absorbs there with prob 1.
        for row in &exact {
            assert_eq!(row[0], Ratio::one());
        }
        for t in 0..3 {
            assert!((float.prob(t, 3) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn self_loops_in_transient_states() {
        // State 0 self-loops with prob 1/2, exits to 1 with 1/2.
        let mut chain = AbsorbingChain::new(2);
        chain.set_absorbing(1);
        chain.add(0, 0, Ratio::new(1, 2));
        chain.add(0, 1, Ratio::new(1, 2));
        for backend in backends() {
            let sol = chain.solve(backend).unwrap();
            assert!((sol.prob(0, 1) - 1.0).abs() < 1e-9, "{backend:?}");
        }
        assert_eq!(chain.solve_exact().unwrap()[0][0], Ratio::one());
    }

    #[test]
    fn multiple_absorbing_states_partition_mass() {
        // 0 → {1 w.p. 1/4, 2 w.p. 3/4}, both absorbing.
        let mut chain = AbsorbingChain::new(3);
        chain.set_absorbing(1);
        chain.set_absorbing(2);
        chain.add(0, 1, Ratio::new(1, 4));
        chain.add(0, 2, Ratio::new(3, 4));
        let sol = chain.solve(SolverBackend::SparseLu).unwrap();
        assert!((sol.prob(0, 1) - 0.25).abs() < 1e-12);
        assert!((sol.prob(0, 2) - 0.75).abs() < 1e-12);
        let exact = chain.solve_exact().unwrap();
        assert_eq!(exact[0], vec![Ratio::new(1, 4), Ratio::new(3, 4)]);
    }

    #[test]
    fn absorbing_from_state_queries() {
        let mut chain = AbsorbingChain::new(2);
        chain.set_absorbing(0);
        chain.set_absorbing(1);
        let sol = chain.solve(SolverBackend::DenseLu).unwrap();
        assert_eq!(sol.prob(0, 0), 1.0);
        assert_eq!(sol.prob(0, 1), 0.0);
    }

    #[test]
    fn validate_rejects_leaky_rows() {
        let mut chain = AbsorbingChain::new(2);
        chain.set_absorbing(1);
        chain.add(0, 1, Ratio::new(1, 2));
        assert!(chain.validate().is_err());
    }

    #[test]
    fn rows_sum_to_one_property() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let n = rng.gen_range(3..12);
            let mut chain = AbsorbingChain::new(n);
            chain.set_absorbing(n - 1);
            for s in 0..n - 1 {
                // Random distribution over targets, with guaranteed path to
                // the absorbing state via weight on n-1.
                let mut weights: Vec<u32> = (0..n).map(|_| rng.gen_range(0..5)).collect();
                weights[n - 1] += 1;
                let total: u32 = weights.iter().sum();
                for (t, w) in weights.iter().enumerate() {
                    chain.add(s, t, Ratio::new(*w as i64, total as i64));
                }
            }
            chain.validate().unwrap();
            let sol = chain.solve(SolverBackend::SparseLu).unwrap();
            for s in 0..n - 1 {
                let sum: f64 = sol.row(s).iter().map(|(_, p)| p).sum();
                assert!((sum - 1.0).abs() < 1e-9, "row {s} sums to {sum}");
            }
        }
    }
}
