//! Absorbing Markov chain solver: the closed form of §4.
//!
//! Given an absorbing chain with transient states `T` and absorbing states
//! `A`, reorder the transition matrix as
//!
//! ```text
//!     [ I  0 ]
//!     [ R  Q ]
//! ```
//!
//! Then the absorption probabilities are `A = (I − Q)^{-1} R`
//! (equation 2 / Theorem 4.7). This module computes `A` with a pluggable
//! backend: the sparse LU (production), iterative Gauss–Seidel/Jacobi
//! (large, very sparse chains), a dense float LU, or *exact* rational
//! elimination (validation).

use crate::lump::{refine, Partition};
use crate::scc::condense;
use crate::{gauss_seidel, jacobi, DenseMatrix, IterativeOptions, LinalgError, SparseLu, Triplets};
use mcnetkat_num::Ratio;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Which linear-solver backend computes `(I − Q)^{-1} R`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SolverBackend {
    /// Sparse SCC-decomposed *exact* solve (the production path): the
    /// transient subgraph is condensed into its SCC DAG and absorption
    /// probabilities are back-propagated per component in reverse
    /// topological order, over exact rationals, never materialising a
    /// zero entry. See [`AbsorbingChain::solve_sparse_scc`].
    #[default]
    SparseScc,
    /// Sparse left-looking LU (the float UMFPACK-replacement path).
    SparseLu,
    /// Gauss–Seidel sweeps; good for huge, very sparse chains.
    GaussSeidel,
    /// Jacobi fixed-point iteration.
    Jacobi,
    /// Dense float LU; only sensible for small chains.
    DenseLu,
}

/// An absorbing Markov chain under construction.
///
/// States are `0..n`. Mark absorbing states with [`set_absorbing`]
/// (they implicitly self-loop with probability 1); add transitions out of
/// transient states with [`add`]. Rows of transient states must sum to 1.
///
/// [`set_absorbing`]: AbsorbingChain::set_absorbing
/// [`add`]: AbsorbingChain::add
///
/// # Examples
///
/// ```
/// use mcnetkat_linalg::{AbsorbingChain, SolverBackend};
/// use mcnetkat_num::Ratio;
///
/// // Gambler's ruin on {0,1,2} with fair coin: states 0 and 2 absorb.
/// let mut chain = AbsorbingChain::new(3);
/// chain.set_absorbing(0);
/// chain.set_absorbing(2);
/// chain.add(1, 0, Ratio::new(1, 2));
/// chain.add(1, 2, Ratio::new(1, 2));
/// let sol = chain.solve(SolverBackend::SparseLu).unwrap();
/// assert!((sol.prob(1, 0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct AbsorbingChain {
    n: usize,
    absorbing: Vec<bool>,
    transitions: Vec<(usize, usize, Ratio)>,
}

/// Absorption probabilities of an [`AbsorbingChain`].
#[derive(Clone, Debug)]
pub struct AbsorptionResult {
    n: usize,
    /// Map original state → compact transient index (or MAX).
    transient_ix: Vec<usize>,
    /// Map original state → compact absorbing index (or MAX).
    absorbing_ix: Vec<usize>,
    /// Original ids of absorbing states, in compact order.
    absorbing_states: Vec<usize>,
    /// `probs[t][a]`: probability that transient `t` absorbs in `a`
    /// (compact indices).
    probs: Vec<Vec<f64>>,
}

impl AbsorbingChain {
    /// Creates a chain with states `0..n` and no transitions.
    pub fn new(n: usize) -> Self {
        AbsorbingChain {
            n,
            absorbing: vec![false; n],
            transitions: Vec::new(),
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the chain has no states.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Marks state `s` as absorbing.
    pub fn set_absorbing(&mut self, s: usize) {
        self.absorbing[s] = true;
    }

    /// Returns `true` if `s` was marked absorbing.
    pub fn is_absorbing(&self, s: usize) -> bool {
        self.absorbing[s]
    }

    /// Adds a transition `from → to` with exact probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `from` was marked absorbing or `p` is not a probability.
    pub fn add(&mut self, from: usize, to: usize, p: Ratio) {
        assert!(!self.absorbing[from], "transition out of absorbing state");
        assert!(p.is_probability(), "invalid transition probability {p}");
        if !p.is_zero() {
            self.transitions.push((from, to, p));
        }
    }

    /// Checks that every transient row sums to exactly 1.
    pub fn validate(&self) -> Result<(), String> {
        let mut sums = vec![Ratio::zero(); self.n];
        for (from, _, p) in &self.transitions {
            sums[*from] += p;
        }
        for (s, sum) in sums.iter().enumerate() {
            if !self.absorbing[s] && *sum != Ratio::one() {
                return Err(format!("row {s} sums to {sum}, expected 1"));
            }
        }
        Ok(())
    }

    /// Computes the absorption probabilities `A = (I − Q)^{-1} R` with the
    /// chosen float backend.
    ///
    /// # Errors
    ///
    /// Propagates solver failures; a [`LinalgError::Singular`] typically
    /// means some transient state cannot reach any absorbing state (the
    /// chain is not actually absorbing).
    pub fn solve(&self, backend: SolverBackend) -> Result<AbsorptionResult, LinalgError> {
        if backend == SolverBackend::SparseScc {
            // The structured exact path; rounded to floats only here, at
            // the shared result type.
            return Ok(self.solve_sparse_scc(false)?.to_result());
        }
        let (transient_ix, absorbing_ix, transients, absorbing_states) = self.partition();
        let nt = transients.len();
        let na = absorbing_states.len();
        let mut q = Triplets::new(nt, nt);
        let mut r = vec![vec![0.0f64; na]; nt];
        for (from, to, p) in &self.transitions {
            let ti = transient_ix[*from];
            let pf = p.to_f64();
            if self.absorbing[*to] {
                r[ti][absorbing_ix[*to]] += pf;
            } else {
                q.push(ti, transient_ix[*to], pf);
            }
        }
        let qm = q.to_csr();
        let probs = match backend {
            SolverBackend::SparseScc => unreachable!("handled above"),
            SolverBackend::SparseLu => {
                // Factor (I - Q) once; back-solve one column of R at a time.
                let mut iq = Triplets::new(nt, nt);
                for i in 0..nt {
                    iq.push(i, i, 1.0);
                }
                for i in 0..nt {
                    for (j, v) in qm.row(i) {
                        iq.push(i, j, -v);
                    }
                }
                let lu = SparseLu::factor(&iq.to_csr())?;
                let mut cols = Vec::with_capacity(na);
                for a in 0..na {
                    let rhs: Vec<f64> = r.iter().take(nt).map(|row| row[a]).collect();
                    cols.push(lu.solve(&rhs));
                }
                transpose(cols, nt)
            }
            SolverBackend::GaussSeidel | SolverBackend::Jacobi => {
                let opts = IterativeOptions::default();
                let mut cols = Vec::with_capacity(na);
                for a in 0..na {
                    let rhs: Vec<f64> = r.iter().take(nt).map(|row| row[a]).collect();
                    let x = match backend {
                        SolverBackend::GaussSeidel => gauss_seidel(&qm, &rhs, opts)?,
                        _ => jacobi(&qm, &rhs, opts)?,
                    };
                    cols.push(x);
                }
                transpose(cols, nt)
            }
            SolverBackend::DenseLu => {
                let mut iq = DenseMatrix::<f64>::identity(nt);
                for i in 0..nt {
                    for (j, v) in qm.row(i) {
                        iq.set(i, j, iq.get(i, j) - v);
                    }
                }
                let rhs = DenseMatrix::from_rows(r.clone());
                let x = iq.solve_multi(&rhs)?;
                (0..nt)
                    .map(|i| (0..na).map(|j| *x.get(i, j)).collect())
                    .collect()
            }
        };
        Ok(AbsorptionResult {
            n: self.n,
            transient_ix,
            absorbing_ix,
            absorbing_states,
            probs,
        })
    }

    /// Computes the absorption probabilities exactly, over rationals, with
    /// dense Gaussian elimination. Exponentially slower than [`solve`] but
    /// bit-for-bit exact; used to validate the float pipeline.
    ///
    /// [`solve`]: AbsorbingChain::solve
    ///
    /// # Errors
    ///
    /// Same conditions as [`AbsorbingChain::solve`].
    pub fn solve_exact(&self) -> Result<Vec<Vec<Ratio>>, LinalgError> {
        let (transient_ix, absorbing_ix, transients, absorbing_states) = self.partition();
        let nt = transients.len();
        let na = absorbing_states.len();
        let mut iq = DenseMatrix::<Ratio>::identity(nt);
        let mut r = DenseMatrix::<Ratio>::zeros(nt, na);
        for (from, to, p) in &self.transitions {
            let ti = transient_ix[*from];
            if self.absorbing[*to] {
                let ai = absorbing_ix[*to];
                r.set(ti, ai, r.get(ti, ai).clone() + p.clone());
            } else {
                let tj = transient_ix[*to];
                iq.set(ti, tj, iq.get(ti, tj).clone() - p.clone());
            }
        }
        let x = iq.solve_multi(&r)?;
        Ok((0..nt)
            .map(|i| (0..na).map(|j| x.get(i, j).clone()).collect())
            .collect())
    }

    /// Computes the absorption probabilities **exactly and sparsely**: the
    /// transient subgraph is condensed into its SCC DAG
    /// ([`crate::scc::condense`]) and solved one component at a time in
    /// reverse topological order — every transition out of a component
    /// lands in an already-solved component or an absorbing state, so each
    /// block is an independent small exact elimination (most components of
    /// routing chains are singletons, which reduce to a single division).
    /// Zero entries are never materialised: rows are sparse maps from
    /// reachable absorbing states only.
    ///
    /// With `lumping` set, the chain is first quotiented by its coarsest
    /// ordinary lumping ([`crate::lump::refine`], absorbing states kept as
    /// external symbols): states with symmetric futures — isomorphic
    /// fat-tree pods — collapse to one representative before any linear
    /// algebra runs, and the solved rows are shared back to all members.
    /// Lumping is exact, so the result is identical either way.
    ///
    /// # Errors
    ///
    /// [`LinalgError::Singular`] when some component has no outflow at all
    /// (its states are trapped and the chain is not absorbing); the same
    /// condition [`AbsorbingChain::solve_exact`] reports, detected
    /// per-component instead of at a global pivot.
    pub fn solve_sparse_scc(&self, lumping: bool) -> Result<SparseAbsorption, LinalgError> {
        self.solve_sparse_scc_impl(lumping, None, &mut || false)
    }

    /// [`AbsorbingChain::solve_sparse_scc`] with a cooperative
    /// interruption check, polled once per SCC of the (quotiented)
    /// transient graph — the unit of solver work, so a deadline or
    /// cancellation is honoured within one component's elimination.
    ///
    /// # Errors
    ///
    /// [`LinalgError::Interrupted`] as soon as `should_stop` returns
    /// `true`; otherwise as [`AbsorbingChain::solve_sparse_scc`].
    pub fn solve_sparse_scc_interruptible(
        &self,
        lumping: bool,
        should_stop: &mut dyn FnMut() -> bool,
    ) -> Result<SparseAbsorption, LinalgError> {
        self.solve_sparse_scc_impl(lumping, None, should_stop)
    }

    /// [`AbsorbingChain::solve_sparse_scc`] with an explicit lumping seed
    /// partition over the *transient ranks* (states in chain order, minus
    /// the absorbing ones). The seed is refined to stability, so any seed
    /// yields exactly the same probabilities — a finer seed only reduces
    /// how much the chain collapses. `None` seeds the trivial partition
    /// (maximal lumping).
    ///
    /// # Errors
    ///
    /// See [`AbsorbingChain::solve_sparse_scc`].
    ///
    /// # Panics
    ///
    /// Panics if a seed is provided whose length is not the number of
    /// transient states.
    pub fn solve_sparse_scc_seeded(
        &self,
        lumping: bool,
        seed: Option<&Partition>,
    ) -> Result<SparseAbsorption, LinalgError> {
        self.solve_sparse_scc_impl(lumping, seed, &mut || false)
    }

    fn solve_sparse_scc_impl(
        &self,
        lumping: bool,
        seed: Option<&Partition>,
        should_stop: &mut dyn FnMut() -> bool,
    ) -> Result<SparseAbsorption, LinalgError> {
        let (transient_ix, absorbing_ix, transients, absorbing_states) = self.partition();
        let nt = transients.len();
        // Sparse exact rows over compact ids: targets < nt are transient
        // ranks, nt + a is absorbing rank a (an "external symbol" to the
        // lumping — absorbing states are never merged).
        let mut rows: Vec<Vec<(usize, Ratio)>> = vec![Vec::new(); nt];
        for (from, to, p) in &self.transitions {
            let t = transient_ix[*from];
            let target = if self.absorbing[*to] {
                nt + absorbing_ix[*to]
            } else {
                transient_ix[*to]
            };
            rows[t].push((target, p.clone()));
        }
        for row in &mut rows {
            merge_row(row);
        }

        // Optional symmetry quotient.
        let part = if lumping {
            match seed {
                Some(s) => refine(&rows, s),
                None => refine(&rows, &Partition::trivial(nt)),
            }
        } else {
            Partition::discrete(nt)
        };
        let nb = part.num_blocks;
        let mut rep = vec![usize::MAX; nb];
        for t in (0..nt).rev() {
            rep[part.block_of[t]] = t;
        }
        let qrows: Vec<Vec<(usize, Ratio)>> = (0..nb)
            .map(|b| {
                let mut row: Vec<(usize, Ratio)> = rows[rep[b]]
                    .iter()
                    .map(|(t, p)| {
                        let target = if *t < nt {
                            part.block_of[*t]
                        } else {
                            nb + (*t - nt)
                        };
                        (target, p.clone())
                    })
                    .collect();
                merge_row(&mut row);
                row
            })
            .collect();

        // Condense the (quotient) transient graph and solve per component
        // in emission order — reverse topological, so every external
        // transient target is already solved.
        let succ: Vec<Vec<usize>> = qrows
            .iter()
            .map(|row| {
                row.iter()
                    .filter(|(t, _)| *t < nb)
                    .map(|(t, _)| *t)
                    .collect()
            })
            .collect();
        let cond = condense(nb, &succ);
        let mut solved: Vec<Option<Vec<(usize, Ratio)>>> = vec![None; nb];
        for comp in &cond.components {
            if should_stop() {
                return Err(LinalgError::Interrupted);
            }
            solve_component(comp, &qrows, nb, &mut solved)?;
        }

        // Share each block's row back to all members.
        let rows = (0..nt)
            .map(|t| solved[part.block_of[t]].clone().expect("component solved"))
            .collect();
        Ok(SparseAbsorption {
            n: self.n,
            transient_ix,
            absorbing_ix,
            absorbing_states,
            rows,
            lumped_blocks: nb,
            scc_count: cond.len(),
        })
    }

    fn partition(&self) -> (Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>) {
        let mut transient_ix = vec![usize::MAX; self.n];
        let mut absorbing_ix = vec![usize::MAX; self.n];
        let mut transients = Vec::new();
        let mut absorbing_states = Vec::new();
        for s in 0..self.n {
            if self.absorbing[s] {
                absorbing_ix[s] = absorbing_states.len();
                absorbing_states.push(s);
            } else {
                transient_ix[s] = transients.len();
                transients.push(s);
            }
        }
        (transient_ix, absorbing_ix, transients, absorbing_states)
    }
}

fn transpose(cols: Vec<Vec<f64>>, nt: usize) -> Vec<Vec<f64>> {
    let na = cols.len();
    (0..nt)
        .map(|t| (0..na).map(|a| cols[a][t]).collect())
        .collect()
}

/// Sorts a sparse row by target, sums duplicate targets, drops zeros.
fn merge_row(row: &mut Vec<(usize, Ratio)>) {
    row.sort_unstable_by_key(|(t, _)| *t);
    let mut out: Vec<(usize, Ratio)> = Vec::with_capacity(row.len());
    for (t, p) in row.drain(..) {
        match out.last_mut() {
            Some((pt, pp)) if *pt == t => *pp += &p,
            _ => out.push((t, p)),
        }
    }
    out.retain(|(_, p)| !p.is_zero());
    *row = out;
}

/// Solves one SCC of the (quotient) transient graph, writing each member's
/// sparse absorption row into `solved`. `comp`'s external transient
/// successors are already solved (reverse topological processing order);
/// targets `>= nb` in `qrows` are absorbing ranks.
fn solve_component(
    comp: &[usize],
    qrows: &[Vec<(usize, Ratio)>],
    nb: usize,
    solved: &mut [Option<Vec<(usize, Ratio)>>],
) -> Result<(), LinalgError> {
    if let [s] = comp {
        // Singleton (the overwhelmingly common case on routing chains —
        // shortest-path forwarding is a DAG): fold already-solved
        // successors and absorbing hits into one sparse row, then divide
        // out the self-loop mass.
        let s = *s;
        let mut selfp = Ratio::zero();
        let mut base: BTreeMap<usize, Ratio> = BTreeMap::new();
        for (t, p) in &qrows[s] {
            if *t == s {
                selfp += p;
            } else if *t >= nb {
                *base.entry(*t - nb).or_insert_with(Ratio::zero) += p;
            } else {
                let srow = solved[*t].as_ref().expect("successor SCC solved first");
                for (a, q) in srow {
                    *base.entry(*a).or_insert_with(Ratio::zero) += &(p * q);
                }
            }
        }
        let keep = &Ratio::one() - &selfp;
        if keep.is_zero() {
            // All mass stays put forever: (I − Q) has a zero row, exactly
            // the Singular case the dense elimination reports.
            return Err(LinalgError::Singular(s));
        }
        let inv = keep.recip();
        solved[s] = Some(
            base.into_iter()
                .map(|(a, p)| (a, &p * &inv))
                .filter(|(_, p)| !p.is_zero())
                .collect(),
        );
        return Ok(());
    }

    // A genuine cycle cluster: solve (I − Q_C) X = B_C exactly, with
    // columns only for the absorbing states the component actually
    // reaches.
    let k = comp.len();
    let pos: HashMap<usize, usize> = comp.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut a = DenseMatrix::<Ratio>::identity(k);
    let mut bases: Vec<BTreeMap<usize, Ratio>> = vec![BTreeMap::new(); k];
    for (li, &s) in comp.iter().enumerate() {
        for (t, p) in &qrows[s] {
            if *t >= nb {
                *bases[li].entry(*t - nb).or_insert_with(Ratio::zero) += p;
            } else if let Some(&lj) = pos.get(t) {
                let cur = a.get(li, lj).clone();
                a.set(li, lj, &cur - p);
            } else {
                let srow = solved[*t].as_ref().expect("successor SCC solved first");
                for (aix, q) in srow {
                    *bases[li].entry(*aix).or_insert_with(Ratio::zero) += &(p * q);
                }
            }
        }
    }
    let cols: Vec<usize> = bases
        .iter()
        .flat_map(|b| b.keys().copied())
        .collect::<BTreeSet<usize>>()
        .into_iter()
        .collect();
    if cols.is_empty() {
        // The component reaches nothing outside itself: trapped, singular.
        return Err(LinalgError::Singular(comp[0]));
    }
    let col_ix: HashMap<usize, usize> = cols.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let mut rhs = DenseMatrix::<Ratio>::zeros(k, cols.len());
    for (li, base) in bases.iter().enumerate() {
        for (aix, p) in base {
            rhs.set(li, col_ix[aix], p.clone());
        }
    }
    let x = a.solve_multi(&rhs)?;
    for (li, &s) in comp.iter().enumerate() {
        solved[s] = Some(
            cols.iter()
                .enumerate()
                .filter_map(|(ci, &aix)| {
                    let p = x.get(li, ci);
                    (!p.is_zero()).then(|| (aix, p.clone()))
                })
                .collect(),
        );
    }
    Ok(())
}

/// Exact, sparse absorption probabilities from
/// [`AbsorbingChain::solve_sparse_scc`]: each transient state's row holds
/// only the absorbing states it actually reaches, as exact rationals.
#[derive(Clone, Debug)]
pub struct SparseAbsorption {
    n: usize,
    transient_ix: Vec<usize>,
    absorbing_ix: Vec<usize>,
    absorbing_states: Vec<usize>,
    /// `rows[t]`: sorted `(absorbing rank, probability)` pairs, zero
    /// entries omitted.
    rows: Vec<Vec<(usize, Ratio)>>,
    lumped_blocks: usize,
    scc_count: usize,
}

impl SparseAbsorption {
    /// Exact probability that `from` (original id) absorbs in `to`
    /// (original id). For an absorbing `from`, 1 iff `from == to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not absorbing or ids are out of range.
    pub fn prob(&self, from: usize, to: usize) -> Ratio {
        assert!(from < self.n && to < self.n, "state out of range");
        let a = self.absorbing_ix[to];
        assert!(a != usize::MAX, "target state {to} is not absorbing");
        if self.transient_ix[from] == usize::MAX {
            return if from == to {
                Ratio::one()
            } else {
                Ratio::zero()
            };
        }
        self.rows[self.transient_ix[from]]
            .iter()
            .find_map(|(ra, p)| (*ra == a).then(|| p.clone()))
            .unwrap_or_else(Ratio::zero)
    }

    /// The sparse row of transient rank `t` as `(absorbing rank, prob)`.
    pub fn sparse_row(&self, t: usize) -> &[(usize, Ratio)] {
        &self.rows[t]
    }

    /// The absorbing states (original ids) in rank order.
    pub fn absorbing_states(&self) -> &[usize] {
        &self.absorbing_states
    }

    /// Number of transient rows.
    pub fn num_transient(&self) -> usize {
        self.rows.len()
    }

    /// Stored non-zero entries across all rows.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Blocks after symmetry lumping (equals the transient count when
    /// lumping was off or found no symmetry).
    pub fn lumped_blocks(&self) -> usize {
        self.lumped_blocks
    }

    /// Components of the (quotiented) transient SCC DAG.
    pub fn scc_count(&self) -> usize {
        self.scc_count
    }

    /// Densifies into the `transient rank × absorbing rank` matrix of
    /// [`AbsorbingChain::solve_exact`] — for differential tests; the
    /// production path consumes [`SparseAbsorption::sparse_row`] directly.
    pub fn to_dense(&self) -> Vec<Vec<Ratio>> {
        let na = self.absorbing_states.len();
        self.rows
            .iter()
            .map(|row| {
                let mut dense = vec![Ratio::zero(); na];
                for (a, p) in row {
                    dense[*a] = p.clone();
                }
                dense
            })
            .collect()
    }

    /// Rounds into the float [`AbsorptionResult`] shared by every
    /// [`SolverBackend`].
    pub fn to_result(&self) -> AbsorptionResult {
        AbsorptionResult {
            n: self.n,
            transient_ix: self.transient_ix.clone(),
            absorbing_ix: self.absorbing_ix.clone(),
            absorbing_states: self.absorbing_states.clone(),
            probs: self
                .to_dense()
                .into_iter()
                .map(|row| row.into_iter().map(|p| p.to_f64()).collect())
                .collect(),
        }
    }
}

impl AbsorptionResult {
    /// Probability that transient state `from` (original id) is absorbed in
    /// absorbing state `to` (original id).
    ///
    /// For an absorbing `from`, returns 1 if `from == to` and 0 otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not absorbing or ids are out of range.
    pub fn prob(&self, from: usize, to: usize) -> f64 {
        assert!(from < self.n && to < self.n, "state out of range");
        let a = self.absorbing_ix[to];
        assert!(a != usize::MAX, "target state {to} is not absorbing");
        if self.transient_ix[from] == usize::MAX {
            return if from == to { 1.0 } else { 0.0 };
        }
        self.probs[self.transient_ix[from]][a]
    }

    /// The absorbing states (original ids) in column order.
    pub fn absorbing_states(&self) -> &[usize] {
        &self.absorbing_states
    }

    /// The full absorption row for `from` as `(absorbing_state, prob)`.
    pub fn row(&self, from: usize) -> Vec<(usize, f64)> {
        self.absorbing_states
            .iter()
            .map(|&a| (a, self.prob(from, a)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> [SolverBackend; 5] {
        [
            SolverBackend::SparseScc,
            SolverBackend::SparseLu,
            SolverBackend::GaussSeidel,
            SolverBackend::Jacobi,
            SolverBackend::DenseLu,
        ]
    }

    #[test]
    fn sparse_scc_matches_exact_on_cyclic_chain() {
        // 0 ↔ 2 cycle feeding absorbing 3; exercises a non-singleton SCC.
        let mut chain = AbsorbingChain::new(4);
        chain.set_absorbing(3);
        chain.add(0, 1, Ratio::new(1, 3));
        chain.add(0, 2, Ratio::new(2, 3));
        chain.add(1, 3, Ratio::one());
        chain.add(2, 0, Ratio::new(1, 2));
        chain.add(2, 3, Ratio::new(1, 2));
        let exact = chain.solve_exact().unwrap();
        for lumping in [false, true] {
            let sparse = chain.solve_sparse_scc(lumping).unwrap();
            assert_eq!(sparse.to_dense(), exact, "lumping={lumping}");
        }
    }

    #[test]
    fn sparse_scc_detects_trapped_states() {
        // 0 → 1 → 0 with no exit: not an absorbing chain.
        let mut chain = AbsorbingChain::new(3);
        chain.set_absorbing(2);
        chain.add(0, 1, Ratio::one());
        chain.add(1, 0, Ratio::one());
        assert!(matches!(
            chain.solve_sparse_scc(false),
            Err(LinalgError::Singular(_))
        ));
        // Self-loop with probability 1 is the singleton flavour.
        let mut chain = AbsorbingChain::new(2);
        chain.set_absorbing(1);
        chain.add(0, 0, Ratio::one());
        assert!(matches!(
            chain.solve_sparse_scc(false),
            Err(LinalgError::Singular(_))
        ));
    }

    #[test]
    fn interruptible_solve_stops_on_request() {
        let mut chain = AbsorbingChain::new(3);
        chain.set_absorbing(2);
        chain.add(0, 1, Ratio::one());
        chain.add(1, 2, Ratio::one());
        assert!(matches!(
            chain.solve_sparse_scc_interruptible(false, &mut || true),
            Err(LinalgError::Interrupted)
        ));
        // A check that never fires leaves the solve untouched.
        let sol = chain
            .solve_sparse_scc_interruptible(false, &mut || false)
            .unwrap();
        assert_eq!(sol.prob(0, 2), Ratio::one());
    }

    #[test]
    fn lumping_collapses_symmetric_branches() {
        // Two isomorphic branches from a fork: 1 and 2 lump.
        let mut chain = AbsorbingChain::new(4);
        chain.set_absorbing(3);
        chain.add(0, 1, Ratio::new(1, 2));
        chain.add(0, 2, Ratio::new(1, 2));
        chain.add(1, 3, Ratio::one());
        chain.add(2, 3, Ratio::one());
        let sparse = chain.solve_sparse_scc(true).unwrap();
        assert!(
            sparse.lumped_blocks() < 3,
            "expected symmetric states to lump"
        );
        assert_eq!(sparse.prob(0, 3), Ratio::one());
        assert_eq!(sparse.to_dense(), chain.solve_exact().unwrap());
    }

    #[test]
    fn gamblers_ruin_all_backends() {
        // States 0..=4; 0 and 4 absorb; fair coin. Classic result:
        // P(absorb at 4 | start i) = i/4.
        for backend in backends() {
            let mut chain = AbsorbingChain::new(5);
            chain.set_absorbing(0);
            chain.set_absorbing(4);
            for i in 1..4 {
                chain.add(i, i - 1, Ratio::new(1, 2));
                chain.add(i, i + 1, Ratio::new(1, 2));
            }
            chain.validate().unwrap();
            let sol = chain.solve(backend).unwrap();
            for i in 1..4 {
                assert!(
                    (sol.prob(i, 4) - i as f64 / 4.0).abs() < 1e-9,
                    "{backend:?} start {i}"
                );
                assert!((sol.prob(i, 0) - (1.0 - i as f64 / 4.0)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn exact_matches_float() {
        let mut chain = AbsorbingChain::new(4);
        chain.set_absorbing(3);
        chain.add(0, 1, Ratio::new(1, 3));
        chain.add(0, 2, Ratio::new(2, 3));
        chain.add(1, 3, Ratio::one());
        chain.add(2, 0, Ratio::new(1, 2));
        chain.add(2, 3, Ratio::new(1, 2));
        let exact = chain.solve_exact().unwrap();
        let float = chain.solve(SolverBackend::SparseLu).unwrap();
        // Single absorbing state: everything absorbs there with prob 1.
        for row in &exact {
            assert_eq!(row[0], Ratio::one());
        }
        for t in 0..3 {
            assert!((float.prob(t, 3) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn self_loops_in_transient_states() {
        // State 0 self-loops with prob 1/2, exits to 1 with 1/2.
        let mut chain = AbsorbingChain::new(2);
        chain.set_absorbing(1);
        chain.add(0, 0, Ratio::new(1, 2));
        chain.add(0, 1, Ratio::new(1, 2));
        for backend in backends() {
            let sol = chain.solve(backend).unwrap();
            assert!((sol.prob(0, 1) - 1.0).abs() < 1e-9, "{backend:?}");
        }
        assert_eq!(chain.solve_exact().unwrap()[0][0], Ratio::one());
    }

    #[test]
    fn multiple_absorbing_states_partition_mass() {
        // 0 → {1 w.p. 1/4, 2 w.p. 3/4}, both absorbing.
        let mut chain = AbsorbingChain::new(3);
        chain.set_absorbing(1);
        chain.set_absorbing(2);
        chain.add(0, 1, Ratio::new(1, 4));
        chain.add(0, 2, Ratio::new(3, 4));
        let sol = chain.solve(SolverBackend::SparseLu).unwrap();
        assert!((sol.prob(0, 1) - 0.25).abs() < 1e-12);
        assert!((sol.prob(0, 2) - 0.75).abs() < 1e-12);
        let exact = chain.solve_exact().unwrap();
        assert_eq!(exact[0], vec![Ratio::new(1, 4), Ratio::new(3, 4)]);
    }

    #[test]
    fn absorbing_from_state_queries() {
        let mut chain = AbsorbingChain::new(2);
        chain.set_absorbing(0);
        chain.set_absorbing(1);
        let sol = chain.solve(SolverBackend::DenseLu).unwrap();
        assert_eq!(sol.prob(0, 0), 1.0);
        assert_eq!(sol.prob(0, 1), 0.0);
    }

    #[test]
    fn validate_rejects_leaky_rows() {
        let mut chain = AbsorbingChain::new(2);
        chain.set_absorbing(1);
        chain.add(0, 1, Ratio::new(1, 2));
        assert!(chain.validate().is_err());
    }

    #[test]
    fn rows_sum_to_one_property() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let n = rng.gen_range(3..12);
            let mut chain = AbsorbingChain::new(n);
            chain.set_absorbing(n - 1);
            for s in 0..n - 1 {
                // Random distribution over targets, with guaranteed path to
                // the absorbing state via weight on n-1.
                let mut weights: Vec<u32> = (0..n).map(|_| rng.gen_range(0..5)).collect();
                weights[n - 1] += 1;
                let total: u32 = weights.iter().sum();
                for (t, w) in weights.iter().enumerate() {
                    chain.add(s, t, Ratio::new(*w as i64, total as i64));
                }
            }
            chain.validate().unwrap();
            let sol = chain.solve(SolverBackend::SparseLu).unwrap();
            for s in 0..n - 1 {
                let sum: f64 = sol.row(s).iter().map(|(_, p)| p).sum();
                assert!((sum - 1.0).abs() < 1e-9, "row {s} sums to {sum}");
            }
        }
    }
}
