//! Iterative solvers for `(I − Q) x = b` with substochastic `Q`.
//!
//! For absorbing chains the spectral radius of `Q` is strictly below one
//! (Lemma B.3 of the paper), so the fixed-point iteration `x ← Q x + b`
//! converges geometrically. Jacobi is exactly that iteration; Gauss–Seidel
//! reuses fresh values within a sweep and typically converges about twice
//! as fast.

use crate::{CsrMatrix, LinalgError};

/// Convergence controls for the iterative solvers.
#[derive(Clone, Copy, Debug)]
pub struct IterativeOptions {
    /// Give up after this many sweeps.
    pub max_iters: usize,
    /// Stop when the ∞-norm of the update falls below this.
    pub tolerance: f64,
}

impl Default for IterativeOptions {
    fn default() -> Self {
        IterativeOptions {
            max_iters: 100_000,
            tolerance: 1e-12,
        }
    }
}

/// Solves `(I − Q) x = b` by Jacobi iteration `x ← Q x + b`.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if shapes disagree and
/// [`LinalgError::NoConvergence`] when the budget runs out.
pub fn jacobi(q: &CsrMatrix, b: &[f64], opts: IterativeOptions) -> Result<Vec<f64>, LinalgError> {
    if q.nrows() != q.ncols() || q.nrows() != b.len() {
        return Err(LinalgError::DimensionMismatch);
    }
    let mut x = b.to_vec();
    for it in 0..opts.max_iters {
        let qx = q.matvec(&x);
        let mut delta = 0.0f64;
        for i in 0..x.len() {
            let next = qx[i] + b[i];
            delta = delta.max((next - x[i]).abs());
            x[i] = next;
        }
        if delta <= opts.tolerance {
            return Ok(x);
        }
        if it + 1 == opts.max_iters {
            return Err(LinalgError::NoConvergence {
                iterations: opts.max_iters,
                residual: delta,
            });
        }
    }
    Ok(x)
}

/// Solves `(I − Q) x = b` by Gauss–Seidel sweeps.
///
/// # Errors
///
/// Same conditions as [`jacobi`].
pub fn gauss_seidel(
    q: &CsrMatrix,
    b: &[f64],
    opts: IterativeOptions,
) -> Result<Vec<f64>, LinalgError> {
    if q.nrows() != q.ncols() || q.nrows() != b.len() {
        return Err(LinalgError::DimensionMismatch);
    }
    let n = b.len();
    let mut x = b.to_vec();
    for it in 0..opts.max_iters {
        let mut delta = 0.0f64;
        for i in 0..n {
            // x_i = b_i + Σ_j Q_ij x_j, with the diagonal moved to the left:
            // (1 - Q_ii) x_i = b_i + Σ_{j≠i} Q_ij x_j.
            let mut acc = b[i];
            let mut diag = 0.0;
            for (j, v) in q.row(i) {
                if j == i {
                    diag = v;
                } else {
                    acc += v * x[j];
                }
            }
            let denom = 1.0 - diag;
            let next = if denom.abs() < 1e-15 {
                acc
            } else {
                acc / denom
            };
            delta = delta.max((next - x[i]).abs());
            x[i] = next;
        }
        if delta <= opts.tolerance {
            return Ok(x);
        }
        if it + 1 == opts.max_iters {
            return Err(LinalgError::NoConvergence {
                iterations: opts.max_iters,
                residual: delta,
            });
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplets;

    fn chain_q(n: usize, p: f64) -> CsrMatrix {
        // Random-walk-style Q: state i moves to i+1 with prob p (last state
        // leaks to an absorbing state outside Q).
        let mut t = Triplets::new(n, n);
        for i in 0..n.saturating_sub(1) {
            t.push(i, i + 1, p);
        }
        t.to_csr()
    }

    #[test]
    fn jacobi_solves_chain() {
        let q = chain_q(4, 0.5);
        // (I-Q)x = b with b = reach-probability into absorbing state.
        let b = vec![0.5, 0.5, 0.5, 1.0];
        let x = jacobi(&q, &b, IterativeOptions::default()).unwrap();
        // x_i = b_i + 0.5 x_{i+1}
        assert!((x[3] - 1.0).abs() < 1e-10);
        assert!((x[2] - 1.0).abs() < 1e-10);
        assert!((x[0] - (0.5 + 0.5 * x[1])).abs() < 1e-10);
    }

    #[test]
    fn gauss_seidel_matches_jacobi() {
        let q = chain_q(10, 0.9);
        let b: Vec<f64> = (0..10).map(|i| 0.1 * (i as f64 + 1.0)).collect();
        let xj = jacobi(&q, &b, IterativeOptions::default()).unwrap();
        let xg = gauss_seidel(&q, &b, IterativeOptions::default()).unwrap();
        for (a, b) in xj.iter().zip(&xg) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn gauss_seidel_handles_self_loops() {
        // Q with a diagonal entry: state 0 self-loops with prob 0.5.
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 0.5);
        t.push(0, 1, 0.25);
        let q = t.to_csr();
        let b = vec![0.25, 1.0];
        let x = gauss_seidel(&q, &b, IterativeOptions::default()).unwrap();
        // x1 = 1; x0 = (0.25 + 0.25*1) / (1 - 0.5) = 1.
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reports_no_convergence_for_tiny_budget() {
        let q = chain_q(50, 0.999);
        let b = vec![0.001; 50];
        let err = jacobi(
            &q,
            &b,
            IterativeOptions {
                max_iters: 3,
                tolerance: 1e-15,
            },
        );
        assert!(matches!(err, Err(LinalgError::NoConvergence { .. })));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let q = chain_q(3, 0.5);
        assert!(matches!(
            jacobi(&q, &[1.0, 2.0], IterativeOptions::default()),
            Err(LinalgError::DimensionMismatch)
        ));
    }
}
