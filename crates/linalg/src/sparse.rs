//! Sparse matrices in triplet and compressed-sparse-row form.

/// A coordinate-format builder for sparse matrices.
///
/// Duplicate entries are summed when compressed, which is convenient when
/// accumulating transition probabilities.
#[derive(Clone, Debug, Default)]
pub struct Triplets {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Triplets {
    /// Creates an empty `rows × cols` builder.
    pub fn new(rows: usize, cols: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `v` to entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "triplet out of bounds");
        if v != 0.0 {
            self.entries.push((i, j, v));
        }
    }

    /// Number of raw (pre-compression) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries were pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compresses into CSR form, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(i, j, _)| (i, j));
        // Merge duplicates (same row and column) by summing.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(entries.len());
        for (i, j, v) in entries {
            match merged.last_mut() {
                Some((pi, pj, pv)) if *pi == i && *pj == j => *pv += v,
                _ => merged.push((i, j, v)),
            }
        }
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_ix = Vec::with_capacity(merged.len());
        let mut values = Vec::with_capacity(merged.len());
        row_ptr.push(0);
        let mut cur_row = 0;
        for (i, j, v) in merged {
            while cur_row < i {
                row_ptr.push(col_ix.len());
                cur_row += 1;
            }
            col_ix.push(j);
            values.push(v);
        }
        while cur_row < self.rows {
            row_ptr.push(col_ix.len());
            cur_row += 1;
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_ix,
            values,
        }
    }
}

/// A compressed-sparse-row matrix of `f64`.
///
/// # Examples
///
/// ```
/// use mcnetkat_linalg::Triplets;
/// let mut t = Triplets::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(1, 0, 0.5);
/// t.push(1, 1, 0.5);
/// let m = t.to_csr();
/// assert_eq!(m.matvec(&[1.0, 2.0]), vec![1.0, 1.5]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_ix: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the non-zeros of row `i` as `(col, value)`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_ix[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Reads entry `(i, j)` (zero if not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row(i)
            .find_map(|(c, v)| (c == j).then_some(v))
            .unwrap_or(0.0)
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).map(|(j, v)| v * x[j]).sum())
            .collect()
    }

    /// Transposed matrix–vector product `Aᵀ x`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_transpose dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            for (j, v) in self.row(i) {
                out[j] += v * xi;
            }
        }
        out
    }

    /// Converts to column-major arrays `(col_ptr, row_ix, values)` — the
    /// CSC view consumed by the sparse LU.
    pub fn to_csc(&self) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        let mut counts = vec![0usize; self.cols + 1];
        for &j in &self.col_ix {
            counts[j + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let col_ptr = counts.clone();
        let mut next = counts;
        let mut row_ix = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                let slot = next[j];
                row_ix[slot] = i;
                values[slot] = v;
                next[j] += 1;
            }
        }
        (col_ptr, row_ix, values)
    }

    /// Maximum absolute row sum (the induced ∞-norm).
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).map(|(_, v)| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_compress_and_sum_duplicates() {
        let mut t = Triplets::new(3, 3);
        t.push(0, 1, 0.25);
        t.push(0, 1, 0.25);
        t.push(2, 0, 1.0);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 0.5);
        assert_eq!(m.get(2, 0), 1.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn empty_rows_are_handled() {
        let t = Triplets::new(4, 4);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.matvec(&[1.0; 4]), vec![0.0; 4]);
    }

    #[test]
    fn matvec_matches_dense() {
        let mut t = Triplets::new(2, 3);
        t.push(0, 0, 1.0);
        t.push(0, 2, 2.0);
        t.push(1, 1, 3.0);
        let m = t.to_csr();
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
        assert_eq!(m.matvec_transpose(&[1.0, 1.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn csc_round_trip() {
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        t.push(1, 2, 3.0);
        t.push(2, 1, 4.0);
        let m = t.to_csr();
        let (col_ptr, row_ix, values) = m.to_csc();
        // Column 0 holds rows {0, 1}.
        assert_eq!(&row_ix[col_ptr[0]..col_ptr[1]], &[0, 1]);
        assert_eq!(&values[col_ptr[0]..col_ptr[1]], &[1.0, 2.0]);
        // Column 1 holds row {2}.
        assert_eq!(&row_ix[col_ptr[1]..col_ptr[2]], &[2]);
        assert_eq!(&values[col_ptr[1]..col_ptr[2]], &[4.0]);
    }

    #[test]
    fn inf_norm_is_max_row_sum() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 0.5);
        t.push(0, 1, 0.5);
        t.push(1, 0, -2.0);
        let m = t.to_csr();
        assert_eq!(m.inf_norm(), 2.0);
    }
}
