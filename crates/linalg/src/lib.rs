//! Dense and sparse linear algebra for McNetKAT.
//!
//! The paper's native backend solves `(I − Q)X = R` for the absorption
//! probabilities of the small-step Markov chain (§4, equation 2) using the
//! UMFPACK sparse LU library. This crate is the from-scratch substitute:
//!
//! * generic dense matrices and Gaussian elimination over any [`Scalar`]
//!   (used with `f64` *and* exact [`mcnetkat_num::Ratio`], so tests can
//!   cross-check the float pipeline against exact arithmetic),
//! * CSR sparse matrices built from triplets,
//! * a sparse left-looking LU factorisation with partial pivoting
//!   (Gilbert–Peierls), and
//! * iterative solvers (Jacobi, Gauss–Seidel) that exploit the
//!   substochasticity of `Q`.
//!
//! The [`absorbing`] module puts these together into the absorbing-chain
//! solver used by the FDD backend for `while` loops.

#![forbid(unsafe_code)]

pub mod absorbing;
mod dense;
mod iterative;
mod lu;
pub mod lump;
mod scalar;
pub mod scc;
mod sparse;

pub use absorbing::{AbsorbingChain, AbsorptionResult, SolverBackend, SparseAbsorption};
pub use dense::DenseMatrix;
pub use iterative::{gauss_seidel, jacobi, IterativeOptions};
pub use lu::SparseLu;
pub use lump::{is_lumpable, refine, Partition};
pub use scalar::Scalar;
pub use scc::{condense, Condensation};
pub use sparse::{CsrMatrix, Triplets};

/// Errors produced by solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The matrix is singular (or numerically singular) at the given pivot.
    Singular(usize),
    /// An iterative method failed to converge within its budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
    /// Dimension mismatch between operands.
    DimensionMismatch,
    /// The caller's interruption check asked the solver to stop early
    /// (cooperative cancellation / deadline budgets — see
    /// [`AbsorbingChain::solve_sparse_scc_interruptible`]). The partial
    /// solve is discarded; the caller maps this back onto its own typed
    /// abort error.
    Interrupted,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular(k) => write!(f, "singular matrix at pivot {k}"),
            LinalgError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
            LinalgError::Interrupted => write!(f, "solve interrupted by caller"),
        }
    }
}

impl std::error::Error for LinalgError {}
