//! The scalar abstraction shared by dense elimination over floats and exact
//! rationals.

use mcnetkat_num::Ratio;

/// A field of scalars suitable for Gaussian elimination.
///
/// Implemented by `f64` (the production path, mirroring the paper's use of
/// 64-bit floats inside UMFPACK) and by [`Ratio`] (the exact path used to
/// validate the float results in tests).
pub trait Scalar: Clone + PartialEq + std::fmt::Debug {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// `self + other`.
    fn add(&self, other: &Self) -> Self;
    /// `self - other`.
    fn sub(&self, other: &Self) -> Self;
    /// `self * other`.
    fn mul(&self, other: &Self) -> Self;
    /// `self / other`.
    fn div(&self, other: &Self) -> Self;
    /// Whether the value may be used as a pivot.
    fn is_usable_pivot(&self) -> bool;
    /// A magnitude used for partial pivoting (larger is better).
    fn pivot_magnitude(&self) -> f64;
    /// Whether the value is exactly zero.
    fn is_zero(&self) -> bool;
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn div(&self, other: &Self) -> Self {
        self / other
    }
    fn is_usable_pivot(&self) -> bool {
        self.abs() > 1e-12
    }
    fn pivot_magnitude(&self) -> f64 {
        self.abs()
    }
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
}

impl Scalar for Ratio {
    fn zero() -> Self {
        Ratio::zero()
    }
    fn one() -> Self {
        Ratio::one()
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn div(&self, other: &Self) -> Self {
        self / other
    }
    fn is_usable_pivot(&self) -> bool {
        !Ratio::is_zero(self)
    }
    fn pivot_magnitude(&self) -> f64 {
        // Exact arithmetic prefers *small* representations, but correctness
        // only needs a non-zero pivot; use 1.0 for all non-zeros so the
        // search picks the first usable pivot.
        if Ratio::is_zero(self) {
            0.0
        } else {
            1.0
        }
    }
    fn is_zero(&self) -> bool {
        Ratio::is_zero(self)
    }
}
