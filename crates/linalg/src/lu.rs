//! Sparse LU factorisation (left-looking Gilbert–Peierls with partial
//! pivoting).
//!
//! This is the workhorse that replaces UMFPACK in the loop solver: it
//! factors the sparse system `(I − Q)` once and then back-solves for each
//! right-hand-side column of `R`.

use crate::{CsrMatrix, LinalgError};

/// A sparse LU factorisation `PA = LU`.
///
/// `L` is unit lower triangular (stored with *original* row indices and a
/// row permutation `pinv`), `U` is upper triangular in pivot order.
///
/// # Examples
///
/// ```
/// use mcnetkat_linalg::{SparseLu, Triplets};
/// let mut t = Triplets::new(2, 2);
/// t.push(0, 0, 4.0);
/// t.push(0, 1, 3.0);
/// t.push(1, 0, 6.0);
/// t.push(1, 1, 3.0);
/// let lu = SparseLu::factor(&t.to_csr()).unwrap();
/// let x = lu.solve(&[10.0, 12.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct SparseLu {
    n: usize,
    /// Column `k` of `L` below the diagonal: `(original_row, value)`.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Column `k` of `U` above the diagonal: `(pivot_row, value)`.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U` (the pivots).
    u_diag: Vec<f64>,
    /// `pinv[original_row] = pivot position`.
    pinv: Vec<usize>,
    /// `perm[pivot position] = original_row`.
    perm: Vec<usize>,
}

const UNPIVOTED: usize = usize::MAX;

impl SparseLu {
    /// Factors a square sparse matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for non-square input and
    /// [`LinalgError::Singular`] when no usable pivot is found.
    pub fn factor(a: &CsrMatrix) -> Result<SparseLu, LinalgError> {
        if a.nrows() != a.ncols() {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = a.nrows();
        let (col_ptr, row_ix, values) = a.to_csc();
        let mut lu = SparseLu {
            n,
            l_cols: Vec::with_capacity(n),
            u_cols: Vec::with_capacity(n),
            u_diag: Vec::with_capacity(n),
            pinv: vec![UNPIVOTED; n],
            perm: Vec::with_capacity(n),
        };
        // Dense workspaces reused across columns.
        let mut x = vec![0.0f64; n];
        let mut marked = vec![false; n];
        let mut pattern: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();
        // Topological order of the reachable set, computed by DFS.
        let mut topo: Vec<usize> = Vec::with_capacity(n);

        for k in 0..n {
            // --- Symbolic step: pattern of x = L \ A(:,k) --------------
            topo.clear();
            pattern.clear();
            for &i in &row_ix[col_ptr[k]..col_ptr[k + 1]] {
                if marked[i] {
                    continue;
                }
                // Iterative DFS from i through pivoted columns of L.
                dfs_stack.push((i, 0));
                marked[i] = true;
                while let Some(&(node, child)) = dfs_stack.last() {
                    let col = lu.pinv[node];
                    let next = if col == UNPIVOTED {
                        None
                    } else {
                        lu.l_cols[col].get(child).map(|&(r, _)| r)
                    };
                    match next {
                        Some(next_node) => {
                            dfs_stack.last_mut().unwrap().1 += 1;
                            if !marked[next_node] {
                                marked[next_node] = true;
                                dfs_stack.push((next_node, 0));
                            }
                        }
                        None => {
                            dfs_stack.pop();
                            topo.push(node);
                        }
                    }
                }
            }
            // DFS post-order gives reverse topological order.
            topo.reverse();
            pattern.extend_from_slice(&topo);

            // --- Numeric step ------------------------------------------
            for ix in col_ptr[k]..col_ptr[k + 1] {
                x[row_ix[ix]] = values[ix];
            }
            for &i in &pattern {
                let col = lu.pinv[i];
                if col == UNPIVOTED {
                    continue;
                }
                let xi = x[i];
                if xi != 0.0 {
                    for &(r, v) in &lu.l_cols[col] {
                        x[r] -= v * xi;
                    }
                }
            }

            // --- Pivot selection (partial pivoting) --------------------
            let mut pivot_row = UNPIVOTED;
            let mut pivot_mag = 0.0f64;
            for &i in &pattern {
                if lu.pinv[i] == UNPIVOTED && x[i].abs() > pivot_mag {
                    pivot_mag = x[i].abs();
                    pivot_row = i;
                }
            }
            if pivot_row == UNPIVOTED || pivot_mag < 1e-14 {
                return Err(LinalgError::Singular(k));
            }
            let pivot = x[pivot_row];

            // --- Harvest L and U columns -------------------------------
            let mut ucol = Vec::new();
            let mut lcol = Vec::new();
            for &i in &pattern {
                let v = x[i];
                x[i] = 0.0;
                marked[i] = false;
                if v == 0.0 {
                    continue;
                }
                match lu.pinv[i] {
                    UNPIVOTED => {
                        if i != pivot_row {
                            lcol.push((i, v / pivot));
                        }
                    }
                    up => ucol.push((up, v)),
                }
            }
            if x[pivot_row] != 0.0 {
                // pivot_row is always in `pattern`, cleared above; defensive.
                x[pivot_row] = 0.0;
            }
            lu.pinv[pivot_row] = k;
            lu.perm.push(pivot_row);
            lu.u_diag.push(pivot);
            lu.u_cols.push(ucol);
            lu.l_cols.push(lcol);
        }
        Ok(lu)
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` using the stored factorisation.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs dimension mismatch");
        // Forward solve L y = P b (y indexed in pivot space).
        let mut y = vec![0.0f64; self.n];
        for k in 0..self.n {
            y[k] += b[self.perm[k]];
            let yk = y[k];
            if yk != 0.0 {
                for &(orig_row, v) in &self.l_cols[k] {
                    y[self.pinv[orig_row]] -= v * yk;
                }
            }
        }
        // Back solve U x' = y, then un-permute columns (U's columns are in
        // original column order already; only rows were permuted).
        let mut xp = y;
        for k in (0..self.n).rev() {
            let xk = xp[k] / self.u_diag[k];
            xp[k] = xk;
            if xk != 0.0 {
                for &(row, v) in &self.u_cols[k] {
                    xp[row] -= v * xk;
                }
            }
        }
        xp
    }

    /// Solves for many right-hand sides, returning one solution per input.
    pub fn solve_many<'a, I>(&'a self, rhs: I) -> Vec<Vec<f64>>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        rhs.into_iter().map(|b| self.solve(b)).collect()
    }

    /// Fill-in statistic: stored non-zeros in `L + U`.
    pub fn nnz(&self) -> usize {
        self.l_cols.iter().map(Vec::len).sum::<usize>()
            + self.u_cols.iter().map(Vec::len).sum::<usize>()
            + self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplets;

    fn csr_from(entries: &[(usize, usize, f64)], n: usize) -> CsrMatrix {
        let mut t = Triplets::new(n, n);
        for &(i, j, v) in entries {
            t.push(i, j, v);
        }
        t.to_csr()
    }

    #[test]
    fn factors_identity() {
        let a = csr_from(&[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)], 3);
        let lu = SparseLu::factor(&a).unwrap();
        assert_eq!(lu.solve(&[3.0, 4.0, 5.0]), vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn solves_dense_system() {
        let a = csr_from(&[(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)], 2);
        let x = SparseLu::factor(&a).unwrap().solve(&[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = csr_from(&[(0, 1, 1.0), (1, 0, 2.0)], 2);
        let x = SparseLu::factor(&a).unwrap().solve(&[3.0, 4.0]);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reports_singularity() {
        let a = csr_from(&[(0, 0, 1.0), (1, 0, 2.0)], 2);
        assert!(matches!(
            SparseLu::factor(&a),
            Err(LinalgError::Singular(_))
        ));
    }

    #[test]
    fn random_systems_match_dense_solver() {
        use crate::DenseMatrix;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for trial in 0..20 {
            let n = 2 + (trial % 8);
            // Diagonally dominant ⇒ nonsingular.
            let mut entries = Vec::new();
            let mut dense_rows = vec![vec![0.0; n]; n];
            for (i, row) in dense_rows.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    if i == j || rng.gen_bool(0.4) {
                        let v: f64 = if i == j {
                            n as f64 + rng.gen_range(0.5..2.0)
                        } else {
                            rng.gen_range(-1.0..1.0)
                        };
                        entries.push((i, j, v));
                        *cell = v;
                    }
                }
            }
            let sparse = csr_from(&entries, n);
            let dense = DenseMatrix::from_rows(dense_rows);
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let xs = SparseLu::factor(&sparse).unwrap().solve(&b);
            let xd = dense.solve(&b).unwrap();
            for (a, b) in xs.iter().zip(&xd) {
                assert!((a - b).abs() < 1e-9, "trial {trial}: {xs:?} vs {xd:?}");
            }
        }
    }

    #[test]
    fn residual_is_tiny_on_absorbing_style_system() {
        // (I - Q) with Q substochastic, the shape the loop solver produces.
        let n = 50;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0 - 0.4 * ((i % 3) as f64) / 3.0 - 0.3);
            if i + 1 < n {
                t.push(i, i + 1, -0.3);
            }
        }
        let a = t.to_csr();
        let b = vec![1.0; n];
        let x = SparseLu::factor(&a).unwrap().solve(&b);
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-9);
        }
    }
}
