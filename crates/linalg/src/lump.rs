//! Exact ordinary lumping of Markov chains by partition refinement.
//!
//! A partition of the states is *ordinarily lumpable* when every pair of
//! states in a block has the same total transition probability into each
//! block (Kemeny–Snell). For an absorbing chain whose absorbing states are
//! kept in singleton blocks, states in a common lumpable block then have
//! identical absorption rows, so the solver only needs one representative
//! per block — on symmetric topologies (isomorphic fat-tree pods) this
//! collapses the chain by the symmetry factor before any linear algebra
//! runs.
//!
//! [`refine`] computes the coarsest lumpable partition refining a seed by
//! iterated signature splitting, entirely over exact [`Ratio`] arithmetic
//! (a float comparison could merge states that are only approximately
//! symmetric, silently changing the answer).

use mcnetkat_num::Ratio;
use std::collections::HashMap;

/// A partition of states `0..n` into numbered blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Map state → block id (block ids are `0..num_blocks`, dense).
    pub block_of: Vec<usize>,
    /// Number of blocks.
    pub num_blocks: usize,
}

impl Partition {
    /// The one-block partition (everything lumped).
    pub fn trivial(n: usize) -> Partition {
        Partition {
            block_of: vec![0; n],
            num_blocks: if n == 0 { 0 } else { 1 },
        }
    }

    /// The all-singletons partition (nothing lumped).
    pub fn discrete(n: usize) -> Partition {
        Partition {
            block_of: (0..n).collect(),
            num_blocks: n,
        }
    }

    /// Builds a partition from an arbitrary labelling, renumbering labels
    /// to dense block ids in first-appearance order.
    pub fn from_labels(labels: &[usize]) -> Partition {
        let mut renumber: HashMap<usize, usize> = HashMap::new();
        let block_of = labels
            .iter()
            .map(|&l| {
                let next = renumber.len();
                *renumber.entry(l).or_insert(next)
            })
            .collect();
        Partition {
            block_of,
            num_blocks: renumber.len(),
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.block_of.len()
    }

    /// Returns `true` if the partition covers no states.
    pub fn is_empty(&self) -> bool {
        self.block_of.is_empty()
    }

    /// The blocks as member lists (states in ascending order).
    pub fn blocks(&self) -> Vec<Vec<usize>> {
        let mut blocks = vec![Vec::new(); self.num_blocks];
        for (s, &b) in self.block_of.iter().enumerate() {
            blocks[b].push(s);
        }
        blocks
    }

    /// Returns `true` if every block of `self` lies inside a block of
    /// `other` (i.e. `self` refines `other`).
    pub fn refines(&self, other: &Partition) -> bool {
        assert_eq!(self.len(), other.len());
        let mut image: HashMap<usize, usize> = HashMap::new();
        self.block_of
            .iter()
            .zip(&other.block_of)
            .all(|(&b, &c)| *image.entry(b).or_insert(c) == c)
    }
}

/// The block-wise transition signature of one state: total probability
/// into each block (internal targets `< labels.len()`, mapped through
/// `labels`) or onto each *external symbol* (targets `>= labels.len()`,
/// e.g. absorbing states, which are never lumped). Sorted so equal
/// signatures compare equal.
fn signature(row: &[(usize, Ratio)], labels: &[usize]) -> Vec<(usize, usize, Ratio)> {
    let n = labels.len();
    let mut acc: HashMap<(usize, usize), Ratio> = HashMap::new();
    for (t, p) in row {
        if p.is_zero() {
            continue;
        }
        let key = if *t < n { (0, labels[*t]) } else { (1, *t - n) };
        *acc.entry(key).or_insert_with(Ratio::zero) += p;
    }
    let mut sig: Vec<(usize, usize, Ratio)> = acc
        .into_iter()
        .map(|((kind, ix), p)| (kind, ix, p))
        .collect();
    sig.sort_unstable_by_key(|&(kind, ix, _)| (kind, ix));
    sig
}

/// Computes the coarsest ordinarily lumpable partition refining `seed`.
///
/// `rows[s]` lists state `s`'s transitions `(target, probability)`;
/// targets `>= rows.len()` denote *external symbols* — fixed, never-lumped
/// sinks such as absorbing states — which every useful seed must already
/// distinguish from the lumped states (they are not part of the
/// partition). Duplicate targets are summed; zero entries are ignored.
///
/// The result always [`Partition::refines`] the seed and always satisfies
/// [`is_lumpable`]; seeding with [`Partition::trivial`] yields the
/// coarsest lumpable partition overall.
///
/// Refinement is worklist-driven: a block is re-examined only when some
/// member's successor changed block in the previous round, so the cost is
/// proportional to the splitting actually happening, not to
/// `rounds × states`. (The naive fixpoint recomputes every signature
/// every round — on a fat-tree chain that collapses 2360 states into ~27
/// blocks it costs more than the solve it is meant to save.)
///
/// # Panics
///
/// Panics if `seed.len() != rows.len()`.
pub fn refine(rows: &[Vec<(usize, Ratio)>], seed: &Partition) -> Partition {
    let n = rows.len();
    assert_eq!(seed.len(), n, "seed partition length mismatch");
    let seed = Partition::from_labels(&seed.block_of);
    if n == 0 {
        return seed;
    }

    // Predecessors: who must be re-examined when a state changes block.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (s, row) in rows.iter().enumerate() {
        for (t, _) in row {
            if *t < n {
                preds[*t].push(s);
            }
        }
    }

    let mut labels = seed.block_of;
    let mut next_label = seed.num_blocks;
    // Block membership, maintained incrementally across splits.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (s, &b) in labels.iter().enumerate() {
        members[b].push(s);
    }
    let mut dirty: Vec<usize> = (0..next_label).collect();
    let mut queued = vec![false; n];
    for &b in &dirty {
        queued[b] = true;
    }

    while let Some(b) = dirty.pop() {
        queued[b] = false;
        if members[b].len() <= 1 {
            continue;
        }
        // Group the block's members by signature w.r.t. the current
        // labelling. HashMap keyed by the full signature: Ratio hashes.
        let mut groups: HashMap<Vec<(usize, usize, Ratio)>, Vec<usize>> = HashMap::new();
        for &s in &members[b] {
            groups
                .entry(signature(&rows[s], &labels))
                .or_default()
                .push(s);
        }
        if groups.len() == 1 {
            continue;
        }
        // Split: the largest group keeps the old label (fewest relabels),
        // the rest get fresh labels. The relabelling itself changes the
        // signature of every predecessor of a moved state, so their blocks
        // are re-queued — and since those predecessors include states
        // moved by this very split (whose grouping used the pre-split
        // labels), every block produced by the split is re-queued too.
        let mut groups: Vec<Vec<usize>> = groups.into_values().collect();
        groups.sort_unstable_by_key(|g| std::cmp::Reverse(g.len()));
        members[b] = std::mem::take(&mut groups[0]);
        let requeue = |bl: usize, queued: &mut Vec<bool>, dirty: &mut Vec<usize>| {
            if !queued[bl] {
                queued[bl] = true;
                dirty.push(bl);
            }
        };
        for group in groups.into_iter().skip(1) {
            let fresh = next_label;
            next_label += 1;
            for &s in &group {
                labels[s] = fresh;
                for &p in &preds[s] {
                    requeue(labels[p], &mut queued, &mut dirty);
                }
            }
            members[fresh] = group;
            requeue(fresh, &mut queued, &mut dirty);
        }
        requeue(b, &mut queued, &mut dirty);
    }
    Partition::from_labels(&labels)
}

/// Checks exact ordinary lumpability: every pair of states in a block has
/// identical block-wise signatures (external symbols count as their own
/// blocks). See [`refine`] for the row format.
pub fn is_lumpable(rows: &[Vec<(usize, Ratio)>], part: &Partition) -> bool {
    assert_eq!(part.len(), rows.len(), "partition length mismatch");
    let mut sig_of_block: HashMap<usize, Vec<(usize, usize, Ratio)>> = HashMap::new();
    for (s, row) in rows.iter().enumerate() {
        let sig = signature(row, &part.block_of);
        match sig_of_block.entry(part.block_of[s]) {
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != sig {
                    return false;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(sig);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Ratio {
        Ratio::new(n, d)
    }

    /// Two symmetric branches feeding one absorbing symbol: 0 and 1 lump.
    #[test]
    fn symmetric_branches_lump() {
        // States 0,1 transient; external symbol 2 (target index = n + 0).
        let rows = vec![
            vec![(2, r(1, 2)), (0, r(1, 2))],
            vec![(2, r(1, 2)), (1, r(1, 2))],
        ];
        let part = refine(&rows, &Partition::trivial(2));
        assert_eq!(part.num_blocks, 1);
        assert!(is_lumpable(&rows, &part));
    }

    #[test]
    fn asymmetric_probabilities_split() {
        let rows = vec![
            vec![(2, r(1, 2)), (0, r(1, 2))],
            vec![(2, r(1, 3)), (1, r(2, 3))],
        ];
        let part = refine(&rows, &Partition::trivial(2));
        assert_eq!(part.num_blocks, 2);
        assert!(is_lumpable(&rows, &part));
    }

    #[test]
    fn split_propagates_backwards() {
        // 0 → 1, 0' → 1'; 1 and 1' differ, so 0 and 0' must split too.
        let rows = vec![
            vec![(1, r(1, 1))], // 0 → 1
            vec![(4, r(1, 1))], // 1 → ext 0
            vec![(3, r(1, 1))], // 2 → 3
            vec![(5, r(1, 1))], // 3 → ext 1
        ];
        let part = refine(&rows, &Partition::trivial(4));
        assert!(is_lumpable(&rows, &part));
        assert_ne!(part.block_of[0], part.block_of[2]);
        assert_ne!(part.block_of[1], part.block_of[3]);
    }

    #[test]
    fn refinement_of_seed_is_preserved() {
        // Symmetric states, but the seed insists they differ: refine must
        // not merge them back.
        let rows = vec![vec![(2, r(1, 1))], vec![(2, r(1, 1))]];
        let seed = Partition::from_labels(&[0, 1]);
        let part = refine(&rows, &seed);
        assert_eq!(part.num_blocks, 2);
        assert!(part.refines(&seed));
        // With the trivial seed they do lump.
        assert_eq!(refine(&rows, &Partition::trivial(2)).num_blocks, 1);
    }

    #[test]
    fn duplicate_targets_are_summed() {
        // (2, ¼)+(2, ¼) must equal (2, ½) for signature purposes.
        let rows = vec![
            vec![(2, r(1, 4)), (2, r(1, 4)), (0, r(1, 2))],
            vec![(2, r(1, 2)), (1, r(1, 2))],
        ];
        let part = refine(&rows, &Partition::trivial(2));
        assert_eq!(part.num_blocks, 1);
    }

    #[test]
    fn self_loops_respect_blocks() {
        // A state self-looping with ½ and one looping onto its block-mate:
        // both have probability ½ into the (joint) block — they lump.
        let rows = vec![
            vec![(0, r(1, 2)), (2, r(1, 2))],
            vec![(0, r(1, 2)), (2, r(1, 2))],
        ];
        let part = refine(&rows, &Partition::trivial(2));
        assert_eq!(part.num_blocks, 1);
        assert!(is_lumpable(&rows, &part));
    }

    #[test]
    fn empty_partition() {
        let part = refine(&[], &Partition::trivial(0));
        assert!(part.is_empty());
        assert_eq!(part.num_blocks, 0);
    }
}
