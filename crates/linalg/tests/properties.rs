//! Property-based tests for the linear-algebra substrate: solver
//! agreement across backends, absorption-probability invariants, and
//! LU correctness on random systems.

use mcnetkat_linalg::{
    gauss_seidel, jacobi, AbsorbingChain, DenseMatrix, IterativeOptions, SolverBackend, SparseLu,
    Triplets,
};
use mcnetkat_num::Ratio;
use proptest::prelude::*;

/// A random absorbing chain: `n` states, the last two absorbing, every
/// transient row a random distribution with guaranteed absorbing weight.
fn arb_chain() -> impl Strategy<Value = AbsorbingChain> {
    (3..10usize, proptest::collection::vec(0..5u32, 100)).prop_map(|(n, weights)| {
        let mut chain = AbsorbingChain::new(n);
        chain.set_absorbing(n - 1);
        chain.set_absorbing(n - 2);
        let mut w = weights.into_iter().cycle();
        for s in 0..n - 2 {
            let mut row: Vec<u32> = (0..n).map(|_| w.next().unwrap()).collect();
            row[n - 1] += 1; // every state can reach an absorbing state
            let total: u32 = row.iter().sum();
            for (t, &weight) in row.iter().enumerate() {
                if weight > 0 {
                    chain.add(s, t, Ratio::new(weight as i64, total as i64));
                }
            }
        }
        chain
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All float backends agree with the exact rational solve.
    #[test]
    fn backends_agree_with_exact(chain in arb_chain()) {
        chain.validate().unwrap();
        let exact = chain.solve_exact().unwrap();
        for backend in [
            SolverBackend::SparseLu,
            SolverBackend::GaussSeidel,
            SolverBackend::Jacobi,
            SolverBackend::DenseLu,
        ] {
            let float = chain.solve(backend).unwrap();
            let n = chain.len();
            // Transient states are 0..n-2, so state id and transient rank
            // coincide here.
            for (s, row) in exact.iter().enumerate().take(n - 2) {
                for (col, &a) in [n - 2, n - 1].iter().enumerate() {
                    let e = row[col].to_f64();
                    let f = float.prob(s, a);
                    prop_assert!((e - f).abs() < 1e-8, "{backend:?} s={s} a={a}: {e} vs {f}");
                }
            }
        }
    }

    /// Absorption rows are probability distributions: entries in [0,1]
    /// summing to 1 (every state reaches absorption by construction).
    #[test]
    fn absorption_rows_are_distributions(chain in arb_chain()) {
        let exact = chain.solve_exact().unwrap();
        for row in &exact {
            let total: Ratio = row.iter().cloned().sum();
            prop_assert_eq!(total, Ratio::one());
            for p in row {
                prop_assert!(p.is_probability());
            }
        }
    }

    /// Sparse LU solves random diagonally dominant systems to machine
    /// precision (checked via the residual).
    #[test]
    fn sparse_lu_residual_is_small(
        n in 2..12usize,
        entries in proptest::collection::vec((-10i32..10, 0..144usize), 10..40),
        rhs in proptest::collection::vec(-5.0f64..5.0, 12),
    ) {
        let mut t = Triplets::new(n, n);
        let mut diag = vec![0.0f64; n];
        for (v, pos) in entries {
            let (i, j) = (pos / 12 % n, pos % n);
            if i != j && v != 0 {
                t.push(i, j, v as f64 / 10.0);
                diag[i] += (v as f64 / 10.0).abs();
            }
        }
        for (i, d) in diag.iter().enumerate() {
            t.push(i, i, d + 1.0); // strict diagonal dominance
        }
        let a = t.to_csr();
        let b = &rhs[..n];
        let x = SparseLu::factor(&a).unwrap().solve(b);
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(b) {
            prop_assert!((l - r).abs() < 1e-8);
        }
    }

    /// Jacobi and Gauss–Seidel agree on substochastic systems.
    #[test]
    fn iterative_methods_agree(
        n in 2..10usize,
        probs in proptest::collection::vec(0..9u32, 10),
    ) {
        let mut t = Triplets::new(n, n);
        for (i, p) in probs.iter().take(n).enumerate() {
            // Row i: move forward with probability p/10 (leaky).
            if *p > 0 && i + 1 < n {
                t.push(i, i + 1, *p as f64 / 10.0);
            }
        }
        let q = t.to_csr();
        let b = vec![1.0; n];
        let opts = IterativeOptions::default();
        let xj = jacobi(&q, &b, opts).unwrap();
        let xg = gauss_seidel(&q, &b, opts).unwrap();
        for (a, b) in xj.iter().zip(&xg) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    /// Dense exact solve inverts exactly: A · A⁻¹b = b over rationals.
    #[test]
    fn exact_dense_solve_is_exact(
        n in 1..5usize,
        seed in proptest::collection::vec(-5i64..5, 36),
    ) {
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let mut row: Vec<Ratio> = (0..n)
                .map(|j| Ratio::from_integer(seed[(i * n + j) % seed.len()]))
                .collect();
            // Make it diagonally dominant so it is nonsingular.
            let dom: i64 = 1 + row.iter().map(|r| r.abs().to_f64() as i64).sum::<i64>();
            row[i] = Ratio::from_integer(dom);
            rows.push(row);
        }
        let a = DenseMatrix::from_rows(rows);
        let b: Vec<Ratio> = (0..n).map(|i| Ratio::from_integer(seed[i % seed.len()])).collect();
        let x = a.solve(&b).unwrap();
        prop_assert_eq!(a.matvec(&x), b);
    }
}
