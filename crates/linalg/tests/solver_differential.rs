//! Differential tests pinning the structured sparse solver to the exact
//! dense path.
//!
//! `SolverBackend::SparseScc` (SCC condensation + per-component exact
//! elimination + optional symmetry lumping) is the production loop solver;
//! nothing else in the suite would catch it being subtly wrong on chains
//! with non-trivial structure. These tests generate randomised absorbing
//! chains — multi-SCC, multi-absorbing-class, with cycles, self-loops and
//! disconnected regions — and require the sparse solve to agree *exactly*
//! (`Ratio` equality, not tolerance) with `solve_exact` under every
//! lumping configuration, and within float tolerance with every other
//! backend. The partition-refinement engine is differentially pinned
//! against a naive textbook implementation.

use mcnetkat_linalg::{is_lumpable, refine, AbsorbingChain, LinalgError, Partition, SolverBackend};
use mcnetkat_num::Ratio;
use proptest::prelude::*;
use std::collections::HashMap;

/// A random absorbing chain with structure: `nt` transient states, `na`
/// absorbing classes, sparse random rows that may form cycles, self-loops
/// and multiple SCCs. Every transient state keeps guaranteed weight on an
/// absorbing state so the chain genuinely absorbs.
fn arb_structured_chain() -> impl Strategy<Value = AbsorbingChain> {
    (
        2..12usize,
        1..4usize,
        proptest::collection::vec(0..7u32, 400),
    )
        .prop_map(|(nt, na, weights)| {
            let n = nt + na;
            let mut chain = AbsorbingChain::new(n);
            for a in nt..n {
                chain.set_absorbing(a);
            }
            let mut w = weights.into_iter().cycle();
            for s in 0..nt {
                let mut row: Vec<u32> = (0..n).map(|_| w.next().unwrap()).collect();
                // Sparsify: drop roughly half the entries so the transient
                // graph breaks into non-trivial SCC structure.
                for slot in row.iter_mut() {
                    if w.next().unwrap() < 4 {
                        *slot = 0;
                    }
                }
                // Guaranteed absorption, spread across the classes.
                let a = nt + (s % na);
                row[a] += 1;
                let total: u32 = row.iter().sum();
                for (t, &weight) in row.iter().enumerate() {
                    if weight > 0 {
                        chain.add(s, t, Ratio::new(weight as i64, total as i64));
                    }
                }
            }
            chain
        })
}

/// The naive textbook refinement: split *every* block by signature each
/// round until stable. Quadratic, but obviously correct — the reference
/// the worklist implementation must match block-for-block (the coarsest
/// stable refinement of a seed is unique).
type Signature = Vec<(usize, usize, Ratio)>;

fn naive_refine(rows: &[Vec<(usize, Ratio)>], seed: &Partition) -> Partition {
    let n = rows.len();
    let mut part = Partition::from_labels(&seed.block_of);
    loop {
        let mut ids: HashMap<(usize, Signature), usize> = HashMap::new();
        let mut labels = Vec::with_capacity(n);
        for (s, row) in rows.iter().enumerate() {
            let mut acc: HashMap<(usize, usize), Ratio> = HashMap::new();
            for (t, p) in row {
                if p.is_zero() {
                    continue;
                }
                let key = if *t < n {
                    (0, part.block_of[*t])
                } else {
                    (1, *t - n)
                };
                *acc.entry(key).or_insert_with(Ratio::zero) += p;
            }
            let mut sig: Signature = acc.into_iter().map(|((k, i), p)| (k, i, p)).collect();
            sig.sort_unstable_by_key(|&(k, i, _)| (k, i));
            let key = (part.block_of[s], sig);
            let next = ids.len();
            labels.push(*ids.entry(key).or_insert(next));
        }
        let refined = Partition::from_labels(&labels);
        if refined.num_blocks == part.num_blocks {
            return part;
        }
        part = refined;
    }
}

/// Random sparse rows over `n` states plus `next` external symbols, with a
/// small probability pool so symmetric states actually occur.
fn arb_rows() -> impl Strategy<Value = Vec<Vec<(usize, Ratio)>>> {
    (
        2..14usize,
        1..4usize,
        proptest::collection::vec((0..18usize, 1..4usize), 100),
    )
        .prop_map(|(n, next, raw)| {
            let mut raw = raw.into_iter().cycle();
            (0..n)
                .map(|_| {
                    let (k_src, _) = raw.next().unwrap();
                    let k = 1 + k_src % 3;
                    (0..k)
                        .map(|_| {
                            let (t_src, _) = raw.next().unwrap();
                            (t_src % (n + next), Ratio::new(1, k as i64))
                        })
                        .collect()
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole invariant: SparseScc ≡ solve_exact, *exactly*, with
    /// lumping off and on. Not a tolerance check — `Ratio` equality.
    #[test]
    fn sparse_scc_equals_solve_exact(chain in arb_structured_chain()) {
        chain.validate().unwrap();
        let exact = chain.solve_exact().unwrap();
        for lumping in [false, true] {
            let sparse = chain.solve_sparse_scc(lumping).unwrap();
            prop_assert_eq!(
                sparse.to_dense(), exact.clone(),
                "lumping={} blocks={} sccs={}",
                lumping, sparse.lumped_blocks(), sparse.scc_count()
            );
            // Sparse means sparse: no stored zeros.
            for t in 0..sparse.num_transient() {
                for (_, p) in sparse.sparse_row(t) {
                    prop_assert!(!p.is_zero());
                }
            }
        }
    }

    /// Refining any seed partition never changes absorption
    /// probabilities: lumping quotients by the coarsest *stable*
    /// refinement of the seed, and stable partitions preserve absorption
    /// rows exactly — so an arbitrary (even nonsensical) seed must yield
    /// the same answer as the dense exact solve.
    #[test]
    fn any_lumping_seed_yields_identical_probabilities(
        chain in arb_structured_chain(),
        labels in proptest::collection::vec(0..5usize, 16),
    ) {
        let exact = chain.solve_exact().unwrap();
        let nt = exact.len();
        let seed_labels: Vec<usize> = (0..nt).map(|t| labels[t % labels.len()]).collect();
        let seed = Partition::from_labels(&seed_labels);
        let sparse = chain.solve_sparse_scc_seeded(true, Some(&seed)).unwrap();
        prop_assert_eq!(sparse.to_dense(), exact);
    }

    /// SparseScc agrees with every float backend within float tolerance
    /// (the exact ↔ float direction of the differential matrix).
    #[test]
    fn sparse_scc_within_tolerance_of_float_backends(chain in arb_structured_chain()) {
        let sparse = chain.solve(SolverBackend::SparseScc).unwrap();
        for backend in [
            SolverBackend::SparseLu,
            SolverBackend::GaussSeidel,
            SolverBackend::Jacobi,
            SolverBackend::DenseLu,
        ] {
            let float = chain.solve(backend).unwrap();
            prop_assert_eq!(float.absorbing_states(), sparse.absorbing_states());
            for s in 0..chain.len() {
                for &a in sparse.absorbing_states() {
                    let e = sparse.prob(s, a);
                    let f = float.prob(s, a);
                    prop_assert!(
                        (e - f).abs() < 1e-8,
                        "{:?} s={} a={}: {} vs {}", backend, s, a, e, f
                    );
                }
            }
        }
    }

    /// The worklist partition refinement matches the naive textbook
    /// fixpoint block-for-block, and its result is always a lumpable
    /// refinement of the seed. (This caught a real bug: fresh blocks
    /// created by a split were never re-queued, silently under-refining —
    /// 13 blocks where the unique coarsest stable partition has 27.)
    #[test]
    fn refine_matches_naive_reference(
        rows in arb_rows(),
        seed_labels in proptest::collection::vec(0..3usize, 14),
    ) {
        let n = rows.len();
        let seeds = [
            Partition::trivial(n),
            Partition::from_labels(&(0..n).map(|s| seed_labels[s % seed_labels.len()]).collect::<Vec<_>>()),
        ];
        for seed in &seeds {
            let fast = refine(&rows, seed);
            let slow = naive_refine(&rows, seed);
            prop_assert!(is_lumpable(&rows, &fast));
            prop_assert!(fast.refines(seed));
            prop_assert_eq!(fast.num_blocks, slow.num_blocks);
            // Same partition, not merely the same size: blocks must match
            // up to renumbering, which `refines` both ways certifies.
            prop_assert!(fast.refines(&slow) && slow.refines(&fast));
        }
    }
}

/// Deterministic multi-SCC shape: two 2-cycles in series feeding one
/// absorbing state — the condensation must see exactly two components,
/// and the probabilities are all 1 (single absorbing class).
#[test]
fn two_cycle_chain_condenses_to_two_components() {
    let mut chain = AbsorbingChain::new(5);
    chain.set_absorbing(4);
    chain.add(0, 1, Ratio::one());
    chain.add(1, 0, Ratio::new(1, 2));
    chain.add(1, 2, Ratio::new(1, 2));
    chain.add(2, 3, Ratio::one());
    chain.add(3, 2, Ratio::new(1, 3));
    chain.add(3, 4, Ratio::new(2, 3));
    let sparse = chain.solve_sparse_scc(false).unwrap();
    assert_eq!(sparse.scc_count(), 2);
    for s in 0..4 {
        assert_eq!(sparse.prob(s, 4), Ratio::one());
    }
    assert_eq!(sparse.to_dense(), chain.solve_exact().unwrap());
}

/// A trapped cycle (no path to any absorbing state) is the same singular
/// error the dense exact path reports — per-component detection must not
/// turn it into a wrong answer.
#[test]
fn trapped_cycles_error_like_solve_exact() {
    let mut chain = AbsorbingChain::new(4);
    chain.set_absorbing(3);
    // 0 reaches absorption; 1 ↔ 2 is a trapped island.
    chain.add(0, 3, Ratio::one());
    chain.add(1, 2, Ratio::one());
    chain.add(2, 1, Ratio::one());
    assert!(matches!(chain.solve_exact(), Err(LinalgError::Singular(_))));
    for lumping in [false, true] {
        assert!(
            matches!(
                chain.solve_sparse_scc(lumping),
                Err(LinalgError::Singular(_))
            ),
            "lumping={lumping}"
        );
    }
}

/// Transient states with *no* outgoing transitions at all get an all-zero
/// absorption row from the dense solve (R has a zero row, (I−Q) is still
/// nonsingular); the sparse path must reproduce that, not error.
#[test]
fn empty_transient_rows_absorb_nowhere() {
    let mut chain = AbsorbingChain::new(3);
    chain.set_absorbing(2);
    chain.add(0, 2, Ratio::one());
    // State 1 has no row at all.
    let exact = chain.solve_exact().unwrap();
    let sparse = chain.solve_sparse_scc(true).unwrap();
    assert_eq!(sparse.to_dense(), exact);
    assert_eq!(sparse.prob(1, 2), Ratio::zero());
    assert!(sparse.sparse_row(1).is_empty());
}
