//! Table-driven backend parity: every [`SolverBackend`] must produce the
//! same [`AbsorptionResult`] over a set of named fixtures chosen to
//! exercise the structural corners — self-loops, disconnected transient
//! islands with separate absorbing classes, and explicitly-added
//! zero-probability edges. Probabilities must agree within 1e-9 and the
//! absorbing-state sets must be identical; the exact dense solve is the
//! reference.

use mcnetkat_linalg::{AbsorbingChain, SolverBackend};
use mcnetkat_num::Ratio;

const BACKENDS: [SolverBackend; 5] = [
    SolverBackend::SparseScc,
    SolverBackend::SparseLu,
    SolverBackend::GaussSeidel,
    SolverBackend::Jacobi,
    SolverBackend::DenseLu,
];

/// A lazy gambler's ruin: every transient state self-loops with ½ and
/// otherwise moves one step towards ruin (3) or fortune (4).
fn self_loops() -> AbsorbingChain {
    let mut chain = AbsorbingChain::new(5);
    chain.set_absorbing(3);
    chain.set_absorbing(4);
    chain.add(0, 0, Ratio::new(1, 2));
    chain.add(0, 3, Ratio::new(1, 4));
    chain.add(0, 1, Ratio::new(1, 4));
    chain.add(1, 1, Ratio::new(1, 2));
    chain.add(1, 0, Ratio::new(1, 4));
    chain.add(1, 2, Ratio::new(1, 4));
    chain.add(2, 2, Ratio::new(1, 2));
    chain.add(2, 1, Ratio::new(1, 4));
    chain.add(2, 4, Ratio::new(1, 4));
    chain
}

/// Two disjoint transient islands absorbing into disjoint classes — the
/// transient graph is disconnected and the (I−Q) system is block
/// diagonal. States 0,1 reach only {4,5}; states 2,3 reach only {6}.
fn disconnected_islands() -> AbsorbingChain {
    let mut chain = AbsorbingChain::new(7);
    for a in 4..7 {
        chain.set_absorbing(a);
    }
    chain.add(0, 1, Ratio::new(2, 3));
    chain.add(0, 4, Ratio::new(1, 3));
    chain.add(1, 0, Ratio::new(1, 2));
    chain.add(1, 5, Ratio::new(1, 2));
    chain.add(2, 3, Ratio::new(3, 4));
    chain.add(2, 6, Ratio::new(1, 4));
    chain.add(3, 2, Ratio::new(1, 5));
    chain.add(3, 6, Ratio::new(4, 5));
    chain
}

/// Explicit zero-probability edges interleaved with real ones: the zeros
/// must be treated as absent by every backend (no spurious structure, no
/// division hazards), including a zero self-loop and a zero edge into an
/// otherwise-unreachable absorbing state.
fn zero_probability_edge() -> AbsorbingChain {
    let mut chain = AbsorbingChain::new(5);
    chain.set_absorbing(3);
    chain.set_absorbing(4);
    chain.add(0, 0, Ratio::zero());
    chain.add(0, 1, Ratio::new(1, 2));
    chain.add(0, 3, Ratio::new(1, 2));
    chain.add(1, 4, Ratio::zero());
    chain.add(1, 0, Ratio::new(1, 3));
    chain.add(1, 3, Ratio::new(2, 3));
    chain.add(2, 2, Ratio::zero());
    chain.add(2, 3, Ratio::one());
    chain
}

/// A two-state cycle whose only exit is through its second state — the
/// smallest genuinely cyclic fixture (non-trivial SCC).
fn cycle_with_exit() -> AbsorbingChain {
    let mut chain = AbsorbingChain::new(3);
    chain.set_absorbing(2);
    chain.add(0, 1, Ratio::one());
    chain.add(1, 0, Ratio::new(2, 3));
    chain.add(1, 2, Ratio::new(1, 3));
    chain
}

fn fixtures() -> Vec<(&'static str, AbsorbingChain)> {
    vec![
        ("self_loops", self_loops()),
        ("disconnected_islands", disconnected_islands()),
        ("zero_probability_edge", zero_probability_edge()),
        ("cycle_with_exit", cycle_with_exit()),
    ]
}

#[test]
fn every_backend_agrees_on_every_fixture() {
    for (name, chain) in fixtures() {
        let exact = chain.solve_exact().unwrap_or_else(|e| {
            panic!("fixture {name}: exact solve failed: {e:?}");
        });
        let n = chain.len();
        let nt = exact.len();
        for backend in BACKENDS {
            let result = chain
                .solve(backend)
                .unwrap_or_else(|e| panic!("fixture {name}: {backend:?} failed: {e:?}"));
            // Identical absorbing-state sets, in the same compact order.
            let absorbing: Vec<usize> = (nt..n).collect();
            assert_eq!(
                result.absorbing_states(),
                &absorbing[..],
                "fixture {name}: {backend:?} absorbing set"
            );
            // Identical probabilities, for transient *and* absorbing rows
            // (state ids, not row positions — absorbing rows have no
            // `exact` entry and must read back as point masses).
            for s in 0..n {
                for &a in &absorbing {
                    let want = match exact.get(s) {
                        Some(row) => row[a - nt].to_f64(),
                        None if s == a => 1.0,
                        None => 0.0,
                    };
                    let got = result.prob(s, a);
                    assert!(
                        (want - got).abs() < 1e-9,
                        "fixture {name}: {backend:?} prob({s}, {a}) = {got}, want {want}"
                    );
                }
            }
        }
    }
}

/// Absorption is total on every fixture: each transient row of every
/// backend sums to 1 (nothing is trapped, nothing leaks).
#[test]
fn every_backend_conserves_mass() {
    for (name, chain) in fixtures() {
        for backend in BACKENDS {
            let result = chain.solve(backend).unwrap();
            let nt = chain.len() - result.absorbing_states().len();
            for s in 0..nt {
                let mass: f64 = result.row(s).iter().map(|(_, p)| p).sum();
                assert!(
                    (mass - 1.0).abs() < 1e-9,
                    "fixture {name}: {backend:?} row {s} mass {mass}"
                );
            }
        }
    }
}
