//! Resource governance for compilation: wall-clock deadlines, cooperative
//! cancellation, and table-size ceilings.
//!
//! A [`Budget`] travels inside [`crate::CompileOptions`] and is enforced
//! at cheap checkpoints — op-cache misses, loop-state interning,
//! per-component loop solves, per-switch fused compiles — rather than by
//! making every diagram combinator fallible. The [`Manager`] installs a
//! *governor* for the duration of a governed compile
//! ([`Manager::govern`](crate::Manager::govern)): once any limit trips,
//! recursive operations short-circuit to cheap degenerate-but-canonical
//! results, cache inserts are suppressed (so no memo table is ever
//! poisoned by a truncated result), and the surrounding fallible seam
//! surfaces the recorded typed error. The node and interning tables only
//! ever receive well-formed nodes, so a manager stays audit-clean and
//! fully reusable after any governed abort.
//!
//! The budget is deliberately *not* part of the `while`-loop cache key
//! ([`crate::compile`]'s `OptsKey`): it never changes a successful
//! result, only whether the compile is allowed to finish — and aborted
//! compiles are never cached.

use crate::CompileError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cooperative cancellation flag (an `Arc<AtomicBool>` at
/// heart), checked at the same checkpoints as the rest of the [`Budget`].
///
/// Tokens form an optional parent chain: [`CancelToken::child`] creates a
/// token that is cancelled whenever its parent is, but can also be
/// cancelled on its own without firing the parent. The parallel backend
/// uses this to abort sibling workers promptly after one fails, without
/// corrupting the caller's token.
///
/// # Examples
///
/// ```
/// use mcnetkat_fdd::CancelToken;
/// let token = CancelToken::new();
/// let worker = token.child();
/// worker.cancel();
/// assert!(worker.is_cancelled());
/// assert!(!token.is_cancelled()); // child cancellation stays local
/// token.cancel();
/// assert!(token.child().is_cancelled()); // parent cancellation propagates
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug, Default)]
struct TokenInner {
    flag: AtomicBool,
    parent: Option<CancelToken>,
}

impl CancelToken {
    /// A fresh, un-cancelled token with no parent.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone of this
    /// token and to every descendant created with [`CancelToken::child`].
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Whether this token — or any ancestor — has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        let mut cur = self;
        loop {
            if cur.inner.flag.load(Ordering::Acquire) {
                return true;
            }
            match &cur.inner.parent {
                Some(parent) => cur = parent,
                None => return false,
            }
        }
    }

    /// A new token linked under this one: cancelled when this token is,
    /// but independently cancellable without affecting this token.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                flag: AtomicBool::new(false),
                parent: Some(self.clone()),
            }),
        }
    }
}

/// Resource limits for one governed compile. The default is unlimited —
/// every limit is opt-in, so existing callers pay only a skipped `None`
/// check per checkpoint.
///
/// The node/dist ceilings bound the *manager's* append-only stores (the
/// peak gauges of [`crate::Manager::peak_live_nodes`] /
/// [`crate::Manager::peak_dist_entries`]); a manager that already holds
/// diagrams near the ceiling will trip early, which is the honest reading
/// of "ceiling".
///
/// # Examples
///
/// ```
/// use mcnetkat_fdd::{Budget, CancelToken};
/// use std::time::Duration;
/// let token = CancelToken::new();
/// let budget = Budget::default()
///     .with_deadline(Duration::from_secs(30))
///     .with_cancel(token.clone())
///     .with_max_live_nodes(1_000_000);
/// assert!(budget.check_external().is_ok());
/// token.cancel();
/// assert!(budget.check_external().is_err());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Absolute wall-clock cutoff (`None` = no deadline).
    pub deadline: Option<Instant>,
    /// Cooperative cancellation token (`None` = not cancellable).
    pub cancel: Option<CancelToken>,
    /// Ceiling on the manager's live node count (`None` = unbounded).
    pub max_live_nodes: Option<usize>,
    /// Ceiling on the manager's total leaf-distribution support entries
    /// (`None` = unbounded).
    pub max_dist_entries: Option<usize>,
}

impl Budget {
    /// The default, no-limit budget.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Whether every limit is unset (the governor then has nothing to
    /// check and checkpoints cost a handful of `None` tests).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.cancel.is_none()
            && self.max_live_nodes.is_none()
            && self.max_dist_entries.is_none()
    }

    /// Sets the deadline to `timeout` from now.
    #[must_use]
    pub fn with_deadline(mut self, timeout: Duration) -> Budget {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets an absolute deadline.
    #[must_use]
    pub fn with_deadline_at(mut self, at: Instant) -> Budget {
        self.deadline = Some(at);
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// Caps the manager's live node count.
    #[must_use]
    pub fn with_max_live_nodes(mut self, n: usize) -> Budget {
        self.max_live_nodes = Some(n);
        self
    }

    /// Caps the manager's total distribution support entries.
    #[must_use]
    pub fn with_max_dist_entries(mut self, n: usize) -> Budget {
        self.max_dist_entries = Some(n);
        self
    }

    /// Checks only the manager-independent limits (cancellation, then the
    /// deadline) — the checkpoint used outside any [`crate::Manager`], e.g.
    /// between per-switch compiles or loop-exploration steps.
    ///
    /// # Errors
    ///
    /// [`CompileError::Cancelled`] or [`CompileError::DeadlineExceeded`].
    pub fn check_external(&self) -> Result<(), CompileError> {
        match self.external_violation() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn external_violation(&self) -> Option<CompileError> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(CompileError::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(CompileError::DeadlineExceeded);
        }
        None
    }

    /// Full check against the manager gauges; the governor's checkpoint.
    pub(crate) fn violation(&self, live_nodes: usize, dist_entries: usize) -> Option<CompileError> {
        if let Some(e) = self.external_violation() {
            return Some(e);
        }
        if let Some(max) = self.max_live_nodes {
            if live_nodes > max {
                return Some(CompileError::ResourceExhausted {
                    resource: "live nodes",
                    used: live_nodes,
                    limit: max,
                });
            }
        }
        if let Some(max) = self.max_dist_entries {
            if dist_entries > max {
                return Some(CompileError::ResourceExhausted {
                    resource: "dist entries",
                    used: dist_entries,
                    limit: max,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        let b = Budget::default();
        assert!(b.is_unlimited());
        assert!(b.check_external().is_ok());
        assert!(b.violation(usize::MAX, usize::MAX).is_none());
    }

    #[test]
    fn cancellation_propagates_to_children_not_parents() {
        let root = CancelToken::new();
        let child = root.child();
        let grandchild = child.child();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled());
        assert!(!root.is_cancelled());
        root.cancel();
        assert!(root.child().is_cancelled());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn expired_deadline_trips() {
        let b = Budget::default().with_deadline(Duration::ZERO);
        assert!(matches!(
            b.check_external(),
            Err(CompileError::DeadlineExceeded)
        ));
    }

    #[test]
    fn cancellation_outranks_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let b = Budget::default()
            .with_deadline(Duration::ZERO)
            .with_cancel(token);
        assert!(matches!(b.check_external(), Err(CompileError::Cancelled)));
    }

    #[test]
    fn ceilings_compare_against_gauges() {
        let b = Budget::default()
            .with_max_live_nodes(10)
            .with_max_dist_entries(20);
        assert!(b.violation(10, 20).is_none());
        assert!(matches!(
            b.violation(11, 0),
            Some(CompileError::ResourceExhausted {
                resource: "live nodes",
                used: 11,
                limit: 10,
            })
        ));
        assert!(matches!(
            b.violation(0, 21),
            Some(CompileError::ResourceExhausted {
                resource: "dist entries",
                ..
            })
        ));
    }
}
