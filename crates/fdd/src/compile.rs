//! Compilation of guarded ProbNetKAT programs to probabilistic FDDs
//! (the "Compile" arrow of Figure 5).

use crate::{loops, Action, ActionDist, Budget, Fdd, Manager};
use mcnetkat_core::{Pred, Prog};
use mcnetkat_linalg::{LinalgError, SolverBackend};
use std::fmt;

/// Options controlling compilation.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Linear-solver backend used for `while` loops. The default,
    /// [`SolverBackend::SparseScc`], solves exactly over the transient
    /// SCC DAG; the float backends exist for cross-validation and for
    /// chains whose structure defeats the sparse path.
    pub backend: SolverBackend,
    /// Upper bound on the symbolic state space explored per loop.
    pub state_limit: usize,
    /// For *float* backends only: loops whose transient state count is at
    /// most this bound are solved with exact rational elimination instead,
    /// so that downstream equivalence checks are exact. Set to 0 to always
    /// use the float backend. [`SolverBackend::SparseScc`] is exact at
    /// every size and ignores this bound.
    pub exact_threshold: usize,
    /// For [`SolverBackend::SparseScc`]: quotient the chain by its
    /// coarsest exact ordinary lumping before solving, collapsing
    /// symmetric states (isomorphic fat-tree pods) to one representative.
    /// Exact — never changes the result, only the work.
    pub lumping: bool,
    /// What to do when the configured loop solver fails (see
    /// [`FallbackPolicy`]). Part of the `while`-cache key.
    pub fallback: FallbackPolicy,
    /// Resource limits for this compile (deadline, cancellation,
    /// table-size ceilings). Unlimited by default; deliberately *not*
    /// part of the `while`-cache key — a budget never changes a
    /// successful result, and aborted compiles are never cached.
    pub budget: Budget,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            backend: SolverBackend::SparseScc,
            state_limit: 4_000_000,
            exact_threshold: 512,
            lumping: true,
            fallback: FallbackPolicy::default(),
            budget: Budget::default(),
        }
    }
}

/// Declarative solver-degradation policy for `while`-loop solves.
///
/// The rung order for [`SolverBackend::SparseScc`] is: (1) the sparse
/// SCC solve with the configured lumping, (2) the same solve with
/// lumping disabled (a lumping edge case cannot then mask a solvable
/// chain), (3) the dense exact reference solver. Float backends skip
/// rung 2 (lumping is a sparse-path concept) and fall straight to the
/// dense reference. Each rung that fires is counted in the manager's
/// [`crate::SolveReport`], so degradation is visible, never silent.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FallbackPolicy {
    /// Rung 2: retry the sparse SCC solve without lumping when the lumped
    /// solve fails (only meaningful when `lumping` is on).
    pub retry_without_lumping: bool,
    /// Rung 3: fall back to the dense exact reference solver when every
    /// sparse attempt has failed.
    pub dense_exact: bool,
}

impl Default for FallbackPolicy {
    /// Degrade through every rung — the robust default.
    fn default() -> Self {
        FallbackPolicy {
            retry_without_lumping: true,
            dense_exact: true,
        }
    }
}

impl FallbackPolicy {
    /// No fallback at all: the first solver failure is the final answer.
    /// What the pre-fallback compiler did; useful for differential tests
    /// that must observe the raw solver error.
    pub fn strict() -> FallbackPolicy {
        FallbackPolicy {
            retry_without_lumping: false,
            dense_exact: false,
        }
    }
}

/// The slice of [`CompileOptions`] that can change a `while` loop's
/// compiled diagram — the key of the manager's loop-solution cache.
///
/// Every solver-configuration field must appear here: `state_limit`
/// decides whether a loop compiles at all, `backend`/`exact_threshold`
/// select the solver arithmetic (which changes float-path leaf
/// probabilities), and `lumping` selects the quotienting strategy.
/// Lumping is semantically invisible, but keying on it anyway keeps the
/// rule auditable — *any* field that steers the solve is part of the key —
/// so a future inexact quotient can't silently share cache entries with
/// the unquotiented path. Leaving a field out would let a solution
/// computed under one configuration answer a query made under another.
/// `fallback` steers which solver ultimately produces the rows (a policy
/// that reaches the dense reference can succeed where `strict()` errors,
/// and the float ladder's dense rung changes leaf probabilities), so it
/// is part of the key too. The [`Budget`] is the one options field *not*
/// in the key: it decides whether a compile finishes, never what a
/// finished compile produces, and aborted compiles are never cached.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct OptsKey {
    backend: SolverBackend,
    state_limit: usize,
    exact_threshold: usize,
    lumping: bool,
    fallback: FallbackPolicy,
}

impl From<&CompileOptions> for OptsKey {
    fn from(opts: &CompileOptions) -> OptsKey {
        OptsKey {
            backend: opts.backend,
            state_limit: opts.state_limit,
            exact_threshold: opts.exact_threshold,
            lumping: opts.lumping,
            fallback: opts.fallback,
        }
    }
}

/// Errors produced by the compiler.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// The program uses `&` or `*` — outside the guarded fragment (§5).
    Unguarded(&'static str),
    /// A loop's symbolic state space exceeded the configured limit.
    StateSpaceTooLarge {
        /// States discovered before giving up.
        discovered: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The linear solver failed (after every rung permitted by the
    /// [`FallbackPolicy`] was tried).
    Solver(LinalgError),
    /// A loop guard compiled to a probabilistic diagram.
    ProbabilisticGuard,
    /// The compile's [`Budget`] cancellation token fired.
    Cancelled,
    /// The compile ran past its [`Budget`] wall-clock deadline.
    DeadlineExceeded,
    /// A [`Budget`] table-size ceiling was exceeded.
    ResourceExhausted {
        /// Which gauge tripped (`"live nodes"` or `"dist entries"`).
        resource: &'static str,
        /// The gauge value at the checkpoint.
        used: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// A parallel-backend worker or merge thread panicked; the panic was
    /// contained and its siblings cancelled.
    WorkerPanicked {
        /// The panic payload, when it was a string (else a placeholder).
        payload: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unguarded(op) => {
                write!(f, "operator `{op}` is outside the guarded fragment")
            }
            CompileError::StateSpaceTooLarge { discovered, limit } => write!(
                f,
                "loop state space exceeded limit ({discovered} ≥ {limit})"
            ),
            CompileError::Solver(e) => write!(f, "linear solver failed: {e}"),
            CompileError::ProbabilisticGuard => {
                write!(f, "loop guard is probabilistic")
            }
            CompileError::Cancelled => write!(f, "compile cancelled"),
            CompileError::DeadlineExceeded => write!(f, "compile deadline exceeded"),
            CompileError::ResourceExhausted {
                resource,
                used,
                limit,
            } => write!(
                f,
                "resource budget exhausted: {used} {resource} > limit {limit}"
            ),
            CompileError::WorkerPanicked { payload } => {
                write!(f, "parallel worker panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LinalgError> for CompileError {
    fn from(e: LinalgError) -> Self {
        CompileError::Solver(e)
    }
}

impl Manager {
    /// Compiles a predicate to a pass/drop FDD.
    pub fn compile_pred(&self, t: &Pred) -> Fdd {
        match t {
            Pred::False => self.fail(),
            Pred::True => self.pass(),
            Pred::Test(f, v) => self.branch(*f, *v, self.pass(), self.fail()),
            Pred::Or(a, b) => {
                let fa = self.compile_pred(a);
                let fb = self.compile_pred(b);
                self.ite(fa, self.pass(), fb)
            }
            Pred::And(a, b) => {
                let fa = self.compile_pred(a);
                let fb = self.compile_pred(b);
                self.ite(fa, fb, self.fail())
            }
            Pred::Not(a) => {
                let fa = self.compile_pred(a);
                self.ite(fa, self.fail(), self.pass())
            }
        }
    }

    /// Compiles a guarded program to its big-step FDD with default options.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile(&self, p: &Prog) -> Result<Fdd, CompileError> {
        self.compile_with(p, &CompileOptions::default())
    }

    /// Compiles `while guard do body` from already-compiled guard and body
    /// FDDs — the entry point used by the parallel backend, which
    /// assembles the loop body out of per-switch diagrams compiled on
    /// worker threads.
    ///
    /// Solutions are memoised per (guard, body, options): repeated loops
    /// — identical sub-chains across routing schemes or failure models —
    /// skip the absorbing-chain solve entirely. [`Manager::while_cache_stats`]
    /// reports the hit rate. Only successful solves are cached; errors
    /// (e.g. [`CompileError::StateSpaceTooLarge`]) are re-derived so each
    /// call observes its own options.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn while_loop(
        &self,
        guard: Fdd,
        body: Fdd,
        opts: &CompileOptions,
    ) -> Result<Fdd, CompileError> {
        let key = OptsKey::from(opts);
        if let Some(hit) = self.while_cache_lookup(guard, body, &key) {
            return Ok(hit);
        }
        let _gov = self.govern(&opts.budget);
        let result = loops::compile_while(self, guard, body, opts)?;
        // A governed abort during the rebuild surfaces as an Ok-but-
        // truncated diagram; the trip check here keeps it out of the
        // cache and converts it to the typed error.
        self.governed_error()?;
        self.while_cache_store(guard, body, key, result);
        Ok(result)
    }

    /// Compiles a guarded program with explicit options.
    ///
    /// Governed by `opts.budget` for the duration of the call: a fired
    /// cancellation token, an expired deadline or a table-size ceiling
    /// surfaces as the matching [`CompileError`] variant, and the manager
    /// remains fully reusable afterwards.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile_with(&self, p: &Prog, opts: &CompileOptions) -> Result<Fdd, CompileError> {
        let _gov = self.govern(&opts.budget);
        let result = self.compile_ast(p, opts);
        // Catch a trip that produced a truncated Ok diagram.
        self.governed_error()?;
        result
    }

    fn compile_ast(&self, p: &Prog, opts: &CompileOptions) -> Result<Fdd, CompileError> {
        self.governed_error()?;
        match p {
            Prog::Filter(t) => Ok(self.compile_pred(t)),
            Prog::Assign(f, v) => Ok(self.leaf(ActionDist::dirac(Action::assign(*f, *v)))),
            Prog::Union(..) => Err(CompileError::Unguarded("&")),
            Prog::Star(..) => Err(CompileError::Unguarded("*")),
            Prog::Seq(a, b) => {
                let fa = self.compile_ast(a, opts)?;
                let fb = self.compile_ast(b, opts)?;
                Ok(self.seq(fa, fb))
            }
            Prog::Choice(branches) => {
                let mut compiled = Vec::with_capacity(branches.len());
                for (q, r) in branches.iter() {
                    compiled.push((self.compile_ast(q, opts)?, r.clone()));
                }
                Ok(self.convex(&compiled))
            }
            Prog::If(t, a, b) => {
                let ft = self.compile_pred(t);
                let fa = self.compile_ast(a, opts)?;
                let fb = self.compile_ast(b, opts)?;
                Ok(self.ite(ft, fa, fb))
            }
            Prog::While(t, body) => {
                let guard = self.compile_pred(t);
                let fbody = self.compile_ast(body, opts)?;
                self.while_loop(guard, fbody, opts)
            }
            Prog::Local(f, n, body) => {
                let enter = self.leaf(ActionDist::dirac(Action::assign(*f, *n)));
                let fbody = self.compile_ast(body, opts)?;
                let erase = self.leaf(ActionDist::dirac(Action::assign(*f, 0)));
                let inner = self.seq(fbody, erase);
                Ok(self.seq(enter, inner))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CancelToken;
    use mcnetkat_core::{Field, Packet};
    use mcnetkat_num::Ratio;
    use std::time::Duration;

    fn fields() -> (Field, Field) {
        (Field::named("cmp_f"), Field::named("cmp_g"))
    }

    #[test]
    fn compiles_running_example_fragment() {
        // Figure 5's program: if pt=1 then pt<-2 ⊕0.5 pt<-3 else …
        let mgr = Manager::new();
        let pt = Field::named("cmp_pt");
        let prog = Prog::case(
            vec![
                (
                    Pred::test(pt, 1),
                    Prog::choice2(Prog::assign(pt, 2), Ratio::new(1, 2), Prog::assign(pt, 3)),
                ),
                (Pred::test(pt, 2), Prog::assign(pt, 1)),
                (Pred::test(pt, 3), Prog::assign(pt, 1)),
            ],
            Prog::drop(),
        );
        let fdd = mgr.compile(&prog).unwrap();
        let d1 = mgr.eval(fdd, &Packet::new().with(pt, 1));
        assert_eq!(d1.prob(&Action::assign(pt, 2)), Ratio::new(1, 2));
        assert_eq!(d1.prob(&Action::assign(pt, 3)), Ratio::new(1, 2));
        let d2 = mgr.eval(fdd, &Packet::new().with(pt, 2));
        assert_eq!(d2, ActionDist::dirac(Action::assign(pt, 1)));
        let dstar = mgr.eval(fdd, &Packet::new().with(pt, 9));
        assert!(dstar.is_drop());
    }

    #[test]
    fn predicates_obey_boolean_algebra() {
        let mgr = Manager::new();
        let (f, g) = fields();
        let t1 = Pred::test(f, 1);
        let t2 = Pred::test(g, 2);
        // De Morgan: ¬(t1 & t2) = ¬t1 ; ¬t2
        let lhs = mgr.compile_pred(&t1.clone().or(t2.clone()).not());
        let rhs = mgr.compile_pred(&t1.not().and(t2.not()));
        assert_eq!(lhs, rhs); // hash-consing makes this pointer equality
    }

    #[test]
    fn rejects_unguarded_operators() {
        let mgr = Manager::new();
        assert!(matches!(
            mgr.compile(&Prog::skip().union(Prog::drop())),
            Err(CompileError::Unguarded("&"))
        ));
        assert!(matches!(
            mgr.compile(&Prog::skip().star()),
            Err(CompileError::Unguarded("*"))
        ));
    }

    #[test]
    fn local_erases_on_exit() {
        let mgr = Manager::new();
        let (f, g) = fields();
        let prog = Prog::local(
            f,
            1,
            Prog::ite(Pred::test(f, 1), Prog::assign(g, 7), Prog::drop()),
        );
        let fdd = mgr.compile(&prog).unwrap();
        let d = mgr.eval(fdd, &Packet::new());
        // f is reset to 0 (= absent), g is 7.
        assert_eq!(d, ActionDist::dirac(Action::mods([(f, 0), (g, 7)])));
        let out = d.iter().next().unwrap().0.apply(&Packet::new()).unwrap();
        assert_eq!(out, Packet::new().with(g, 7));
    }

    #[test]
    fn assignment_then_test_is_resolved() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let prog = Prog::assign(f, 3).seq(Prog::test(f, 3));
        let fdd = mgr.compile(&prog).unwrap();
        assert_eq!(fdd, mgr.compile(&Prog::assign(f, 3)).unwrap());
        let contradiction = Prog::assign(f, 3).seq(Prog::test(f, 4));
        assert_eq!(mgr.compile(&contradiction).unwrap(), mgr.fail());
    }

    #[test]
    fn while_solutions_are_memoised_per_options() {
        let mgr = Manager::new();
        let f = Field::named("cmp_wc");
        let body = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 2), Prog::skip());
        let prog = Prog::while_(Pred::test(f, 0), body);
        let a = mgr.compile(&prog).unwrap();
        let s1 = mgr.while_cache_stats();
        assert_eq!((s1.hits, s1.misses), (0, 1));
        // Same loop again: answered from the cache, no new solve.
        let b = mgr.compile(&prog).unwrap();
        assert_eq!(a, b);
        let s2 = mgr.while_cache_stats();
        assert_eq!((s2.hits, s2.misses), (1, 1));
        // Different options form a different key: the float path must not
        // be answered by the exact-path solution.
        let opts = CompileOptions {
            exact_threshold: 0,
            ..CompileOptions::default()
        };
        mgr.compile_with(&prog, &opts).unwrap();
        let s3 = mgr.while_cache_stats();
        assert_eq!((s3.hits, s3.misses), (1, 2));
        assert_eq!(s3.entries, 2);
    }

    #[test]
    fn while_cache_keys_on_solver_configuration() {
        // Regression: the cache key must cover every solver-configuration
        // field. A solution computed under one backend / lumping setting
        // must never answer a query made under another — each distinct
        // configuration is its own miss and its own entry.
        let mgr = Manager::new();
        let f = Field::named("cmp_wk");
        let body = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 3), Prog::skip());
        let prog = Prog::while_(Pred::test(f, 0), body);
        let configs = [
            CompileOptions::default(), // SparseScc, lumping on
            CompileOptions {
                lumping: false,
                ..CompileOptions::default()
            },
            CompileOptions {
                backend: SolverBackend::SparseLu,
                ..CompileOptions::default()
            },
            CompileOptions {
                backend: SolverBackend::GaussSeidel,
                ..CompileOptions::default()
            },
            // The fallback policy steers which solver can produce the
            // rows, so it keys the cache too.
            CompileOptions {
                fallback: FallbackPolicy::strict(),
                ..CompileOptions::default()
            },
        ];
        let mut results = Vec::new();
        for (i, opts) in configs.iter().enumerate() {
            results.push(mgr.compile_with(&prog, opts).unwrap());
            let s = mgr.while_cache_stats();
            assert_eq!(
                (s.hits, s.misses, s.entries),
                (0, i as u64 + 1, i + 1),
                "config {i} must miss and add an entry, not hit a stale one"
            );
        }
        // The exact paths agree on the diagram (hash-consing makes that
        // pointer equality); the point above is that they got there via
        // separate solves, not a cross-configuration cache hit.
        assert_eq!(results[0], results[1]);
        // Re-compiling each configuration now hits its own entry.
        for (i, opts) in configs.iter().enumerate() {
            let again = mgr.compile_with(&prog, opts).unwrap();
            assert_eq!(again, results[i]);
        }
        let s = mgr.while_cache_stats();
        assert_eq!(
            (s.hits, s.misses),
            (configs.len() as u64, configs.len() as u64)
        );
    }

    /// A moderately wide program: chained probabilistic choices over
    /// several fields, enough diagram work for a governor to interrupt.
    fn governed_workload(tag: &str) -> Prog {
        Prog::seq_all((0..6).map(|i| {
            let f = Field::named(&format!("cmp_gov_{tag}_{i}"));
            Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 3), Prog::assign(f, 2))
        }))
    }

    #[test]
    fn governed_ceiling_aborts_and_manager_recovers() {
        let mgr = Manager::new();
        let prog = governed_workload("ceil");
        let opts = CompileOptions {
            budget: Budget::default().with_max_live_nodes(1),
            ..CompileOptions::default()
        };
        match mgr.compile_with(&prog, &opts) {
            Err(CompileError::ResourceExhausted {
                resource, limit, ..
            }) => {
                assert_eq!(resource, "live nodes");
                assert_eq!(limit, 1);
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        // The abort left only well-formed nodes behind…
        #[cfg(feature = "audit")]
        mgr.audit().assert_clean();
        // …and the same manager completes the same compile on retry.
        let retried = mgr.compile(&prog).unwrap();
        let fresh = Manager::new().compile(&prog);
        assert!(fresh.is_ok());
        let pk = Packet::new();
        assert_eq!(mgr.prob_delivery(retried, &pk), Ratio::one());
    }

    #[test]
    fn pre_cancelled_token_aborts_immediately() {
        let mgr = Manager::new();
        let prog = governed_workload("tok");
        let token = CancelToken::new();
        token.cancel();
        let opts = CompileOptions {
            budget: Budget::default().with_cancel(token),
            ..CompileOptions::default()
        };
        assert!(matches!(
            mgr.compile_with(&prog, &opts),
            Err(CompileError::Cancelled)
        ));
        #[cfg(feature = "audit")]
        mgr.audit().assert_clean();
        mgr.compile(&prog).unwrap();
    }

    #[test]
    fn expired_deadline_aborts_and_is_not_sticky() {
        let mgr = Manager::new();
        let prog = governed_workload("dl");
        let opts = CompileOptions {
            budget: Budget::default().with_deadline(Duration::ZERO),
            ..CompileOptions::default()
        };
        assert!(matches!(
            mgr.compile_with(&prog, &opts),
            Err(CompileError::DeadlineExceeded)
        ));
        // Dropping the governor guard cleared the latched trip: a new
        // governed compile with a sane budget runs to completion.
        let sane = CompileOptions {
            budget: Budget::default().with_deadline(Duration::from_secs(600)),
            ..CompileOptions::default()
        };
        mgr.compile_with(&prog, &sane).unwrap();
    }

    #[test]
    fn governed_aborts_never_poison_the_while_cache() {
        let mgr = Manager::new();
        let f = Field::named("cmp_gov_wc");
        let body = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 2), Prog::skip());
        let prog = Prog::while_(Pred::test(f, 0), body);
        let token = CancelToken::new();
        token.cancel();
        let opts = CompileOptions {
            budget: Budget::default().with_cancel(token),
            ..CompileOptions::default()
        };
        assert!(mgr.compile_with(&prog, &opts).is_err());
        let s = mgr.while_cache_stats();
        assert_eq!(s.entries, 0, "aborted loop must not be memoised");
        // The retry — same options key, no cancellation — misses, solves,
        // and produces the exact closed form.
        let fdd = mgr.compile(&prog).unwrap();
        assert_eq!(mgr.prob_delivery(fdd, &Packet::new()), Ratio::one());
    }

    #[test]
    fn while_errors_are_not_cached() {
        let mgr = Manager::new();
        let f = Field::named("cmp_we");
        let prog = Prog::while_(Pred::test(f, 0), Prog::assign(f, 1));
        let tiny = CompileOptions {
            state_limit: 1,
            ..CompileOptions::default()
        };
        assert!(matches!(
            mgr.compile_with(&prog, &tiny),
            Err(CompileError::StateSpaceTooLarge { .. })
        ));
        // The failure must not poison other option sets.
        mgr.compile(&prog).unwrap();
    }

    #[test]
    fn choice_of_choices_flattens_probabilities() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let inner = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 2), Prog::assign(f, 2));
        let outer = Prog::choice2(inner, Ratio::new(1, 2), Prog::assign(f, 1));
        let fdd = mgr.compile(&outer).unwrap();
        let d = mgr.eval(fdd, &Packet::new());
        assert_eq!(d.prob(&Action::assign(f, 1)), Ratio::new(3, 4));
        assert_eq!(d.prob(&Action::assign(f, 2)), Ratio::new(1, 4));
    }
}
