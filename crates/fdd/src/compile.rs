//! Compilation of guarded ProbNetKAT programs to probabilistic FDDs
//! (the "Compile" arrow of Figure 5).

use crate::{loops, Action, ActionDist, Fdd, Manager};
use mcnetkat_core::{Pred, Prog};
use mcnetkat_linalg::{LinalgError, SolverBackend};
use std::fmt;

/// Options controlling compilation.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Linear-solver backend used for `while` loops.
    pub backend: SolverBackend,
    /// Upper bound on the symbolic state space explored per loop.
    pub state_limit: usize,
    /// Loops whose transient state count is at most this bound are solved
    /// with *exact* rational elimination instead of the float backend, so
    /// that downstream equivalence checks are exact. Set to 0 to always use
    /// the float backend.
    pub exact_threshold: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            backend: SolverBackend::SparseLu,
            state_limit: 4_000_000,
            exact_threshold: 512,
        }
    }
}

/// Errors produced by the compiler.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// The program uses `&` or `*` — outside the guarded fragment (§5).
    Unguarded(&'static str),
    /// A loop's symbolic state space exceeded the configured limit.
    StateSpaceTooLarge {
        /// States discovered before giving up.
        discovered: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The linear solver failed.
    Solver(LinalgError),
    /// A loop guard compiled to a probabilistic diagram.
    ProbabilisticGuard,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unguarded(op) => {
                write!(f, "operator `{op}` is outside the guarded fragment")
            }
            CompileError::StateSpaceTooLarge { discovered, limit } => write!(
                f,
                "loop state space exceeded limit ({discovered} ≥ {limit})"
            ),
            CompileError::Solver(e) => write!(f, "linear solver failed: {e}"),
            CompileError::ProbabilisticGuard => {
                write!(f, "loop guard is probabilistic")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LinalgError> for CompileError {
    fn from(e: LinalgError) -> Self {
        CompileError::Solver(e)
    }
}

impl Manager {
    /// Compiles a predicate to a pass/drop FDD.
    pub fn compile_pred(&self, t: &Pred) -> Fdd {
        match t {
            Pred::False => self.fail(),
            Pred::True => self.pass(),
            Pred::Test(f, v) => self.branch(*f, *v, self.pass(), self.fail()),
            Pred::Or(a, b) => {
                let fa = self.compile_pred(a);
                let fb = self.compile_pred(b);
                self.ite(fa, self.pass(), fb)
            }
            Pred::And(a, b) => {
                let fa = self.compile_pred(a);
                let fb = self.compile_pred(b);
                self.ite(fa, fb, self.fail())
            }
            Pred::Not(a) => {
                let fa = self.compile_pred(a);
                self.ite(fa, self.fail(), self.pass())
            }
        }
    }

    /// Compiles a guarded program to its big-step FDD with default options.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile(&self, p: &Prog) -> Result<Fdd, CompileError> {
        self.compile_with(p, &CompileOptions::default())
    }

    /// Compiles `while guard do body` from already-compiled guard and body
    /// FDDs — the entry point used by the parallel backend, which
    /// assembles the loop body out of per-switch diagrams compiled on
    /// worker threads.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn while_loop(
        &self,
        guard: Fdd,
        body: Fdd,
        opts: &CompileOptions,
    ) -> Result<Fdd, CompileError> {
        loops::compile_while(self, guard, body, opts)
    }

    /// Compiles a guarded program with explicit options.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile_with(&self, p: &Prog, opts: &CompileOptions) -> Result<Fdd, CompileError> {
        match p {
            Prog::Filter(t) => Ok(self.compile_pred(t)),
            Prog::Assign(f, v) => Ok(self.leaf(ActionDist::dirac(Action::assign(*f, *v)))),
            Prog::Union(..) => Err(CompileError::Unguarded("&")),
            Prog::Star(..) => Err(CompileError::Unguarded("*")),
            Prog::Seq(a, b) => {
                let fa = self.compile_with(a, opts)?;
                let fb = self.compile_with(b, opts)?;
                Ok(self.seq(fa, fb))
            }
            Prog::Choice(branches) => {
                let mut compiled = Vec::with_capacity(branches.len());
                for (q, r) in branches.iter() {
                    compiled.push((self.compile_with(q, opts)?, r.clone()));
                }
                Ok(self.convex(&compiled))
            }
            Prog::If(t, a, b) => {
                let ft = self.compile_pred(t);
                let fa = self.compile_with(a, opts)?;
                let fb = self.compile_with(b, opts)?;
                Ok(self.ite(ft, fa, fb))
            }
            Prog::While(t, body) => {
                let guard = self.compile_pred(t);
                let fbody = self.compile_with(body, opts)?;
                loops::compile_while(self, guard, fbody, opts)
            }
            Prog::Local(f, n, body) => {
                let enter = self.leaf(ActionDist::dirac(Action::assign(*f, *n)));
                let fbody = self.compile_with(body, opts)?;
                let erase = self.leaf(ActionDist::dirac(Action::assign(*f, 0)));
                let inner = self.seq(fbody, erase);
                Ok(self.seq(enter, inner))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnetkat_core::{Field, Packet};
    use mcnetkat_num::Ratio;

    fn fields() -> (Field, Field) {
        (Field::named("cmp_f"), Field::named("cmp_g"))
    }

    #[test]
    fn compiles_running_example_fragment() {
        // Figure 5's program: if pt=1 then pt<-2 ⊕0.5 pt<-3 else …
        let mgr = Manager::new();
        let pt = Field::named("cmp_pt");
        let prog = Prog::case(
            vec![
                (
                    Pred::test(pt, 1),
                    Prog::choice2(Prog::assign(pt, 2), Ratio::new(1, 2), Prog::assign(pt, 3)),
                ),
                (Pred::test(pt, 2), Prog::assign(pt, 1)),
                (Pred::test(pt, 3), Prog::assign(pt, 1)),
            ],
            Prog::drop(),
        );
        let fdd = mgr.compile(&prog).unwrap();
        let d1 = mgr.eval(fdd, &Packet::new().with(pt, 1));
        assert_eq!(d1.prob(&Action::assign(pt, 2)), Ratio::new(1, 2));
        assert_eq!(d1.prob(&Action::assign(pt, 3)), Ratio::new(1, 2));
        let d2 = mgr.eval(fdd, &Packet::new().with(pt, 2));
        assert_eq!(d2, ActionDist::dirac(Action::assign(pt, 1)));
        let dstar = mgr.eval(fdd, &Packet::new().with(pt, 9));
        assert!(dstar.is_drop());
    }

    #[test]
    fn predicates_obey_boolean_algebra() {
        let mgr = Manager::new();
        let (f, g) = fields();
        let t1 = Pred::test(f, 1);
        let t2 = Pred::test(g, 2);
        // De Morgan: ¬(t1 & t2) = ¬t1 ; ¬t2
        let lhs = mgr.compile_pred(&t1.clone().or(t2.clone()).not());
        let rhs = mgr.compile_pred(&t1.not().and(t2.not()));
        assert_eq!(lhs, rhs); // hash-consing makes this pointer equality
    }

    #[test]
    fn rejects_unguarded_operators() {
        let mgr = Manager::new();
        assert!(matches!(
            mgr.compile(&Prog::skip().union(Prog::drop())),
            Err(CompileError::Unguarded("&"))
        ));
        assert!(matches!(
            mgr.compile(&Prog::skip().star()),
            Err(CompileError::Unguarded("*"))
        ));
    }

    #[test]
    fn local_erases_on_exit() {
        let mgr = Manager::new();
        let (f, g) = fields();
        let prog = Prog::local(
            f,
            1,
            Prog::ite(Pred::test(f, 1), Prog::assign(g, 7), Prog::drop()),
        );
        let fdd = mgr.compile(&prog).unwrap();
        let d = mgr.eval(fdd, &Packet::new());
        // f is reset to 0 (= absent), g is 7.
        assert_eq!(d, ActionDist::dirac(Action::mods([(f, 0), (g, 7)])));
        let out = d.iter().next().unwrap().0.apply(&Packet::new()).unwrap();
        assert_eq!(out, Packet::new().with(g, 7));
    }

    #[test]
    fn assignment_then_test_is_resolved() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let prog = Prog::assign(f, 3).seq(Prog::test(f, 3));
        let fdd = mgr.compile(&prog).unwrap();
        assert_eq!(fdd, mgr.compile(&Prog::assign(f, 3)).unwrap());
        let contradiction = Prog::assign(f, 3).seq(Prog::test(f, 4));
        assert_eq!(mgr.compile(&contradiction).unwrap(), mgr.fail());
    }

    #[test]
    fn choice_of_choices_flattens_probabilities() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let inner = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 2), Prog::assign(f, 2));
        let outer = Prog::choice2(inner, Ratio::new(1, 2), Prog::assign(f, 1));
        let fdd = mgr.compile(&outer).unwrap();
        let d = mgr.eval(fdd, &Packet::new());
        assert_eq!(d.prob(&Action::assign(f, 1)), Ratio::new(3, 4));
        assert_eq!(d.prob(&Action::assign(f, 2)), Ratio::new(1, 4));
    }
}
