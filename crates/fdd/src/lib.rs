//! Probabilistic forwarding decision diagrams: McNetKAT's native backend.
//!
//! This crate implements §5.1 of the paper: compilation of guarded
//! ProbNetKAT programs to hash-consed probabilistic FDDs, with `while`
//! loops solved in closed form via absorbing Markov chains (§4) over a
//! dynamically reduced symbolic-packet domain.
//!
//! # Pipeline (Figure 5)
//!
//! ```text
//! Prog ──compile──▶ probabilistic FDD ──(loops)──▶ sparse (I−Q)X=R solve
//!                        ▲                                   │
//!                        └──────────── rebuild ◀─────────────┘
//! ```
//!
//! # Examples
//!
//! ```
//! use mcnetkat_core::{Field, Packet, Pred, Prog};
//! use mcnetkat_fdd::Manager;
//! use mcnetkat_num::Ratio;
//!
//! let mgr = Manager::new();
//! let f = Field::named("doc_fdd_f");
//! // A loop that exits with probability 1: closed form, not approximation.
//! let body = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 2), Prog::skip());
//! let prog = Prog::while_(Pred::test(f, 0), body);
//! let fdd = mgr.compile(&prog)?;
//! assert_eq!(mgr.prob_delivery(fdd, &Packet::new()), Ratio::one());
//! # Ok::<(), mcnetkat_fdd::CompileError>(())
//! ```

#![forbid(unsafe_code)]

mod action;
mod budget;
mod compile;
mod export;
#[cfg(feature = "failpoints")]
pub mod failpoints;
mod loops;
mod manager;
mod matrix;
mod query;
mod sympkt;

pub use action::{Action, ActionDist};
pub use budget::{Budget, CancelToken};
pub use compile::{CompileError, CompileOptions, FallbackPolicy};
pub use export::FddExport;
pub(crate) use manager::Node;
#[cfg(feature = "audit")]
pub use manager::{AuditReport, AuditViolation};
pub use manager::{
    Fdd, GovernorGuard, LoopSolveStats, Manager, OpCacheEntry, OpCacheStats, ScratchField,
    SolveReport, WhileCacheStats,
};
pub use matrix::BigStepMatrix;
// Re-exported because `CompileError::Solver` carries it: downstream
// crates can match on solver failures without a direct linalg dependency.
pub use mcnetkat_linalg::LinalgError;
pub use query::{OutputDist, SymOutputDist};
pub use sympkt::{step, Domain, SymPkt};

/// Whether this build was compiled with the `audit` feature (and thus
/// pays for `Manager::audit`'s machinery — the method only exists under
/// the feature, so no intra-doc link — plus any downstream self-auditing
/// compile hooks). Release benches assert this is `false` so the auditor
/// can never silently tax a measured hot path.
pub const AUDIT_ENABLED: bool = cfg!(feature = "audit");

/// Whether this build was compiled with the `failpoints` feature (and thus
/// carries the deterministic fault-injection registry in the `failpoints`
/// module — which only exists under the feature, so no intra-doc link).
/// Release benches assert this is `false`, exactly like
/// [`AUDIT_ENABLED`], so injected faults and their bookkeeping can never
/// leak into a measured hot path.
pub const FAILPOINTS_ENABLED: bool = cfg!(feature = "failpoints");
