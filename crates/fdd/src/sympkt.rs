//! Symbolic packets: the dynamic domain reduction of §5.1.
//!
//! A symbolic packet assigns *some* fields concrete values; every other
//! field carries the wildcard `*`, which stands for "any value not
//! explicitly represented" — equivalently, "whatever the field held on
//! input". Because FDD tests only mention explicitly-represented values, a
//! wildcard field fails every test, so a symbolic packet soundly represents
//! an equivalence class of concrete packets.

use crate::{Action, ActionDist};
use mcnetkat_core::{Field, Packet, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A symbolic packet: concrete values for some fields, `*` for the rest.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SymPkt {
    entries: Vec<(Field, Value)>,
}

impl SymPkt {
    /// The all-wildcard symbolic packet.
    pub fn star() -> SymPkt {
        SymPkt::default()
    }

    /// Builds from concrete `(field, value)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (Field, Value)>>(pairs: I) -> SymPkt {
        let mut entries: Vec<(Field, Value)> = pairs.into_iter().collect();
        entries.sort_unstable_by_key(|&(f, _)| f);
        entries.dedup_by_key(|&mut (f, _)| f);
        SymPkt { entries }
    }

    /// The concrete value of `f`, or `None` for the wildcard.
    pub fn get(&self, f: Field) -> Option<Value> {
        self.entries
            .binary_search_by_key(&f, |&(g, _)| g)
            .ok()
            .map(|ix| self.entries[ix].1)
    }

    /// Returns a copy with `f` set to the concrete value `v`.
    pub fn with(&self, f: Field, v: Value) -> SymPkt {
        let mut out = self.clone();
        match out.entries.binary_search_by_key(&f, |&(g, _)| g) {
            Ok(ix) => out.entries[ix].1 = v,
            Err(ix) => out.entries.insert(ix, (f, v)),
        }
        out
    }

    /// Whether the test `f = v` succeeds. Wildcards fail every test (sound
    /// as long as `v` ranges over the explicitly represented values).
    pub fn test(&self, f: Field, v: Value) -> bool {
        self.get(f) == Some(v)
    }

    /// Applies an FDD action; `None` means dropped.
    pub fn apply(&self, action: &Action) -> Option<SymPkt> {
        match action {
            Action::Drop => None,
            Action::Mods(mods) => {
                let mut out = self.clone();
                for &(f, v) in mods {
                    out = out.with(f, v);
                }
                Some(out)
            }
        }
    }

    /// The modifications needed to turn an input in this packet's class
    /// into this packet: one `f <- v` per concrete field.
    pub fn as_action(&self) -> Action {
        Action::Mods(self.entries.clone())
    }

    /// Iterates over the concrete fields.
    pub fn iter(&self) -> impl Iterator<Item = (Field, Value)> + '_ {
        self.entries.iter().copied()
    }

    /// Refines a concrete packet from this class: applies the concrete
    /// fields on top of `base`.
    pub fn concretize(&self, base: &Packet) -> Packet {
        let mut out = base.clone();
        for &(f, v) in &self.entries {
            out.set(f, v);
        }
        out
    }
}

impl fmt::Display for SymPkt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return write!(f, "⟨*⟩");
        }
        write!(f, "⟨")?;
        for (i, (field, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{field}={v}")?;
        }
        write!(f, "⟩")
    }
}

/// The per-field value sets discovered by traversing FDDs — the "dynamic
/// domain" of §5.1. `tested` drives input-class enumeration; `modified`
/// only ever appears in outputs.
#[derive(Clone, Debug, Default)]
pub struct Domain {
    /// Values each field is tested against.
    pub tested: BTreeMap<Field, Vec<Value>>,
}

impl Domain {
    /// Creates an empty domain.
    pub fn new() -> Domain {
        Domain::default()
    }

    /// Records that `f` is tested against `v`.
    pub fn add_test(&mut self, f: Field, v: Value) {
        let values = self.tested.entry(f).or_default();
        if let Err(ix) = values.binary_search(&v) {
            values.insert(ix, v);
        }
    }

    /// Number of input equivalence classes: `Π (|tested(f)| + 1)`.
    pub fn class_count(&self) -> usize {
        self.tested
            .values()
            .map(|vs| vs.len() + 1)
            .try_fold(1usize, |acc, k| acc.checked_mul(k))
            .unwrap_or(usize::MAX)
    }

    /// Enumerates all input classes as symbolic packets (wildcards stand
    /// for "any untested value").
    pub fn input_classes(&self) -> Vec<SymPkt> {
        let mut classes = vec![SymPkt::star()];
        for (&f, values) in &self.tested {
            let mut next = Vec::with_capacity(classes.len() * (values.len() + 1));
            for class in &classes {
                for &v in values {
                    next.push(class.with(f, v));
                }
                next.push(class.clone()); // the * option
            }
            classes = next;
        }
        classes
    }

    /// Merges another domain into this one.
    pub fn merge(&mut self, other: &Domain) {
        for (&f, values) in &other.tested {
            for &v in values {
                self.add_test(f, v);
            }
        }
    }
}

/// Evaluates an action distribution on a symbolic packet, producing the
/// distribution over successor symbolic packets (`None` = dropped).
pub fn step(dist: &ActionDist, pk: &SymPkt) -> Vec<(Option<SymPkt>, mcnetkat_num::Ratio)> {
    dist.iter().map(|(a, r)| (pk.apply(a), r.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnetkat_num::Ratio;

    fn fields() -> (Field, Field) {
        (Field::named("sym_f"), Field::named("sym_g"))
    }

    #[test]
    fn star_fails_all_tests() {
        let (f, _) = fields();
        let pk = SymPkt::star();
        assert!(!pk.test(f, 0));
        assert!(!pk.test(f, 1));
    }

    #[test]
    fn concrete_tests_resolve() {
        let (f, g) = fields();
        let pk = SymPkt::from_pairs([(f, 1)]);
        assert!(pk.test(f, 1));
        assert!(!pk.test(f, 2));
        assert!(!pk.test(g, 1));
    }

    #[test]
    fn apply_mods_sets_fields() {
        let (f, g) = fields();
        let pk = SymPkt::star().with(f, 1);
        let out = pk.apply(&Action::mods([(g, 2)])).unwrap();
        assert_eq!(out.get(f), Some(1));
        assert_eq!(out.get(g), Some(2));
        assert_eq!(pk.apply(&Action::Drop), None);
    }

    #[test]
    fn input_classes_enumerate_product() {
        let (f, g) = fields();
        let mut dom = Domain::new();
        dom.add_test(f, 1);
        dom.add_test(f, 2);
        dom.add_test(g, 7);
        assert_eq!(dom.class_count(), 6);
        let classes = dom.input_classes();
        assert_eq!(classes.len(), 6);
        // All classes are distinct.
        let set: std::collections::BTreeSet<_> = classes.iter().cloned().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn step_distributes_over_actions() {
        let (f, _) = fields();
        let dist = ActionDist::from_pairs([
            (Action::assign(f, 1), Ratio::new(1, 2)),
            (Action::Drop, Ratio::new(1, 2)),
        ]);
        let outs = step(&dist, &SymPkt::star());
        assert_eq!(outs.len(), 2);
        assert!(outs.iter().any(|(o, _)| o.is_none()));
        assert!(outs
            .iter()
            .any(|(o, _)| o.as_ref().is_some_and(|p| p.get(f) == Some(1))));
    }

    #[test]
    fn concretize_overlays_base() {
        let (f, g) = fields();
        let base = Packet::new().with(g, 9);
        let sym = SymPkt::from_pairs([(f, 1)]);
        let pk = sym.concretize(&base);
        assert_eq!(pk.get(f), 1);
        assert_eq!(pk.get(g), 9);
    }
}
