//! Verification queries over compiled FDDs: output distributions,
//! program equivalence (`≡`), refinement (`≤`), and expectations.
//!
//! Equivalence and refinement enumerate the input equivalence classes of
//! both diagrams (dynamic domain reduction) and compare the induced output
//! distributions exactly, using rational arithmetic throughout. This is
//! complete: two guarded programs are equivalent iff they agree on every
//! input class (Corollary 3.2 specialised to single packets).

use crate::{Fdd, Manager, SymPkt};
use mcnetkat_core::Packet;
use mcnetkat_num::Ratio;
use std::collections::BTreeMap;

/// A distribution over single-packet outcomes (`None` = dropped),
/// with exact probabilities.
pub type OutputDist = BTreeMap<Option<Packet>, Ratio>;

/// A distribution over symbolic outcomes for one input class.
pub type SymOutputDist = BTreeMap<Option<SymPkt>, Ratio>;

impl Manager {
    /// The output distribution of `p` on the concrete input packet `pk`.
    pub fn output_dist(&self, p: Fdd, pk: &Packet) -> OutputDist {
        let mut out = OutputDist::new();
        for (action, r) in self.eval_shared(p, pk).iter() {
            let slot = out.entry(action.apply(pk)).or_insert_with(Ratio::zero);
            *slot += r;
        }
        out
    }

    /// The symbolic output distribution of `p` on an input class.
    pub fn sym_output_dist(&self, p: Fdd, class: &SymPkt) -> SymOutputDist {
        let mut out = SymOutputDist::new();
        for (action, r) in self.eval_sym_shared(p, class).iter() {
            let slot = out.entry(class.apply(action)).or_insert_with(Ratio::zero);
            *slot += r;
        }
        out
    }

    /// Probability that `p` on input `pk` delivers a packet satisfying
    /// `accept`.
    pub fn prob_matching(&self, p: Fdd, pk: &Packet, accept: &mcnetkat_core::Pred) -> Ratio {
        self.output_dist(p, pk)
            .into_iter()
            .filter_map(|(o, r)| match o {
                Some(out) if accept.eval(&out) => Some(r),
                _ => None,
            })
            .sum()
    }

    /// Probability that `p` delivers (does not drop) the input packet.
    pub fn prob_delivery(&self, p: Fdd, pk: &Packet) -> Ratio {
        self.output_dist(p, pk)
            .into_iter()
            .filter_map(|(o, r)| o.is_some().then_some(r))
            .sum()
    }

    /// Expected value of `f` over the output distribution on `pk`.
    pub fn expectation(&self, p: Fdd, pk: &Packet, f: impl Fn(Option<&Packet>) -> f64) -> f64 {
        self.output_dist(p, pk)
            .into_iter()
            .map(|(o, r)| f(o.as_ref()) * r.to_f64())
            .sum()
    }

    /// The joint input classes of two diagrams.
    fn joint_classes(&self, p: Fdd, q: Fdd) -> Vec<SymPkt> {
        let mut dom = self.domain(p);
        dom.merge(&self.domain(q));
        dom.input_classes()
    }

    /// Exact program equivalence `p ≡ q` (Corollary 3.2).
    ///
    /// Hash-consing makes identical diagrams pointer-equal, which is the
    /// fast path; otherwise every joint input class is compared.
    pub fn equiv(&self, p: Fdd, q: Fdd) -> bool {
        if p == q {
            return true;
        }
        self.joint_classes(p, q)
            .iter()
            .all(|class| self.sym_output_dist(p, class) == self.sym_output_dist(q, class))
    }

    /// Probabilistic refinement `p ≤ q`: for every input class and every
    /// *delivered* output, `q` assigns at least as much probability as `p`
    /// (the order used for `M̂(p) < M̂(p̂)` in §2/§7).
    pub fn less_eq(&self, p: Fdd, q: Fdd) -> bool {
        self.joint_classes(p, q).iter().all(|class| {
            let dp = self.sym_output_dist(p, class);
            let dq = self.sym_output_dist(q, class);
            dp.iter().all(|(o, rp)| match o {
                None => true,
                Some(_) => dq.get(o).map_or(rp.is_zero(), |rq| rp <= rq),
            })
        })
    }

    /// Strict refinement: `p ≤ q` and not `q ≤ p`.
    pub fn less(&self, p: Fdd, q: Fdd) -> bool {
        self.less_eq(p, q) && !self.less_eq(q, p)
    }

    /// Equivalence up to a per-outcome tolerance `eps`.
    ///
    /// The native pipeline solves large loops with the 64-bit-float
    /// backend (as the paper does with UMFPACK); this comparison absorbs
    /// the resulting rounding noise. Genuine behavioural differences in
    /// network models are many orders of magnitude above any sensible
    /// `eps`.
    pub fn equiv_within(&self, p: Fdd, q: Fdd, eps: f64) -> bool {
        if p == q {
            return true;
        }
        self.joint_classes(p, q).iter().all(|class| {
            let dp = self.sym_output_dist(p, class);
            let dq = self.sym_output_dist(q, class);
            let keys: std::collections::BTreeSet<_> = dp.keys().chain(dq.keys()).cloned().collect();
            keys.into_iter().all(|o| {
                let a = dp.get(&o).map_or(0.0, Ratio::to_f64);
                let b = dq.get(&o).map_or(0.0, Ratio::to_f64);
                (a - b).abs() <= eps
            })
        })
    }

    /// Refinement up to a per-outcome tolerance `eps` (see
    /// [`Manager::equiv_within`]).
    pub fn less_eq_within(&self, p: Fdd, q: Fdd, eps: f64) -> bool {
        self.joint_classes(p, q).iter().all(|class| {
            let dp = self.sym_output_dist(p, class);
            let dq = self.sym_output_dist(q, class);
            dp.iter().all(|(o, rp)| match o {
                None => true,
                Some(_) => {
                    let q_prob = dq.get(o).map_or(0.0, Ratio::to_f64);
                    rp.to_f64() <= q_prob + eps
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnetkat_core::{Field, Pred, Prog};

    fn mgr_and_fields() -> (Manager, Field, Field) {
        (Manager::new(), Field::named("qr_f"), Field::named("qr_g"))
    }

    #[test]
    fn output_dist_concrete() {
        let (mgr, f, _) = mgr_and_fields();
        let p = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 3), Prog::drop());
        let fdd = mgr.compile(&p).unwrap();
        let d = mgr.output_dist(fdd, &Packet::new());
        assert_eq!(d[&Some(Packet::new().with(f, 1))], Ratio::new(1, 3));
        assert_eq!(d[&None], Ratio::new(2, 3));
        assert_eq!(mgr.prob_delivery(fdd, &Packet::new()), Ratio::new(1, 3));
    }

    #[test]
    fn equivalence_of_syntactically_different_programs() {
        let (mgr, f, g) = mgr_and_fields();
        // f<-1; g<-2  ≡  g<-2; f<-1
        let a = mgr
            .compile(&Prog::assign(f, 1).seq(Prog::assign(g, 2)))
            .unwrap();
        let b = mgr
            .compile(&Prog::assign(g, 2).seq(Prog::assign(f, 1)))
            .unwrap();
        assert!(mgr.equiv(a, b));
    }

    #[test]
    fn equivalence_distinguishes_programs() {
        let (mgr, f, _) = mgr_and_fields();
        let a = mgr.compile(&Prog::assign(f, 1)).unwrap();
        let b = mgr.compile(&Prog::assign(f, 2)).unwrap();
        assert!(!mgr.equiv(a, b));
    }

    #[test]
    fn choice_probabilities_matter_for_equiv() {
        let (mgr, f, _) = mgr_and_fields();
        let p = |r: Ratio| Prog::choice2(Prog::assign(f, 1), r, Prog::assign(f, 2));
        let a = mgr.compile(&p(Ratio::new(1, 2))).unwrap();
        let b = mgr.compile(&p(Ratio::new(1, 2))).unwrap();
        let c = mgr.compile(&p(Ratio::new(1, 3))).unwrap();
        assert!(mgr.equiv(a, b));
        assert!(!mgr.equiv(a, c));
    }

    #[test]
    fn mod_to_tested_value_equals_skip_on_that_class() {
        let (mgr, f, _) = mgr_and_fields();
        // if f=1 then f<-1 else drop ≡ f=1 (filter)
        let a = mgr
            .compile(&Prog::ite(
                Pred::test(f, 1),
                Prog::assign(f, 1),
                Prog::drop(),
            ))
            .unwrap();
        let b = mgr.compile(&Prog::test(f, 1)).unwrap();
        assert!(mgr.equiv(a, b));
    }

    #[test]
    fn refinement_orders_lossy_programs() {
        let (mgr, f, _) = mgr_and_fields();
        let flaky = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 2), Prog::drop());
        let reliable = Prog::assign(f, 1);
        let a = mgr.compile(&flaky).unwrap();
        let b = mgr.compile(&reliable).unwrap();
        assert!(mgr.less_eq(a, b));
        assert!(!mgr.less_eq(b, a));
        assert!(mgr.less(a, b));
        assert!(mgr.less_eq(mgr.fail(), a));
    }

    #[test]
    fn refinement_is_reflexive() {
        let (mgr, f, _) = mgr_and_fields();
        let a = mgr
            .compile(&Prog::choice2(
                Prog::assign(f, 1),
                Ratio::new(1, 4),
                Prog::drop(),
            ))
            .unwrap();
        assert!(mgr.less_eq(a, a));
        assert!(!mgr.less(a, a));
    }

    #[test]
    fn incomparable_programs() {
        let (mgr, f, _) = mgr_and_fields();
        let a = mgr.compile(&Prog::assign(f, 1)).unwrap();
        let b = mgr.compile(&Prog::assign(f, 2)).unwrap();
        assert!(!mgr.less_eq(a, b));
        assert!(!mgr.less_eq(b, a));
    }

    #[test]
    fn expectation_weights_outputs() {
        let (mgr, f, _) = mgr_and_fields();
        let p = Prog::choice2(Prog::assign(f, 10), Ratio::new(1, 2), Prog::assign(f, 20));
        let fdd = mgr.compile(&p).unwrap();
        let e = mgr.expectation(fdd, &Packet::new(), |o| {
            o.map_or(0.0, |pk| pk.get(f) as f64)
        });
        assert!((e - 15.0).abs() < 1e-12);
    }
}
