//! Hash-consed probabilistic FDDs and their core algorithms.
//!
//! A probabilistic FDD (§5.1) is a rooted DAG whose interior nodes test
//! `field = value` and whose leaves hold distributions over [`Action`]s. It
//! represents a function `Pk → D(Pk + ∅)` — equivalently a stochastic
//! matrix over `Pk + ∅` — compactly, like a BDD represents a Boolean
//! function.
//!
//! Ordering invariant (inherited from deterministic FDDs): interior tests
//! are ordered by `(field, value)`; the true-branch of a `f = v` test never
//! tests `f` again, and the false-branch only tests `f` against larger
//! values. Together with hash-consing this makes structurally equal FDDs
//! pointer-equal.

use crate::compile::OptsKey;
use crate::{Action, ActionDist, Domain, SymPkt};
use mcnetkat_core::{Field, Packet, Value};
use mcnetkat_num::Ratio;
use parking_lot::Mutex;
use std::collections::HashMap;

/// A handle to a hash-consed FDD node, valid within its [`Manager`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fdd(u32);

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) enum Node {
    Leaf(ActionDist),
    Branch {
        field: Field,
        value: Value,
        hi: Fdd,
        lo: Fdd,
    },
}

#[derive(Default)]
struct Inner {
    nodes: Vec<Node>,
    consed: HashMap<Node, Fdd>,
    seq_cache: HashMap<(Fdd, Fdd), Fdd>,
    sum_cache: HashMap<(Fdd, Fdd), Fdd>,
    ite_cache: HashMap<(Fdd, Fdd, Fdd), Fdd>,
    restrict_eq_cache: HashMap<(Fdd, Field, Value), Fdd>,
    restrict_ne_cache: HashMap<(Fdd, Field, Value), Fdd>,
    scale_cache: HashMap<(Fdd, Ratio), Fdd>,
    prepend_cache: HashMap<(Fdd, Action), Fdd>,
    // Memoised `while`-loop solutions (see `Manager::while_loop`). The key
    // must include every option that can change the result: `state_limit`
    // bounds which loops solve at all, and `backend`/`exact_threshold`
    // select the arithmetic, so the same (guard, body) can legitimately
    // yield different diagrams under different options.
    while_cache: HashMap<(Fdd, Fdd, OptsKey), Fdd>,
    while_hits: u64,
    while_misses: u64,
}

/// Hit/miss counters for the manager's `while`-loop solution cache.
///
/// Returned by [`Manager::while_cache_stats`]; benchmarks use it to report
/// how much loop solving was skipped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WhileCacheStats {
    /// Loops answered from the cache.
    pub hits: u64,
    /// Loops that had to be solved.
    pub misses: u64,
    /// Distinct (guard, body, options) keys currently cached.
    pub entries: usize,
}

/// An FDD store: owns the node table, the hash-cons map, and the operation
/// caches.
///
/// Handles from different managers must not be mixed; use
/// [`crate::FddExport`] to move diagrams between managers (that is how the
/// parallel backend ships per-switch FDDs between workers).
///
/// # Examples
///
/// ```
/// use mcnetkat_fdd::{ActionDist, Manager};
/// let mgr = Manager::new();
/// let t = mgr.leaf(ActionDist::skip());
/// let d = mgr.leaf(ActionDist::drop());
/// assert_ne!(t, d);
/// assert_eq!(mgr.leaf(ActionDist::skip()), t); // hash-consed
/// ```
pub struct Manager {
    inner: Mutex<Inner>,
}

impl Default for Manager {
    fn default() -> Self {
        Manager::new()
    }
}

fn var_of(node: &Node) -> Option<(Field, Value)> {
    match node {
        Node::Leaf(_) => None,
        Node::Branch { field, value, .. } => Some((*field, *value)),
    }
}

impl Manager {
    /// Creates an empty manager.
    pub fn new() -> Manager {
        Manager {
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Number of distinct nodes allocated so far.
    pub fn node_count(&self) -> usize {
        self.inner.lock().nodes.len()
    }

    /// Creates (or reuses) a leaf node.
    pub fn leaf(&self, dist: ActionDist) -> Fdd {
        let mut inner = self.inner.lock();
        inner.mk_leaf(dist)
    }

    /// The always-pass FDD (predicate "true").
    pub fn pass(&self) -> Fdd {
        self.leaf(ActionDist::skip())
    }

    /// The always-drop FDD (predicate "false").
    pub fn fail(&self) -> Fdd {
        self.leaf(ActionDist::drop())
    }

    /// Creates (or reuses) a branch testing `field = value`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the ordering invariant would be violated.
    pub fn branch(&self, field: Field, value: Value, hi: Fdd, lo: Fdd) -> Fdd {
        let mut inner = self.inner.lock();
        inner.mk_branch(field, value, hi, lo)
    }

    /// Sequential composition of two FDDs (matrix product `B⟦p;q⟧`).
    pub fn seq(&self, p: Fdd, q: Fdd) -> Fdd {
        let mut inner = self.inner.lock();
        inner.seq(p, q)
    }

    /// Pointwise sum of two (sub-)distribution FDDs.
    pub fn sum(&self, p: Fdd, q: Fdd) -> Fdd {
        let mut inner = self.inner.lock();
        inner.sum(p, q)
    }

    /// Scales all leaf probabilities by `r`.
    pub fn scale(&self, p: Fdd, r: &Ratio) -> Fdd {
        let mut inner = self.inner.lock();
        inner.scale(p, r)
    }

    /// Conditional `if t then p else q` where `t` is a predicate FDD
    /// (every leaf pass or drop).
    ///
    /// # Panics
    ///
    /// Panics if a leaf of `t` is not deterministic pass/drop.
    pub fn ite(&self, t: Fdd, p: Fdd, q: Fdd) -> Fdd {
        let mut inner = self.inner.lock();
        inner.ite(t, p, q)
    }

    /// Convex combination `Σ rᵢ · pᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if the weights do not sum to 1.
    pub fn convex(&self, branches: &[(Fdd, Ratio)]) -> Fdd {
        let total: Ratio = branches.iter().map(|(_, r)| r.clone()).sum();
        assert!(total == Ratio::one(), "convex weights sum to {total}");
        let mut inner = self.inner.lock();
        let mut acc = inner.mk_leaf(ActionDist::zero());
        for (p, r) in branches {
            let scaled = inner.scale(*p, r);
            acc = inner.sum(acc, scaled);
        }
        acc
    }

    /// Partial evaluation under the assumption `f = v`.
    pub fn restrict_eq(&self, p: Fdd, f: Field, v: Value) -> Fdd {
        let mut inner = self.inner.lock();
        inner.restrict_eq(p, f, v)
    }

    /// Partial evaluation under the assumption `f ≠ v`.
    pub fn restrict_ne(&self, p: Fdd, f: Field, v: Value) -> Fdd {
        let mut inner = self.inner.lock();
        inner.restrict_ne(p, f, v)
    }

    /// Evaluates the FDD on a concrete packet.
    pub fn eval(&self, p: Fdd, pk: &Packet) -> ActionDist {
        let inner = self.inner.lock();
        let mut cur = p;
        loop {
            match &inner.nodes[cur.0 as usize] {
                Node::Leaf(d) => return d.clone(),
                Node::Branch {
                    field,
                    value,
                    hi,
                    lo,
                } => {
                    cur = if pk.matches(*field, *value) { *hi } else { *lo };
                }
            }
        }
    }

    /// Evaluates the FDD on a symbolic packet (wildcards fail all tests).
    pub fn eval_sym(&self, p: Fdd, pk: &SymPkt) -> ActionDist {
        let inner = self.inner.lock();
        let mut cur = p;
        loop {
            match &inner.nodes[cur.0 as usize] {
                Node::Leaf(d) => return d.clone(),
                Node::Branch {
                    field,
                    value,
                    hi,
                    lo,
                } => {
                    cur = if pk.test(*field, *value) { *hi } else { *lo };
                }
            }
        }
    }

    /// Collects the tested fields/values of the diagram into a [`Domain`].
    pub fn domain(&self, p: Fdd) -> Domain {
        let inner = self.inner.lock();
        let mut dom = Domain::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![p];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            if let Node::Branch {
                field,
                value,
                hi,
                lo,
            } = &inner.nodes[x.0 as usize]
            {
                dom.add_test(*field, *value);
                stack.push(*hi);
                stack.push(*lo);
            }
        }
        dom
    }

    /// Number of reachable nodes (a size metric for benchmarks).
    pub fn reachable_size(&self, p: Fdd) -> usize {
        let inner = self.inner.lock();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![p];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            if let Node::Branch { hi, lo, .. } = &inner.nodes[x.0 as usize] {
                stack.push(*hi);
                stack.push(*lo);
            }
        }
        seen.len()
    }

    /// Whether `p` is a predicate diagram: every leaf pass or drop.
    pub fn is_predicate(&self, p: Fdd) -> bool {
        let inner = self.inner.lock();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![p];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            match &inner.nodes[x.0 as usize] {
                Node::Leaf(d) => {
                    if !d.is_skip() && !d.is_drop() {
                        return false;
                    }
                }
                Node::Branch { hi, lo, .. } => {
                    stack.push(*hi);
                    stack.push(*lo);
                }
            }
        }
        true
    }

    pub(crate) fn node(&self, p: Fdd) -> Node {
        self.inner.lock().nodes[p.0 as usize].clone()
    }

    /// Looks up a memoised `while`-loop solution, counting the outcome.
    pub(crate) fn while_cache_lookup(&self, guard: Fdd, body: Fdd, key: &OptsKey) -> Option<Fdd> {
        let mut inner = self.inner.lock();
        match inner.while_cache.get(&(guard, body, key.clone())).copied() {
            Some(hit) => {
                inner.while_hits += 1;
                Some(hit)
            }
            None => {
                inner.while_misses += 1;
                None
            }
        }
    }

    /// Records a solved `while` loop in the memo cache.
    pub(crate) fn while_cache_store(&self, guard: Fdd, body: Fdd, key: OptsKey, result: Fdd) {
        self.inner
            .lock()
            .while_cache
            .insert((guard, body, key), result);
    }

    /// Hit/miss counters of the `while`-loop solution cache.
    pub fn while_cache_stats(&self) -> WhileCacheStats {
        let inner = self.inner.lock();
        WhileCacheStats {
            hits: inner.while_hits,
            misses: inner.while_misses,
            entries: inner.while_cache.len(),
        }
    }
}

impl Inner {
    fn cons(&mut self, node: Node) -> Fdd {
        if let Some(&id) = self.consed.get(&node) {
            return id;
        }
        let id = Fdd(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.consed.insert(node, id);
        id
    }

    fn mk_leaf(&mut self, dist: ActionDist) -> Fdd {
        self.cons(Node::Leaf(dist))
    }

    fn mk_branch(&mut self, field: Field, value: Value, hi: Fdd, lo: Fdd) -> Fdd {
        if hi == lo {
            return hi;
        }
        debug_assert!(
            {
                let ok_hi = match var_of(&self.nodes[hi.0 as usize]) {
                    None => true,
                    Some((f, _)) => f > field,
                };
                let ok_lo = match var_of(&self.nodes[lo.0 as usize]) {
                    None => true,
                    Some((f, v)) => (f, v) > (field, value),
                };
                ok_hi && ok_lo
            },
            "FDD ordering violated at ({field:?}, {value})"
        );
        self.cons(Node::Branch {
            field,
            value,
            hi,
            lo,
        })
    }

    fn restrict_eq(&mut self, p: Fdd, f: Field, v: Value) -> Fdd {
        let node = self.nodes[p.0 as usize].clone();
        let (field, value, hi, lo) = match node {
            Node::Leaf(_) => return p,
            Node::Branch {
                field,
                value,
                hi,
                lo,
            } => (field, value, hi, lo),
        };
        if field > f {
            return p;
        }
        let key = (p, f, v);
        if let Some(&hit) = self.restrict_eq_cache.get(&key) {
            return hit;
        }
        let result = if field < f {
            let nh = self.restrict_eq(hi, f, v);
            let nl = self.restrict_eq(lo, f, v);
            self.mk_branch(field, value, nh, nl)
        } else if value == v {
            hi // true-branch never tests `f` again
        } else {
            self.restrict_eq(lo, f, v)
        };
        self.restrict_eq_cache.insert(key, result);
        result
    }

    fn restrict_ne(&mut self, p: Fdd, f: Field, v: Value) -> Fdd {
        let node = self.nodes[p.0 as usize].clone();
        let (field, value, hi, lo) = match node {
            Node::Leaf(_) => return p,
            Node::Branch {
                field,
                value,
                hi,
                lo,
            } => (field, value, hi, lo),
        };
        if field > f || (field == f && value > v) {
            return p;
        }
        let key = (p, f, v);
        if let Some(&hit) = self.restrict_ne_cache.get(&key) {
            return hit;
        }
        let result = if field < f {
            let nh = self.restrict_ne(hi, f, v);
            let nl = self.restrict_ne(lo, f, v);
            self.mk_branch(field, value, nh, nl)
        } else if value == v {
            lo // the (f,v) test fails; lo never re-tests (f,v)
        } else {
            // field == f, value < v: keep the test, recurse on the lo side.
            let nl = self.restrict_ne(lo, f, v);
            self.mk_branch(field, value, hi, nl)
        };
        self.restrict_ne_cache.insert(key, result);
        result
    }

    fn scale(&mut self, p: Fdd, r: &Ratio) -> Fdd {
        if r.is_one() {
            return p;
        }
        let key = (p, r.clone());
        if let Some(&hit) = self.scale_cache.get(&key) {
            return hit;
        }
        let node = self.nodes[p.0 as usize].clone();
        let result = match node {
            Node::Leaf(d) => self.mk_leaf(d.scale(r)),
            Node::Branch {
                field,
                value,
                hi,
                lo,
            } => {
                let nh = self.scale(hi, r);
                let nl = self.scale(lo, r);
                self.mk_branch(field, value, nh, nl)
            }
        };
        self.scale_cache.insert(key, result);
        result
    }

    fn sum(&mut self, p: Fdd, q: Fdd) -> Fdd {
        let key = if p <= q { (p, q) } else { (q, p) };
        if let Some(&hit) = self.sum_cache.get(&key) {
            return hit;
        }
        let np = self.nodes[p.0 as usize].clone();
        let nq = self.nodes[q.0 as usize].clone();
        let result = match (var_of(&np), var_of(&nq)) {
            (None, None) => {
                let (Node::Leaf(dp), Node::Leaf(dq)) = (&np, &nq) else {
                    unreachable!()
                };
                self.mk_leaf(dp.sum(dq))
            }
            (vp, vq) => {
                let (f, v) = match (vp, vq) {
                    (Some(a), Some(b)) => a.min(b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => unreachable!(),
                };
                let ph = self.restrict_eq(p, f, v);
                let qh = self.restrict_eq(q, f, v);
                let pl = self.restrict_ne(p, f, v);
                let ql = self.restrict_ne(q, f, v);
                let hi = self.sum(ph, qh);
                let lo = self.sum(pl, ql);
                self.mk_branch(f, v, hi, lo)
            }
        };
        self.sum_cache.insert(key, result);
        result
    }

    fn ite(&mut self, t: Fdd, p: Fdd, q: Fdd) -> Fdd {
        let key = (t, p, q);
        if let Some(&hit) = self.ite_cache.get(&key) {
            return hit;
        }
        let nt = self.nodes[t.0 as usize].clone();
        let result = match &nt {
            Node::Leaf(d) if d.is_skip() => p,
            Node::Leaf(d) if d.is_drop() => q,
            Node::Leaf(d) => panic!("ite guard leaf is not deterministic: {d}"),
            Node::Branch { .. } => {
                let vt = var_of(&nt);
                let vp = var_of(&self.nodes[p.0 as usize]);
                let vq = var_of(&self.nodes[q.0 as usize]);
                let (f, v) = [vt, vp, vq].into_iter().flatten().min().unwrap();
                let th = self.restrict_eq(t, f, v);
                let ph = self.restrict_eq(p, f, v);
                let qh = self.restrict_eq(q, f, v);
                let tl = self.restrict_ne(t, f, v);
                let pl = self.restrict_ne(p, f, v);
                let ql = self.restrict_ne(q, f, v);
                let hi = self.ite(th, ph, qh);
                let lo = self.ite(tl, pl, ql);
                self.mk_branch(f, v, hi, lo)
            }
        };
        self.ite_cache.insert(key, result);
        result
    }

    /// Restricts `q` by the modifications of `mods` (partial evaluation),
    /// then prepends the modifications to every resulting action.
    fn action_then(&mut self, mods: &Action, q: Fdd) -> Fdd {
        match mods {
            Action::Drop => {
                let d = ActionDist::drop();
                self.mk_leaf(d)
            }
            Action::Mods(pairs) => {
                let mut restricted = q;
                for &(f, v) in pairs {
                    restricted = self.restrict_eq(restricted, f, v);
                }
                self.prepend(mods.clone(), restricted)
            }
        }
    }

    fn prepend(&mut self, mods: Action, q: Fdd) -> Fdd {
        if mods.is_skip() {
            return q;
        }
        let key = (q, mods.clone());
        if let Some(&hit) = self.prepend_cache.get(&key) {
            return hit;
        }
        let node = self.nodes[q.0 as usize].clone();
        let result = match node {
            Node::Leaf(d) => {
                let mapped = d.map_actions(|a| mods.then(a));
                self.mk_leaf(mapped)
            }
            Node::Branch {
                field,
                value,
                hi,
                lo,
            } => {
                let nh = self.prepend(mods.clone(), hi);
                let nl = self.prepend(mods.clone(), lo);
                self.mk_branch(field, value, nh, nl)
            }
        };
        self.prepend_cache.insert(key, result);
        result
    }

    fn seq(&mut self, p: Fdd, q: Fdd) -> Fdd {
        let key = (p, q);
        if let Some(&hit) = self.seq_cache.get(&key) {
            return hit;
        }
        let np = self.nodes[p.0 as usize].clone();
        let result = match np {
            Node::Leaf(d) => {
                let mut acc = self.mk_leaf(ActionDist::zero());
                for (action, r) in d.iter() {
                    let cont = self.action_then(action, q);
                    let scaled = self.scale(cont, r);
                    acc = self.sum(acc, scaled);
                }
                acc
            }
            Node::Branch {
                field,
                value,
                hi,
                lo,
            } => {
                // Compose the children, then re-introduce the path test via
                // `ite` so the constraint `field = value` (resp. `≠`) also
                // resolves the residual tests `q` contributes — the leaf
                // case only restricted `q` by the *modifications*, not by
                // the path.
                let nh = self.seq(hi, q);
                let nl = self.seq(lo, q);
                let pass = self.mk_leaf(ActionDist::skip());
                let fail = self.mk_leaf(ActionDist::drop());
                let test = self.mk_branch(field, value, pass, fail);
                self.ite(test, nh, nl)
            }
        };
        self.seq_cache.insert(key, result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> (Field, Field) {
        (Field::named("mgr_a"), Field::named("mgr_b"))
    }

    #[test]
    fn hash_consing_dedups() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let a = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        let b = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        assert_eq!(a, b);
    }

    #[test]
    fn equal_children_collapse() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let t = mgr.pass();
        assert_eq!(mgr.branch(f, 1, t, t), t);
    }

    #[test]
    fn eval_follows_branches() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let fdd = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        assert!(mgr.eval(fdd, &Packet::new().with(f, 1)).is_skip());
        assert!(mgr.eval(fdd, &Packet::new().with(f, 2)).is_drop());
        assert!(mgr.eval(fdd, &Packet::new()).is_drop());
    }

    #[test]
    fn restrict_eq_resolves_tests() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let fdd = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        assert_eq!(mgr.restrict_eq(fdd, f, 1), mgr.pass());
        assert_eq!(mgr.restrict_eq(fdd, f, 2), mgr.fail());
    }

    #[test]
    fn restrict_ne_removes_single_test() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let inner = mgr.branch(f, 2, mgr.pass(), mgr.fail());
        let fdd = mgr.branch(f, 1, mgr.fail(), inner);
        // Knowing f ≠ 1 discards the first test.
        assert_eq!(mgr.restrict_ne(fdd, f, 1), inner);
        // Knowing f ≠ 2 rewrites the inner test.
        let expect = mgr.branch(f, 1, mgr.fail(), mgr.fail());
        assert_eq!(mgr.restrict_ne(fdd, f, 2), expect);
    }

    #[test]
    fn seq_applies_mods_and_resolves_tests() {
        let mgr = Manager::new();
        let (f, _) = fields();
        // p = f<-1 ; q = (f=1 ? skip : drop). Sequencing resolves the test.
        let p = mgr.leaf(ActionDist::dirac(Action::assign(f, 1)));
        let q = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        let pq = mgr.seq(p, q);
        let d = mgr.eval(pq, &Packet::new());
        assert_eq!(d, ActionDist::dirac(Action::assign(f, 1)));
    }

    #[test]
    fn seq_drop_absorbs() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let p = mgr.fail();
        let q = mgr.leaf(ActionDist::dirac(Action::assign(f, 1)));
        assert_eq!(mgr.seq(p, q), mgr.fail());
        assert_eq!(mgr.seq(q, mgr.fail()), mgr.fail());
    }

    #[test]
    fn convex_combination_mixes_leaves() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let p = mgr.leaf(ActionDist::dirac(Action::assign(f, 1)));
        let q = mgr.leaf(ActionDist::dirac(Action::assign(f, 2)));
        let mix = mgr.convex(&[(p, Ratio::new(1, 4)), (q, Ratio::new(3, 4))]);
        let d = mgr.eval(mix, &Packet::new());
        assert_eq!(d.prob(&Action::assign(f, 1)), Ratio::new(1, 4));
        assert_eq!(d.prob(&Action::assign(f, 2)), Ratio::new(3, 4));
    }

    #[test]
    fn ite_selects_branches() {
        let mgr = Manager::new();
        let (f, g) = fields();
        let guard = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        let p = mgr.leaf(ActionDist::dirac(Action::assign(g, 10)));
        let q = mgr.leaf(ActionDist::dirac(Action::assign(g, 20)));
        let fdd = mgr.ite(guard, p, q);
        let d1 = mgr.eval(fdd, &Packet::new().with(f, 1));
        let d2 = mgr.eval(fdd, &Packet::new().with(f, 7));
        assert_eq!(d1, ActionDist::dirac(Action::assign(g, 10)));
        assert_eq!(d2, ActionDist::dirac(Action::assign(g, 20)));
    }

    #[test]
    fn ordering_keeps_fields_sorted() {
        let mgr = Manager::new();
        let (f, g) = fields();
        assert!(f < g);
        let inner_g = mgr.branch(g, 1, mgr.pass(), mgr.fail());
        let fdd = mgr.branch(f, 1, inner_g, mgr.fail());
        // Evaluation respects both tests.
        let pk = Packet::new().with(f, 1).with(g, 1);
        assert!(mgr.eval(fdd, &pk).is_skip());
        assert!(mgr.eval(fdd, &pk.with(g, 2)).is_drop());
    }

    #[test]
    fn seq_resolves_tests_via_path_not_just_mods() {
        // Regression: p tests f (without modifying it), q tests f again.
        // The composed diagram must resolve q's test from the *path*.
        let mgr = Manager::new();
        let (f, g) = fields();
        // p = if f=1 then g<-1 else g<-2 (no f mods)
        let p_hi = mgr.leaf(ActionDist::dirac(Action::assign(g, 1)));
        let p_lo = mgr.leaf(ActionDist::dirac(Action::assign(g, 2)));
        let p = mgr.branch(f, 1, p_hi, p_lo);
        // q = if f=1 then skip else drop
        let q = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        let pq = mgr.seq(p, q);
        // f=1 path survives with g<-1; f≠1 path is dropped by q.
        let d1 = mgr.eval(pq, &Packet::new().with(f, 1));
        assert_eq!(d1, ActionDist::dirac(Action::assign(g, 1)));
        let d2 = mgr.eval(pq, &Packet::new().with(f, 2));
        assert!(d2.is_drop());
        // And mods still win over path knowledge: p' = f=1 ; f<-2, then q.
        let assign_f2 = mgr.leaf(ActionDist::dirac(Action::assign(f, 2)));
        let p2 = mgr.branch(f, 1, assign_f2, mgr.fail());
        let p2q = mgr.seq(p2, q);
        assert!(mgr.eval(p2q, &Packet::new().with(f, 1)).is_drop());
    }

    #[test]
    fn domain_collects_tests() {
        let mgr = Manager::new();
        let (f, g) = fields();
        let inner = mgr.branch(g, 5, mgr.pass(), mgr.fail());
        let fdd = mgr.branch(f, 1, inner, mgr.fail());
        let dom = mgr.domain(fdd);
        assert_eq!(dom.tested[&f], vec![1]);
        assert_eq!(dom.tested[&g], vec![5]);
        assert_eq!(dom.class_count(), 4);
    }

    #[test]
    fn sym_eval_wildcard_takes_false_branches() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let fdd = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        assert!(mgr.eval_sym(fdd, &SymPkt::star()).is_drop());
        assert!(mgr.eval_sym(fdd, &SymPkt::from_pairs([(f, 1)])).is_skip());
    }

    #[test]
    fn is_predicate_detects_probabilistic_leaves() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let prob = mgr.convex(&[
            (mgr.pass(), Ratio::new(1, 2)),
            (mgr.fail(), Ratio::new(1, 2)),
        ]);
        assert!(mgr.is_predicate(mgr.pass()));
        assert!(mgr.is_predicate(mgr.branch(f, 1, mgr.pass(), mgr.fail())));
        assert!(!mgr.is_predicate(prob));
    }
}
