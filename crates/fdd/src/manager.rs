//! Hash-consed probabilistic FDDs and their core algorithms.
//!
//! A probabilistic FDD (§5.1) is a rooted DAG whose interior nodes test
//! `field = value` and whose leaves hold distributions over [`Action`]s. It
//! represents a function `Pk → D(Pk + ∅)` — equivalently a stochastic
//! matrix over `Pk + ∅` — compactly, like a BDD represents a Boolean
//! function.
//!
//! Ordering invariant (inherited from deterministic FDDs): interior tests
//! are ordered by `(field, value)`; the true-branch of a `f = v` test never
//! tests `f` again, and the false-branch only tests `f` against larger
//! values. Together with hash-consing this makes structurally equal FDDs
//! pointer-equal.
//!
//! # Leaf interning
//!
//! Leaf distributions are *interned* alongside nodes: a [`Node`] stores a
//! copyable [`DistId`] into a side table of `Arc<ActionDist>`s rather than
//! the distribution itself. This makes `Node` a `Copy` type — the
//! recursive combinators (`seq`, `sum`, `ite`, `restrict_*`, `scale`,
//! `prepend`) copy a handful of words per visited node instead of cloning
//! a `Vec<(Action, Ratio)>` — and lets distribution-level operations be
//! memoised on ids (`dist_sum`/`dist_scale`/`dist_then`). All interior
//! tables use the FxHash hasher: keys are trusted ids, so the DoS
//! resistance of SipHash buys nothing and costs measurably on every memo
//! lookup.

use crate::compile::OptsKey;
use crate::{Action, ActionDist, Budget, CompileError, Domain, SymPkt};
use fxhash::FxHashMap;
use mcnetkat_core::{Field, Packet, Value};
use mcnetkat_num::Ratio;
use parking_lot::Mutex;
use std::hash::Hash;
use std::sync::Arc;

/// A handle to a hash-consed FDD node, valid within its [`Manager`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fdd(u32);

/// A handle to an interned leaf distribution, valid within its [`Manager`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub(crate) struct DistId(u32);

/// A handle to an interned [`Action`], valid within its [`Manager`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
struct ActId(u32);

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum Node {
    Leaf(DistId),
    Branch {
        field: Field,
        value: Value,
        hi: Fdd,
        lo: Fdd,
    },
}

/// A memo table with hit/miss counters, behind the Fx hasher.
///
/// Capacity-bounded: when an insert would push the table past the
/// manager's `cache_capacity`, the whole table is cleared first
/// (clear-on-overflow — O(1) amortised, no LRU bookkeeping on the hot
/// path) and the dropped entries are counted as evictions. Memo tables
/// only cache *derivable* results, so clearing is always sound.
struct Cache<K, V> {
    map: FxHashMap<K, V>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K, V> Default for Cache<K, V> {
    fn default() -> Self {
        Cache {
            map: FxHashMap::default(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

impl<K: Eq + Hash, V: Copy> Cache<K, V> {
    fn get(&mut self, key: &K) -> Option<V> {
        match self.map.get(key) {
            Some(&v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: K, value: V, capacity: usize) {
        if self.map.len() >= capacity {
            self.evictions += self.map.len() as u64;
            self.map.clear();
        }
        self.map.insert(key, value);
    }

    fn reset(&mut self) {
        self.evictions += self.map.len() as u64;
        self.map.clear();
    }

    fn stats(&self, name: &'static str) -> OpCacheEntry {
        OpCacheEntry {
            name,
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
            evictions: self.evictions,
        }
    }
}

struct Inner {
    nodes: Vec<Node>,
    consed: Cache<Node, Fdd>,
    /// Interned leaf distributions; `DistId` indexes this table. The `Arc`
    /// lets readers hand distributions out without deep-cloning them while
    /// the manager lock is held.
    dists: Vec<Arc<ActionDist>>,
    dist_ids: FxHashMap<Arc<ActionDist>, DistId>,
    /// Running total of support entries across `dists` — the
    /// peak-dist-entry gauge (the store is append-only, so the running
    /// total *is* the peak).
    dist_entries: usize,
    /// Upper bound on each *operation* cache's entry count
    /// (clear-on-overflow; see [`Manager::set_cache_capacity`]). The
    /// hash-cons map and the dist/action identity tables are exempt:
    /// clearing them would duplicate nodes and break canonicity.
    cache_capacity: usize,
    /// Interned actions (the `prepend` modification sets), `Arc`-shared
    /// between the table and the id map like `dists`.
    actions: Vec<Arc<Action>>,
    action_ids: FxHashMap<Arc<Action>, ActId>,
    /// Distinguished leaves, created on first use (hot in `seq`).
    pass_leaf: Option<Fdd>,
    fail_leaf: Option<Fdd>,
    zero_leaf: Option<Fdd>,
    seq_cache: Cache<(Fdd, Fdd), Fdd>,
    sum_cache: Cache<(Fdd, Fdd), Fdd>,
    ite_cache: Cache<(Fdd, Fdd, Fdd), Fdd>,
    restrict_eq_cache: Cache<(Fdd, Field, Value), Fdd>,
    restrict_ne_cache: Cache<(Fdd, Field, Value), Fdd>,
    scale_cache: Cache<(Fdd, Ratio), Fdd>,
    prepend_cache: Cache<(Fdd, ActId), Fdd>,
    dist_sum_cache: Cache<(DistId, DistId), DistId>,
    dist_scale_cache: Cache<(DistId, Ratio), DistId>,
    dist_then_cache: Cache<(ActId, DistId), DistId>,
    // Memoised `while`-loop solutions (see `Manager::while_loop`). The key
    // must include every solver-configuration option: `state_limit` bounds
    // which loops solve at all, `backend`/`exact_threshold` select the
    // arithmetic, and `lumping` selects the quotienting strategy, so the
    // same (guard, body) can legitimately yield different diagrams under
    // different options. See `OptsKey` for the full rule.
    while_cache: Cache<(Fdd, Fdd, OptsKey), Fdd>,
    /// Cumulative absorbing-chain solve gauges (see `LoopSolveStats`).
    loop_stats: LoopSolveStats,
    /// Cumulative solver fallback-rung record (see `SolveReport`).
    solve_report: SolveReport,
    /// The installed resource governor, present only while a governed
    /// compile is in flight (see `Manager::govern`).
    governor: Option<Governor>,
}

/// The state of one governed compile: the budget under enforcement, a
/// poll counter that amortises the clock read, a refcount for nested
/// `Manager::govern` installs (the outermost budget wins), and the
/// latched abort error once a limit trips.
///
/// After a trip, recursive ops short-circuit to the fail leaf and skip
/// all op-cache inserts: the node table only ever receives well-formed
/// canonical nodes (so audits stay clean), while the memo tables never
/// record a truncated result (so a later retry recomputes honestly).
/// The truncated Ok results themselves never escape — every fallible
/// seam re-checks `Manager::governed_error` before returning.
struct Governor {
    budget: Budget,
    depth: u32,
    polls: u32,
    tripped: Option<CompileError>,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            nodes: Vec::new(),
            consed: Cache::default(),
            dists: Vec::new(),
            dist_ids: FxHashMap::default(),
            dist_entries: 0,
            cache_capacity: usize::MAX,
            actions: Vec::new(),
            action_ids: FxHashMap::default(),
            pass_leaf: None,
            fail_leaf: None,
            zero_leaf: None,
            seq_cache: Cache::default(),
            sum_cache: Cache::default(),
            ite_cache: Cache::default(),
            restrict_eq_cache: Cache::default(),
            restrict_ne_cache: Cache::default(),
            scale_cache: Cache::default(),
            prepend_cache: Cache::default(),
            dist_sum_cache: Cache::default(),
            dist_scale_cache: Cache::default(),
            dist_then_cache: Cache::default(),
            while_cache: Cache::default(),
            loop_stats: LoopSolveStats::default(),
            solve_report: SolveReport::default(),
            governor: None,
        }
    }
}

/// Cumulative gauges over every absorbing-chain solve this manager ran
/// (cache hits don't count — they skip the solve).
///
/// `lumped_blocks < transient_states` measures how much symmetry lumping
/// collapsed the chains; `sccs` counts components of the condensed
/// transient graphs (only the `SparseScc` backend reports blocks/SCCs —
/// other backends count each transient state as its own block).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoopSolveStats {
    /// Absorbing chains actually solved.
    pub solves: u64,
    /// Total transient states across all solves.
    pub transient_states: u64,
    /// Total states after symmetry lumping.
    pub lumped_blocks: u64,
    /// Total SCCs of the (quotiented) transient graphs.
    pub sccs: u64,
    /// Largest single chain solved (transient states).
    pub max_transient: usize,
    /// Solves that needed a no-lumping retry (fallback rung 2; see
    /// [`crate::FallbackPolicy`]).
    pub fallback_retries: u64,
    /// Solves that fell back to the dense exact reference (rung 3).
    pub dense_fallbacks: u64,
}

/// Cumulative record of which loop-solver fallback rungs fired and why
/// (see [`crate::FallbackPolicy`] for the rung order).
///
/// Returned by [`Manager::solve_report`]; `perf_profile` dumps the
/// counters into `BENCH_opcache.json` so a silent degradation to the
/// dense solver shows up in perf artifacts rather than hiding inside a
/// green timing number.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolveReport {
    /// Solves answered by the first-choice solver, no fallback needed.
    pub primary: u64,
    /// Solves that retried without lumping (rung 2) after the lumped
    /// sparse solve failed.
    pub lumping_retries: u64,
    /// Solves that reached the dense exact reference solver (rung 3).
    pub dense_fallbacks: u64,
    /// Solves where every rung the policy permitted failed — the error
    /// the caller saw is the last rung's.
    pub exhausted: u64,
    /// Bounded log (most recent solves dropped once full) of why each
    /// fallback rung fired.
    pub events: Vec<String>,
}

impl SolveReport {
    /// Total solves that degraded past the first-choice solver.
    pub fn total_fallbacks(&self) -> u64 {
        self.lumping_retries + self.dense_fallbacks
    }
}

/// A scratch field to existentially eliminate from a diagram, together
/// with the distribution its value is drawn from at diagram entry.
///
/// Used by [`Manager::eliminate`]. An empty `draw` declares the field
/// *write-only* scratch: leaf modifications are stripped, but a surviving
/// test panics (the old [`Manager::forget`] contract). A non-empty `draw`
/// must be a full distribution (mass exactly 1); surviving tests are then
/// resolved by convex-summing the branches with the draw's weights —
/// exactly `draw ; p` followed by projecting the field out.
///
/// `Eq`/`Hash` are structural (the [`mcnetkat_num::Ratio`] representation
/// is canonical), so a scratch-field list can key an incremental-compilation
/// cache: two hops with identical programs *and* identical scratch specs
/// compile to identical diagrams.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ScratchField {
    /// The field to eliminate.
    pub field: Field,
    /// Entry distribution over the field's values (empty = write-only).
    pub draw: Vec<(Value, Ratio)>,
}

impl ScratchField {
    /// A write-only scratch field: mods are stripped, tests panic.
    pub fn write_only(field: Field) -> ScratchField {
        ScratchField {
            field,
            draw: Vec::new(),
        }
    }

    /// A field drawn from an explicit distribution at entry.
    pub fn drawn(field: Field, draw: Vec<(Value, Ratio)>) -> ScratchField {
        ScratchField { field, draw }
    }

    /// A health flag: `1` with probability `p_up`, `0` otherwise — the
    /// shape of every `up_i`/`grp_j` draw in `mcnetkat-net`.
    pub fn bernoulli(field: Field, p_up: Ratio) -> ScratchField {
        let p_down = Ratio::one() - p_up.clone();
        ScratchField {
            field,
            draw: vec![(1, p_up), (0, p_down)],
        }
    }

    /// Total probability the draw assigns to `v`.
    fn prob_of(&self, v: Value) -> Ratio {
        self.draw
            .iter()
            .filter(|(u, _)| *u == v)
            .map(|(_, r)| r)
            .sum()
    }
}

/// Hit/miss counters for the manager's `while`-loop solution cache.
///
/// Returned by [`Manager::while_cache_stats`]; benchmarks use it to report
/// how much loop solving was skipped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WhileCacheStats {
    /// Loops answered from the cache.
    pub hits: u64,
    /// Loops that had to be solved.
    pub misses: u64,
    /// Distinct (guard, body, options) keys currently cached.
    pub entries: usize,
}

/// Hit/miss counters for one operation cache.
///
/// Part of [`OpCacheStats`]; see [`Manager::op_cache_stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpCacheEntry {
    /// Cache name (`"seq"`, `"cons"`, `"dist_sum"`, …).
    pub name: &'static str,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then stored) a result.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Entries discarded by clear-on-overflow (see
    /// [`Manager::set_cache_capacity`]) or [`Manager::reset_op_caches`].
    pub evictions: u64,
}

impl OpCacheEntry {
    /// Fraction of lookups answered from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A snapshot of every operation cache's counters.
///
/// Returned by [`Manager::op_cache_stats`]. The `cons` entry counts
/// hash-cons lookups (hits are structurally duplicate nodes); `dist_*`
/// entries count the distribution-level memos enabled by leaf interning.
#[derive(Clone, Debug, Default)]
pub struct OpCacheStats {
    /// Per-cache counters, in a stable reporting order.
    pub caches: Vec<OpCacheEntry>,
}

impl OpCacheStats {
    /// Looks up one cache's counters by name.
    pub fn get(&self, name: &str) -> Option<&OpCacheEntry> {
        self.caches.iter().find(|c| c.name == name)
    }

    /// Lookups answered from any cache, summed.
    pub fn total_hits(&self) -> u64 {
        self.caches.iter().map(|c| c.hits).sum()
    }

    /// Lookups that had to compute, summed over all caches.
    pub fn total_misses(&self) -> u64 {
        self.caches.iter().map(|c| c.misses).sum()
    }

    /// Entries discarded by clear-on-overflow or an explicit reset,
    /// summed over all caches — the gauge a long-lived engine watches to
    /// tell whether its [`Manager::set_cache_capacity`] bound is tight
    /// enough to matter.
    pub fn total_evictions(&self) -> u64 {
        self.caches.iter().map(|c| c.evictions).sum()
    }
}

/// An FDD store: owns the node table, the hash-cons map, and the operation
/// caches.
///
/// Handles from different managers must not be mixed; use
/// [`crate::FddExport`] to move diagrams between managers (that is how the
/// parallel backend ships per-switch FDDs between workers).
///
/// # Examples
///
/// ```
/// use mcnetkat_fdd::{ActionDist, Manager};
/// let mgr = Manager::new();
/// let t = mgr.leaf(ActionDist::skip());
/// let d = mgr.leaf(ActionDist::drop());
/// assert_ne!(t, d);
/// assert_eq!(mgr.leaf(ActionDist::skip()), t); // hash-consed
/// ```
pub struct Manager {
    inner: Mutex<Inner>,
}

impl Default for Manager {
    fn default() -> Self {
        Manager::new()
    }
}

fn var_of(node: &Node) -> Option<(Field, Value)> {
    match node {
        Node::Leaf(_) => None,
        Node::Branch { field, value, .. } => Some((*field, *value)),
    }
}

/// Explains how a `Branch { field, value, hi, lo }` node would break the
/// canonical FDD ordering, or `None` when it is well-ordered. The rule
/// (§5.1): the true branch never re-tests the same field (its root
/// variable must lie on a strictly greater field), and the false branch's
/// root variable must be strictly greater in the `(field, value)` order.
///
/// Shared between `mk_branch`'s construction-time `debug_assert!` and the
/// `audit` feature's full-table walk, so the two checks can never drift.
/// (Release builds without `audit` compile both callers out.)
#[cfg_attr(not(any(debug_assertions, feature = "audit")), allow(dead_code))]
fn branch_order_violation(
    nodes: &[Node],
    field: Field,
    value: Value,
    hi: Fdd,
    lo: Fdd,
) -> Option<String> {
    if let Some((f, v)) = var_of(&nodes[hi.0 as usize]) {
        if f <= field {
            return Some(format!(
                "true branch re-tests ({f:?}, {v}) — must test a strictly greater field"
            ));
        }
    }
    if let Some((f, v)) = var_of(&nodes[lo.0 as usize]) {
        if (f, v) <= (field, value) {
            return Some(format!(
                "false branch tests ({f:?}, {v}) — must be strictly greater in (field, value) order"
            ));
        }
    }
    None
}

/// Explains how a leaf distribution breaks `ite`'s deterministic-guard
/// contract (every guard leaf must be exactly pass or drop), or `None`
/// when the leaf is a valid guard. The same condition
/// [`Manager::is_predicate`] checks structurally over whole diagrams —
/// named here, like [`branch_order_violation`], so the construction-time
/// panic and the diagram-level audits state one rule, not two drifting
/// copies.
fn guard_leaf_violation(d: &ActionDist) -> Option<String> {
    if d.is_skip() || d.is_drop() {
        None
    } else {
        Some(format!(
            "guard leaf is not deterministic pass/drop: {d} — \
             the guard diagram is probabilistic"
        ))
    }
}

/// Aborts on a broken structural invariant with a uniform message shape.
/// Every named invariant helper (`branch_order_violation`,
/// `guard_leaf_violation`) panics through here, so grepping for
/// "FDD invariant" finds every construction-time invariant failure.
fn invariant_panic(invariant: &str, why: &str) -> ! {
    panic!("FDD invariant `{invariant}` violated: {why}")
}

impl Manager {
    /// Creates an empty manager.
    pub fn new() -> Manager {
        Manager {
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Creates an empty manager whose operation caches are bounded to
    /// `capacity` entries each (see [`Manager::set_cache_capacity`]).
    pub fn with_cache_capacity(capacity: usize) -> Manager {
        let mgr = Manager::new();
        mgr.set_cache_capacity(capacity);
        mgr
    }

    /// Bounds every *operation* cache (`seq`, `sum`, `ite`,
    /// `restrict_*`, `scale`, `prepend`, `dist_*`, `while`) to at most
    /// `capacity` entries. An insert that would exceed the bound clears
    /// the whole cache first (cheap clear-on-overflow, no LRU tracking);
    /// cleared entries are reported as `evictions` in
    /// [`Manager::op_cache_stats`]. The hash-cons map and the
    /// distribution/action intern tables are *not* bounded: they are
    /// identity tables, and clearing them would break node canonicity.
    ///
    /// The default is `usize::MAX` (unbounded) — the knob exists for
    /// long-lived managers (e.g. a shared manager serving many
    /// `while_loop` workflows) whose memo tables would otherwise grow
    /// without bound.
    pub fn set_cache_capacity(&self, capacity: usize) {
        self.inner.lock().cache_capacity = capacity.max(1);
    }

    /// Clears every operation cache immediately (counted as evictions).
    /// Node, distribution and action stores are untouched, so existing
    /// [`Fdd`] handles stay valid; only memoised op results are dropped.
    pub fn reset_op_caches(&self) {
        let mut inner = self.inner.lock();
        inner.seq_cache.reset();
        inner.sum_cache.reset();
        inner.ite_cache.reset();
        inner.restrict_eq_cache.reset();
        inner.restrict_ne_cache.reset();
        inner.scale_cache.reset();
        inner.prepend_cache.reset();
        inner.dist_sum_cache.reset();
        inner.dist_scale_cache.reset();
        inner.dist_then_cache.reset();
        inner.while_cache.reset();
    }

    /// Number of distinct nodes allocated so far.
    pub fn node_count(&self) -> usize {
        self.inner.lock().nodes.len()
    }

    /// Peak live node count. Node stores are append-only (operation-cache
    /// clears drop memo entries, never nodes), so the peak *is* the
    /// current count — this gauge exists so benchmarks state the metric
    /// they gate on explicitly.
    pub fn peak_live_nodes(&self) -> usize {
        self.node_count()
    }

    /// Peak total leaf-distribution support entries (the sum of
    /// `support_size()` over every interned distribution), maintained
    /// incrementally. Append-only like the node store, so peak = current.
    pub fn peak_dist_entries(&self) -> usize {
        self.inner.lock().dist_entries
    }

    /// Number of distinct leaf distributions interned so far.
    pub fn dist_count(&self) -> usize {
        self.inner.lock().dists.len()
    }

    /// Size metrics of the interned-distribution table:
    /// `(distributions, total support entries, largest single support)`.
    pub fn dist_table_stats(&self) -> (usize, usize, usize) {
        let inner = self.inner.lock();
        let (mut total, mut max) = (0usize, 0usize);
        for d in &inner.dists {
            let s = d.support_size();
            total += s;
            max = max.max(s);
        }
        (inner.dists.len(), total, max)
    }

    /// Creates (or reuses) a leaf node.
    pub fn leaf(&self, dist: ActionDist) -> Fdd {
        let mut inner = self.inner.lock();
        inner.mk_leaf(dist)
    }

    /// The always-pass FDD (predicate "true").
    pub fn pass(&self) -> Fdd {
        self.inner.lock().leaf_pass()
    }

    /// The always-drop FDD (predicate "false").
    pub fn fail(&self) -> Fdd {
        self.inner.lock().leaf_fail()
    }

    /// Creates (or reuses) a branch testing `field = value`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the ordering invariant would be violated.
    pub fn branch(&self, field: Field, value: Value, hi: Fdd, lo: Fdd) -> Fdd {
        let mut inner = self.inner.lock();
        inner.mk_branch(field, value, hi, lo)
    }

    /// Sequential composition of two FDDs (matrix product `B⟦p;q⟧`).
    pub fn seq(&self, p: Fdd, q: Fdd) -> Fdd {
        let mut inner = self.inner.lock();
        inner.seq(p, q)
    }

    /// Pointwise sum of two (sub-)distribution FDDs.
    pub fn sum(&self, p: Fdd, q: Fdd) -> Fdd {
        let mut inner = self.inner.lock();
        inner.sum(p, q)
    }

    /// Scales all leaf probabilities by `r`.
    pub fn scale(&self, p: Fdd, r: &Ratio) -> Fdd {
        let mut inner = self.inner.lock();
        inner.scale(p, r)
    }

    /// Conditional `if t then p else q` where `t` is a predicate FDD
    /// (every leaf pass or drop).
    ///
    /// # Panics
    ///
    /// Panics if a leaf of `t` is not deterministic pass/drop.
    pub fn ite(&self, t: Fdd, p: Fdd, q: Fdd) -> Fdd {
        let mut inner = self.inner.lock();
        inner.ite(t, p, q)
    }

    /// Convex combination `Σ rᵢ · pᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if the weights do not sum to 1.
    pub fn convex(&self, branches: &[(Fdd, Ratio)]) -> Fdd {
        let total: Ratio = branches.iter().map(|(_, r)| r).sum();
        assert!(total == Ratio::one(), "convex weights sum to {total}");
        let mut inner = self.inner.lock();
        let mut acc = inner.leaf_zero();
        for (p, r) in branches {
            let scaled = inner.scale(*p, r);
            acc = inner.sum(acc, scaled);
        }
        acc
    }

    /// Partial evaluation under the assumption `f = v`.
    pub fn restrict_eq(&self, p: Fdd, f: Field, v: Value) -> Fdd {
        let mut inner = self.inner.lock();
        inner.restrict_eq(p, f, v)
    }

    /// Partial evaluation under the assumption `f ≠ v`.
    pub fn restrict_ne(&self, p: Fdd, f: Field, v: Value) -> Fdd {
        let mut inner = self.inner.lock();
        inner.restrict_ne(p, f, v)
    }

    /// Evaluates the FDD on a concrete packet.
    pub fn eval(&self, p: Fdd, pk: &Packet) -> ActionDist {
        // The deep clone happens after the lock is released.
        self.eval_shared(p, pk).as_ref().clone()
    }

    /// Evaluates on a concrete packet, returning the interned distribution
    /// without deep-cloning it (the lock is released before returning).
    pub(crate) fn eval_shared(&self, p: Fdd, pk: &Packet) -> Arc<ActionDist> {
        let inner = self.inner.lock();
        let mut cur = p;
        loop {
            match inner.nodes[cur.0 as usize] {
                Node::Leaf(did) => return inner.dists[did.0 as usize].clone(),
                Node::Branch {
                    field,
                    value,
                    hi,
                    lo,
                } => {
                    cur = if pk.matches(field, value) { hi } else { lo };
                }
            }
        }
    }

    /// Evaluates the FDD on a symbolic packet (wildcards fail all tests).
    pub fn eval_sym(&self, p: Fdd, pk: &SymPkt) -> ActionDist {
        // The deep clone happens after the lock is released.
        self.eval_sym_shared(p, pk).as_ref().clone()
    }

    /// Evaluates on a symbolic packet, returning the interned distribution
    /// without deep-cloning it (the lock is released before returning).
    pub(crate) fn eval_sym_shared(&self, p: Fdd, pk: &SymPkt) -> Arc<ActionDist> {
        let inner = self.inner.lock();
        let mut cur = p;
        loop {
            match inner.nodes[cur.0 as usize] {
                Node::Leaf(did) => return inner.dists[did.0 as usize].clone(),
                Node::Branch {
                    field,
                    value,
                    hi,
                    lo,
                } => {
                    cur = if pk.test(field, value) { hi } else { lo };
                }
            }
        }
    }

    /// Collects the tested fields/values of the diagram into a [`Domain`].
    pub fn domain(&self, p: Fdd) -> Domain {
        let inner = self.inner.lock();
        let mut dom = Domain::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![p];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            if let Node::Branch {
                field,
                value,
                hi,
                lo,
            } = inner.nodes[x.0 as usize]
            {
                dom.add_test(field, value);
                stack.push(hi);
                stack.push(lo);
            }
        }
        dom
    }

    /// Number of reachable nodes (a size metric for benchmarks).
    pub fn reachable_size(&self, p: Fdd) -> usize {
        let inner = self.inner.lock();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![p];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            if let Node::Branch { hi, lo, .. } = inner.nodes[x.0 as usize] {
                stack.push(hi);
                stack.push(lo);
            }
        }
        seen.len()
    }

    /// Whether `p` is a predicate diagram: every leaf pass or drop.
    pub fn is_predicate(&self, p: Fdd) -> bool {
        let inner = self.inner.lock();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![p];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            match inner.nodes[x.0 as usize] {
                Node::Leaf(did) => {
                    let d = &inner.dists[did.0 as usize];
                    if !d.is_skip() && !d.is_drop() {
                        return false;
                    }
                }
                Node::Branch { hi, lo, .. } => {
                    stack.push(hi);
                    stack.push(lo);
                }
            }
        }
        true
    }

    pub(crate) fn node(&self, p: Fdd) -> Node {
        self.inner.lock().nodes[p.0 as usize]
    }

    /// The interned distribution behind a leaf id.
    pub(crate) fn leaf_dist(&self, id: DistId) -> Arc<ActionDist> {
        self.inner.lock().dists[id.0 as usize].clone()
    }

    /// Looks up a memoised `while`-loop solution, counting the outcome.
    pub(crate) fn while_cache_lookup(&self, guard: Fdd, body: Fdd, key: &OptsKey) -> Option<Fdd> {
        let mut inner = self.inner.lock();
        inner.while_cache.get(&(guard, body, key.clone()))
    }

    /// Records a solved `while` loop in the memo cache.
    pub(crate) fn while_cache_store(&self, guard: Fdd, body: Fdd, key: OptsKey, result: Fdd) {
        let mut inner = self.inner.lock();
        let cap = inner.cache_capacity;
        inner.while_cache.insert((guard, body, key), result, cap);
    }

    /// Hit/miss counters of the `while`-loop solution cache.
    pub fn while_cache_stats(&self) -> WhileCacheStats {
        let inner = self.inner.lock();
        WhileCacheStats {
            hits: inner.while_cache.hits,
            misses: inner.while_cache.misses,
            entries: inner.while_cache.map.len(),
        }
    }

    /// Cumulative absorbing-chain solve gauges (see [`LoopSolveStats`]).
    pub fn loop_solve_stats(&self) -> LoopSolveStats {
        self.inner.lock().loop_stats
    }

    /// Accumulates one absorbing-chain solve into [`LoopSolveStats`].
    pub(crate) fn record_loop_solve(&self, transient: usize, blocks: usize, sccs: usize) {
        let mut inner = self.inner.lock();
        let s = &mut inner.loop_stats;
        s.solves += 1;
        s.transient_states += transient as u64;
        s.lumped_blocks += blocks as u64;
        s.sccs += sccs as u64;
        s.max_transient = s.max_transient.max(transient);
    }

    /// Cumulative solver fallback record (see [`SolveReport`]).
    pub fn solve_report(&self) -> SolveReport {
        self.inner.lock().solve_report.clone()
    }

    /// Accumulates one loop solve's fallback outcome into the
    /// [`SolveReport`] (and mirrors the counters into
    /// [`LoopSolveStats`]). `events` carries one "why" line per rung that
    /// fired; the report keeps a bounded number of them.
    pub(crate) fn record_solve_rungs(
        &self,
        retried_without_lumping: bool,
        fell_back_to_dense: bool,
        exhausted: bool,
        events: Vec<String>,
    ) {
        const MAX_EVENTS: usize = 32;
        let mut inner = self.inner.lock();
        let r = &mut inner.solve_report;
        if !retried_without_lumping && !fell_back_to_dense && !exhausted {
            r.primary += 1;
        }
        if retried_without_lumping {
            r.lumping_retries += 1;
        }
        if fell_back_to_dense {
            r.dense_fallbacks += 1;
        }
        if exhausted {
            r.exhausted += 1;
        }
        for e in events {
            if r.events.len() >= MAX_EVENTS {
                break;
            }
            r.events.push(e);
        }
        inner.loop_stats.fallback_retries += u64::from(retried_without_lumping);
        inner.loop_stats.dense_fallbacks += u64::from(fell_back_to_dense);
    }

    /// Installs `budget` as this manager's resource governor for the
    /// lifetime of the returned guard. While governed, the recursive
    /// diagram combinators poll the budget at op-cache misses; once a
    /// limit trips they short-circuit cheaply and suppress memo inserts,
    /// and [`Manager::governed_error`] reports the typed abort error.
    ///
    /// Nested installs refcount — the outermost budget wins (inner calls
    /// with a different budget are absorbed into the outer governed
    /// region). Dropping the outermost guard uninstalls the governor and
    /// clears any latched trip, so the manager — whose tables only ever
    /// received well-formed nodes — is immediately reusable, including
    /// for a retry of the aborted compile.
    pub fn govern(&self, budget: &Budget) -> GovernorGuard<'_> {
        let mut inner = self.inner.lock();
        match inner.governor.as_mut() {
            Some(g) => g.depth += 1,
            None => {
                inner.governor = Some(Governor {
                    budget: budget.clone(),
                    depth: 1,
                    polls: 0,
                    tripped: None,
                });
            }
        }
        drop(inner);
        GovernorGuard { mgr: self }
    }

    /// The installed governor's verdict: `Err` with the latched abort
    /// error if a budget limit has tripped (evaluating the budget freshly
    /// if no checkpoint has run recently), `Ok` otherwise — including
    /// when no governor is installed.
    ///
    /// Fallible seams (program-node compiles, loop solves, per-switch
    /// pipelines) call this before returning, so a short-circuited
    /// diagram from a tripped compile can never escape as `Ok`.
    ///
    /// # Errors
    ///
    /// The [`CompileError`] variant matching the tripped limit.
    pub fn governed_error(&self) -> Result<(), CompileError> {
        let mut inner = self.inner.lock();
        let live_nodes = inner.nodes.len();
        let dist_entries = inner.dist_entries;
        if let Some(g) = inner.governor.as_mut() {
            if let Some(e) = &g.tripped {
                return Err(e.clone());
            }
            if let Some(e) = g.budget.violation(live_nodes, dist_entries) {
                g.tripped = Some(e.clone());
                return Err(e);
            }
        }
        Ok(())
    }

    /// One-off check of `budget` against this manager's current gauges,
    /// without installing a governor — the checkpoint for call sites
    /// outside a governed region (e.g. between parallel merge rounds).
    ///
    /// # Errors
    ///
    /// The [`CompileError`] variant matching the violated limit.
    pub fn check_budget(&self, budget: &Budget) -> Result<(), CompileError> {
        let inner = self.inner.lock();
        match budget.violation(inner.nodes.len(), inner.dist_entries) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Projects write-only scratch fields out of a diagram: every
    /// modification of a field in `fields` is removed from every leaf
    /// action (merging actions that become equal, with their probabilities
    /// added). This is the FDD-level scope exit for fields used purely as
    /// internal scratch state — e.g. the shared-risk-group health fields
    /// of `mcnetkat-net`, which are drawn and consumed within a single hop
    /// and must not leak into the compiled model.
    ///
    /// The write-only special case of [`Manager::eliminate`].
    ///
    /// # Panics
    ///
    /// Panics if the diagram *tests* any of the fields: a write-only
    /// scratch field is unobservable by contract, so a surviving test
    /// means the caller's scratch discipline is broken.
    pub fn forget(&self, p: Fdd, fields: &[Field]) -> Fdd {
        let scratch: Vec<ScratchField> = fields
            .iter()
            .map(|&f| ScratchField::write_only(f))
            .collect();
        self.eliminate(p, &scratch)
    }

    /// True FDD-level existential elimination of scratch fields.
    ///
    /// Semantically, `eliminate(p, scratch)` equals `draw ; p` followed by
    /// projecting every scratch field out of the outputs, where `draw`
    /// independently samples each scratch field from its entry
    /// distribution:
    ///
    /// * an interior node testing a scratch field `f` is replaced by the
    ///   convex sum of its branches, weighted by the draw — each arm
    ///   `f = v` of the test chain gets weight `P(f = v)`, and the
    ///   fall-through branch gets the remaining mass;
    /// * leaf modifications of scratch fields are stripped, with actions
    ///   that become equal merged (probabilities added).
    ///
    /// This is what lets the fused per-switch compile pipeline sum link
    /// health out of a routing diagram *without ever building the draw's
    /// outcome cross-product*: the routing FDD tests `up_i` along paths,
    /// and each test is resolved into a weighted average bottom-up.
    ///
    /// Sound whenever the scratch fields' entry values are independent of
    /// each other and of every non-scratch field the diagram tests (true
    /// for fresh per-hop Bernoulli draws; *not* true for budget-coupled
    /// draws, which must be compiled into the diagram before write-only
    /// elimination).
    ///
    /// # Panics
    ///
    /// Panics if a non-empty draw's mass is not exactly 1, or if the
    /// diagram tests a field declared write-only (empty draw).
    pub fn eliminate(&self, p: Fdd, scratch: &[ScratchField]) -> Fdd {
        if scratch.is_empty() {
            return p;
        }
        for sf in scratch {
            if !sf.draw.is_empty() {
                let mass: Ratio = sf.draw.iter().map(|(_, r)| r).sum();
                assert!(
                    mass == Ratio::one(),
                    "draw for {} has mass {mass}, expected 1",
                    sf.field
                );
            }
        }
        let mut inner = self.inner.lock();
        let mut memo = FxHashMap::default();
        inner.eliminate(p, scratch, &mut memo)
    }

    /// Snapshot of every operation cache's hit/miss/entry counters.
    ///
    /// `cons` is the hash-cons map (hits = structurally duplicate nodes);
    /// `seq`/`sum`/`ite`/`restrict_*`/`scale`/`prepend` are the diagram
    /// combinator memos; `dist_sum`/`dist_scale`/`dist_then` are the
    /// distribution-level memos on interned leaf ids; `while` is the
    /// loop-solution cache (also available as [`Manager::while_cache_stats`]).
    pub fn op_cache_stats(&self) -> OpCacheStats {
        let inner = self.inner.lock();
        OpCacheStats {
            caches: vec![
                inner.consed.stats("cons"),
                inner.seq_cache.stats("seq"),
                inner.sum_cache.stats("sum"),
                inner.ite_cache.stats("ite"),
                inner.restrict_eq_cache.stats("restrict_eq"),
                inner.restrict_ne_cache.stats("restrict_ne"),
                inner.scale_cache.stats("scale"),
                inner.prepend_cache.stats("prepend"),
                inner.dist_sum_cache.stats("dist_sum"),
                inner.dist_scale_cache.stats("dist_scale"),
                inner.dist_then_cache.stats("dist_then"),
                inner.while_cache.stats("while"),
            ],
        }
    }

    /// Walks the *entire* live node table and every interning table,
    /// checking the structural invariants the compiler relies on:
    ///
    /// * canonical `(field, value)` order on every branch (the same named
    ///   check `mk_branch` debug-asserts at construction time);
    /// * no redundant branches (`hi == lo`) and no structural duplicates
    ///   (hash-consing must make structural equality pointer equality);
    /// * the hash-cons map is an exact inverse of the node table;
    /// * no dangling child, `DistId` or `ActId` references, and the
    ///   dist/action identity maps round-trip through their tables;
    /// * every leaf distribution is sub-stochastic (mass ≤ 1) with sorted,
    ///   strictly positive entries whose probabilities are canonical
    ///   [`Ratio`]s.
    ///
    /// This is a diagnostic pass, not a hot-path check: it takes the
    /// manager lock for the full walk and costs O(nodes + dist entries).
    /// Only available with the `audit` cargo feature; release benches
    /// assert the feature is *off* (see [`crate::AUDIT_ENABLED`]).
    #[cfg(feature = "audit")]
    pub fn audit(&self) -> AuditReport {
        let inner = self.inner.lock();
        let mut violations = Vec::new();

        let mut seen: FxHashMap<Node, u32> = FxHashMap::default();
        for (i, node) in inner.nodes.iter().enumerate() {
            let id = i as u32;
            match *node {
                Node::Leaf(did) => {
                    if did.0 as usize >= inner.dists.len() {
                        violations.push(AuditViolation::DanglingDist {
                            node: id,
                            dist: did.0,
                        });
                    }
                }
                Node::Branch {
                    field,
                    value,
                    hi,
                    lo,
                } => {
                    let mut dangling = false;
                    for child in [hi, lo] {
                        // Children must precede their parent: the table is
                        // append-only and `mk_branch` interns bottom-up.
                        if child.0 >= id {
                            violations.push(AuditViolation::DanglingChild {
                                node: id,
                                child: child.0,
                            });
                            dangling = true;
                        }
                    }
                    if dangling {
                        continue;
                    }
                    if hi == lo {
                        violations.push(AuditViolation::RedundantBranch { node: id });
                    } else if let Some(detail) =
                        branch_order_violation(&inner.nodes, field, value, hi, lo)
                    {
                        violations.push(AuditViolation::OrderViolation { node: id, detail });
                    }
                }
            }
            if let Some(&first) = seen.get(node) {
                violations.push(AuditViolation::DuplicateNode { node: id, first });
            } else {
                seen.insert(*node, id);
            }
        }

        if inner.consed.map.len() != inner.nodes.len() {
            violations.push(AuditViolation::ConsMapMismatch {
                detail: format!(
                    "hash-cons map has {} entries for {} nodes",
                    inner.consed.map.len(),
                    inner.nodes.len()
                ),
            });
        }
        for (node, &id) in &inner.consed.map {
            if inner.nodes.get(id.0 as usize) != Some(node) {
                violations.push(AuditViolation::ConsMapMismatch {
                    detail: format!("map entry {node:?} -> {} disagrees with node table", id.0),
                });
            }
        }

        for (i, dist) in inner.dists.iter().enumerate() {
            let id = i as u32;
            let mass = dist.mass();
            if !mass.is_probability() {
                violations.push(AuditViolation::SuperStochasticLeaf { dist: id, mass });
            }
            let mut prev: Option<&Action> = None;
            for (a, r) in dist.iter() {
                if r.is_negative() || r.is_zero() {
                    violations.push(AuditViolation::NonPositiveEntry { dist: id });
                }
                if !r.is_canonical() {
                    violations.push(AuditViolation::NonCanonicalRatio { dist: id });
                }
                if prev.is_some_and(|p| p >= a) {
                    violations.push(AuditViolation::UnsortedDist { dist: id });
                }
                prev = Some(a);
            }
        }

        if inner.dist_ids.len() != inner.dists.len() {
            violations.push(AuditViolation::InternMapMismatch {
                detail: format!(
                    "dist identity map has {} entries for {} distributions",
                    inner.dist_ids.len(),
                    inner.dists.len()
                ),
            });
        }
        for (dist, &id) in &inner.dist_ids {
            if inner.dists.get(id.0 as usize).map(Arc::as_ref) != Some(dist.as_ref()) {
                violations.push(AuditViolation::InternMapMismatch {
                    detail: format!("dist id {} does not round-trip through the table", id.0),
                });
            }
        }
        if inner.action_ids.len() != inner.actions.len() {
            violations.push(AuditViolation::InternMapMismatch {
                detail: format!(
                    "action identity map has {} entries for {} actions",
                    inner.action_ids.len(),
                    inner.actions.len()
                ),
            });
        }
        for (action, &id) in &inner.action_ids {
            if inner.actions.get(id.0 as usize).map(Arc::as_ref) != Some(action.as_ref()) {
                violations.push(AuditViolation::InternMapMismatch {
                    detail: format!("action id {} does not round-trip through the table", id.0),
                });
            }
        }

        AuditReport {
            nodes: inner.nodes.len(),
            dists: inner.dists.len(),
            actions: inner.actions.len(),
            violations,
        }
    }
}

/// One invariant violation found by [`Manager::audit`].
#[cfg(feature = "audit")]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditViolation {
    /// A branch node's children break the canonical `(field, value)` order.
    OrderViolation {
        /// Offending node id.
        node: u32,
        /// Which child broke the order, and how.
        detail: String,
    },
    /// A branch with identical children survived construction (`mk_branch`
    /// must collapse these).
    RedundantBranch {
        /// Offending node id.
        node: u32,
    },
    /// Two structurally identical nodes were allocated — hash-consing no
    /// longer makes structural equality pointer equality.
    DuplicateNode {
        /// The later duplicate.
        node: u32,
        /// The first allocation of the same structure.
        first: u32,
    },
    /// The hash-cons map disagrees with the node table.
    ConsMapMismatch {
        /// What disagreed.
        detail: String,
    },
    /// A leaf references a distribution id outside the intern table.
    DanglingDist {
        /// Offending node id.
        node: u32,
        /// The out-of-range distribution id.
        dist: u32,
    },
    /// A branch child points at itself or past the append-only table.
    DanglingChild {
        /// Offending node id.
        node: u32,
        /// The out-of-range child id.
        child: u32,
    },
    /// A dist/action identity map disagrees with its table.
    InternMapMismatch {
        /// What disagreed.
        detail: String,
    },
    /// A leaf distribution's total mass is outside `[0, 1]`.
    SuperStochasticLeaf {
        /// Offending distribution id.
        dist: u32,
        /// Its total mass.
        mass: Ratio,
    },
    /// A leaf distribution stores a zero or negative entry probability.
    NonPositiveEntry {
        /// Offending distribution id.
        dist: u32,
    },
    /// A leaf distribution's entries are not strictly sorted by action.
    UnsortedDist {
        /// Offending distribution id.
        dist: u32,
    },
    /// A stored probability is not in canonical [`Ratio`] form.
    NonCanonicalRatio {
        /// Offending distribution id.
        dist: u32,
    },
}

#[cfg(feature = "audit")]
impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditViolation::OrderViolation { node, detail } => {
                write!(f, "node {node}: ordering violated — {detail}")
            }
            AuditViolation::RedundantBranch { node } => {
                write!(f, "node {node}: redundant branch (hi == lo)")
            }
            AuditViolation::DuplicateNode { node, first } => {
                write!(f, "node {node}: structural duplicate of node {first}")
            }
            AuditViolation::ConsMapMismatch { detail } => {
                write!(f, "hash-cons map: {detail}")
            }
            AuditViolation::DanglingDist { node, dist } => {
                write!(f, "node {node}: dangling DistId {dist}")
            }
            AuditViolation::DanglingChild { node, child } => {
                write!(f, "node {node}: dangling child {child}")
            }
            AuditViolation::InternMapMismatch { detail } => {
                write!(f, "intern tables: {detail}")
            }
            AuditViolation::SuperStochasticLeaf { dist, mass } => {
                write!(f, "dist {dist}: mass {mass} outside [0, 1]")
            }
            AuditViolation::NonPositiveEntry { dist } => {
                write!(f, "dist {dist}: non-positive entry probability")
            }
            AuditViolation::UnsortedDist { dist } => {
                write!(f, "dist {dist}: entries not strictly sorted by action")
            }
            AuditViolation::NonCanonicalRatio { dist } => {
                write!(f, "dist {dist}: non-canonical Ratio")
            }
        }
    }
}

/// The result of a [`Manager::audit`] pass: table sizes plus every
/// violation found (empty means every checked invariant holds).
#[cfg(feature = "audit")]
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Nodes in the (append-only) node table.
    pub nodes: usize,
    /// Interned leaf distributions.
    pub dists: usize,
    /// Interned actions.
    pub actions: usize,
    /// Everything the walk found wrong.
    pub violations: Vec<AuditViolation>,
}

#[cfg(feature = "audit")]
impl AuditReport {
    /// No violations found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with every violation when the report is not clean — the
    /// one-liner for tests and self-auditing compile hooks.
    ///
    /// # Panics
    ///
    /// Panics if [`AuditReport::is_clean`] is false.
    pub fn assert_clean(&self) {
        if !self.is_clean() {
            let lines: Vec<String> = self.violations.iter().map(ToString::to_string).collect();
            panic!(
                "Manager::audit found {} violation(s):\n  {}",
                self.violations.len(),
                lines.join("\n  ")
            );
        }
    }
}

/// RAII guard returned by [`Manager::govern`]. Dropping the outermost
/// guard uninstalls the governor and clears any latched abort, restoring
/// the manager to its ungoverned (and fully reusable) state.
#[must_use = "the governor is uninstalled when this guard drops"]
pub struct GovernorGuard<'a> {
    mgr: &'a Manager,
}

impl Drop for GovernorGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.mgr.inner.lock();
        let uninstall = match inner.governor.as_mut() {
            Some(g) => {
                g.depth -= 1;
                g.depth == 0
            }
            None => false,
        };
        if uninstall {
            inner.governor = None;
        }
    }
}

impl Inner {
    /// Governed checkpoint on op-cache miss paths. Returns `true` when
    /// the compile is aborting — the caller short-circuits to a cheap
    /// degenerate result (the fail leaf) so the recursion collapses in
    /// O(stack depth). The full budget evaluation (which reads the
    /// clock) is amortised to every 64th poll; a trip is latched, so
    /// later checkpoints are a single branch.
    fn gov_checkpoint(&mut self) -> bool {
        let live_nodes = self.nodes.len();
        let dist_entries = self.dist_entries;
        let Some(g) = self.governor.as_mut() else {
            return false;
        };
        if g.tripped.is_some() {
            return true;
        }
        g.polls = g.polls.wrapping_add(1);
        // Evaluate on the first poll (so tiny compiles still get one real
        // check) and every 64th thereafter.
        if g.polls & 0x3f != 1 {
            return false;
        }
        if let Some(e) = g.budget.violation(live_nodes, dist_entries) {
            g.tripped = Some(e);
            return true;
        }
        false
    }

    /// Whether a governed abort is latched. Op-cache inserts are
    /// suppressed while true: a short-circuited frame may have combined
    /// fail-leaf placeholders, and memoising that result under the real
    /// operands' key would poison later (retry) compiles. Results
    /// computed *before* the trip are correct and stay cached.
    fn gov_tripped(&self) -> bool {
        self.governor.as_ref().is_some_and(|g| g.tripped.is_some())
    }

    fn cons(&mut self, node: Node) -> Fdd {
        if let Some(id) = self.consed.get(&node) {
            return id;
        }
        let id = Fdd(self.nodes.len() as u32);
        self.nodes.push(node);
        self.consed.insert(node, id, usize::MAX);
        id
    }

    fn intern_dist(&mut self, dist: ActionDist) -> DistId {
        if let Some(&id) = self.dist_ids.get(&dist) {
            return id;
        }
        let id = DistId(self.dists.len() as u32);
        self.dist_entries += dist.support_size();
        let arc = Arc::new(dist);
        self.dists.push(arc.clone());
        self.dist_ids.insert(arc, id);
        id
    }

    fn intern_action(&mut self, action: &Action) -> ActId {
        if let Some(&id) = self.action_ids.get(action) {
            return id;
        }
        let id = ActId(self.actions.len() as u32);
        let arc = Arc::new(action.clone());
        self.actions.push(arc.clone());
        self.action_ids.insert(arc, id);
        id
    }

    fn mk_leaf(&mut self, dist: ActionDist) -> Fdd {
        let did = self.intern_dist(dist);
        self.cons(Node::Leaf(did))
    }

    fn leaf_pass(&mut self) -> Fdd {
        match self.pass_leaf {
            Some(f) => f,
            None => {
                let f = self.mk_leaf(ActionDist::skip());
                self.pass_leaf = Some(f);
                f
            }
        }
    }

    fn leaf_fail(&mut self) -> Fdd {
        match self.fail_leaf {
            Some(f) => f,
            None => {
                let f = self.mk_leaf(ActionDist::drop());
                self.fail_leaf = Some(f);
                f
            }
        }
    }

    fn leaf_zero(&mut self) -> Fdd {
        match self.zero_leaf {
            Some(f) => f,
            None => {
                let f = self.mk_leaf(ActionDist::zero());
                self.zero_leaf = Some(f);
                f
            }
        }
    }

    fn mk_branch(&mut self, field: Field, value: Value, hi: Fdd, lo: Fdd) -> Fdd {
        if hi == lo {
            return hi;
        }
        #[cfg(debug_assertions)]
        if let Some(why) = branch_order_violation(&self.nodes, field, value, hi, lo) {
            invariant_panic("branch order", &format!("at ({field:?}, {value}): {why}"));
        }
        self.cons(Node::Branch {
            field,
            value,
            hi,
            lo,
        })
    }

    /// Pointwise sum of two interned distributions, memoised on ids.
    fn dist_sum(&mut self, a: DistId, b: DistId) -> DistId {
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(hit) = self.dist_sum_cache.get(&key) {
            return hit;
        }
        let da = self.dists[key.0 .0 as usize].clone();
        let db = self.dists[key.1 .0 as usize].clone();
        let out = self.intern_dist(da.sum(&db));
        let cap = self.cache_capacity;
        self.dist_sum_cache.insert(key, out, cap);
        out
    }

    /// Scales an interned distribution, memoised on (id, ratio).
    fn dist_scale(&mut self, did: DistId, r: &Ratio) -> DistId {
        let key = (did, r.clone());
        if let Some(hit) = self.dist_scale_cache.get(&key) {
            return hit;
        }
        let d = self.dists[did.0 as usize].clone();
        let out = self.intern_dist(d.scale(r));
        let cap = self.cache_capacity;
        self.dist_scale_cache.insert(key, out, cap);
        out
    }

    /// Prepends an interned action to every action of an interned
    /// distribution, memoised on ids.
    fn dist_then(&mut self, aid: ActId, did: DistId) -> DistId {
        let key = (aid, did);
        if let Some(hit) = self.dist_then_cache.get(&key) {
            return hit;
        }
        let mods = self.actions[aid.0 as usize].clone();
        let d = self.dists[did.0 as usize].clone();
        let out = self.intern_dist(d.map_actions(|a| mods.then(a)));
        let cap = self.cache_capacity;
        self.dist_then_cache.insert(key, out, cap);
        out
    }

    /// See [`Manager::eliminate`]. The memo is per-call: the result
    /// depends on the scratch set and its draws, which is not worth
    /// keying a persistent cache on (the operation runs a handful of
    /// times per compiled model). Memoising by node id alone is sound
    /// because the convex-sum semantics is context-free: a test chain's
    /// weights are the *unconditional* entry probabilities, and mid-chain
    /// nodes are folded by the chain walk, never looked up through the
    /// memo under a `f ≠ v` assumption.
    fn eliminate(
        &mut self,
        p: Fdd,
        scratch: &[ScratchField],
        memo: &mut FxHashMap<Fdd, Fdd>,
    ) -> Fdd {
        if let Some(&hit) = memo.get(&p) {
            return hit;
        }
        let result = match self.nodes[p.0 as usize] {
            Node::Leaf(did) => {
                let d = self.dists[did.0 as usize].clone();
                let stripped = d.map_actions(|a| match a {
                    Action::Drop => Action::Drop,
                    Action::Mods(mods) => Action::Mods(
                        mods.iter()
                            .copied()
                            .filter(|(f, _)| scratch.iter().all(|s| s.field != *f))
                            .collect(),
                    ),
                });
                self.mk_leaf(stripped)
            }
            Node::Branch {
                field,
                value,
                hi,
                lo,
            } => match scratch.iter().find(|s| s.field == field) {
                None => {
                    let nh = self.eliminate(hi, scratch, memo);
                    let nl = self.eliminate(lo, scratch, memo);
                    self.mk_branch(field, value, nh, nl)
                }
                Some(sf) => {
                    assert!(
                        !sf.draw.is_empty(),
                        "cannot forget field {field}: the diagram tests it"
                    );
                    // Collect the whole `field = v` chain along the false
                    // branches (the ordering invariant puts every test of
                    // one field on a single lo-descent).
                    let mut arms = vec![(value, hi)];
                    let mut tail = lo;
                    while let Node::Branch {
                        field: f2,
                        value: v2,
                        hi: h2,
                        lo: l2,
                    } = self.nodes[tail.0 as usize]
                    {
                        if f2 != field {
                            break;
                        }
                        arms.push((v2, h2));
                        tail = l2;
                    }
                    // Σ_v P(f=v)·elim(arm_v), with the untested mass on
                    // the fall-through branch.
                    let mut used = Ratio::zero();
                    let mut acc = self.leaf_zero();
                    for (v, branch) in arms {
                        let w = sf.prob_of(v);
                        if w.is_zero() {
                            continue;
                        }
                        used += &w;
                        let e = self.eliminate(branch, scratch, memo);
                        let scaled = self.scale(e, &w);
                        acc = self.sum(acc, scaled);
                    }
                    let rest = Ratio::one() - used;
                    if !rest.is_zero() {
                        let e = self.eliminate(tail, scratch, memo);
                        let scaled = self.scale(e, &rest);
                        acc = self.sum(acc, scaled);
                    }
                    acc
                }
            },
        };
        memo.insert(p, result);
        result
    }

    fn restrict_eq(&mut self, p: Fdd, f: Field, v: Value) -> Fdd {
        let (field, value, hi, lo) = match self.nodes[p.0 as usize] {
            Node::Leaf(_) => return p,
            Node::Branch {
                field,
                value,
                hi,
                lo,
            } => (field, value, hi, lo),
        };
        if field > f {
            return p;
        }
        let key = (p, f, v);
        if let Some(hit) = self.restrict_eq_cache.get(&key) {
            return hit;
        }
        if self.gov_checkpoint() {
            return self.leaf_fail();
        }
        let result = if field < f {
            let nh = self.restrict_eq(hi, f, v);
            let nl = self.restrict_eq(lo, f, v);
            self.mk_branch(field, value, nh, nl)
        } else if value == v {
            hi // true-branch never tests `f` again
        } else {
            self.restrict_eq(lo, f, v)
        };
        if !self.gov_tripped() {
            let cap = self.cache_capacity;
            self.restrict_eq_cache.insert(key, result, cap);
        }
        result
    }

    fn restrict_ne(&mut self, p: Fdd, f: Field, v: Value) -> Fdd {
        let (field, value, hi, lo) = match self.nodes[p.0 as usize] {
            Node::Leaf(_) => return p,
            Node::Branch {
                field,
                value,
                hi,
                lo,
            } => (field, value, hi, lo),
        };
        if field > f || (field == f && value > v) {
            return p;
        }
        let key = (p, f, v);
        if let Some(hit) = self.restrict_ne_cache.get(&key) {
            return hit;
        }
        if self.gov_checkpoint() {
            return self.leaf_fail();
        }
        let result = if field < f {
            let nh = self.restrict_ne(hi, f, v);
            let nl = self.restrict_ne(lo, f, v);
            self.mk_branch(field, value, nh, nl)
        } else if value == v {
            lo // the (f,v) test fails; lo never re-tests (f,v)
        } else {
            // field == f, value < v: keep the test, recurse on the lo side.
            let nl = self.restrict_ne(lo, f, v);
            self.mk_branch(field, value, hi, nl)
        };
        if !self.gov_tripped() {
            let cap = self.cache_capacity;
            self.restrict_ne_cache.insert(key, result, cap);
        }
        result
    }

    fn scale(&mut self, p: Fdd, r: &Ratio) -> Fdd {
        if r.is_one() {
            return p;
        }
        let key = (p, r.clone());
        if let Some(hit) = self.scale_cache.get(&key) {
            return hit;
        }
        if self.gov_checkpoint() {
            return self.leaf_fail();
        }
        let result = match self.nodes[p.0 as usize] {
            Node::Leaf(did) => {
                let ndid = self.dist_scale(did, r);
                self.cons(Node::Leaf(ndid))
            }
            Node::Branch {
                field,
                value,
                hi,
                lo,
            } => {
                let nh = self.scale(hi, r);
                let nl = self.scale(lo, r);
                self.mk_branch(field, value, nh, nl)
            }
        };
        if !self.gov_tripped() {
            let cap = self.cache_capacity;
            self.scale_cache.insert(key, result, cap);
        }
        result
    }

    fn sum(&mut self, p: Fdd, q: Fdd) -> Fdd {
        let key = if p <= q { (p, q) } else { (q, p) };
        if let Some(hit) = self.sum_cache.get(&key) {
            return hit;
        }
        if self.gov_checkpoint() {
            return self.leaf_fail();
        }
        let np = self.nodes[p.0 as usize];
        let nq = self.nodes[q.0 as usize];
        let result = match (np, nq) {
            (Node::Leaf(dp), Node::Leaf(dq)) => {
                let did = self.dist_sum(dp, dq);
                self.cons(Node::Leaf(did))
            }
            _ => {
                let (f, v) = match (var_of(&np), var_of(&nq)) {
                    (Some(a), Some(b)) => a.min(b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => unreachable!(),
                };
                let ph = self.restrict_eq(p, f, v);
                let qh = self.restrict_eq(q, f, v);
                let pl = self.restrict_ne(p, f, v);
                let ql = self.restrict_ne(q, f, v);
                let hi = self.sum(ph, qh);
                let lo = self.sum(pl, ql);
                self.mk_branch(f, v, hi, lo)
            }
        };
        if !self.gov_tripped() {
            let cap = self.cache_capacity;
            self.sum_cache.insert(key, result, cap);
        }
        result
    }

    fn ite(&mut self, t: Fdd, p: Fdd, q: Fdd) -> Fdd {
        let key = (t, p, q);
        if let Some(hit) = self.ite_cache.get(&key) {
            return hit;
        }
        if self.gov_checkpoint() {
            return self.leaf_fail();
        }
        let nt = self.nodes[t.0 as usize];
        let result = match nt {
            Node::Leaf(did) => {
                let d = &self.dists[did.0 as usize];
                if d.is_skip() {
                    p
                } else if d.is_drop() {
                    q
                } else {
                    let why = guard_leaf_violation(d)
                        .expect("leaf is neither pass nor drop, so the helper must explain");
                    invariant_panic("ite deterministic guard", &why)
                }
            }
            Node::Branch { .. } => {
                let vt = var_of(&nt);
                let vp = var_of(&self.nodes[p.0 as usize]);
                let vq = var_of(&self.nodes[q.0 as usize]);
                let (f, v) = [vt, vp, vq].into_iter().flatten().min().unwrap();
                let th = self.restrict_eq(t, f, v);
                let ph = self.restrict_eq(p, f, v);
                let qh = self.restrict_eq(q, f, v);
                let tl = self.restrict_ne(t, f, v);
                let pl = self.restrict_ne(p, f, v);
                let ql = self.restrict_ne(q, f, v);
                let hi = self.ite(th, ph, qh);
                let lo = self.ite(tl, pl, ql);
                self.mk_branch(f, v, hi, lo)
            }
        };
        if !self.gov_tripped() {
            let cap = self.cache_capacity;
            self.ite_cache.insert(key, result, cap);
        }
        result
    }

    /// Restricts `q` by the modifications of `mods` (partial evaluation),
    /// then prepends the modifications to every resulting action.
    fn action_then(&mut self, mods: &Action, q: Fdd) -> Fdd {
        match mods {
            Action::Drop => self.leaf_fail(),
            Action::Mods(pairs) => {
                let mut restricted = q;
                for &(f, v) in pairs {
                    restricted = self.restrict_eq(restricted, f, v);
                }
                if pairs.is_empty() {
                    return restricted;
                }
                let aid = self.intern_action(mods);
                self.prepend(aid, restricted)
            }
        }
    }

    fn prepend(&mut self, aid: ActId, q: Fdd) -> Fdd {
        let key = (q, aid);
        if let Some(hit) = self.prepend_cache.get(&key) {
            return hit;
        }
        if self.gov_checkpoint() {
            return self.leaf_fail();
        }
        let result = match self.nodes[q.0 as usize] {
            Node::Leaf(did) => {
                let ndid = self.dist_then(aid, did);
                self.cons(Node::Leaf(ndid))
            }
            Node::Branch {
                field,
                value,
                hi,
                lo,
            } => {
                let nh = self.prepend(aid, hi);
                let nl = self.prepend(aid, lo);
                self.mk_branch(field, value, nh, nl)
            }
        };
        if !self.gov_tripped() {
            let cap = self.cache_capacity;
            self.prepend_cache.insert(key, result, cap);
        }
        result
    }

    fn seq(&mut self, p: Fdd, q: Fdd) -> Fdd {
        let key = (p, q);
        if let Some(hit) = self.seq_cache.get(&key) {
            return hit;
        }
        if self.gov_checkpoint() {
            return self.leaf_fail();
        }
        let result = match self.nodes[p.0 as usize] {
            Node::Leaf(did) => {
                let d = self.dists[did.0 as usize].clone();
                let mut acc = self.leaf_zero();
                for (action, r) in d.iter() {
                    let cont = self.action_then(action, q);
                    let scaled = self.scale(cont, r);
                    acc = self.sum(acc, scaled);
                }
                acc
            }
            Node::Branch {
                field,
                value,
                hi,
                lo,
            } => {
                // Compose the children, then re-introduce the path test via
                // `ite` so the constraint `field = value` (resp. `≠`) also
                // resolves the residual tests `q` contributes — the leaf
                // case only restricted `q` by the *modifications*, not by
                // the path.
                let nh = self.seq(hi, q);
                let nl = self.seq(lo, q);
                let pass = self.leaf_pass();
                let fail = self.leaf_fail();
                let test = self.mk_branch(field, value, pass, fail);
                self.ite(test, nh, nl)
            }
        };
        if !self.gov_tripped() {
            let cap = self.cache_capacity;
            self.seq_cache.insert(key, result, cap);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> (Field, Field) {
        (Field::named("mgr_a"), Field::named("mgr_b"))
    }

    #[test]
    fn hash_consing_dedups() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let a = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        let b = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        assert_eq!(a, b);
    }

    #[test]
    fn equal_children_collapse() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let t = mgr.pass();
        assert_eq!(mgr.branch(f, 1, t, t), t);
    }

    #[test]
    fn eval_follows_branches() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let fdd = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        assert!(mgr.eval(fdd, &Packet::new().with(f, 1)).is_skip());
        assert!(mgr.eval(fdd, &Packet::new().with(f, 2)).is_drop());
        assert!(mgr.eval(fdd, &Packet::new()).is_drop());
    }

    #[test]
    fn restrict_eq_resolves_tests() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let fdd = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        assert_eq!(mgr.restrict_eq(fdd, f, 1), mgr.pass());
        assert_eq!(mgr.restrict_eq(fdd, f, 2), mgr.fail());
    }

    #[test]
    fn restrict_ne_removes_single_test() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let inner = mgr.branch(f, 2, mgr.pass(), mgr.fail());
        let fdd = mgr.branch(f, 1, mgr.fail(), inner);
        // Knowing f ≠ 1 discards the first test.
        assert_eq!(mgr.restrict_ne(fdd, f, 1), inner);
        // Knowing f ≠ 2 rewrites the inner test.
        let expect = mgr.branch(f, 1, mgr.fail(), mgr.fail());
        assert_eq!(mgr.restrict_ne(fdd, f, 2), expect);
    }

    #[test]
    fn seq_applies_mods_and_resolves_tests() {
        let mgr = Manager::new();
        let (f, _) = fields();
        // p = f<-1 ; q = (f=1 ? skip : drop). Sequencing resolves the test.
        let p = mgr.leaf(ActionDist::dirac(Action::assign(f, 1)));
        let q = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        let pq = mgr.seq(p, q);
        let d = mgr.eval(pq, &Packet::new());
        assert_eq!(d, ActionDist::dirac(Action::assign(f, 1)));
    }

    #[test]
    fn seq_drop_absorbs() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let p = mgr.fail();
        let q = mgr.leaf(ActionDist::dirac(Action::assign(f, 1)));
        assert_eq!(mgr.seq(p, q), mgr.fail());
        assert_eq!(mgr.seq(q, mgr.fail()), mgr.fail());
    }

    #[test]
    fn convex_combination_mixes_leaves() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let p = mgr.leaf(ActionDist::dirac(Action::assign(f, 1)));
        let q = mgr.leaf(ActionDist::dirac(Action::assign(f, 2)));
        let mix = mgr.convex(&[(p, Ratio::new(1, 4)), (q, Ratio::new(3, 4))]);
        let d = mgr.eval(mix, &Packet::new());
        assert_eq!(d.prob(&Action::assign(f, 1)), Ratio::new(1, 4));
        assert_eq!(d.prob(&Action::assign(f, 2)), Ratio::new(3, 4));
    }

    #[test]
    fn ite_selects_branches() {
        let mgr = Manager::new();
        let (f, g) = fields();
        let guard = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        let p = mgr.leaf(ActionDist::dirac(Action::assign(g, 10)));
        let q = mgr.leaf(ActionDist::dirac(Action::assign(g, 20)));
        let fdd = mgr.ite(guard, p, q);
        let d1 = mgr.eval(fdd, &Packet::new().with(f, 1));
        let d2 = mgr.eval(fdd, &Packet::new().with(f, 7));
        assert_eq!(d1, ActionDist::dirac(Action::assign(g, 10)));
        assert_eq!(d2, ActionDist::dirac(Action::assign(g, 20)));
    }

    #[test]
    fn ordering_keeps_fields_sorted() {
        let mgr = Manager::new();
        let (f, g) = fields();
        assert!(f < g);
        let inner_g = mgr.branch(g, 1, mgr.pass(), mgr.fail());
        let fdd = mgr.branch(f, 1, inner_g, mgr.fail());
        // Evaluation respects both tests.
        let pk = Packet::new().with(f, 1).with(g, 1);
        assert!(mgr.eval(fdd, &pk).is_skip());
        assert!(mgr.eval(fdd, &pk.with(g, 2)).is_drop());
    }

    #[test]
    fn seq_resolves_tests_via_path_not_just_mods() {
        // Regression: p tests f (without modifying it), q tests f again.
        // The composed diagram must resolve q's test from the *path*.
        let mgr = Manager::new();
        let (f, g) = fields();
        // p = if f=1 then g<-1 else g<-2 (no f mods)
        let p_hi = mgr.leaf(ActionDist::dirac(Action::assign(g, 1)));
        let p_lo = mgr.leaf(ActionDist::dirac(Action::assign(g, 2)));
        let p = mgr.branch(f, 1, p_hi, p_lo);
        // q = if f=1 then skip else drop
        let q = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        let pq = mgr.seq(p, q);
        // f=1 path survives with g<-1; f≠1 path is dropped by q.
        let d1 = mgr.eval(pq, &Packet::new().with(f, 1));
        assert_eq!(d1, ActionDist::dirac(Action::assign(g, 1)));
        let d2 = mgr.eval(pq, &Packet::new().with(f, 2));
        assert!(d2.is_drop());
        // And mods still win over path knowledge: p' = f=1 ; f<-2, then q.
        let assign_f2 = mgr.leaf(ActionDist::dirac(Action::assign(f, 2)));
        let p2 = mgr.branch(f, 1, assign_f2, mgr.fail());
        let p2q = mgr.seq(p2, q);
        assert!(mgr.eval(p2q, &Packet::new().with(f, 1)).is_drop());
    }

    #[test]
    fn domain_collects_tests() {
        let mgr = Manager::new();
        let (f, g) = fields();
        let inner = mgr.branch(g, 5, mgr.pass(), mgr.fail());
        let fdd = mgr.branch(f, 1, inner, mgr.fail());
        let dom = mgr.domain(fdd);
        assert_eq!(dom.tested[&f], vec![1]);
        assert_eq!(dom.tested[&g], vec![5]);
        assert_eq!(dom.class_count(), 4);
    }

    #[test]
    fn sym_eval_wildcard_takes_false_branches() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let fdd = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        assert!(mgr.eval_sym(fdd, &SymPkt::star()).is_drop());
        assert!(mgr.eval_sym(fdd, &SymPkt::from_pairs([(f, 1)])).is_skip());
    }

    #[test]
    fn is_predicate_detects_probabilistic_leaves() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let prob = mgr.convex(&[
            (mgr.pass(), Ratio::new(1, 2)),
            (mgr.fail(), Ratio::new(1, 2)),
        ]);
        assert!(mgr.is_predicate(mgr.pass()));
        assert!(mgr.is_predicate(mgr.branch(f, 1, mgr.pass(), mgr.fail())));
        assert!(!mgr.is_predicate(prob));
    }

    #[test]
    fn leaves_are_interned_once() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let d = ActionDist::dirac(Action::assign(f, 1));
        let a = mgr.leaf(d.clone());
        let b = mgr.leaf(d);
        assert_eq!(a, b);
        // pass + the assign leaf = 2 distributions; re-interning added none.
        let _ = mgr.pass();
        assert_eq!(mgr.dist_count(), 2);
    }

    #[test]
    fn forget_strips_scratch_mods_and_merges_actions() {
        let mgr = Manager::new();
        let (f, g) = fields();
        // Two actions differing only in the scratch field g collapse into
        // one, with their probabilities added.
        let d = ActionDist::from_pairs([
            (Action::mods([(f, 1), (g, 0)]), Ratio::new(1, 4)),
            (Action::mods([(f, 1), (g, 1)]), Ratio::new(1, 4)),
            (Action::Drop, Ratio::new(1, 2)),
        ]);
        let p = mgr.leaf(d);
        let q = mgr.forget(p, &[g]);
        let out = mgr.eval(q, &Packet::new());
        assert_eq!(out.prob(&Action::assign(f, 1)), Ratio::new(1, 2));
        assert_eq!(out.prob(&Action::Drop), Ratio::new(1, 2));
        assert_eq!(out.support_size(), 2);
    }

    #[test]
    fn forget_preserves_tests_on_other_fields() {
        let mgr = Manager::new();
        let (f, g) = fields();
        let hi = mgr.leaf(ActionDist::dirac(Action::mods([(g, 7)])));
        let p = mgr.branch(f, 1, hi, mgr.fail());
        let q = mgr.forget(p, &[g]);
        // The f test survives; the g modification is gone.
        assert!(mgr
            .eval(q, &Packet::new().with(f, 1))
            .iter()
            .all(|(a, _)| a.is_skip()));
        assert!(mgr.eval(q, &Packet::new()).is_drop());
        // Forgetting nothing is the identity.
        assert_eq!(mgr.forget(p, &[]), p);
    }

    #[test]
    #[should_panic(expected = "tests it")]
    fn forget_rejects_tested_fields() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let p = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        let _ = mgr.forget(p, &[f]);
    }

    #[test]
    fn eliminate_sums_out_tested_fields() {
        let mgr = Manager::new();
        let (f, g) = fields();
        // if g=1 then f<-10 else f<-20, with g ~ Bernoulli(1/4 on 1).
        let hi = mgr.leaf(ActionDist::dirac(Action::assign(f, 10)));
        let lo = mgr.leaf(ActionDist::dirac(Action::assign(f, 20)));
        let p = mgr.branch(g, 1, hi, lo);
        let e = mgr.eliminate(p, &[ScratchField::bernoulli(g, Ratio::new(1, 4))]);
        let d = mgr.eval(e, &Packet::new());
        assert_eq!(d.prob(&Action::assign(f, 10)), Ratio::new(1, 4));
        assert_eq!(d.prob(&Action::assign(f, 20)), Ratio::new(3, 4));
        // The scratch field is gone entirely.
        assert!(!mgr.domain(e).tested.contains_key(&g));
    }

    #[test]
    fn eliminate_handles_value_chains_and_untested_mass() {
        let mgr = Manager::new();
        let (f, g) = fields();
        // Chain testing g=1 and g=2; draw puts mass on 1, 2 and 3 (3 is
        // untested, so its mass lands on the innermost false branch).
        let a = mgr.leaf(ActionDist::dirac(Action::assign(f, 1)));
        let b = mgr.leaf(ActionDist::dirac(Action::assign(f, 2)));
        let c = mgr.leaf(ActionDist::dirac(Action::assign(f, 3)));
        let chain = mgr.branch(g, 1, a, mgr.branch(g, 2, b, c));
        let draw = vec![
            (1, Ratio::new(1, 2)),
            (2, Ratio::new(1, 3)),
            (3, Ratio::new(1, 6)),
        ];
        let e = mgr.eliminate(chain, &[ScratchField::drawn(g, draw)]);
        let d = mgr.eval(e, &Packet::new());
        assert_eq!(d.prob(&Action::assign(f, 1)), Ratio::new(1, 2));
        assert_eq!(d.prob(&Action::assign(f, 2)), Ratio::new(1, 3));
        assert_eq!(d.prob(&Action::assign(f, 3)), Ratio::new(1, 6));
    }

    #[test]
    #[should_panic(expected = "mass")]
    fn eliminate_rejects_subdistribution_draws() {
        let mgr = Manager::new();
        let (_, g) = fields();
        let p = mgr.branch(g, 1, mgr.pass(), mgr.fail());
        let _ = mgr.eliminate(p, &[ScratchField::drawn(g, vec![(1, Ratio::new(1, 2))])]);
    }

    #[test]
    fn cache_capacity_clears_on_overflow_and_reports_evictions() {
        let mgr = Manager::with_cache_capacity(4);
        let (f, _) = fields();
        // Distinct restrict_eq keys overflow the 4-entry bound quickly.
        let mut p = mgr.pass();
        for v in (1..=12u32).rev() {
            p = mgr.branch(f, v, mgr.fail(), p);
        }
        for v in 1..=12u32 {
            let _ = mgr.restrict_eq(p, f, v);
        }
        let stats = mgr.op_cache_stats();
        let re = stats.get("restrict_eq").unwrap();
        assert!(re.evictions > 0, "expected evictions, got {re:?}");
        assert!(re.entries <= 4, "bounded cache grew to {}", re.entries);
        // The hash-cons identity table is exempt from the bound.
        let cons = stats.get("cons").unwrap();
        assert_eq!(cons.entries, mgr.node_count());
        assert_eq!(cons.evictions, 0);
    }

    #[test]
    fn reset_op_caches_drops_memos_but_keeps_nodes() {
        let mgr = Manager::new();
        let (f, g) = fields();
        let p = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        let q = mgr.branch(g, 2, mgr.pass(), mgr.fail());
        let pq = mgr.seq(p, q);
        let nodes_before = mgr.node_count();
        let entries_before = mgr.op_cache_stats().get("seq").unwrap().entries;
        assert!(entries_before > 0);
        mgr.reset_op_caches();
        let stats = mgr.op_cache_stats();
        let seq = stats.get("seq").unwrap();
        assert_eq!(seq.entries, 0);
        assert_eq!(seq.evictions, entries_before as u64);
        assert_eq!(mgr.node_count(), nodes_before, "nodes survive the reset");
        // Results stay correct (and hash-consing still dedups to the same
        // handle) after a reset.
        assert_eq!(mgr.seq(p, q), pq);
    }

    #[test]
    fn peak_gauges_track_interned_sizes() {
        let mgr = Manager::new();
        let (f, _) = fields();
        assert_eq!(mgr.peak_live_nodes(), 0);
        assert_eq!(mgr.peak_dist_entries(), 0);
        let d = ActionDist::from_pairs([
            (Action::assign(f, 1), Ratio::new(1, 2)),
            (Action::Drop, Ratio::new(1, 2)),
        ]);
        let _ = mgr.leaf(d);
        let _ = mgr.pass();
        assert_eq!(mgr.peak_live_nodes(), 2);
        // 2-entry leaf + 1-entry skip leaf.
        assert_eq!(mgr.peak_dist_entries(), 3);
        let (_, total, _) = mgr.dist_table_stats();
        assert_eq!(mgr.peak_dist_entries(), total);
    }

    #[test]
    fn op_cache_stats_counts_lookups() {
        let mgr = Manager::new();
        let (f, _) = fields();
        let p = mgr.branch(f, 1, mgr.pass(), mgr.fail());
        let q = mgr.branch(f, 2, mgr.pass(), mgr.fail());
        let _ = mgr.seq(p, q);
        let first = mgr.op_cache_stats();
        let seq1 = *first.get("seq").unwrap();
        assert!(seq1.misses >= 1);
        // Repeating the identical operation is answered from the cache.
        let _ = mgr.seq(p, q);
        let second = mgr.op_cache_stats();
        let seq2 = *second.get("seq").unwrap();
        assert_eq!(seq2.misses, seq1.misses);
        assert_eq!(seq2.hits, seq1.hits + 1);
        assert!(seq2.hit_rate() > 0.0);
        // The cons entry tracks the hash-cons table.
        let cons = *second.get("cons").unwrap();
        assert_eq!(cons.entries, mgr.node_count());
    }
}
