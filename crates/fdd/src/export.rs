//! A portable FDD representation for crossing [`Manager`] boundaries.
//!
//! The parallel backend (§6 "Parallel speedup") compiles per-switch
//! programs on worker threads, each with a private manager to avoid lock
//! contention — mirroring the paper's per-process workers. Results travel
//! back as [`FddExport`] values and are re-interned into the main manager.
//!
//! An export can carry *several* roots over one shared node table
//! ([`Manager::export_all`]): the tree-reduce merge phase ships a worker's
//! guard and policy diagrams together, and any structure they share is
//! serialised (and later re-interned) exactly once.

use crate::{ActionDist, Fdd, Manager, Node};
use mcnetkat_core::{Field, Value};
use std::collections::HashMap;

/// A self-contained, manager-independent FDD as a flattened DAG.
///
/// Holds one or more root handles into a shared node table; nodes reachable
/// from several roots are stored once.
#[derive(Clone, Debug)]
pub struct FddExport {
    nodes: Vec<ExportNode>,
    roots: Vec<usize>,
}

#[derive(Clone, Debug)]
enum ExportNode {
    Leaf(ActionDist),
    Branch {
        field: Field,
        value: Value,
        hi: usize,
        lo: usize,
    },
}

impl Manager {
    /// Exports `p` as a manager-independent DAG.
    pub fn export(&self, p: Fdd) -> FddExport {
        self.export_all(&[p])
    }

    /// Exports several diagrams into one DAG with a shared node table.
    ///
    /// Structure shared between the roots is serialised once; [`import_all`]
    /// re-interns it once on the other side as well.
    ///
    /// [`import_all`]: Manager::import_all
    pub fn export_all(&self, ps: &[Fdd]) -> FddExport {
        let mut ids: HashMap<Fdd, usize> = HashMap::new();
        let mut nodes: Vec<ExportNode> = Vec::new();
        let roots = ps
            .iter()
            .map(|&p| self.export_rec(p, &mut ids, &mut nodes))
            .collect();
        FddExport { nodes, roots }
    }

    fn export_rec(
        &self,
        p: Fdd,
        ids: &mut HashMap<Fdd, usize>,
        nodes: &mut Vec<ExportNode>,
    ) -> usize {
        if let Some(&ix) = ids.get(&p) {
            return ix;
        }
        let exported = match self.node(p) {
            Node::Leaf(did) => ExportNode::Leaf(self.leaf_dist(did).as_ref().clone()),
            Node::Branch {
                field,
                value,
                hi,
                lo,
            } => {
                let hi = self.export_rec(hi, ids, nodes);
                let lo = self.export_rec(lo, ids, nodes);
                ExportNode::Branch {
                    field,
                    value,
                    hi,
                    lo,
                }
            }
        };
        let ix = nodes.len();
        nodes.push(exported);
        ids.insert(p, ix);
        ix
    }

    /// Re-interns an exported DAG into this manager, returning its first
    /// root.
    ///
    /// # Panics
    ///
    /// Panics if `export` carries no roots (produced by `export_all(&[])`).
    pub fn import(&self, export: &FddExport) -> Fdd {
        assert!(
            export.root_count() > 0,
            "cannot import a root-less FddExport"
        );
        self.import_all(export)[0]
    }

    /// Re-interns an exported DAG into this manager, returning every root
    /// in export order. Shared nodes are interned once.
    pub fn import_all(&self, export: &FddExport) -> Vec<Fdd> {
        // Children always precede parents in the export order.
        let mut interned: Vec<Fdd> = Vec::with_capacity(export.nodes.len());
        for node in &export.nodes {
            let fdd = match node {
                ExportNode::Leaf(d) => self.leaf(d.clone()),
                ExportNode::Branch {
                    field,
                    value,
                    hi,
                    lo,
                } => self.branch(*field, *value, interned[*hi], interned[*lo]),
            };
            interned.push(fdd);
        }
        export.roots.iter().map(|&r| interned[r]).collect()
    }
}

impl FddExport {
    /// Number of nodes in the exported DAG.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the DAG is empty (never the case for valid
    /// exports).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of roots carried by this export.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnetkat_core::{Field, Packet, Pred, Prog};
    use mcnetkat_num::Ratio;

    #[test]
    fn round_trip_within_one_manager() {
        let mgr = Manager::new();
        let f = Field::named("exp_f");
        let prog = Prog::ite(
            Pred::test(f, 1),
            Prog::choice2(Prog::assign(f, 2), Ratio::new(1, 2), Prog::drop()),
            Prog::skip(),
        );
        let fdd = mgr.compile(&prog).unwrap();
        let back = mgr.import(&mgr.export(fdd));
        assert_eq!(fdd, back); // hash-consing gives pointer equality
    }

    #[test]
    fn cross_manager_transfer_preserves_semantics() {
        let worker = Manager::new();
        let main = Manager::new();
        let f = Field::named("exp_g");
        let prog = Prog::choice2(Prog::assign(f, 7), Ratio::new(1, 4), Prog::drop());
        let fdd = worker.compile(&prog).unwrap();
        let moved = main.import(&worker.export(fdd));
        let pk = Packet::new();
        assert_eq!(worker.output_dist(fdd, &pk), main.output_dist(moved, &pk));
    }

    #[test]
    fn export_shares_nodes() {
        let mgr = Manager::new();
        let f = Field::named("exp_h");
        let g = Field::named("exp_i");
        // Both branches point at the same subdiagram — the export must not
        // duplicate it.
        let shared = mgr.branch(g, 1, mgr.pass(), mgr.fail());
        let fdd = mgr.branch(f, 1, shared, shared);
        // hi == lo collapses, so build a diamond instead:
        let fdd2 = mgr.branch(f, 1, shared, mgr.fail());
        let _ = fdd;
        let export = mgr.export(fdd2);
        // pass, fail, shared-branch, root = 4 nodes.
        assert_eq!(export.len(), 4);
    }

    #[test]
    fn multi_root_export_shares_nodes_across_roots() {
        let mgr = Manager::new();
        let f = Field::named("exp_j");
        let g = Field::named("exp_k");
        let shared = mgr.branch(g, 1, mgr.pass(), mgr.fail());
        let a = mgr.branch(f, 1, shared, mgr.fail());
        let b = mgr.branch(f, 2, shared, mgr.fail());
        let export = mgr.export_all(&[a, b]);
        assert_eq!(export.root_count(), 2);
        // pass, fail, shared, a-root, b-root — `shared` appears once.
        assert_eq!(export.len(), 5);
        // Round trip through a second manager and back preserves identity.
        let other = Manager::new();
        let moved = other.import_all(&export);
        let back = mgr.import_all(&other.export_all(&moved));
        assert_eq!(back, vec![a, b]);
    }
}
