//! Closed-form compilation of `while` loops (§4 / Theorem 4.7, specialised
//! to single packets).
//!
//! `while t do p` on a single packet is an absorbing Markov chain over
//! symbolic packets: guard-false states absorb with the packet as output;
//! guard-true states step through the body's FDD; the `drop` outcome
//! absorbs in `∅`. The absorption probabilities `A = (I − Q)^{-1} R`
//! (equation 2) give the loop's big-step distribution exactly. Mass that
//! can never reach an absorbing state corresponds to non-termination, which
//! the semantics identifies with `drop`.
//!
//! The state space uses *dynamic domain reduction* (§5.1): input classes
//! are the product, over fields tested by the guard or body, of the tested
//! values plus a wildcard; exploration then closes the set under the body's
//! modifications.

use crate::{Action, ActionDist, Budget, CompileError, CompileOptions, Fdd, Manager, SymPkt};
use mcnetkat_core::{Field, Value};
use mcnetkat_linalg::{AbsorbingChain, LinalgError, SolverBackend};
use mcnetkat_num::Ratio;
use std::collections::HashMap;

/// Index of the distinguished `∅` (dropped) state.
const DROP_STATE: usize = 0;

/// Polls a named failpoint, translating an injected fault either into a
/// solver error (which joins the fallback chain like a real one) or a
/// budget-style abort (which propagates). Compiles to `Ok(None)` without
/// the `failpoints` feature.
fn rung_failpoint(site: &str) -> Result<Option<LinalgError>, CompileError> {
    #[cfg(feature = "failpoints")]
    {
        use crate::failpoints::{check, InjectedFault};
        match check(site) {
            None => Ok(None),
            Some(InjectedFault::Singular) => Ok(Some(LinalgError::Singular(0))),
            Some(InjectedFault::Cancelled) => Err(CompileError::Cancelled),
        }
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        Ok(None)
    }
}

/// The outcome of one successful absorbing-chain solve, whichever rung
/// produced it: sparse absorption rows indexed by transient rank, plus
/// the structure gauges for [`crate::LoopSolveStats`].
struct SolveOutcome {
    rows: Vec<Vec<(usize, Ratio)>>,
    blocks: usize,
    sccs: usize,
}

/// Converts dense `transient rank × absorbing rank` exact rows into the
/// sparse form the rest of the pipeline consumes.
fn sparsify(dense: Vec<Vec<Ratio>>) -> Vec<Vec<(usize, Ratio)>> {
    dense
        .into_iter()
        .map(|row| {
            row.into_iter()
                .enumerate()
                .filter(|(_, p)| !p.is_zero())
                .collect()
        })
        .collect()
}

/// One sparse-SCC solver rung. The outer `Result` carries budget aborts
/// (propagate immediately); the inner one carries solver failures (the
/// fallback chain decides what happens next).
fn sparse_rung(
    chain: &AbsorbingChain,
    nt: usize,
    lumping: bool,
    budget: &Budget,
) -> Result<Result<SolveOutcome, LinalgError>, CompileError> {
    if let Some(e) = rung_failpoint("fdd::loops::solve")? {
        return Ok(Err(e));
    }
    if lumping {
        // `linalg::lump` is a logical site name: the registry lives in
        // this crate (linalg sits below it), so the lumped rung's fault
        // is injected here, just before the partition refinement runs.
        if let Some(e) = rung_failpoint("linalg::lump")? {
            return Ok(Err(e));
        }
    }
    let mut stop = || budget.check_external().is_err();
    match chain.solve_sparse_scc_interruptible(lumping, &mut stop) {
        Ok(sol) => Ok(Ok(SolveOutcome {
            rows: (0..nt).map(|t| sol.sparse_row(t).to_vec()).collect(),
            blocks: sol.lumped_blocks(),
            sccs: sol.scc_count(),
        })),
        // The solver stopped because our budget check fired: re-evaluate
        // the budget for the typed error. Deadlines stay expired and
        // tokens stay cancelled, so the fallback arm is unreachable.
        Err(LinalgError::Interrupted) => Err(budget
            .check_external()
            .err()
            .unwrap_or(CompileError::DeadlineExceeded)),
        Err(e) => Ok(Err(e)),
    }
}

/// Runs the declarative solver fallback chain for the `SparseScc`
/// backend: (1) sparse SCC with the configured lumping, (2) the same
/// solve without lumping, (3) the dense exact reference. Which rungs are
/// permitted comes from [`crate::FallbackPolicy`]; every transition is
/// recorded on the manager's [`crate::SolveReport`]. All three rungs are
/// exact, so a fallback changes how the answer is computed, never the
/// answer.
fn solve_with_fallback(
    mgr: &Manager,
    chain: &AbsorbingChain,
    nt: usize,
    opts: &CompileOptions,
) -> Result<SolveOutcome, CompileError> {
    let policy = opts.fallback;
    let mut events: Vec<String> = Vec::new();
    let mut retried = false;

    let mut last = match sparse_rung(chain, nt, opts.lumping, &opts.budget)? {
        Ok(out) => {
            mgr.record_solve_rungs(false, false, false, events);
            return Ok(out);
        }
        Err(e) => e,
    };
    events.push(format!(
        "sparse SCC solve (lumping={}) failed: {last}",
        opts.lumping
    ));

    if opts.lumping && policy.retry_without_lumping {
        retried = true;
        match sparse_rung(chain, nt, false, &opts.budget)? {
            Ok(out) => {
                events.push("retry without lumping succeeded".to_string());
                mgr.record_solve_rungs(true, false, false, events);
                return Ok(out);
            }
            Err(e) => {
                events.push(format!("retry without lumping failed: {e}"));
                last = e;
            }
        }
    }

    if policy.dense_exact {
        opts.budget.check_external()?;
        match chain.solve_exact() {
            Ok(rows) => {
                events.push("dense exact reference succeeded".to_string());
                mgr.record_solve_rungs(retried, true, false, events);
                return Ok(SolveOutcome {
                    rows: sparsify(rows),
                    blocks: nt,
                    sccs: 0,
                });
            }
            Err(e) => {
                events.push(format!("dense exact reference failed: {e}"));
                last = e;
            }
        }
    }

    events.push("fallback chain exhausted".to_string());
    mgr.record_solve_rungs(retried, policy.dense_exact, true, events);
    Err(CompileError::Solver(last))
}

/// Compiles `while guard do body` given compiled guard and body FDDs.
///
/// # Errors
///
/// Fails if the symbolic state space exceeds `opts.state_limit`, the guard
/// is probabilistic, or the linear solver fails.
pub fn compile_while(
    mgr: &Manager,
    guard: Fdd,
    body: Fdd,
    opts: &CompileOptions,
) -> Result<Fdd, CompileError> {
    // 1. Dynamic domain: fields/values tested by guard or body.
    let mut dom = mgr.domain(guard);
    dom.merge(&mgr.domain(body));
    if dom.class_count() > opts.state_limit {
        return Err(CompileError::StateSpaceTooLarge {
            discovered: dom.class_count(),
            limit: opts.state_limit,
        });
    }
    let input_classes = dom.input_classes();

    // 2. Explore the chain from every input class.
    //    State 0 is ∅; symbolic packets are states 1….
    //    The state limit is enforced inside `intern` — a single body
    //    evaluation can discover many successor states, so checking only
    //    between evaluations would let the state set overshoot the limit
    //    arbitrarily far before the next check.
    let limit = opts.state_limit;
    let budget = &opts.budget;
    let mut index: HashMap<SymPkt, usize> = HashMap::new();
    let mut states: Vec<SymPkt> = Vec::new();
    let mut worklist: Vec<usize> = Vec::new();
    let mut polls: u32 = 0;
    let mut intern = |pk: SymPkt,
                      states: &mut Vec<SymPkt>,
                      worklist: &mut Vec<usize>|
     -> Result<usize, CompileError> {
        if let Some(e) = rung_failpoint("fdd::intern")? {
            return Err(CompileError::Solver(e));
        }
        if let Some(&ix) = index.get(&pk) {
            return Ok(ix);
        }
        // Budget checkpoint on state discovery, amortised so unlimited
        // budgets cost a counter increment per new state.
        polls = polls.wrapping_add(1);
        if polls & 0x3f == 0 {
            budget.check_external()?;
        }
        // `states.len() + 2` counts DROP_STATE plus the state about to be
        // interned.
        if states.len() + 2 > limit {
            return Err(CompileError::StateSpaceTooLarge {
                discovered: states.len() + 2,
                limit,
            });
        }
        let ix = states.len() + 1; // offset for DROP_STATE
        index.insert(pk.clone(), ix);
        states.push(pk);
        worklist.push(ix);
        Ok(ix)
    };
    for class in &input_classes {
        intern(class.clone(), &mut states, &mut worklist)?;
    }
    // rows[s]: sparse transition list of transient state s (empty for
    // absorbing states). Indexed by state id for deterministic iteration —
    // the chain, and hence the solver's pivoting order, must not depend on
    // hash iteration order.
    let mut rows: Vec<Vec<(usize, Ratio)>> = Vec::new();
    let mut absorbing: Vec<usize> = vec![DROP_STATE];
    while let Some(ix) = worklist.pop() {
        let pk = states[ix - 1].clone();
        let gd = mgr.eval_sym_shared(guard, &pk);
        if gd.is_drop() {
            absorbing.push(ix);
            continue;
        }
        if !gd.is_skip() {
            return Err(CompileError::ProbabilisticGuard);
        }
        let dist = mgr.eval_sym_shared(body, &pk);
        let mut row = Vec::with_capacity(dist.support_size());
        for (action, r) in dist.iter() {
            let target = match pk.apply(action) {
                None => DROP_STATE,
                Some(next) => intern(next, &mut states, &mut worklist)?,
            };
            row.push((target, r.clone()));
        }
        if rows.len() <= ix {
            rows.resize(ix + 1, Vec::new());
        }
        rows[ix] = row;
    }
    let n = states.len() + 1;
    rows.resize(n, Vec::new());

    // 3. Drop states that cannot reach an absorbing state: they represent
    //    sure non-termination, which the semantics equates with drop.
    let mut reaches = vec![false; n];
    for &a in &absorbing {
        reaches[a] = true;
    }
    // Backward reachability via reverse adjacency.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (s, row) in rows.iter().enumerate() {
        for (t, _) in row {
            rev[*t].push(s);
        }
    }
    let mut stack: Vec<usize> = absorbing.clone();
    while let Some(s) = stack.pop() {
        for &prev in &rev[s] {
            if !reaches[prev] {
                reaches[prev] = true;
                stack.push(prev);
            }
        }
    }

    // 4. Build and solve the absorbing chain. Transitions into unreachable
    //    states are redirected to ∅ (their mass never produces output).
    let mut chain = AbsorbingChain::new(n);
    for &a in &absorbing {
        chain.set_absorbing(a);
    }
    for s in 0..n {
        if chain.is_absorbing(s) {
            continue;
        }
        if !reaches[s] {
            // Never absorbs: model as immediately absorbing into ∅ —
            // we simply leave its row empty and mark it absorbed-to-drop by
            // sending all mass to DROP_STATE.
            chain.add(s, DROP_STATE, Ratio::one());
            continue;
        }
        for (t, r) in &rows[s] {
            let target = if reaches[*t] { *t } else { DROP_STATE };
            chain.add(s, target, r.clone());
        }
    }
    // Compact index maps (same ordering as the chain's internal partition:
    // states scanned in id order).
    let mut transient_rank = vec![usize::MAX; n];
    let mut absorbing_rank = vec![usize::MAX; n];
    let mut absorbing_ids = Vec::new();
    {
        let (mut t, mut a) = (0, 0);
        for s in 0..n {
            if chain.is_absorbing(s) {
                absorbing_rank[s] = a;
                absorbing_ids.push(s);
                a += 1;
            } else {
                transient_rank[s] = t;
                t += 1;
            }
        }
    }
    let nt = n - absorbing_ids.len();

    // Absorption probabilities as *sparse* exact rows, `(absorbing rank,
    // probability)` with zero entries never materialised. The SparseScc
    // backend is exact at every size (SCC-decomposed back-substitution
    // over rationals), so it neither consults `exact_threshold` nor snaps
    // — and it degrades through the `FallbackPolicy` rungs instead of
    // failing outright. The float backends keep the old ladder: small
    // chains re-solved exactly, larger ones solved in floats and snapped
    // (the paper likewise trusts the 64-bit-float solver), with the dense
    // exact reference as their policy-gated fallback.
    let absorption: Vec<Vec<(usize, Ratio)>> = if opts.backend == SolverBackend::SparseScc {
        let out = solve_with_fallback(mgr, &chain, nt, opts)?;
        mgr.record_loop_solve(nt, out.blocks, out.sccs);
        out.rows
    } else if nt <= opts.exact_threshold {
        // Dense exact *is* the primary rung here; there is nothing left
        // to fall back to.
        match chain.solve_exact() {
            Ok(rows) => {
                mgr.record_loop_solve(nt, nt, 0);
                mgr.record_solve_rungs(false, false, false, Vec::new());
                sparsify(rows)
            }
            Err(e) => {
                mgr.record_solve_rungs(
                    false,
                    false,
                    true,
                    vec![format!("dense exact solve failed: {e}")],
                );
                return Err(e.into());
            }
        }
    } else {
        match chain.solve(opts.backend) {
            Ok(solution) => {
                mgr.record_loop_solve(nt, nt, 0);
                mgr.record_solve_rungs(false, false, false, Vec::new());
                (0..n)
                    .filter(|&s| !chain.is_absorbing(s))
                    .map(|s| {
                        absorbing_ids
                            .iter()
                            .enumerate()
                            .filter_map(|(a_rank, &a)| {
                                let p = snap_probability(solution.prob(s, a));
                                (!p.is_zero()).then_some((a_rank, p))
                            })
                            .collect()
                    })
                    .collect()
            }
            Err(e) if opts.fallback.dense_exact => {
                // A float backend failed (no convergence, numerically
                // singular pivot, …): the dense exact reference is the
                // last rung for these backends too.
                opts.budget.check_external()?;
                match chain.solve_exact() {
                    Ok(rows) => {
                        mgr.record_solve_rungs(
                            false,
                            true,
                            false,
                            vec![
                                format!("float backend {:?} failed: {e}", opts.backend),
                                "dense exact reference succeeded".to_string(),
                            ],
                        );
                        mgr.record_loop_solve(nt, nt, 0);
                        sparsify(rows)
                    }
                    Err(e2) => {
                        mgr.record_solve_rungs(
                            false,
                            true,
                            true,
                            vec![
                                format!("float backend {:?} failed: {e}", opts.backend),
                                format!("dense exact reference failed: {e2}"),
                                "fallback chain exhausted".to_string(),
                            ],
                        );
                        return Err(e2.into());
                    }
                }
            }
            Err(e) => {
                mgr.record_solve_rungs(
                    false,
                    false,
                    true,
                    vec![format!("float backend {:?} failed: {e}", opts.backend)],
                );
                return Err(e.into());
            }
        }
    };

    // 5. Build the leaf distribution for each input class.
    let mut class_dists: HashMap<SymPkt, ActionDist> = HashMap::new();
    for class in &input_classes {
        let ix = index[class];
        let dist = if chain.is_absorbing(ix) {
            if ix == DROP_STATE {
                ActionDist::drop()
            } else {
                // Guard already false: the loop is the identity here.
                ActionDist::skip()
            }
        } else {
            let mut d = ActionDist::zero();
            let mut total = Ratio::zero();
            let row = &absorption[transient_rank[ix]];
            for (a_rank, pr) in row {
                if pr.is_zero() || pr.is_negative() {
                    continue;
                }
                let a = absorbing_ids[*a_rank];
                let action = if a == DROP_STATE {
                    Action::Drop
                } else {
                    states[a - 1].as_action()
                };
                total += pr;
                d.add(action, pr.clone());
            }
            // Residual mass: genuine non-termination goes to drop, but a
            // deficit within float tolerance is solver rounding from the
            // float path — renormalise it into the heaviest entry instead
            // of fabricating a spurious drop.
            let deficit = Ratio::one() - total;
            if !deficit.is_zero() {
                if deficit.to_f64().abs() < 1e-9 {
                    // Rebuild with the heaviest entry adjusted so the mass
                    // is exactly 1 (deficit may have either sign).
                    if let Some(heaviest) = d
                        .iter()
                        .max_by(|(_, a), (_, b)| a.cmp(b))
                        .map(|(a, _)| a.clone())
                    {
                        d = ActionDist::from_pairs(d.iter().map(|(a, r)| {
                            if *a == heaviest {
                                (a.clone(), r + &deficit)
                            } else {
                                (a.clone(), r.clone())
                            }
                        }));
                    }
                } else if deficit > Ratio::zero() {
                    d.add(Action::Drop, deficit);
                }
            }
            d
        };
        class_dists.insert(class.clone(), dist);
    }

    // 6. Rebuild the big-step FDD over the tested fields.
    let fields: Vec<(Field, Vec<Value>)> =
        dom.tested.iter().map(|(f, vs)| (*f, vs.clone())).collect();
    Ok(build_tree(mgr, &fields, 0, SymPkt::star(), &class_dists))
}

/// Converts a solver float to an exact probability, snapping values within
/// 1e-9 of an integer (the solver returns exactly-0/1 rows up to rounding).
fn snap_probability(p: f64) -> Ratio {
    let clamped = p.clamp(0.0, 1.0);
    let rounded = clamped.round();
    if (clamped - rounded).abs() < 1e-9 {
        Ratio::from_integer(rounded as i64)
    } else {
        Ratio::from_f64(clamped)
    }
}

/// Builds the decision tree for the loop result: fields in FDD order, each
/// field's tested values in ascending order, with the wildcard class on the
/// final false-branch.
fn build_tree(
    mgr: &Manager,
    fields: &[(Field, Vec<Value>)],
    fi: usize,
    class: SymPkt,
    dists: &HashMap<SymPkt, ActionDist>,
) -> Fdd {
    if fi == fields.len() {
        let dist = dists
            .get(&class)
            .cloned()
            .expect("input class missing from solution");
        return mgr.leaf(dist);
    }
    let (field, values) = &fields[fi];
    // Build the chain bottom-up: start with the wildcard branch.
    let mut result = build_tree(mgr, fields, fi + 1, class.clone(), dists);
    for &v in values.iter().rev() {
        let hi = build_tree(mgr, fields, fi + 1, class.with(*field, v), dists);
        result = mgr.branch(*field, v, hi, result);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnetkat_core::{Field, Packet, Pred, Prog};

    fn field(n: &str) -> Field {
        Field::named(n)
    }

    #[test]
    fn single_iteration_loop() {
        let mgr = Manager::new();
        let f = field("lp_f1");
        // while f=0 do f<-1
        let prog = Prog::while_(Pred::test(f, 0), Prog::assign(f, 1));
        let fdd = mgr.compile(&prog).unwrap();
        let d = mgr.eval(fdd, &Packet::new()); // f=0 initially
        let out: Vec<_> = d
            .iter()
            .map(|(a, r)| (a.apply(&Packet::new()), r.clone()))
            .collect();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Some(Packet::new().with(f, 1)));
        assert_eq!(out[0].1, Ratio::one());
        // Guard already false: identity.
        let d2 = mgr.eval(fdd, &Packet::new().with(f, 5));
        assert!(d2.is_skip());
    }

    #[test]
    fn geometric_loop_solves_exactly() {
        let mgr = Manager::new();
        let f = field("lp_f2");
        // while f=0 do (f<-1 ⊕½ skip): exits with probability 1.
        let body = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 2), Prog::skip());
        let prog = Prog::while_(Pred::test(f, 0), body);
        let fdd = mgr.compile(&prog).unwrap();
        let d = mgr.eval(fdd, &Packet::new());
        let p1 = d.prob(&Action::assign(f, 1));
        // The closed form gives exactly 1, unlike any finite unrolling.
        assert!((p1.to_f64() - 1.0).abs() < 1e-9);
        assert!(d.prob(&Action::Drop).to_f64() < 1e-9);
    }

    #[test]
    fn nonterminating_loop_is_drop() {
        let mgr = Manager::new();
        let f = field("lp_f3");
        // while f=0 do skip: diverges on f=0, identity otherwise.
        let prog = Prog::while_(Pred::test(f, 0), Prog::skip());
        let fdd = mgr.compile(&prog).unwrap();
        assert!(mgr.eval(fdd, &Packet::new()).is_drop());
        assert!(mgr.eval(fdd, &Packet::new().with(f, 1)).is_skip());
    }

    #[test]
    fn counting_loop_terminates() {
        let mgr = Manager::new();
        let f = field("lp_f4");
        // while ¬(f=3) do (f=0;f<-1 | f=1;f<-2 | f=2;f<-3) via conditionals
        let body = Prog::case(
            vec![
                (Pred::test(f, 0), Prog::assign(f, 1)),
                (Pred::test(f, 1), Prog::assign(f, 2)),
                (Pred::test(f, 2), Prog::assign(f, 3)),
            ],
            Prog::drop(),
        );
        let prog = Prog::while_(Pred::test(f, 3).not(), body);
        let fdd = mgr.compile(&prog).unwrap();
        for start in 0..=3u32 {
            let d = mgr.eval(fdd, &Packet::new().with(f, start));
            let out = d
                .iter()
                .next()
                .unwrap()
                .0
                .apply(&Packet::new().with(f, start));
            assert_eq!(out, Some(Packet::new().with(f, 3)), "start {start}");
            assert_eq!(d.mass(), Ratio::one());
        }
        // Any other value loops through drop (body drops it).
        let d = mgr.eval(fdd, &Packet::new().with(f, 9));
        assert!(d.is_drop());
    }

    #[test]
    fn loop_output_respects_unmodified_fields() {
        let mgr = Manager::new();
        let f = field("lp_f5");
        let g = field("lp_g5");
        // while f=0 do f<-1 — field g must pass through untouched.
        let prog = Prog::while_(Pred::test(f, 0), Prog::assign(f, 1));
        let fdd = mgr.compile(&prog).unwrap();
        let input = Packet::new().with(g, 42);
        let d = mgr.eval(fdd, &input);
        let outs: Vec<_> = d.iter().map(|(a, _)| a.apply(&input)).collect();
        assert_eq!(outs, vec![Some(input.with(f, 1))]);
    }

    #[test]
    fn state_limit_enforced_within_one_body_evaluation() {
        // A single body evaluation discovers 8 successor states at once.
        // The limit must trip *during* that evaluation (inside `intern`),
        // not at the next worklist pop — so the discovered count can
        // overshoot the limit by at most the one state being interned.
        let mgr = Manager::new();
        let f = field("lp_f7");
        let g = field("lp_g7");
        let branches: Vec<(Prog, Ratio)> = (1..=8u32)
            .map(|i| (Prog::assign(g, i), Ratio::new(1, 8)))
            .collect();
        let prog = Prog::while_(Pred::test(f, 0), Prog::choice(branches));
        let limit = 5;
        let opts = CompileOptions {
            state_limit: limit,
            ..CompileOptions::default()
        };
        match mgr.compile_with(&prog, &opts).unwrap_err() {
            CompileError::StateSpaceTooLarge {
                discovered,
                limit: l,
            } => {
                assert_eq!(l, limit);
                assert_eq!(discovered, limit + 1, "limit trips without overshoot");
            }
            other => panic!("unexpected error: {other}"),
        }
        // A permissive limit compiles the same loop fine.
        mgr.compile(&prog).unwrap();
    }

    #[test]
    fn two_phase_random_walk() {
        let mgr = Manager::new();
        let f = field("lp_f6");
        // Random walk on {0,1,2}: from 1 go to 0 or 2 with prob ½ each;
        // absorb at 0 and 2. Start at 1 → ½ / ½.
        let body = Prog::ite(
            Pred::test(f, 1),
            Prog::choice2(Prog::assign(f, 0), Ratio::new(1, 2), Prog::assign(f, 2)),
            Prog::drop(),
        );
        let guard = Pred::test(f, 1);
        let prog = Prog::while_(guard, body);
        let fdd = mgr.compile(&prog).unwrap();
        let d = mgr.eval(fdd, &Packet::new().with(f, 1));
        assert_eq!(d.prob(&Action::assign(f, 0)).to_f64(), 0.5);
        assert_eq!(d.prob(&Action::assign(f, 2)).to_f64(), 0.5);
    }
}
