//! Leaf actions of probabilistic FDDs.
//!
//! A leaf of a probabilistic FDD holds a distribution over *actions*, where
//! an action is either `drop` or a set of field modifications (§5.1).

use mcnetkat_core::{Field, Packet, Value};
use mcnetkat_num::Ratio;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// An FDD action: drop the packet, or apply a set of modifications.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Action {
    /// Drop the packet.
    Drop,
    /// Apply modifications (sorted by field, no zero-effect entries are
    /// removed — `f<-0` is a real modification).
    Mods(Vec<(Field, Value)>),
}

impl Action {
    /// The identity action (no modifications).
    pub fn skip() -> Action {
        Action::Mods(Vec::new())
    }

    /// A single modification `f <- v`.
    pub fn assign(f: Field, v: Value) -> Action {
        Action::Mods(vec![(f, v)])
    }

    /// Builds a modification set from pairs (later pairs win), sorted.
    pub fn mods<I: IntoIterator<Item = (Field, Value)>>(pairs: I) -> Action {
        let mut mods: Vec<(Field, Value)> = pairs.into_iter().collect();
        // Stable sort keeps insertion order within equal fields, so the
        // last-wins rule survives sorting; the dedup then keeps the later
        // element of each equal-field run. The result stays sorted by
        // field — the invariant `Action::lookup`'s binary search needs.
        mods.sort_by_key(|&(f, _)| f);
        mods.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = later.1;
                true
            } else {
                false
            }
        });
        Action::Mods(mods)
    }

    /// Returns `true` for the identity action.
    pub fn is_skip(&self) -> bool {
        matches!(self, Action::Mods(m) if m.is_empty())
    }

    /// Sequential composition: first `self`, then `other` (whose
    /// modifications win on conflicts). `Drop` is absorbing on both sides.
    pub fn then(&self, other: &Action) -> Action {
        match (self, other) {
            (Action::Drop, _) | (_, Action::Drop) => Action::Drop,
            (Action::Mods(a), Action::Mods(b)) => {
                Action::mods(a.iter().copied().chain(b.iter().copied()))
            }
        }
    }

    /// Applies the action to a packet (`None` = dropped).
    pub fn apply(&self, pk: &Packet) -> Option<Packet> {
        match self {
            Action::Drop => None,
            Action::Mods(mods) => {
                let mut out = pk.clone();
                for &(f, v) in mods {
                    out.set(f, v);
                }
                Some(out)
            }
        }
    }

    /// The modification this action performs on `f`, if any.
    pub fn lookup(&self, f: Field) -> Option<Value> {
        match self {
            Action::Drop => None,
            Action::Mods(mods) => mods
                .binary_search_by_key(&f, |&(g, _)| g)
                .ok()
                .map(|ix| mods[ix].1),
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Drop => write!(f, "drop"),
            Action::Mods(mods) if mods.is_empty() => write!(f, "skip"),
            Action::Mods(mods) => {
                for (i, (field, v)) in mods.iter().enumerate() {
                    if i > 0 {
                        write!(f, ";")?;
                    }
                    write!(f, "{field}<-{v}")?;
                }
                Ok(())
            }
        }
    }
}

/// A sub-distribution over actions: sorted by action, strictly positive
/// probabilities. Total mass is 1 for fully built FDDs; intermediate sums
/// during compilation may carry less.
///
/// Entries hold their [`Action`]s behind `Arc`s: distribution-level
/// operations (`sum`, `scale`) are hot inside the FDD combinators, and
/// sharing the action payloads turns the per-entry clone from a `Vec`
/// allocation into a reference-count bump. Equality, ordering and hashing
/// see through the `Arc` to the action value.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct ActionDist {
    entries: Vec<(Arc<Action>, Ratio)>,
}

impl ActionDist {
    /// The point mass on `a`.
    pub fn dirac(a: Action) -> ActionDist {
        ActionDist {
            entries: vec![(Arc::new(a), Ratio::one())],
        }
    }

    /// The distribution that always drops.
    pub fn drop() -> ActionDist {
        Self::dirac(Action::Drop)
    }

    /// The distribution that always passes unchanged.
    pub fn skip() -> ActionDist {
        Self::dirac(Action::skip())
    }

    /// The empty sub-distribution.
    pub fn zero() -> ActionDist {
        ActionDist::default()
    }

    /// Builds from `(action, probability)` pairs, merging duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any probability is negative.
    pub fn from_pairs<I: IntoIterator<Item = (Action, Ratio)>>(pairs: I) -> ActionDist {
        let mut out = ActionDist::zero();
        for (a, r) in pairs {
            out.add(a, r);
        }
        out
    }

    /// Adds probability `r` to action `a`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is negative.
    pub fn add(&mut self, a: Action, r: Ratio) {
        assert!(!r.is_negative(), "negative probability {r}");
        if r.is_zero() {
            return;
        }
        match self.entries.binary_search_by(|(b, _)| b.as_ref().cmp(&a)) {
            Ok(ix) => self.entries[ix].1 += &r,
            Err(ix) => self.entries.insert(ix, (Arc::new(a), r)),
        }
    }

    /// Pointwise sum of two sub-distributions.
    ///
    /// Both operands are sorted by action, so this is a linear merge; the
    /// shared-action case adds the probabilities (both strictly positive,
    /// so the result never needs filtering).
    pub fn sum(&self, other: &ActionDist) -> ActionDist {
        let mut out = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (a, ra) = &self.entries[i];
            let (b, rb) = &other.entries[j];
            match a.cmp(b) {
                Ordering::Less => {
                    out.push((a.clone(), ra.clone()));
                    i += 1;
                }
                Ordering::Greater => {
                    out.push((b.clone(), rb.clone()));
                    j += 1;
                }
                Ordering::Equal => {
                    out.push((a.clone(), ra + rb));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.entries[i..]);
        out.extend_from_slice(&other.entries[j..]);
        ActionDist { entries: out }
    }

    /// Scales every probability by `r`.
    pub fn scale(&self, r: &Ratio) -> ActionDist {
        if r.is_zero() {
            return ActionDist::zero();
        }
        ActionDist {
            entries: self
                .entries
                .iter()
                .map(|(a, p)| (a.clone(), p * r))
                .collect(),
        }
    }

    /// Total probability mass.
    pub fn mass(&self) -> Ratio {
        self.entries.iter().map(|(_, r)| r).sum()
    }

    /// Probability of action `a`.
    pub fn prob(&self, a: &Action) -> Ratio {
        self.entries
            .binary_search_by(|(b, _)| b.as_ref().cmp(a))
            .ok()
            .map(|ix| self.entries[ix].1.clone())
            .unwrap_or_else(Ratio::zero)
    }

    /// Iterates over `(action, probability)` pairs in action order.
    pub fn iter(&self) -> impl Iterator<Item = (&Action, &Ratio)> {
        self.entries.iter().map(|(a, r)| (a.as_ref(), r))
    }

    /// Number of actions with positive probability.
    pub fn support_size(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if this is the deterministic pass-through.
    pub fn is_skip(&self) -> bool {
        self.entries.len() == 1 && self.entries[0].0.is_skip() && self.entries[0].1.is_one()
    }

    /// Returns `true` if this is the deterministic drop.
    pub fn is_drop(&self) -> bool {
        self.entries.len() == 1 && *self.entries[0].0 == Action::Drop && self.entries[0].1.is_one()
    }

    /// Maps every action through `f`, merging collisions.
    pub fn map_actions(&self, f: impl Fn(&Action) -> Action) -> ActionDist {
        ActionDist::from_pairs(self.entries.iter().map(|(a, r)| (f(a), r.clone())))
    }
}

impl fmt::Display for ActionDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (a, r)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a} @ {r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> (Field, Field) {
        (Field::named("act_f"), Field::named("act_g"))
    }

    #[test]
    fn compose_mods_later_wins() {
        let (f, g) = fields();
        let a = Action::mods([(f, 1), (g, 2)]);
        let b = Action::assign(f, 9);
        assert_eq!(a.then(&b), Action::mods([(f, 9), (g, 2)]));
        assert_eq!(b.then(&a), Action::mods([(f, 1), (g, 2)]));
    }

    #[test]
    fn drop_is_absorbing() {
        let (f, _) = fields();
        let a = Action::assign(f, 1);
        assert_eq!(a.then(&Action::Drop), Action::Drop);
        assert_eq!(Action::Drop.then(&a), Action::Drop);
    }

    #[test]
    fn apply_to_packet() {
        let (f, g) = fields();
        let pk = Packet::new().with(f, 5);
        assert_eq!(Action::Drop.apply(&pk), None);
        assert_eq!(Action::mods([(g, 3)]).apply(&pk), Some(pk.with(g, 3)));
    }

    #[test]
    fn skip_identity() {
        let (f, _) = fields();
        let pk = Packet::new().with(f, 5);
        assert_eq!(Action::skip().apply(&pk), Some(pk.clone()));
        assert!(Action::skip().is_skip());
        assert!(!Action::assign(f, 1).is_skip());
    }

    #[test]
    fn dist_merges_duplicates() {
        let (f, _) = fields();
        let d = ActionDist::from_pairs([
            (Action::assign(f, 1), Ratio::new(1, 4)),
            (Action::assign(f, 1), Ratio::new(1, 4)),
            (Action::Drop, Ratio::new(1, 2)),
        ]);
        assert_eq!(d.support_size(), 2);
        assert_eq!(d.prob(&Action::assign(f, 1)), Ratio::new(1, 2));
        assert_eq!(d.mass(), Ratio::one());
    }

    #[test]
    fn dist_sum_and_scale() {
        let (f, _) = fields();
        let d1 = ActionDist::dirac(Action::assign(f, 1)).scale(&Ratio::new(1, 2));
        let d2 = ActionDist::dirac(Action::assign(f, 2)).scale(&Ratio::new(1, 2));
        let d = d1.sum(&d2);
        assert_eq!(d.mass(), Ratio::one());
        assert_eq!(d.prob(&Action::assign(f, 1)), Ratio::new(1, 2));
    }

    #[test]
    fn skip_and_drop_recognisers() {
        assert!(ActionDist::skip().is_skip());
        assert!(ActionDist::drop().is_drop());
        assert!(!ActionDist::skip().is_drop());
    }

    #[test]
    fn map_actions_merges() {
        let (f, _) = fields();
        let d = ActionDist::from_pairs([
            (Action::assign(f, 1), Ratio::new(1, 2)),
            (Action::assign(f, 2), Ratio::new(1, 2)),
        ]);
        let collapsed = d.map_actions(|_| Action::Drop);
        assert!(collapsed.is_drop());
    }
}
