//! The "Convert" arrow of Figure 5: explicit (sparse) stochastic-matrix
//! views of compiled FDDs over the dynamically reduced symbolic-packet
//! domain.
//!
//! The loop solver uses a transition-specific construction internally;
//! this module exposes the general matrix view for inspection, for the
//! Figure 5 rendering, and for cross-checking the symbolic representation
//! against explicit linear algebra.

use crate::{Fdd, Manager, SymPkt};
use mcnetkat_num::Ratio;
use std::collections::HashMap;
use std::fmt;

/// An explicit stochastic-matrix view of an FDD.
///
/// Rows are the input equivalence classes (symbolic packets over the
/// diagram's tested fields); columns are the reachable output symbolic
/// packets plus the distinguished `∅` (drop) column at index 0.
#[derive(Clone, Debug)]
pub struct BigStepMatrix {
    /// Row labels: the input classes.
    pub inputs: Vec<SymPkt>,
    /// Column labels: output symbolic packets (`None` = the ∅ column).
    pub outputs: Vec<Option<SymPkt>>,
    /// Sparse rows: `(column, probability)` with exact probabilities.
    pub rows: Vec<Vec<(usize, Ratio)>>,
}

impl Manager {
    /// Converts a compiled FDD into its explicit matrix over symbolic
    /// packets (dynamic domain reduction, §5.1).
    pub fn to_matrix(&self, p: Fdd) -> BigStepMatrix {
        let dom = self.domain(p);
        let inputs = dom.input_classes();
        let mut outputs: Vec<Option<SymPkt>> = vec![None];
        let mut out_ix: HashMap<Option<SymPkt>, usize> = HashMap::new();
        out_ix.insert(None, 0);
        let mut rows = Vec::with_capacity(inputs.len());
        for class in &inputs {
            let dist = self.sym_output_dist(p, class);
            let mut row = Vec::with_capacity(dist.len());
            for (o, r) in dist {
                let col = *out_ix.entry(o.clone()).or_insert_with(|| {
                    outputs.push(o);
                    outputs.len() - 1
                });
                row.push((col, r));
            }
            rows.push(row);
        }
        BigStepMatrix {
            inputs,
            outputs,
            rows,
        }
    }
}

impl BigStepMatrix {
    /// Number of rows (input classes).
    pub fn nrows(&self) -> usize {
        self.inputs.len()
    }

    /// Number of columns (distinct outputs, including ∅).
    pub fn ncols(&self) -> usize {
        self.outputs.len()
    }

    /// Number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// The probability in row `i`, column `j`.
    pub fn get(&self, i: usize, j: usize) -> Ratio {
        self.rows[i]
            .iter()
            .find_map(|(c, r)| (*c == j).then(|| r.clone()))
            .unwrap_or_else(Ratio::zero)
    }

    /// Total probability mass of row `i`.
    pub fn row_mass(&self, i: usize) -> Ratio {
        self.rows[i].iter().map(|(_, r)| r.clone()).sum()
    }

    /// Checks row-stochasticity (every row sums to exactly 1).
    pub fn is_stochastic(&self) -> bool {
        (0..self.nrows()).all(|i| self.row_mass(i) == Ratio::one())
    }

    /// The density `nnz / (rows × cols)` — the compression the FDD
    /// achieves relative to the explicit representation.
    pub fn density(&self) -> f64 {
        if self.nrows() == 0 || self.ncols() == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.nrows() * self.ncols()) as f64
    }
}

impl fmt::Display for BigStepMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}×{} stochastic matrix, {} non-zeros",
            self.nrows(),
            self.ncols(),
            self.nnz()
        )?;
        for (i, class) in self.inputs.iter().enumerate() {
            write!(f, "  {class} →")?;
            for (c, r) in &self.rows[i] {
                match &self.outputs[*c] {
                    None => write!(f, "  ∅ @ {r}")?,
                    Some(o) => write!(f, "  {o} @ {r}")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnetkat_core::{Field, Pred, Prog};

    fn field(n: &str) -> Field {
        Field::named(n)
    }

    #[test]
    fn figure_5_example_matrix() {
        // The program of Figure 5: a port-cycling switch.
        let pt = field("mx_pt");
        let mgr = Manager::new();
        let prog = Prog::case(
            vec![
                (
                    Pred::test(pt, 1),
                    Prog::choice2(Prog::assign(pt, 2), Ratio::new(1, 2), Prog::assign(pt, 3)),
                ),
                (Pred::test(pt, 2), Prog::assign(pt, 1)),
                (Pred::test(pt, 3), Prog::assign(pt, 1)),
            ],
            Prog::drop(),
        );
        let fdd = mgr.compile(&prog).unwrap();
        let m = mgr.to_matrix(fdd);
        // Four input classes: pt ∈ {1, 2, 3, *}.
        assert_eq!(m.nrows(), 4);
        assert!(m.is_stochastic());
        // The pt=1 row splits ½/½; the wildcard row drops.
        let row1 = m.inputs.iter().position(|c| c.get(pt) == Some(1)).unwrap();
        assert_eq!(m.rows[row1].len(), 2);
        let star = m.inputs.iter().position(|c| c.get(pt).is_none()).unwrap();
        // ∅ column
        assert_eq!(m.get(star, 0), Ratio::one());
        // Sparse: 5 non-zeros in a 4×≥4 matrix, matching Figure 5.
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn identity_matrix_for_skip() {
        let mgr = Manager::new();
        let fdd = mgr.compile(&Prog::skip()).unwrap();
        let m = mgr.to_matrix(fdd);
        // skip tests nothing: one wildcard class mapping to itself.
        assert_eq!(m.nrows(), 1);
        assert!(m.is_stochastic());
        assert_eq!(m.get(0, 1), Ratio::one());
    }

    #[test]
    fn loop_solutions_are_exact_through_the_matrix_view() {
        // while f=0 do (f←1 ⊕⅓ f←2 ⊕⅙ skip): absorption probabilities
        // are 2/3 and 1/3 — not representable in binary floats. The
        // default (SparseScc) solve must surface them *exactly*; a float
        // backend snapped through `Ratio::from_f64` cannot.
        let f = field("mx_lp");
        let mgr = Manager::new();
        let body = Prog::choice(vec![
            (Prog::assign(f, 1), Ratio::new(1, 3)),
            (Prog::assign(f, 2), Ratio::new(1, 6)),
            (Prog::skip(), Ratio::new(1, 2)),
        ]);
        let prog = Prog::while_(Pred::test(f, 0), body);
        let fdd = mgr.compile(&prog).unwrap();
        let m = mgr.to_matrix(fdd);
        assert!(m.is_stochastic());
        let row0 = m
            .inputs
            .iter()
            .position(|c| c.get(f) == Some(0))
            .expect("f=0 input class");
        let mut probs: Vec<Ratio> = m.rows[row0].iter().map(|(_, r)| r.clone()).collect();
        probs.sort();
        assert_eq!(probs, vec![Ratio::new(1, 3), Ratio::new(2, 3)]);
    }

    #[test]
    fn density_measures_sparsity() {
        let f = field("mx_f");
        let mgr = Manager::new();
        // A filter over three values: 4 classes, 4 entries, all diagonal-ish.
        let prog = Prog::ite(Pred::test(f, 1), Prog::skip(), Prog::drop());
        let fdd = mgr.compile(&prog).unwrap();
        let m = mgr.to_matrix(fdd);
        assert!(m.density() <= 0.5);
        assert!(m.is_stochastic());
    }
}
