//! Deterministic fault injection for robustness tests.
//!
//! Only compiled under the `failpoints` feature (asserted off in release
//! benches, mirroring [`crate::AUDIT_ENABLED`]). The compiler registers
//! *named sites* at the seams where real-world failures strike — loop-state
//! interning, the lumping partition, the structured solver, parallel
//! workers and merge rounds — and a test arms a site with a
//! [`FaultAction`] that fires deterministically on the Nth hit:
//!
//! ```text
//! site                     seam                              sensible actions
//! fdd::intern              loop-state interning              Panic, Delay, Cancel
//! fdd::loops::solve        any sparse solver rung            Singular, Panic, Delay, Cancel
//! linalg::lump             the lumping partition rung        Singular, Panic, Delay, Cancel
//! net::parallel::worker    per-switch worker closure         Panic, Delay, Cancel
//! net::parallel::merge     tree-reduce merge rounds          Panic, Delay, Cancel
//! serve::journal::append   write-ahead journal append        Singular (= torn write), Cancel, Panic, Delay
//! serve::apply::patch      per-switch patch closure          Singular, Panic, Delay, Cancel
//! serve::apply::assemble   post-patch model assembly         Singular, Panic, Delay, Cancel
//! ```
//!
//! (`linalg::lump` is a *logical* name: the registry lives here because
//! `mcnetkat-linalg` sits below this crate, so `fdd::loops` checks the
//! site just before entering the lumped solver rung. The `serve::*`
//! sites are registered by `mcnetkat-serve`, which sits above; at
//! `serve::journal::append`, `Singular` is repurposed to simulate a
//! *torn write* — a strict prefix of the record reaches the file and
//! the writer poisons itself — so recovery's truncation rule can be
//! exercised deterministically.)
//!
//! The registry is process-global, so tests that arm faults must
//! serialize (the harness uses a static mutex) and clear the registry
//! between cases with [`clear_all`].

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed site does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with this message — exercises panic containment.
    Panic(String),
    /// Report a singular linear system — exercises the solver fallback
    /// chain. Only meaningful at solver sites; elsewhere it surfaces as
    /// the site's generic injected failure.
    Singular,
    /// Sleep this long before continuing — exercises deadline budgets.
    Delay(Duration),
    /// Behave as though the compile's [`crate::CancelToken`] fired.
    Cancel,
}

/// What [`check`] tells its caller to do (after any [`FaultAction::Panic`]
/// or [`FaultAction::Delay`] has already been acted on in place).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// Surface a singular-system solver error.
    Singular,
    /// Surface [`crate::CompileError::Cancelled`].
    Cancelled,
}

#[derive(Clone, Debug)]
struct Site {
    action: FaultAction,
    /// 1-based hit count on which the fault first fires.
    trigger_at: u64,
    /// How many consecutive hits fire, starting at `trigger_at`. Lets a
    /// test fail *both* retries of a fallback rung to force the next one.
    times: u64,
    hits: u64,
    fired: u64,
}

fn registry() -> &'static Mutex<HashMap<String, Site>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arms `site` to perform `action` on its `nth` hit (1-based) and the
/// `times - 1` hits after it. Re-arming a site resets its counters.
pub fn configure(site: &str, action: FaultAction, nth: u64, times: u64) {
    let mut reg = registry().lock().expect("failpoint registry poisoned");
    reg.insert(
        site.to_string(),
        Site {
            action,
            trigger_at: nth.max(1),
            times: times.max(1),
            hits: 0,
            fired: 0,
        },
    );
}

/// Disarms every site and zeroes all counters. Call between test cases.
pub fn clear_all() {
    registry()
        .lock()
        .expect("failpoint registry poisoned")
        .clear();
}

/// How many times `site` has been hit since it was configured (0 if the
/// site was never armed). Lets tests assert a seam was actually reached.
pub fn hits(site: &str) -> u64 {
    registry()
        .lock()
        .expect("failpoint registry poisoned")
        .get(site)
        .map_or(0, |s| s.hits)
}

/// How many times `site` has fired its action.
pub fn fired(site: &str) -> u64 {
    registry()
        .lock()
        .expect("failpoint registry poisoned")
        .get(site)
        .map_or(0, |s| s.fired)
}

/// The compiler-side checkpoint: records a hit on `site` and, when armed
/// and due, performs the fault. `Panic` panics and `Delay` sleeps right
/// here (with the registry lock released); `Singular` and `Cancel` are
/// returned for the caller to map onto its own error type.
pub fn check(site: &str) -> Option<InjectedFault> {
    let action = {
        let mut reg = registry().lock().expect("failpoint registry poisoned");
        let s = reg.get_mut(site)?;
        s.hits += 1;
        let due = s.hits >= s.trigger_at && s.hits < s.trigger_at + s.times;
        if !due {
            return None;
        }
        s.fired += 1;
        s.action.clone()
    };
    match action {
        FaultAction::Panic(msg) => panic!("injected fault at `{site}`: {msg}"),
        FaultAction::Delay(d) => {
            std::thread::sleep(d);
            None
        }
        FaultAction::Singular => Some(InjectedFault::Singular),
        FaultAction::Cancel => Some(InjectedFault::Cancelled),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and other tests in this binary may
    // also use it, so each test here owns uniquely named sites.

    #[test]
    fn fires_on_nth_hit_for_times_hits() {
        clear_all();
        configure("test::nth", FaultAction::Singular, 2, 2);
        assert_eq!(check("test::nth"), None);
        assert_eq!(check("test::nth"), Some(InjectedFault::Singular));
        assert_eq!(check("test::nth"), Some(InjectedFault::Singular));
        assert_eq!(check("test::nth"), None);
        assert_eq!(hits("test::nth"), 4);
        assert_eq!(fired("test::nth"), 2);
    }

    #[test]
    fn unarmed_sites_count_nothing() {
        assert_eq!(check("test::unarmed"), None);
        assert_eq!(hits("test::unarmed"), 0);
    }

    #[test]
    fn delay_fires_in_place_and_reports_no_fault() {
        clear_all();
        configure(
            "test::delay",
            FaultAction::Delay(Duration::from_millis(1)),
            1,
            1,
        );
        let start = std::time::Instant::now();
        assert_eq!(check("test::delay"), None);
        assert!(start.elapsed() >= Duration::from_millis(1));
        assert_eq!(fired("test::delay"), 1);
    }
}
