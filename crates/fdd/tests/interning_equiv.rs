//! Equivalence tests pinning the interned-leaf FDD combinators against the
//! pre-interning semantics.
//!
//! Leaf distributions are interned behind copyable ids inside the
//! `Manager`, with distribution-level operations memoised on those ids.
//! None of that may change what `seq`/`sum`/`ite` *mean*: on every
//! concrete packet, the combinator results must match a reference
//! computed directly from the operand distributions (the semantics the
//! un-interned implementation computed leaf-by-leaf).

use mcnetkat_core::{Field, Packet, Pred, Prog};
use mcnetkat_fdd::{Manager, OutputDist};
use mcnetkat_num::Ratio;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn field(ix: usize) -> Field {
    match ix {
        0 => Field::named("ieq_f"),
        _ => Field::named("ieq_g"),
    }
}

/// Random loop-free guarded predicates over the two test fields.
fn arb_pred() -> BoxedStrategy<Pred> {
    let leaf = prop_oneof![
        Just(Pred::True),
        Just(Pred::False),
        (0..2usize, 1..=3u32).prop_map(|(fi, v)| Pred::test(field(fi), v)),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

/// Random loop-free guarded programs over the two test fields.
fn arb_prog() -> BoxedStrategy<Prog> {
    let leaf = prop_oneof![
        Just(Prog::skip()),
        Just(Prog::drop()),
        (0..2usize, 1..=3u32).prop_map(|(fi, v)| Prog::assign(field(fi), v)),
        (0..2usize, 1..=3u32).prop_map(|(fi, v)| Prog::test(field(fi), v)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.seq(b)),
            (inner.clone(), 1..=3i64, inner.clone()).prop_map(|(a, n, b)| Prog::choice2(
                a,
                Ratio::new(n, 4),
                b
            )),
            (arb_pred(), inner.clone(), inner.clone()).prop_map(|(t, a, b)| Prog::ite(t, a, b)),
        ]
    })
}

/// Every concrete packet over the tested field/value grid (including
/// values no test mentions, and absent fields).
fn all_packets() -> Vec<Packet> {
    let mut out = Vec::new();
    for fv in 0..=4u32 {
        for gv in 0..=4u32 {
            let mut pk = Packet::new();
            if fv > 0 {
                pk = pk.with(field(0), fv);
            }
            if gv > 0 {
                pk = pk.with(field(1), gv);
            }
            out.push(pk);
        }
    }
    out
}

/// Reference big-step composition `p ; q` on one packet: run `p`, apply
/// each action, run `q` on the intermediate packet, and combine — the
/// stochastic-matrix product the FDD `seq` must implement.
fn ref_seq_output(
    mgr: &Manager,
    p: mcnetkat_fdd::Fdd,
    q: mcnetkat_fdd::Fdd,
    pk: &Packet,
) -> OutputDist {
    let mut out: OutputDist = BTreeMap::new();
    for (a, ra) in mgr.eval(p, pk).iter() {
        match a.apply(pk) {
            None => {
                let slot = out.entry(None).or_insert_with(Ratio::zero);
                *slot += ra;
            }
            Some(mid) => {
                for (b, rb) in mgr.eval(q, &mid).iter() {
                    let slot = out.entry(b.apply(&mid)).or_insert_with(Ratio::zero);
                    *slot += &(ra * rb);
                }
            }
        }
    }
    out
}

/// Drops zero-probability entries so reference and FDD results compare
/// structurally.
fn nonzero(d: OutputDist) -> OutputDist {
    d.into_iter().filter(|(_, r)| !r.is_zero()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn seq_matches_reference_composition(a in arb_prog(), b in arb_prog()) {
        let mgr = Manager::new();
        let fa = mgr.compile(&a).unwrap();
        let fb = mgr.compile(&b).unwrap();
        let fab = mgr.seq(fa, fb);
        for pk in all_packets() {
            prop_assert_eq!(
                nonzero(mgr.output_dist(fab, &pk)),
                nonzero(ref_seq_output(&mgr, fa, fb, &pk)),
                "packet {:?}", pk
            );
        }
    }

    #[test]
    fn sum_matches_pointwise_distribution_sum(a in arb_prog(), b in arb_prog()) {
        let mgr = Manager::new();
        let fa = mgr.compile(&a).unwrap();
        let fb = mgr.compile(&b).unwrap();
        let fsum = mgr.sum(fa, fb);
        for pk in all_packets() {
            let expect = mgr.eval(fa, &pk).sum(&mgr.eval(fb, &pk));
            prop_assert_eq!(mgr.eval(fsum, &pk), expect, "packet {:?}", pk);
        }
    }

    #[test]
    fn ite_matches_guard_selection(t in arb_pred(), a in arb_prog(), b in arb_prog()) {
        let mgr = Manager::new();
        let ft = mgr.compile_pred(&t);
        let fa = mgr.compile(&a).unwrap();
        let fb = mgr.compile(&b).unwrap();
        let fite = mgr.ite(ft, fa, fb);
        for pk in all_packets() {
            let expect = if t.eval(&pk) { mgr.eval(fa, &pk) } else { mgr.eval(fb, &pk) };
            prop_assert_eq!(mgr.eval(fite, &pk), expect, "packet {:?}", pk);
        }
    }

    #[test]
    fn interning_preserves_program_equivalence(a in arb_prog()) {
        // Compiling the same program in two fresh managers (independent
        // intern tables) yields semantically identical diagrams.
        let m1 = Manager::new();
        let m2 = Manager::new();
        let f1 = m1.compile(&a).unwrap();
        let f2 = m2.compile(&a).unwrap();
        for pk in all_packets() {
            prop_assert_eq!(m1.output_dist(f1, &pk), m2.output_dist(f2, &pk));
        }
    }
}
