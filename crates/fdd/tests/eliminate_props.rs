//! Property tests pinning [`Manager::eliminate`] against a reference
//! sum-out computed directly from the draw distributions.
//!
//! The defining semantics: `eliminate(p, scratch)` equals drawing every
//! scratch field independently from its entry distribution, running `p`,
//! and projecting the scratch fields out of the outputs. The reference
//! below computes exactly that — an explicit weighted sum of
//! `output_dist` over every scratch assignment, with scratch fields
//! stripped from the resulting packets — for random loop-free guarded
//! programs that *test and modify* the scratch fields freely.

use mcnetkat_core::{Field, Packet, Pred, Prog};
use mcnetkat_fdd::{Manager, OutputDist, ScratchField};
use mcnetkat_num::Ratio;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Two ordinary fields and two scratch fields.
fn field(ix: usize) -> Field {
    match ix {
        0 => Field::named("elim_a"),
        1 => Field::named("elim_b"),
        2 => Field::named("elim_s1"),
        _ => Field::named("elim_s2"),
    }
}

/// Random loop-free guarded programs over all four fields (scratch fields
/// included, both tested and assigned).
fn arb_prog() -> BoxedStrategy<Prog> {
    let leaf = prop_oneof![
        Just(Prog::skip()),
        Just(Prog::drop()),
        (0..4usize, 0..=2u32).prop_map(|(fi, v)| Prog::assign(field(fi), v)),
        (0..4usize, 1..=2u32).prop_map(|(fi, v)| Prog::test(field(fi), v)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.seq(b)),
            (inner.clone(), 1..=3i64, inner.clone()).prop_map(|(a, n, b)| Prog::choice2(
                a,
                Ratio::new(n, 4),
                b
            )),
            ((0..4usize, 1..=2u32), inner.clone(), inner.clone())
                .prop_map(|((fi, v), a, b)| { Prog::ite(Pred::test(field(fi), v), a, b) }),
        ]
    })
}

/// A random draw over the values {0, 1, 2} of a scratch field (mass 1).
fn arb_draw() -> BoxedStrategy<Vec<(u32, Ratio)>> {
    (0..=4i64, 0..=4i64)
        .prop_map(|(a, b)| {
            let (a, b) = (a.min(4), b.min(4 - a.min(4)));
            let p0 = Ratio::new(a, 4);
            let p1 = Ratio::new(b, 4);
            let p2 = Ratio::one() - p0.clone() - p1.clone();
            vec![(0u32, p0), (1u32, p1), (2u32, p2)]
                .into_iter()
                .filter(|(_, r)| !r.is_zero())
                .collect()
        })
        .boxed()
}

/// Input packets over the non-scratch fields (scratch fields absent: the
/// draw overrides them regardless, and `eliminate`'s result never tests
/// them).
fn input_packets() -> Vec<Packet> {
    let mut out = Vec::new();
    for av in 0..=2u32 {
        for bv in 0..=2u32 {
            let mut pk = Packet::new();
            if av > 0 {
                pk = pk.with(field(0), av);
            }
            if bv > 0 {
                pk = pk.with(field(1), bv);
            }
            out.push(pk);
        }
    }
    out
}

/// Strips the scratch fields from a delivered packet.
fn strip(pk: &Packet) -> Packet {
    let mut out = pk.clone();
    out.set(field(2), 0);
    out.set(field(3), 0);
    out
}

/// The reference sum-out: Σ over scratch assignments of
/// `P(assignment) · output_dist(p, pk[scratch := assignment])`, with the
/// scratch fields projected out of every delivered packet.
fn reference(
    mgr: &Manager,
    p: mcnetkat_fdd::Fdd,
    pk: &Packet,
    d1: &[(u32, Ratio)],
    d2: &[(u32, Ratio)],
) -> OutputDist {
    let mut out: BTreeMap<Option<Packet>, Ratio> = BTreeMap::new();
    for (v1, p1) in d1 {
        for (v2, p2) in d2 {
            let mut input = pk.clone();
            input.set(field(2), *v1);
            input.set(field(3), *v2);
            let w = p1 * p2;
            for (o, r) in mgr.output_dist(p, &input) {
                let key = o.as_ref().map(strip);
                *out.entry(key).or_insert_with(Ratio::zero) += &(&r * &w);
            }
        }
    }
    out.retain(|_, r| !r.is_zero());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `eliminate` with non-empty draws agrees with the explicit sum-out
    /// on every input class, and its result never mentions the scratch
    /// fields.
    #[test]
    fn eliminate_matches_reference_sum_out(
        prog in arb_prog(),
        d1 in arb_draw(),
        d2 in arb_draw(),
    ) {
        let mgr = Manager::new();
        let fdd = mgr.compile(&prog).unwrap();
        let scratch = vec![
            ScratchField::drawn(field(2), d1.clone()),
            ScratchField::drawn(field(3), d2.clone()),
        ];
        let elim = mgr.eliminate(fdd, &scratch);

        // No scratch field survives, neither in tests nor in mods.
        let dom = mgr.domain(elim);
        prop_assert!(!dom.tested.contains_key(&field(2)));
        prop_assert!(!dom.tested.contains_key(&field(3)));

        for pk in input_packets() {
            let mut got: OutputDist = OutputDist::new();
            for (o, r) in mgr.output_dist(elim, &pk) {
                // The eliminated diagram may keep stale scratch values
                // from the *input* packet (it neither reads nor writes
                // them); strip for comparison just like the reference.
                let key = o.as_ref().map(strip);
                *got.entry(key).or_insert_with(Ratio::zero) += &r;
            }
            got.retain(|_, r| !r.is_zero());
            let want = reference(&mgr, fdd, &pk, &d1, &d2);
            prop_assert_eq!(&got, &want, "input {:?}", pk);
        }
    }

    /// Write-only elimination (`forget`) is the special case where the
    /// diagram never tests the scratch fields: summing out with *any*
    /// full draw gives the same diagram as stripping the mods.
    #[test]
    fn forget_is_eliminate_with_unused_draw(
        prog in arb_prog(),
        d1 in arb_draw(),
    ) {
        let mgr = Manager::new();
        let fdd = mgr.compile(&prog).unwrap();
        let tested = mgr.domain(fdd);
        prop_assume!(!tested.tested.contains_key(&field(2)));
        let forgotten = mgr.forget(fdd, &[field(2)]);
        let drawn = mgr.eliminate(fdd, &[ScratchField::drawn(field(2), d1)]);
        prop_assert_eq!(forgotten, drawn);
    }
}
