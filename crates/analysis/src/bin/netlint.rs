//! `netlint` — runs the static linter over every model the repository
//! ships (the §2 running example, the fattree(4) scheme/failure matrix,
//! the SRLG line-card scenario, the chain-of-diamonds benchmark) and
//! reports `NL0xx` diagnostics.
//!
//! Exits nonzero when any error-severity finding is reported; pass
//! `--deny-warnings` to fail on warnings too. CI runs this as a blocking
//! job.

use mcnetkat_analysis::{lint_model, lint_program, LintConfig, LintReport};
use mcnetkat_net::{
    chain_benchmark, running_example, FailureModel, FailureSpec, NetworkModel, RoutingScheme, Srlg,
};
use mcnetkat_num::Ratio;
use mcnetkat_topo::ab_fattree;
use std::collections::BTreeSet;

fn main() {
    let deny_warnings = std::env::args().any(|a| a == "--deny-warnings");
    let mut report = LintReport::default();
    let mut targets = 0usize;
    let mut run = |name: &str, sub: LintReport| {
        targets += 1;
        if !sub.is_clean() {
            eprintln!("netlint: {name}:");
            eprint!("{sub}");
        }
        report.merge(sub);
    };

    // The §2 running example: both policies under all three failure
    // models, plus the teleport specification.
    let ex = running_example();
    let mut cfg = LintConfig {
        input_fields: [ex.fields.sw, ex.fields.pt].into_iter().collect(),
        scratch_fields: [ex.fields.up(2), ex.fields.up(3)].into_iter().collect(),
        ..LintConfig::default()
    };
    let sw_dom: BTreeSet<u32> = [1, 2, 3].into_iter().collect();
    cfg.field_domains.insert(ex.fields.sw, sw_dom.clone());
    cfg.assign_domains.insert(ex.fields.sw, sw_dom);
    for (policy, pname) in [(&ex.naive, "naive"), (&ex.resilient, "resilient")] {
        for (failure, fname) in [(&ex.f0, "f0"), (&ex.f1, "f1"), (&ex.f2, "f2")] {
            let name = format!("sec2-{pname}-{fname}");
            run(&name, lint_program(&name, &ex.model(policy, failure), &cfg));
        }
    }
    run(
        "sec2-teleport",
        lint_program("sec2-teleport", &ex.teleport(), &cfg),
    );

    // The fattree(4) scheme × failure matrix the figures sweep.
    let pr = Ratio::new(1, 1000);
    let schemes = [
        (RoutingScheme::Ecmp, "ecmp"),
        (RoutingScheme::F10_3, "f10_3"),
        (RoutingScheme::F10_3_5, "f10_3_5"),
    ];
    let failures = [
        (FailureModel::none(), "none"),
        (FailureModel::independent(pr.clone()), "independent"),
        (FailureModel::bounded(pr.clone(), 1), "bounded"),
    ];
    for (scheme, sname) in schemes {
        for (failure, fname) in &failures {
            let topo = ab_fattree(4);
            let dst = topo.find("edge0_0").unwrap();
            let model = NetworkModel::new(topo, dst, scheme, failure.clone());
            let name = format!("fattree4-{sname}-{fname}");
            run(&name, lint_model(&name, &model));
        }
    }

    // A hop-capped model (the Figure 12 b/c path-stretch construction).
    {
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        let model = NetworkModel::new(
            topo,
            dst,
            RoutingScheme::F10_3,
            FailureModel::independent(pr.clone()),
        )
        .with_hop_cap(8);
        run("fattree4-hopcap", lint_model("fattree4-hopcap", &model));
    }

    // The correlated SRLG scenario: one line-card group per switch.
    {
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        let cards = Srlg::linecards(&topo, &pr);
        let spec = FailureSpec::independent(pr.clone()).with_groups(cards);
        let model = NetworkModel::new(topo, dst, RoutingScheme::F10_3, spec);
        run("fattree4-srlg", lint_model("fattree4-srlg", &model));
    }

    // The chain-of-diamonds benchmark program (Figure 9/10).
    {
        let bench = chain_benchmark(4, Ratio::new(1, 1000));
        let mut cfg = LintConfig {
            input_fields: [bench.fields.sw, bench.fields.pt].into_iter().collect(),
            scratch_fields: bench.fields.ups().iter().copied().collect(),
            ..LintConfig::default()
        };
        let sw_dom: BTreeSet<u32> = bench
            .topo
            .switches()
            .iter()
            .map(|&s| bench.topo.sw_value(s))
            .collect();
        cfg.field_domains.insert(bench.fields.sw, sw_dom.clone());
        cfg.assign_domains.insert(bench.fields.sw, sw_dom);
        run("chain4", lint_program("chain4", &bench.program, &cfg));
    }

    let errors = report.errors().count();
    let warnings = report.warnings().count();
    println!("netlint: {targets} targets, {errors} errors, {warnings} warnings");
    if errors > 0 || (deny_warnings && warnings > 0) {
        std::process::exit(1);
    }
}
