//! Model-level lints: [`lint_model`] wires the program linter up with the
//! knowledge a [`NetworkModel`] carries — which fields are inputs, which
//! are per-hop scratch, which `sw`/`pt` values exist — and adds the
//! topology/failure-spec consistency checks that have no program-level
//! counterpart (unreachable switches, never-drawn links).

use crate::lint::{lint_program, LintConfig};
use crate::{Diagnostic, LintCode, LintReport};
use mcnetkat_core::Prog;
use mcnetkat_net::{NetFields, NetworkModel};
use mcnetkat_topo::{Level, NodeId, ShortestPaths, Topology};
use std::collections::{BTreeSet, VecDeque};

/// Lints a complete network model: the full program `M̂` (def-use and
/// domain checks), the loop body (scratch fields must be dead at hop
/// exit), every switch's forwarding program (ports must exist on the
/// switch), plus topology reachability (NL006) and failure-spec coverage
/// (NL007). `name` roots every diagnostic's location.
pub fn lint_model(name: &str, model: &NetworkModel) -> LintReport {
    let mut report = program_report(name, model);
    report.merge(body_report(name, model));
    report.merge(switch_report(name, model));
    report.merge(reachability_report(name, model));
    report.merge(failure_report(name, model));
    report
}

/// Lints one switch's forwarding program against the topology: every
/// `pt <- n` must target a port that is actually wired on `s` (NL005).
/// Public so schemes under development can be checked before they are
/// assembled into a model.
pub fn lint_switch_program(
    topo: &Topology,
    s: NodeId,
    fields: &NetFields,
    prog: &Prog,
) -> LintReport {
    // The fragment runs inside the model's case chain and loop: every
    // field is defined by the surroundings, so def-use lints are the full
    // program's business — only the forwarding domain is checked here.
    let mut cfg = LintConfig {
        input_fields: all_fields(fields),
        ..LintConfig::default()
    };
    cfg.assign_domains
        .insert(fields.pt, topo.ports(s).iter().map(|pp| pp.port).collect());
    lint_program(&topo.info(s).name, prog, &cfg)
}

/// Every field a model program can mention.
fn all_fields(fields: &NetFields) -> BTreeSet<mcnetkat_core::Field> {
    let mut all: BTreeSet<_> = [fields.sw, fields.pt, fields.dt, fields.fl, fields.cnt]
        .into_iter()
        .collect();
    all.extend(fields.ups().iter().copied());
    all.extend(fields.grps().iter().copied());
    all
}

/// The base config for linting a model's programs: `sw`/`pt`/`cnt` come
/// in with the packet, `up_i`/`grp_j` are per-hop scratch, and `sw` only
/// ever holds (or is tested against) actual switch values.
fn model_config(model: &NetworkModel) -> LintConfig {
    let f = &model.fields;
    let mut cfg = LintConfig {
        input_fields: [f.sw, f.pt, f.cnt].into_iter().collect(),
        scratch_fields: f.ups().iter().chain(f.grps()).copied().collect(),
        ..LintConfig::default()
    };
    let sw_values: BTreeSet<u32> = model
        .topo
        .switches()
        .iter()
        .map(|&s| model.topo.sw_value(s))
        .collect();
    cfg.field_domains.insert(f.sw, sw_values.clone());
    cfg.assign_domains.insert(f.sw, sw_values);
    cfg
}

/// Def-use and domain lints over the complete program `M̂`.
fn program_report(name: &str, model: &NetworkModel) -> LintReport {
    lint_program(name, &model.program(), &model_config(model))
}

/// The scratch-escape check (NL003) over one loop iteration: after
/// `f ; p ; t̂ ; erase`, every `up_i`/`grp_j` must be provably dead, or
/// per-hop randomness leaks into the loop state. Only NL003 findings are
/// kept — everything else is (re)checked on the full program, where the
/// local declarations and the loop context are visible.
fn body_report(name: &str, model: &NetworkModel) -> LintReport {
    let mut cfg = model_config(model);
    // Loop-carried and declared-outside fields are all defined here.
    cfg.input_fields = all_fields(&model.fields);
    cfg.scratch_dead_at_exit = true;
    let full = lint_program(&format!("{name}/body"), &model.body(), &cfg);
    LintReport {
        diagnostics: full.with_code(LintCode::ScratchEscape).cloned().collect(),
    }
}

/// Per-switch forwarding-domain checks (NL005) over every switch's hop
/// program.
fn switch_report(name: &str, model: &NetworkModel) -> LintReport {
    let sp = ShortestPaths::towards(&model.topo, model.dst);
    let mut report = LintReport::default();
    for &s in model.topo.switches() {
        let prog = model.switch_policy(s, &sp);
        let mut sub = lint_switch_program(&model.topo, s, &model.fields, &prog);
        for d in &mut sub.diagnostics {
            d.at = format!("{name}/{}", d.at);
        }
        report.merge(sub);
    }
    report
}

/// NL006: switches no ingress can ever reach, over the switch-to-switch
/// links — their forwarding rules are dead weight.
fn reachability_report(name: &str, model: &NetworkModel) -> LintReport {
    let mut reach: BTreeSet<NodeId> = model.ingresses().into_iter().collect();
    let mut queue: VecDeque<NodeId> = reach.iter().copied().collect();
    while let Some(n) = queue.pop_front() {
        for pp in model.topo.ports(n) {
            if model.topo.info(pp.peer).level == Level::Host {
                continue;
            }
            if reach.insert(pp.peer) {
                queue.push_back(pp.peer);
            }
        }
    }
    let mut report = LintReport::default();
    for &s in model.topo.switches() {
        if !reach.contains(&s) {
            report.diagnostics.push(Diagnostic {
                code: LintCode::UnreachableSwitch,
                at: format!("{name}/topology/{}", model.topo.info(s).name),
                message: "switch is unreachable from every ingress — its forwarding \
                          rules can never fire"
                    .to_string(),
            });
        }
    }
    report
}

/// NL007: failure-prone links whose effective failure probability is zero
/// under the spec. The model still guards them with `up` tests and draws,
/// but the draw always comes up healthy — usually a forgotten override or
/// a zero-probability group.
fn failure_report(name: &str, model: &NetworkModel) -> LintReport {
    let mut report = LintReport::default();
    if model.failure.is_failure_free() {
        // `f_0` is an explicit "no failures" request, not a smell.
        return report;
    }
    for &s in model.topo.switches() {
        let sw = model.topo.sw_value(s);
        for p in model.prone_ports(s) {
            let group = model
                .failure
                .groups
                .iter()
                .find(|g| g.members.contains(&(sw, p)));
            let eff = group.map_or_else(|| model.failure.port_pr(p), |g| &g.pr);
            if eff.is_zero() {
                let via = group.map_or(String::new(), |g| format!(" (via group {})", g.name));
                report.diagnostics.push(Diagnostic {
                    code: LintCode::UndrawnLink,
                    at: format!("{name}/failure/{}:{p}", model.topo.info(s).name),
                    message: format!(
                        "failure-prone link has effective failure probability 0{via} — \
                         it is never actually drawn down"
                    ),
                });
            }
        }
    }
    report
}
