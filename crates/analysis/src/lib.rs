//! Static analysis for McNetKAT: program/model lints and diagram audits.
//!
//! Two cooperating layers (see DESIGN.md § "Static analysis & invariant
//! auditing"):
//!
//! * **Layer 1 — linter** ([`lint_program`], [`lint_model`]): runs over
//!   `core::ast` programs and [`mcnetkat_net::NetworkModel`]s *before*
//!   compilation, reporting [`Diagnostic`]s with stable `NL0xx` codes —
//!   def-use problems, dead tests, topology/scheme inconsistencies,
//!   static mass loss, and guaranteed-divergent loops (the static
//!   counterpart of the loop solver's `Singular` error).
//! * **Layer 2 — diagram auditor** (`Manager::audit()` in
//!   `mcnetkat-fdd`, behind the `audit` cargo feature): walks the live
//!   node and interning tables of a manager, verifying the structural
//!   invariants every compiled diagram rests on. With the feature on, the
//!   fused and parallel compile pipelines self-audit every diagram they
//!   return, including scratch-field freedom.
//!
//! The `netlint` binary runs layer 1 over every shipped example/figure
//! model: `cargo run -p mcnetkat-analysis --bin netlint`.

#![forbid(unsafe_code)]

use std::fmt;

mod lint;
mod model_lint;

pub use lint::{lint_program, LintConfig};
pub use model_lint::{lint_model, lint_switch_program};

/// How bad a finding is. Errors mean the program/model is wrong (a rule
/// can never fire, mass is lost, a loop cannot terminate); warnings flag
/// smells that are occasionally intentional.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Suspicious but possibly intentional.
    Warning,
    /// A defect: some declared behaviour is unreachable or unsound.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable lint codes. The numbering is append-only: codes are never
/// renumbered or reused, so they can be referenced in CI logs and docs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LintCode {
    /// `NL001`: a non-input field is tested against a nonzero value
    /// before any possible assignment — unset fields read as 0, so the
    /// test cannot hold on entry paths.
    TestBeforeAssign,
    /// `NL002`: a field is written but never tested anywhere — dead
    /// state, or a scratch field that should be declared (and eliminated)
    /// as such.
    WriteOnlyField,
    /// `NL003`: a scratch field (`up_i`/`grp_j`) may leave a hop body
    /// holding a nonzero value, leaking per-hop randomness into the loop
    /// state.
    ScratchEscape,
    /// `NL004`: a test that can never hold — its value lies outside the
    /// field's declared domain (e.g. `sw = n` for a nonexistent switch
    /// `n`), or upstream assignments pin the field to a different
    /// constant.
    DeadTest,
    /// `NL005`: an assignment targets a value outside the field's
    /// declared assignment domain — e.g. a scheme forwarding to a port
    /// the topology does not have on that switch.
    AssignOutOfDomain,
    /// `NL006`: a switch is unreachable from every ingress, so its
    /// forwarding rules can never fire.
    UnreachableSwitch,
    /// `NL007`: a failure-prone link whose effective failure probability
    /// is zero under the spec — it is never actually drawn, which usually
    /// means a forgotten override or a zero-probability group.
    UndrawnLink,
    /// `NL008`: a probabilistic choice branch that statically drops all
    /// mass, making the program sub-stochastic by construction.
    MassLoss,
    /// `NL009`: a `while` loop whose body neither modifies any guard
    /// field nor drops — no transient state can reach an absorbing state,
    /// the static counterpart of the loop solver's `Singular` error.
    DivergentLoop,
}

impl LintCode {
    /// The stable code string (`NL001` … `NL009`).
    pub fn code(self) -> &'static str {
        match self {
            LintCode::TestBeforeAssign => "NL001",
            LintCode::WriteOnlyField => "NL002",
            LintCode::ScratchEscape => "NL003",
            LintCode::DeadTest => "NL004",
            LintCode::AssignOutOfDomain => "NL005",
            LintCode::UnreachableSwitch => "NL006",
            LintCode::UndrawnLink => "NL007",
            LintCode::MassLoss => "NL008",
            LintCode::DivergentLoop => "NL009",
        }
    }

    /// The severity every diagnostic with this code carries.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::TestBeforeAssign
            | LintCode::WriteOnlyField
            | LintCode::UnreachableSwitch
            | LintCode::UndrawnLink
            | LintCode::MassLoss => Severity::Warning,
            LintCode::ScratchEscape
            | LintCode::DeadTest
            | LintCode::AssignOutOfDomain
            | LintCode::DivergentLoop => Severity::Error,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One linter finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: LintCode,
    /// Where in the program/model the finding anchors — a breadcrumb
    /// path through the AST (programs carry no source spans).
    pub at: String,
    /// What is wrong, in one sentence.
    pub message: String,
}

impl Diagnostic {
    /// The severity, derived from the code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity(),
            self.code,
            self.at,
            self.message
        )
    }
}

/// Everything a lint pass found, in walk order.
#[derive(Clone, Default, Debug)]
pub struct LintReport {
    /// The findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// The warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
    }

    /// The findings carrying `code`.
    pub fn with_code(&self, code: LintCode) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Appends another report's findings.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}
