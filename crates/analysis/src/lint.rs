//! The program-level linter: a path-insensitive abstract interpretation
//! over `core::ast` programs.
//!
//! The walk tracks, per field, an abstract value (`Entry` — still holds
//! whatever the packet arrived with; `Const(v)` — pinned to `v` on every
//! path; `Unknown` — differs across paths) plus a *may-assigned* set
//! (assigned on at least one path so far). Loops are widened: every field
//! the body assigns goes to `Unknown` (and may-assigned) before the body
//! is linted, so a field drawn early in an iteration and tested later —
//! or tested on iteration two after being assigned on iteration one —
//! never produces a false positive.

use crate::{Diagnostic, LintCode, LintReport};
use mcnetkat_core::{Field, Pred, Prog, Value};
use std::collections::{BTreeMap, BTreeSet};

/// What the linter may assume about the program's environment. The
/// defaults assume nothing: no input fields, no domains, no scratch
/// discipline — only the purely structural lints (NL008, NL009) fire on
/// a default config.
#[derive(Clone, Default, Debug)]
pub struct LintConfig {
    /// Fields defined at program entry (e.g. `sw`/`pt` for network
    /// models). Tests of these are never "before assignment".
    pub input_fields: BTreeSet<Field>,
    /// Fields observed after the program exits. Exempt from the
    /// write-only lint (NL002).
    pub output_fields: BTreeSet<Field>,
    /// Declared scratch fields (`up_i`/`grp_j`). Exempt from NL002 —
    /// they *are* the scratch the lint would suggest — and subject to
    /// the escape check (NL003) when
    /// [`LintConfig::scratch_dead_at_exit`] is set.
    pub scratch_fields: BTreeSet<Field>,
    /// Per-field sets of values a *test* may mention. A test outside the
    /// domain can never hold (NL004) — e.g. `sw = n` for a switch the
    /// topology does not have.
    pub field_domains: BTreeMap<Field, BTreeSet<Value>>,
    /// Per-field sets of values an *assignment* may store. An assignment
    /// outside the domain is NL005 — e.g. a scheme forwarding to a port
    /// absent from the topology.
    pub assign_domains: BTreeMap<Field, BTreeSet<Value>>,
    /// When set, every scratch field must be provably zero (or never
    /// assigned) when the program exits — the per-hop discipline the
    /// fused compiler's `eliminate` relies on. Violations are NL003.
    pub scratch_dead_at_exit: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AbsVal {
    /// Still the packet's entry value.
    Entry,
    /// Pinned to this constant on every path.
    Const(Value),
    /// Differs across paths.
    Unknown,
}

#[derive(Clone, PartialEq, Eq)]
struct State {
    vals: BTreeMap<Field, AbsVal>,
    maybe: BTreeSet<Field>,
}

impl State {
    fn new() -> State {
        State {
            vals: BTreeMap::new(),
            maybe: BTreeSet::new(),
        }
    }

    fn get(&self, f: Field) -> AbsVal {
        self.vals.get(&f).copied().unwrap_or(AbsVal::Entry)
    }

    fn set(&mut self, f: Field, v: AbsVal) {
        self.vals.insert(f, v);
    }

    /// Least upper bound with another path's state: values agree or go
    /// `Unknown`; may-assigned is the union.
    fn join(&mut self, other: &State) {
        let keys: BTreeSet<Field> = self.vals.keys().chain(other.vals.keys()).copied().collect();
        for f in keys {
            let j = if self.get(f) == other.get(f) {
                self.get(f)
            } else {
                AbsVal::Unknown
            };
            self.vals.insert(f, j);
        }
        self.maybe.extend(other.maybe.iter().copied());
    }

    /// Loop widening: every field `body` assigns could hold anything at
    /// the head of any iteration.
    fn widen(&mut self, body: &Prog) {
        let mut assigned = BTreeSet::new();
        assigned_fields(body, &mut assigned);
        for f in assigned {
            self.set(f, AbsVal::Unknown);
            self.maybe.insert(f);
        }
    }
}

struct Ctx<'a> {
    cfg: &'a LintConfig,
    out: Vec<Diagnostic>,
    /// Every field a real `Assign` writes (local declarations and their
    /// scope-exit erasures do not count), with the first write's path.
    assigned: BTreeMap<Field, String>,
    /// Every field some predicate tests.
    tested: BTreeSet<Field>,
}

impl Ctx<'_> {
    fn emit(&mut self, code: LintCode, path: &[String], message: String) {
        self.out.push(Diagnostic {
            code,
            at: render(path),
            message,
        });
    }
}

fn render(path: &[String]) -> String {
    if path.is_empty() {
        "<root>".to_string()
    } else {
        path.join("/")
    }
}

/// Lints `prog` under `cfg`, rooting diagnostic paths at `root` (e.g. the
/// model's name).
pub fn lint_program(root: &str, prog: &Prog, cfg: &LintConfig) -> LintReport {
    let mut ctx = Ctx {
        cfg,
        out: Vec::new(),
        assigned: BTreeMap::new(),
        tested: BTreeSet::new(),
    };
    let mut st = State::new();
    let mut path = vec![root.to_string()];
    walk(prog, &mut st, &mut ctx, &mut path);

    // NL002: written but never tested, and not an input/output/scratch.
    for (f, at) in &ctx.assigned {
        if ctx.tested.contains(f)
            || cfg.input_fields.contains(f)
            || cfg.output_fields.contains(f)
            || cfg.scratch_fields.contains(f)
        {
            continue;
        }
        ctx.out.push(Diagnostic {
            code: LintCode::WriteOnlyField,
            at: at.clone(),
            message: format!(
                "field {f} is written but never tested — dead state, or scratch that \
                 should be declared and eliminated"
            ),
        });
    }

    // NL003: scratch must be provably dead (zero or untouched) at exit.
    if cfg.scratch_dead_at_exit {
        for &f in &cfg.scratch_fields {
            match st.get(f) {
                AbsVal::Entry | AbsVal::Const(0) => {}
                AbsVal::Const(v) => ctx.emit(
                    LintCode::ScratchEscape,
                    &path,
                    format!("scratch field {f} exits the hop holding {v} — it must be erased"),
                ),
                AbsVal::Unknown => ctx.emit(
                    LintCode::ScratchEscape,
                    &path,
                    format!("scratch field {f} may exit the hop with a nonzero value on some path"),
                ),
            }
        }
    }

    LintReport {
        diagnostics: ctx.out,
    }
}

fn walk(prog: &Prog, st: &mut State, ctx: &mut Ctx<'_>, path: &mut Vec<String>) {
    match prog {
        Prog::Filter(t) => lint_pred(t, st, ctx, path),
        Prog::Assign(f, v) => {
            if let Some(dom) = ctx.cfg.assign_domains.get(f) {
                if !dom.contains(v) {
                    ctx.emit(
                        LintCode::AssignOutOfDomain,
                        path,
                        format!(
                            "assignment {f} <- {v} targets a value outside the field's \
                             declared domain"
                        ),
                    );
                }
            }
            let at = render(path);
            ctx.assigned.entry(*f).or_insert(at);
            st.set(*f, AbsVal::Const(*v));
            st.maybe.insert(*f);
        }
        Prog::Seq(p, q) => {
            // `do p while t` desugars to `p ; while t do p` with the two
            // copies of `p` structurally identical. Recognise the shape
            // and treat both copies as one loop body under a single
            // widened state: otherwise the first (unrolled) copy is
            // walked with pre-loop constants and every test of a
            // later-iteration value (detour flags, failure budgets)
            // reads as dead — and genuine body findings get reported
            // twice.
            if let Prog::While(t, body) = &**q {
                if **p == **body {
                    walk_loop(t, p, st, ctx, path, "do-while.body");
                    return;
                }
            }
            path.push("seq.0".into());
            walk(p, st, ctx, path);
            path.pop();
            path.push("seq.1".into());
            walk(q, st, ctx, path);
            path.pop();
        }
        Prog::Union(p, q) => {
            let mut other = st.clone();
            path.push("union.0".into());
            walk(p, st, ctx, path);
            path.pop();
            path.push("union.1".into());
            walk(q, &mut other, ctx, path);
            path.pop();
            st.join(&other);
        }
        Prog::Choice(branches) => {
            let entry = st.clone();
            let mut joined: Option<State> = None;
            for (i, (p, r)) in branches.iter().enumerate() {
                if !r.is_zero() && is_definite_drop(p) {
                    path.push(format!("choice.{i}"));
                    ctx.emit(
                        LintCode::MassLoss,
                        path,
                        format!(
                            "choice branch with probability {r} statically drops all mass — \
                             the program is sub-stochastic by construction"
                        ),
                    );
                    path.pop();
                }
                let mut branch_st = entry.clone();
                path.push(format!("choice.{i}"));
                walk(p, &mut branch_st, ctx, path);
                path.pop();
                match &mut joined {
                    None => joined = Some(branch_st),
                    Some(j) => j.join(&branch_st),
                }
            }
            if let Some(j) = joined {
                *st = j;
            }
        }
        Prog::Star(p) => {
            st.widen(p);
            let mut body_st = st.clone();
            path.push("star.body".into());
            walk(p, &mut body_st, ctx, path);
            path.pop();
        }
        Prog::If(t, p, q) => {
            lint_pred(t, st, ctx, path);
            let mut other = st.clone();
            path.push("if.then".into());
            walk(p, st, ctx, path);
            path.pop();
            path.push("if.else".into());
            walk(q, &mut other, ctx, path);
            path.pop();
            st.join(&other);
        }
        Prog::While(t, p) => walk_loop(t, p, st, ctx, path, "while.body"),
        Prog::Local(f, v, p) => {
            // The declaration defines the field (so tests inside the
            // scope are not "before assignment") but is not a *use* for
            // the write-only lint; scope exit erases to 0.
            st.set(*f, AbsVal::Const(*v));
            st.maybe.insert(*f);
            path.push("local".into());
            walk(p, st, ctx, path);
            path.pop();
            st.set(*f, AbsVal::Const(0));
        }
    }
}

/// Shared walk for `while t do p` and `do p while t` loops: the
/// divergence check (NL009), widening, guard lint, and one body walk.
fn walk_loop(
    t: &Pred,
    p: &Prog,
    st: &mut State,
    ctx: &mut Ctx<'_>,
    path: &mut Vec<String>,
    body_label: &str,
) {
    // NL009: a loop whose body neither modifies any guard field nor drops
    // keeps every guard-satisfying state transient forever — guaranteed
    // non-absorption, which the loop solver would only discover as a
    // `Singular` system at compile time.
    if *t != Pred::False {
        let mut guard_fields = BTreeSet::new();
        pred_fields(t, &mut guard_fields);
        let mut body_assigns = BTreeSet::new();
        assigned_fields(p, &mut body_assigns);
        if guard_fields.is_disjoint(&body_assigns) && !may_drop(p) {
            ctx.emit(
                LintCode::DivergentLoop,
                path,
                "loop can never terminate: the body neither assigns a guard field \
                 nor drops, so no transient state can reach an absorbing state"
                    .to_string(),
            );
        }
    }
    st.widen(p);
    lint_pred(t, st, ctx, path);
    let mut body_st = st.clone();
    path.push(body_label.to_string());
    walk(p, &mut body_st, ctx, path);
    path.pop();
}

fn lint_pred(t: &Pred, st: &State, ctx: &mut Ctx<'_>, path: &mut Vec<String>) {
    match t {
        Pred::True | Pred::False => {}
        Pred::Test(f, v) => {
            ctx.tested.insert(*f);
            if let Some(dom) = ctx.cfg.field_domains.get(f) {
                if !dom.contains(v) {
                    ctx.emit(
                        LintCode::DeadTest,
                        path,
                        format!(
                            "test {f} = {v} can never hold: the value is outside the \
                             field's declared domain"
                        ),
                    );
                    return;
                }
            }
            match st.get(*f) {
                AbsVal::Const(c) if c != *v => ctx.emit(
                    LintCode::DeadTest,
                    path,
                    format!("test {f} = {v} can never hold: {f} is always {c} here"),
                ),
                AbsVal::Entry
                    if *v != 0 && !ctx.cfg.input_fields.contains(f) && !st.maybe.contains(f) =>
                {
                    ctx.emit(
                        LintCode::TestBeforeAssign,
                        path,
                        format!(
                            "field {f} is tested (= {v}) before any possible assignment — \
                             non-input fields read as 0 at entry, so the test cannot hold"
                        ),
                    );
                }
                _ => {}
            }
        }
        Pred::Or(a, b) | Pred::And(a, b) => {
            lint_pred(a, st, ctx, path);
            lint_pred(b, st, ctx, path);
        }
        Pred::Not(a) => lint_pred(a, st, ctx, path),
    }
}

/// Fields a predicate mentions.
fn pred_fields(t: &Pred, out: &mut BTreeSet<Field>) {
    match t {
        Pred::True | Pred::False => {}
        Pred::Test(f, _) => {
            out.insert(*f);
        }
        Pred::Or(a, b) | Pred::And(a, b) => {
            pred_fields(a, out);
            pred_fields(b, out);
        }
        Pred::Not(a) => pred_fields(a, out),
    }
}

/// Fields a program may assign (local declarations included — they bind
/// the field within and erase it after, either way the field changes).
fn assigned_fields(p: &Prog, out: &mut BTreeSet<Field>) {
    match p {
        Prog::Filter(_) => {}
        Prog::Assign(f, _) | Prog::Local(f, _, _) => {
            out.insert(*f);
            if let Prog::Local(_, _, inner) = p {
                assigned_fields(inner, out);
            }
        }
        Prog::Union(a, b) | Prog::Seq(a, b) => {
            assigned_fields(a, out);
            assigned_fields(b, out);
        }
        Prog::Choice(branches) => {
            for (q, _) in branches.iter() {
                assigned_fields(q, out);
            }
        }
        Prog::Star(a) | Prog::While(_, a) => assigned_fields(a, out),
        Prog::If(_, a, b) => {
            assigned_fields(a, out);
            assigned_fields(b, out);
        }
    }
}

/// Whether every path through `p` drops the packet — the "statically
/// drops all mass" test behind NL008. Conservative: `false` means "might
/// deliver", never the other way around.
fn is_definite_drop(p: &Prog) -> bool {
    match p {
        Prog::Filter(Pred::False) => true,
        Prog::Filter(_) | Prog::Assign(..) | Prog::Star(_) | Prog::While(..) => false,
        Prog::Seq(a, b) => is_definite_drop(a) || is_definite_drop(b),
        Prog::Union(a, b) => is_definite_drop(a) && is_definite_drop(b),
        Prog::Choice(branches) => branches
            .iter()
            .all(|(q, r)| r.is_zero() || is_definite_drop(q)),
        Prog::If(_, a, b) => is_definite_drop(a) && is_definite_drop(b),
        Prog::Local(_, _, a) => is_definite_drop(a),
    }
}

/// Whether `p` can drop mass on some path — the absorption escape hatch
/// for NL009. Conservative in the safe direction: `true` means "might
/// drop" (suppresses the lint), so only constructs that provably never
/// drop return `false`.
fn may_drop(p: &Prog) -> bool {
    match p {
        Prog::Filter(Pred::True) => false,
        Prog::Filter(_) => true,
        Prog::Assign(..) => false,
        Prog::Seq(a, b) | Prog::Union(a, b) => may_drop(a) || may_drop(b),
        Prog::Choice(branches) => branches.iter().any(|(q, _)| may_drop(q)),
        Prog::Star(a) | Prog::While(_, a) | Prog::Local(_, _, a) => may_drop(a),
        Prog::If(_, a, b) => may_drop(a) || may_drop(b),
    }
}
