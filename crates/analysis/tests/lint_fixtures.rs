//! One failing fixture per lint code (the code's contract: each `NL0xx`
//! is demonstrated by a minimal program or model that triggers it and
//! nothing else relevant), plus clean runs over the shipped §2 example
//! and fattree(4) models — the same targets `netlint` gates in CI.

use mcnetkat_analysis::{
    lint_model, lint_program, lint_switch_program, LintCode, LintConfig, LintReport, Severity,
};
use mcnetkat_core::{Field, Pred, Prog};
use mcnetkat_net::{
    down_ports, running_example, FailureModel, FailureSpec, NetworkModel, RoutingScheme,
};
use mcnetkat_num::Ratio;
use mcnetkat_topo::{ab_fattree, Level, Topology};
use std::collections::BTreeSet;

fn f(name: &str) -> Field {
    Field::named(name)
}

fn has(report: &LintReport, code: LintCode) -> bool {
    report.with_code(code).next().is_some()
}

#[test]
fn nl001_test_before_assignment() {
    // A nonzero test of a field nothing could have assigned.
    let prog = Prog::test(f("x"), 1).seq(Prog::assign(f("y"), 1));
    let report = lint_program("t", &prog, &LintConfig::default());
    assert!(has(&report, LintCode::TestBeforeAssign), "{report}");
    // Declaring the field an input silences it.
    let mut cfg = LintConfig::default();
    cfg.input_fields.insert(f("x"));
    let report = lint_program("t", &prog, &cfg);
    assert!(!has(&report, LintCode::TestBeforeAssign), "{report}");
    // A zero test is fine: unset fields read as zero.
    let zero = Prog::test(f("x"), 0);
    let report = lint_program("t", &zero, &LintConfig::default());
    assert!(report.is_clean(), "{report}");
}

#[test]
fn nl002_write_only_field() {
    let prog = Prog::assign(f("x"), 1).seq(Prog::test(f("y"), 0));
    let report = lint_program("t", &prog, &LintConfig::default());
    assert!(has(&report, LintCode::WriteOnlyField), "{report}");
    // Output, input, and scratch declarations all silence it.
    for role in ["output", "input", "scratch"] {
        let mut cfg = LintConfig::default();
        match role {
            "output" => cfg.output_fields.insert(f("x")),
            "input" => cfg.input_fields.insert(f("x")),
            _ => cfg.scratch_fields.insert(f("x")),
        };
        let report = lint_program("t", &prog, &cfg);
        assert!(
            !has(&report, LintCode::WriteOnlyField),
            "as {role}: {report}"
        );
    }
}

#[test]
fn nl003_scratch_escape() {
    let mut cfg = LintConfig::default();
    cfg.scratch_fields.insert(f("up"));
    cfg.scratch_dead_at_exit = true;
    // Escapes: the hop ends with the scratch field still set.
    let leak = Prog::assign(f("up"), 1);
    let report = lint_program("t", &leak, &cfg);
    assert!(has(&report, LintCode::ScratchEscape), "{report}");
    assert_eq!(LintCode::ScratchEscape.severity(), Severity::Error);
    // May-escape: set on one branch only.
    let maybe = Prog::ite(Pred::test(f("g"), 0), leak.clone(), Prog::skip());
    let report = lint_program("t", &maybe, &cfg);
    assert!(has(&report, LintCode::ScratchEscape), "{report}");
    // Erased before exit: clean.
    let erased = leak.seq(Prog::assign(f("up"), 0));
    let report = lint_program("t", &erased, &cfg);
    assert!(!has(&report, LintCode::ScratchEscape), "{report}");
}

#[test]
fn nl004_dead_test() {
    // Outside the declared domain: `sw = 99` with three switches.
    let mut cfg = LintConfig::default();
    cfg.input_fields.insert(f("sw"));
    cfg.field_domains
        .insert(f("sw"), [1u32, 2, 3].into_iter().collect());
    let prog = Prog::test(f("sw"), 99);
    let report = lint_program("t", &prog, &cfg);
    assert!(has(&report, LintCode::DeadTest), "{report}");
    // Constant contradiction: assigned 1, tested 2.
    let prog = Prog::assign(f("x"), 1).seq(Prog::test(f("x"), 2));
    let report = lint_program("t", &prog, &LintConfig::default());
    assert!(has(&report, LintCode::DeadTest), "{report}");
    // Consistent constant: clean.
    let prog = Prog::assign(f("x"), 1).seq(Prog::test(f("x"), 1));
    let report = lint_program("t", &prog, &LintConfig::default());
    assert!(!has(&report, LintCode::DeadTest), "{report}");
}

#[test]
fn nl005_assign_out_of_domain() {
    let mut cfg = LintConfig::default();
    cfg.assign_domains
        .insert(f("pt"), [1u32, 2].into_iter().collect());
    let report = lint_program("t", &Prog::assign(f("pt"), 9), &cfg);
    assert!(has(&report, LintCode::AssignOutOfDomain), "{report}");
    let report = lint_program("t", &Prog::assign(f("pt"), 2), &cfg);
    assert!(!has(&report, LintCode::AssignOutOfDomain), "{report}");
}

#[test]
fn nl005_switch_program_forwarding_to_absent_port() {
    // A hand-written forwarding program that sends packets to a port the
    // switch does not have — checked through the public per-switch hook
    // (`NetworkModel` construction would never produce such a scheme).
    let topo = ab_fattree(4);
    let s = topo.find("edge0_0").unwrap();
    let model = NetworkModel::new(topo, s, RoutingScheme::Ecmp, FailureModel::none());
    let absent = 1 + model.topo.ports(s).iter().map(|pp| pp.port).max().unwrap();
    let bogus = Prog::assign(model.fields.pt, absent);
    let report = lint_switch_program(&model.topo, s, &model.fields, &bogus);
    assert!(has(&report, LintCode::AssignOutOfDomain), "{report}");
    // Every real scheme's per-switch program is in-domain.
    let wired = Prog::assign(model.fields.pt, model.topo.ports(s)[0].port);
    let report = lint_switch_program(&model.topo, s, &model.fields, &wired);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn nl006_unreachable_switch() {
    // Two linked edge switches plus an island aggregation switch no
    // ingress can reach.
    let mut topo = Topology::new();
    let a = topo.add_switch("edge_a", Level::Edge);
    let b = topo.add_switch("edge_b", Level::Edge);
    topo.add_switch("island", Level::Agg);
    topo.link(a, b);
    let model = NetworkModel::new(topo, b, RoutingScheme::Ecmp, FailureModel::none());
    let report = lint_model("toy", &model);
    let finding = report
        .with_code(LintCode::UnreachableSwitch)
        .next()
        .unwrap_or_else(|| panic!("expected NL006, got: {report}"));
    assert!(finding.at.contains("island"), "{finding}");
}

#[test]
fn nl007_undrawn_link() {
    // A per-link override of zero: the port stays failure-prone (the
    // model draws and tests it) but the draw always comes up healthy.
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    let agg = topo.find("agg0_0").unwrap();
    let port = down_ports(&topo, agg)[0];
    let spec = FailureSpec::independent(Ratio::new(1, 100)).with_link_pr(port, Ratio::zero());
    let model = NetworkModel::new(topo, dst, RoutingScheme::Ecmp, spec);
    let report = lint_model("toy", &model);
    assert!(has(&report, LintCode::UndrawnLink), "{report}");
    // A zero-probability group is flagged the same way.
    let topo = ab_fattree(4);
    let agg = topo.find("agg0_0").unwrap();
    let spec = FailureSpec::independent(Ratio::new(1, 100))
        .with_group(mcnetkat_net::Srlg::down_links_of(&topo, agg, Ratio::zero()));
    let model = NetworkModel::new(topo, dst, RoutingScheme::Ecmp, spec);
    let report = lint_model("toy", &model);
    let finding = report.with_code(LintCode::UndrawnLink).next().unwrap();
    assert!(finding.message.contains("linecard"), "{finding}");
}

#[test]
fn nl008_mass_loss() {
    let prog = Prog::choice2(Prog::drop(), Ratio::new(1, 2), Prog::skip());
    let report = lint_program("t", &prog, &LintConfig::default());
    assert!(has(&report, LintCode::MassLoss), "{report}");
    // A zero-probability drop branch carries no mass: clean.
    let prog = Prog::choice2(Prog::drop(), Ratio::zero(), Prog::skip());
    let report = lint_program("t", &prog, &LintConfig::default());
    assert!(!has(&report, LintCode::MassLoss), "{report}");
}

#[test]
fn nl009_divergent_loop() {
    // The body neither assigns the guard field nor drops: no absorption.
    let diverge = Prog::while_(Pred::test(f("g"), 0), Prog::assign(f("x"), 1));
    let mut cfg = LintConfig::default();
    cfg.input_fields.insert(f("g"));
    let report = lint_program("t", &diverge, &cfg);
    assert!(has(&report, LintCode::DivergentLoop), "{report}");
    assert_eq!(LintCode::DivergentLoop.severity(), Severity::Error);
    // Assigning the guard field makes termination possible.
    let ok = Prog::while_(Pred::test(f("g"), 0), Prog::assign(f("g"), 1));
    let report = lint_program("t", &ok, &cfg);
    assert!(!has(&report, LintCode::DivergentLoop), "{report}");
    // So does a possible drop (absorption into the dead state).
    let lossy_body = Prog::choice2(Prog::drop(), Ratio::new(1, 2), Prog::assign(f("x"), 1));
    let lossy = Prog::while_(Pred::test(f("g"), 0), lossy_body);
    let report = lint_program("t", &lossy, &cfg);
    assert!(!has(&report, LintCode::DivergentLoop), "{report}");
}

#[test]
fn lint_codes_are_stable() {
    let all = [
        (LintCode::TestBeforeAssign, "NL001"),
        (LintCode::WriteOnlyField, "NL002"),
        (LintCode::ScratchEscape, "NL003"),
        (LintCode::DeadTest, "NL004"),
        (LintCode::AssignOutOfDomain, "NL005"),
        (LintCode::UnreachableSwitch, "NL006"),
        (LintCode::UndrawnLink, "NL007"),
        (LintCode::MassLoss, "NL008"),
        (LintCode::DivergentLoop, "NL009"),
    ];
    for (code, s) in all {
        assert_eq!(code.code(), s);
    }
}

/// The §2 running example config, mirroring `netlint`.
fn sec2_config() -> (mcnetkat_net::RunningExample, LintConfig) {
    let ex = running_example();
    let mut cfg = LintConfig {
        input_fields: [ex.fields.sw, ex.fields.pt].into_iter().collect(),
        scratch_fields: [ex.fields.up(2), ex.fields.up(3)].into_iter().collect(),
        ..LintConfig::default()
    };
    let dom: BTreeSet<u32> = [1, 2, 3].into_iter().collect();
    cfg.field_domains.insert(ex.fields.sw, dom.clone());
    cfg.assign_domains.insert(ex.fields.sw, dom);
    (ex, cfg)
}

#[test]
fn sec2_example_lints_clean() {
    let (ex, cfg) = sec2_config();
    for policy in [&ex.naive, &ex.resilient] {
        for failure in [&ex.f0, &ex.f1, &ex.f2] {
            let report = lint_program("sec2", &ex.model(policy, failure), &cfg);
            assert!(report.is_clean(), "{report}");
        }
    }
    let report = lint_program("sec2", &ex.teleport(), &cfg);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn fattree4_models_lint_clean() {
    let pr = Ratio::new(1, 1000);
    for scheme in [
        RoutingScheme::Ecmp,
        RoutingScheme::F10_3,
        RoutingScheme::F10_3_5,
    ] {
        for failure in [
            FailureModel::none(),
            FailureModel::independent(pr.clone()),
            FailureModel::bounded(pr.clone(), 1),
        ] {
            let topo = ab_fattree(4);
            let dst = topo.find("edge0_0").unwrap();
            let model = NetworkModel::new(topo, dst, scheme, failure);
            let report = lint_model("fattree4", &model);
            assert!(report.is_clean(), "{scheme:?}: {report}");
        }
    }
}
