//! Property test for the diagram auditor: [`Manager::audit`] must come
//! back clean after arbitrary interleavings of the operations the
//! compiler composes — `seq`, `sum`, `ite`, `eliminate`, and `forget` —
//! applied to diagrams compiled from random guarded programs. The audit
//! walks every live node and interning table, so a clean report after a
//! random op storm certifies that no operation can leave the shared
//! tables in a non-canonical state.
#![cfg(feature = "audit")]

use mcnetkat_core::{Field, Pred, Prog};
use mcnetkat_fdd::{Fdd, Manager, ScratchField};
use mcnetkat_num::Ratio;
use proptest::prelude::*;

/// Two ordinary fields and two scratch fields, same split as the
/// `eliminate` property suite in `crates/fdd`.
fn field(ix: usize) -> Field {
    match ix {
        0 => Field::named("aud_a"),
        1 => Field::named("aud_b"),
        2 => Field::named("aud_s1"),
        _ => Field::named("aud_s2"),
    }
}

/// Random loop-free guarded programs over all four fields.
fn arb_prog() -> BoxedStrategy<Prog> {
    let leaf = prop_oneof![
        Just(Prog::skip()),
        Just(Prog::drop()),
        (0..4usize, 0..=2u32).prop_map(|(fi, v)| Prog::assign(field(fi), v)),
        (0..4usize, 1..=2u32).prop_map(|(fi, v)| Prog::test(field(fi), v)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.seq(b)),
            (inner.clone(), 1..=3i64, inner.clone()).prop_map(|(a, n, b)| Prog::choice2(
                a,
                Ratio::new(n, 4),
                b
            )),
            ((0..4usize, 1..=2u32), inner.clone(), inner.clone())
                .prop_map(|((fi, v), a, b)| { Prog::ite(Pred::test(field(fi), v), a, b) }),
        ]
    })
}

/// One step of the op storm. `Seq`/`Sum`/`Ite` fold a freshly compiled
/// random diagram into the accumulator; `Eliminate`/`Forget` project
/// fields out of it.
#[derive(Clone, Debug)]
enum Op {
    Seq(Prog),
    /// Convex sum with weight n/4 — the disjoint/scaled shape in which
    /// the compiler emits `sum` (a raw `sum` of overlapping diagrams is
    /// super-stochastic by design, and the audit rightly flags it).
    Sum(i64, Prog),
    /// `ite` on the branch `field(fi) = v`.
    Ite(usize, u32, Prog),
    /// `eliminate` the scratch field `field(2 + si)` drawn Bernoulli(n/4).
    Eliminate(usize, i64),
    /// `forget` the field `field(fi)`.
    Forget(usize),
}

fn arb_op() -> BoxedStrategy<Op> {
    prop_oneof![
        arb_prog().prop_map(Op::Seq),
        (1..=3i64, arb_prog()).prop_map(|(n, p)| Op::Sum(n, p)),
        (0..4usize, 1..=2u32, arb_prog()).prop_map(|(fi, v, p)| Op::Ite(fi, v, p)),
        (0..2usize, 1..=3i64).prop_map(|(si, n)| Op::Eliminate(si, n)),
        (0..4usize).prop_map(Op::Forget),
    ]
    .boxed()
}

fn apply(mgr: &Manager, acc: Fdd, op: &Op) -> Fdd {
    match op {
        Op::Seq(p) => {
            let q = mgr.compile(p).expect("compile");
            mgr.seq(acc, q)
        }
        Op::Sum(n, p) => {
            let q = mgr.compile(p).expect("compile");
            let w = Ratio::new(*n, 4);
            mgr.convex(&[(acc, w.clone()), (q, Ratio::one() - w)])
        }
        Op::Ite(fi, v, p) => {
            let guard = mgr.branch(field(*fi), *v, mgr.pass(), mgr.fail());
            let q = mgr.compile(p).expect("compile");
            mgr.ite(guard, q, acc)
        }
        Op::Eliminate(si, n) => {
            let draw = ScratchField::bernoulli(field(2 + si), Ratio::new(*n, 4));
            mgr.eliminate(acc, &[draw])
        }
        Op::Forget(fi) => {
            // `forget` panics by contract when the diagram still tests
            // the field (the compiler only forgets write-only fields), so
            // mirror that precondition here and skip otherwise.
            if mgr.domain(acc).tested.contains_key(&field(*fi)) {
                acc
            } else {
                mgr.forget(acc, &[field(*fi)])
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The audit is clean after every prefix of a random op sequence —
    /// not just at the end, so a violation is pinned to the op that
    /// introduced it.
    #[test]
    fn audit_clean_after_random_op_storm(
        start in arb_prog(),
        ops in proptest::collection::vec(arb_op(), 1..8),
    ) {
        let mgr = Manager::new();
        let mut acc = mgr.compile(&start).expect("compile");
        let report = mgr.audit();
        prop_assert!(report.is_clean(), "after initial compile: {report:?}");
        for (i, op) in ops.iter().enumerate() {
            acc = apply(&mgr, acc, op);
            let report = mgr.audit();
            prop_assert!(report.is_clean(), "after op {i} ({op:?}): {report:?}");
        }
    }
}
