//! Failure models `f_k` (§2, §7): links fail independently with
//! probability `pr`, optionally bounded to at most `k` simultaneous
//! failures.
//!
//! The bounded variant is encoded with a failure-budget counter field
//! `fl`: a link can only be drawn "down" while fewer than `k` failures
//! have occurred, so every randomness resolution exhibits at most `k`
//! failures — exactly the support condition the `k`-resilience table
//! (Figure 11b) quantifies over.

use crate::NetFields;
use mcnetkat_core::{Pred, Prog};
use mcnetkat_num::Ratio;

/// A failure model for the links of one switch-hop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureModel {
    /// Per-link failure probability.
    pub pr: Ratio,
    /// Maximum number of failures (`None` = unbounded, the paper's `f_∞`).
    pub k: Option<u32>,
}

impl FailureModel {
    /// The failure-free model `f_0` (every link up).
    pub fn none() -> FailureModel {
        FailureModel {
            pr: Ratio::zero(),
            k: Some(0),
        }
    }

    /// Links fail independently with probability `pr`, no bound (`f_∞`).
    pub fn independent(pr: Ratio) -> FailureModel {
        FailureModel { pr, k: None }
    }

    /// At most `k` failures, each drawn with probability `pr` (`f_k`).
    pub fn bounded(pr: Ratio, k: u32) -> FailureModel {
        FailureModel { pr, k: Some(k) }
    }

    /// Returns `true` if no link can ever fail.
    pub fn is_failure_free(&self) -> bool {
        self.pr.is_zero() || self.k == Some(0)
    }

    /// The program that draws fresh health flags for the given
    /// (failure-prone) ports of the current switch — the `f` that runs at
    /// the start of every hop in `M̂(p, t, f) = M((f;p), t)`.
    pub fn hop_program(&self, fields: &NetFields, ports: &[u32]) -> Prog {
        let mut steps = Vec::with_capacity(ports.len());
        for &port in ports {
            let up = fields.up(port);
            if self.is_failure_free() {
                steps.push(Prog::assign(up, 1));
                continue;
            }
            let fail_then_count = match self.k {
                None => Prog::assign(up, 0),
                Some(k) => Prog::assign(up, 0).seq(bump_counter(fields, k)),
            };
            let draw = Prog::choice2(fail_then_count, self.pr.clone(), Prog::assign(up, 1));
            let guarded = match self.k {
                // Budget exhausted ⇒ the link is up.
                Some(k) => Prog::ite(Pred::test(fields.fl, k), Prog::assign(up, 1), draw),
                None => draw,
            };
            steps.push(guarded);
        }
        Prog::seq_all(steps)
    }

    /// Erases the health flags drawn by [`FailureModel::hop_program`], so
    /// loop states do not carry stale link state (flags are re-drawn each
    /// hop anyway — failures are memoryless in this model).
    pub fn erase_program(fields: &NetFields, ports: &[u32]) -> Prog {
        Prog::seq_all(ports.iter().map(|&p| Prog::assign(fields.up(p), 0)))
    }
}

/// `fl <- fl + 1`, capped at `k`, via a conditional cascade (ProbNetKAT has
/// only constant assignments).
fn bump_counter(fields: &NetFields, k: u32) -> Prog {
    let mut prog = Prog::skip();
    for v in (0..k).rev() {
        prog = Prog::ite(
            Pred::test(fields.fl, v),
            Prog::assign(fields.fl, v + 1),
            prog,
        );
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnetkat_core::{Interp, Packet};

    fn fields() -> NetFields {
        NetFields::new(4)
    }

    #[test]
    fn failure_free_sets_all_up() {
        let f = fields();
        let prog = FailureModel::none().hop_program(&f, &[1, 2]);
        let d = Interp::new().eval_packet(&prog, &Packet::new());
        let expect = Packet::new().with(f.up(1), 1).with(f.up(2), 1);
        assert_eq!(d.prob(&expect), Ratio::one());
    }

    #[test]
    fn independent_failures_multiply() {
        let f = fields();
        let model = FailureModel::independent(Ratio::new(1, 5));
        let prog = model.hop_program(&f, &[1, 2]);
        let d = Interp::new().eval_packet(&prog, &Packet::new());
        // Both up: (4/5)^2.
        let both_up = Packet::new().with(f.up(1), 1).with(f.up(2), 1);
        assert_eq!(d.prob(&both_up), Ratio::new(16, 25));
        // Both down: (1/5)^2. Down flags are 0 = absent, so the outcome is
        // the empty packet (no fl counter with k=∞).
        let both_down = Packet::new();
        assert_eq!(d.prob(&both_down), Ratio::new(1, 25));
        // Exactly one down: 1/5 · 4/5 each way.
        let one_down = Packet::new().with(f.up(2), 1);
        assert_eq!(d.prob(&one_down), Ratio::new(4, 25));
    }

    #[test]
    fn bounded_model_caps_failures() {
        let f = fields();
        let model = FailureModel::bounded(Ratio::new(1, 2), 1);
        let prog = model.hop_program(&f, &[1, 2]);
        let d = Interp::new().eval_packet(&prog, &Packet::new());
        // With k=1, the outcome "both links down" is impossible.
        let mut none_up = Packet::new().with(f.fl, 2);
        none_up.set(f.up(1), 0);
        assert_eq!(d.prob(&none_up), Ratio::zero());
        // One failure: up1 down (fl=1), up2 forced up: 1/2.
        let one = Packet::new().with(f.fl, 1).with(f.up(2), 1);
        assert_eq!(d.prob(&one), Ratio::new(1, 2));
        // No failure: 1/2 * 1/2.
        let zero = Packet::new().with(f.up(1), 1).with(f.up(2), 1);
        assert_eq!(d.prob(&zero), Ratio::new(1, 4));
        assert_eq!(d.mass(), Ratio::one());
    }

    #[test]
    fn exhausted_budget_forces_up() {
        let f = fields();
        let model = FailureModel::bounded(Ratio::new(1, 2), 1);
        let prog = model.hop_program(&f, &[1]);
        // Start with fl already at the bound.
        let start = Packet::new().with(f.fl, 1);
        let d = Interp::new().eval_packet(&prog, &start);
        assert_eq!(d.prob(&start.with(f.up(1), 1)), Ratio::one());
    }

    #[test]
    fn erase_resets_flags() {
        let f = fields();
        let prog = FailureModel::erase_program(&f, &[1, 2]);
        let start = Packet::new().with(f.up(1), 1).with(f.up(2), 1);
        let d = Interp::new().eval_packet(&prog, &start);
        assert_eq!(d.prob(&Packet::new()), Ratio::one());
    }
}
