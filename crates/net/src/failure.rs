//! Failure models (§2, §7): the paper's `f_k` family — links fail
//! independently with probability `pr`, optionally bounded to at most `k`
//! simultaneous failures — generalised to [`FailureSpec`], which adds
//! per-link heterogeneous probabilities and correlated shared-risk link
//! groups (SRLGs).
//!
//! The bounded variants are encoded with a failure-budget counter field
//! `fl`: a draw can only come up "down" while fewer than `k` budget units
//! have been charged, so every randomness resolution exhibits at most `k`
//! failure *events* — exactly the support condition the `k`-resilience
//! table (Figure 11b) quantifies over. An SRLG charges the budget **once
//! per group**, no matter how many member links it takes down: a line-card
//! failure is one event.
//!
//! # The SRLG encoding
//!
//! Each group `j` owns a scratch health field `grp_j` (see
//! [`NetFields::grp`]). The per-hop program draws `grp_j` once — a single
//! Bernoulli guarded by the budget — and derives every member link's
//! `up_i` from it (`if grp_j=1 then up_i<-1 else up_i<-0`). Group fields
//! are erased at the end of every hop together with the `up_i` flags (see
//! [`FailureSpec::erase_program`]), so loop states never carry them, and
//! the compiled model projects them out entirely with
//! [`mcnetkat_fdd::Manager::forget`] — a spec whose groups are all
//! singletons therefore compiles to a diagram *equivalent* to the plain
//! independent model's.

use crate::scheme::down_ports;
use crate::NetFields;
use mcnetkat_core::{Field, Pred, Prog};
use mcnetkat_num::Ratio;
use mcnetkat_topo::{NodeId, Topology};
use std::collections::{BTreeMap, BTreeSet};

/// The paper's uniform failure model for the links of one switch-hop.
///
/// This is the `f_0`/`f_k`/`f_∞` family of §2/§7. It converts into the
/// richer [`FailureSpec`] (`.into()`), which is what [`crate::NetworkModel`]
/// stores; the two encode identically when no overrides or groups are
/// present.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureModel {
    /// Per-link failure probability.
    pub pr: Ratio,
    /// Maximum number of failures (`None` = unbounded, the paper's `f_∞`).
    pub k: Option<u32>,
}

impl FailureModel {
    /// The failure-free model `f_0` (every link up).
    pub fn none() -> FailureModel {
        FailureModel {
            pr: Ratio::zero(),
            k: Some(0),
        }
    }

    /// Links fail independently with probability `pr`, no bound (`f_∞`).
    pub fn independent(pr: Ratio) -> FailureModel {
        FailureModel { pr, k: None }
    }

    /// At most `k` failures, each drawn with probability `pr` (`f_k`).
    pub fn bounded(pr: Ratio, k: u32) -> FailureModel {
        FailureModel { pr, k: Some(k) }
    }

    /// Returns `true` if no link can ever fail.
    pub fn is_failure_free(&self) -> bool {
        self.pr.is_zero() || self.k == Some(0)
    }

    /// The program that draws fresh health flags for the given
    /// (failure-prone) ports of the current switch — the `f` that runs at
    /// the start of every hop in `M̂(p, t, f) = M((f;p), t)`.
    ///
    /// Delegates to [`FailureSpec::hop_program`] so that the uniform model
    /// and a spec without overrides or groups compile to the *same*
    /// program.
    pub fn hop_program(&self, fields: &NetFields, ports: &[u32]) -> Prog {
        FailureSpec::from(self.clone()).hop_program(fields, 0, ports)
    }

    /// Erases the health flags drawn by [`FailureModel::hop_program`], so
    /// loop states do not carry stale link state (flags are re-drawn each
    /// hop anyway — failures are memoryless in this model).
    pub fn erase_program(fields: &NetFields, ports: &[u32]) -> Prog {
        Prog::seq_all(ports.iter().map(|&p| Prog::assign(fields.up(p), 0)))
    }
}

impl From<FailureModel> for FailureSpec {
    fn from(m: FailureModel) -> FailureSpec {
        FailureSpec {
            pr: m.pr,
            k: m.k,
            link_pr: BTreeMap::new(),
            groups: Vec::new(),
        }
    }
}

/// A shared-risk link group: a named set of `(switch, port)` links that
/// fail *together* — one Bernoulli draw per hop takes every member down.
///
/// Members are `(sw, port)` pairs where `sw` is the ProbNetKAT switch
/// value ([`Topology::sw_value`]) and `port` the switch-local port number
/// of the failure-prone (downward) end of the link. All members of a
/// group must live on **one** switch (enforced by
/// [`FailureSpec::validate`]): failures are memoryless and drawn per
/// switch-hop, so links on different switches are resolved at different
/// hops and could neither fail together nor charge the budget once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Srlg {
    /// Human-readable group name (conduit, line card, power domain, …).
    pub name: String,
    /// Probability that the whole group fails at a hop.
    pub pr: Ratio,
    /// Member links as `(switch value, port)` pairs.
    pub members: Vec<(u32, u32)>,
}

impl Srlg {
    /// Builds a group from explicit `(switch value, port)` members.
    pub fn new(name: impl Into<String>, pr: Ratio, members: Vec<(u32, u32)>) -> Srlg {
        Srlg {
            name: name.into(),
            pr,
            members,
        }
    }

    /// The "line card" group of a switch: all of its failure-prone
    /// (downward) links, which share the switch's down-facing hardware.
    pub fn down_links_of(topo: &Topology, s: NodeId, pr: Ratio) -> Srlg {
        let sw = topo.sw_value(s);
        Srlg {
            name: format!("linecard:{}", topo.info(s).name),
            pr,
            members: down_ports(topo, s).into_iter().map(|p| (sw, p)).collect(),
        }
    }

    /// One line-card group ([`Srlg::down_links_of`]) per switch that has
    /// failure-prone links — the standard correlated scenario used by the
    /// `fig13_srlg` experiment and the SRLG benchmark.
    pub fn linecards(topo: &Topology, pr: &Ratio) -> Vec<Srlg> {
        topo.switches()
            .iter()
            .filter(|&&s| !down_ports(topo, s).is_empty())
            .map(|&s| Srlg::down_links_of(topo, s, pr.clone()))
            .collect()
    }

    /// One singleton group per failure-prone link of the topology — the
    /// degenerate spec that must be equivalent to independent failures.
    pub fn singletons(topo: &Topology, pr: &Ratio) -> Vec<Srlg> {
        let mut out = Vec::new();
        for &s in topo.switches() {
            let sw = topo.sw_value(s);
            for p in down_ports(topo, s) {
                out.push(Srlg {
                    name: format!("{}:{p}", topo.info(s).name),
                    pr: pr.clone(),
                    members: vec![(sw, p)],
                });
            }
        }
        out
    }

    /// The member ports this group contributes on switch `sw`, filtered to
    /// the given candidate ports (in candidate order).
    pub(crate) fn ports_on(&self, sw: u32, ports: &[u32]) -> Vec<u32> {
        ports
            .iter()
            .copied()
            .filter(|&p| self.members.contains(&(sw, p)))
            .collect()
    }
}

/// A composite failure specification: the generalisation of the paper's
/// `f_k` that [`crate::NetworkModel`] runs at every hop.
///
/// Three sources of randomness compose per hop, all sharing one failure
/// budget `k`:
///
/// 1. **Uniform independent draws** (`pr`) for every failure-prone port —
///    the original `f_k`.
/// 2. **Per-link overrides** (`link_pr`): ports listed here draw with
///    their own probability instead of `pr` (heterogeneous link quality).
///    Keys are port numbers; an override applies to that port on every
///    switch where it is failure-prone.
/// 3. **Shared-risk link groups** (`groups`): each [`Srlg`] is drawn
///    *once* per hop and takes all member links down together, charging
///    the budget once. Ports covered by a group do not also draw
///    independently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureSpec {
    /// Default per-link failure probability.
    pub pr: Ratio,
    /// Maximum number of failure events (`None` = unbounded).
    pub k: Option<u32>,
    /// Per-port probability overrides (port number → probability).
    pub link_pr: BTreeMap<u32, Ratio>,
    /// Shared-risk link groups; group `j` (0-based index) uses the health
    /// field [`NetFields::grp`]`(j + 1)`.
    pub groups: Vec<Srlg>,
}

impl FailureSpec {
    /// The failure-free spec (every link up).
    pub fn none() -> FailureSpec {
        FailureModel::none().into()
    }

    /// Links fail independently with probability `pr`, no bound.
    pub fn independent(pr: Ratio) -> FailureSpec {
        FailureModel::independent(pr).into()
    }

    /// At most `k` failure events, each drawn with probability `pr`.
    pub fn bounded(pr: Ratio, k: u32) -> FailureSpec {
        FailureModel::bounded(pr, k).into()
    }

    /// Overrides the failure probability of one port.
    pub fn with_link_pr(mut self, port: u32, pr: Ratio) -> FailureSpec {
        self.link_pr.insert(port, pr);
        self
    }

    /// Adds one shared-risk group.
    pub fn with_group(mut self, group: Srlg) -> FailureSpec {
        self.groups.push(group);
        self
    }

    /// Adds shared-risk groups in order.
    pub fn with_groups(mut self, groups: impl IntoIterator<Item = Srlg>) -> FailureSpec {
        self.groups.extend(groups);
        self
    }

    /// The failure probability of `port` for independent draws.
    pub fn port_pr(&self, port: u32) -> &Ratio {
        self.link_pr.get(&port).unwrap_or(&self.pr)
    }

    /// Returns `true` if no link can ever fail.
    pub fn is_failure_free(&self) -> bool {
        self.k == Some(0)
            || (self.pr.is_zero()
                && self.link_pr.values().all(Ratio::is_zero)
                && self.groups.iter().all(|g| g.pr.is_zero()))
    }

    /// Checks the spec against a topology: every probability must be a
    /// probability, every `link_pr` key must be a failure-prone port of at
    /// least one switch (a typo would otherwise silently fall back to the
    /// uniform `pr`), every group member must name an existing switch and
    /// one of its failure-prone (downward) ports, no link may belong to
    /// two groups, and a group must not span switches — draws are per
    /// switch-hop, so cross-switch members would neither fail together
    /// nor charge the budget once.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        if !self.pr.is_probability() {
            return Err(format!("pr {} is not a probability", self.pr));
        }
        let prone_union: BTreeSet<u32> = topo
            .switches()
            .iter()
            .flat_map(|&s| down_ports(topo, s))
            .collect();
        for (port, pr) in &self.link_pr {
            if !pr.is_probability() {
                return Err(format!("link_pr[{port}] = {pr} is not a probability"));
            }
            if !prone_union.contains(port) {
                return Err(format!(
                    "link_pr[{port}]: no switch has failure-prone port {port}"
                ));
            }
        }
        let mut seen = BTreeSet::new();
        for g in &self.groups {
            if !g.pr.is_probability() {
                return Err(format!(
                    "group {}: pr {} is not a probability",
                    g.name, g.pr
                ));
            }
            if let Some(&(first_sw, _)) = g.members.first() {
                if g.members.iter().any(|&(sw, _)| sw != first_sw) {
                    return Err(format!(
                        "group {} spans multiple switches: draws are per \
                         switch-hop, so its members would not fail together",
                        g.name
                    ));
                }
            }
            for &(sw, port) in &g.members {
                let node = topo
                    .node_of_sw(sw)
                    .ok_or_else(|| format!("group {}: no switch with value {sw}", g.name))?;
                if !down_ports(topo, node).contains(&port) {
                    return Err(format!(
                        "group {}: port {port} of {} is not failure-prone",
                        g.name,
                        topo.info(node).name
                    ));
                }
                if !seen.insert((sw, port)) {
                    return Err(format!(
                        "link ({sw}, {port}) belongs to more than one group"
                    ));
                }
            }
        }
        Ok(())
    }

    /// The program that draws fresh health flags for the failure-prone
    /// `ports` of switch `sw` — the `f` that runs at the start of every
    /// hop in `M̂(p, t, f) = M((f;p), t)`.
    ///
    /// Groups with members on this switch are drawn first (in declaration
    /// order): one budget-guarded Bernoulli into the group's `grp_j`
    /// field, then each member's `up_i` derived from it. Remaining ports
    /// draw independently with [`FailureSpec::port_pr`], in `ports` order.
    ///
    /// # Panics
    ///
    /// Panics if `fields` was not built with at least
    /// [`FailureSpec::group_count`] group fields (see
    /// [`NetFields::with_groups`]).
    pub fn hop_program(&self, fields: &NetFields, sw: u32, ports: &[u32]) -> Prog {
        if self.is_failure_free() {
            return Prog::seq_all(ports.iter().map(|&p| Prog::assign(fields.up(p), 1)));
        }
        // Hoisted out of the per-port loop: the budget-bump cascade is
        // port-independent and `Prog` clones are cheap (`Arc`-backed), so
        // it is built once per hop instead of once per port.
        let bump = self.k.map(|k| bump_counter(fields, k));
        let mut steps = Vec::with_capacity(ports.len());
        let mut grouped: BTreeSet<u32> = BTreeSet::new();
        for (j, group) in self.groups.iter().enumerate() {
            let members = group.ports_on(sw, ports);
            if members.is_empty() {
                continue;
            }
            let grp = fields.grp(j as u32 + 1);
            steps.push(self.draw(grp, &group.pr, fields, bump.as_ref()));
            for &p in &members {
                grouped.insert(p);
                steps.push(Prog::ite(
                    Pred::test(grp, 1),
                    Prog::assign(fields.up(p), 1),
                    Prog::assign(fields.up(p), 0),
                ));
            }
        }
        for &p in ports {
            if grouped.contains(&p) {
                continue;
            }
            steps.push(self.draw(fields.up(p), self.port_pr(p), fields, bump.as_ref()));
        }
        Prog::seq_all(steps)
    }

    /// One budget-guarded Bernoulli draw into `health` (an `up_i` flag or
    /// a group field): down with probability `pr` — charging one budget
    /// unit — and up otherwise. An exhausted budget forces the draw up,
    /// preserving the Figure 11b support condition.
    fn draw(&self, health: Field, pr: &Ratio, fields: &NetFields, bump: Option<&Prog>) -> Prog {
        if pr.is_zero() {
            return Prog::assign(health, 1);
        }
        let fail_then_count = match bump {
            None => Prog::assign(health, 0),
            Some(b) => Prog::assign(health, 0).seq(b.clone()),
        };
        let draw = Prog::choice2(fail_then_count, pr.clone(), Prog::assign(health, 1));
        match self.k {
            // Budget exhausted ⇒ the draw comes up healthy.
            Some(k) => Prog::ite(Pred::test(fields.fl, k), Prog::assign(health, 1), draw),
            None => draw,
        }
    }

    /// Erases the health flags drawn by [`FailureSpec::hop_program`] —
    /// the given `up` ports plus every group field — so loop states do not
    /// carry stale link state (failures are memoryless: everything is
    /// re-drawn next hop).
    pub fn erase_program(&self, fields: &NetFields, ports: &[u32]) -> Prog {
        let ups = ports.iter().map(|&p| Prog::assign(fields.up(p), 0));
        let grps = (1..=self.groups.len() as u32).map(|j| Prog::assign(fields.grp(j), 0));
        Prog::seq_all(ups.chain(grps))
    }

    /// Number of declared shared-risk groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Whether the per-hop draws factor into *independent* Bernoullis —
    /// true exactly when no failure budget couples them (`k = None`).
    /// Factorable specs let the fused pipeline skip compiling the draw
    /// program entirely and sum link health out of the routing diagram
    /// with [`mcnetkat_fdd::Manager::eliminate`]; budget-bounded specs
    /// must compile the draw (the budget guard sequences the Bernoullis).
    pub fn is_factorable(&self) -> bool {
        self.k.is_none()
    }
}

/// `fl <- fl + 1`, capped at `k`, via a conditional cascade (ProbNetKAT has
/// only constant assignments).
fn bump_counter(fields: &NetFields, k: u32) -> Prog {
    let mut prog = Prog::skip();
    for v in (0..k).rev() {
        prog = Prog::ite(
            Pred::test(fields.fl, v),
            Prog::assign(fields.fl, v + 1),
            prog,
        );
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnetkat_core::{Interp, Packet};

    fn fields() -> NetFields {
        NetFields::new(4)
    }

    #[test]
    fn failure_free_sets_all_up() {
        let f = fields();
        let prog = FailureModel::none().hop_program(&f, &[1, 2]);
        let d = Interp::new().eval_packet(&prog, &Packet::new());
        let expect = Packet::new().with(f.up(1), 1).with(f.up(2), 1);
        assert_eq!(d.prob(&expect), Ratio::one());
    }

    #[test]
    fn independent_failures_multiply() {
        let f = fields();
        let model = FailureModel::independent(Ratio::new(1, 5));
        let prog = model.hop_program(&f, &[1, 2]);
        let d = Interp::new().eval_packet(&prog, &Packet::new());
        // Both up: (4/5)^2.
        let both_up = Packet::new().with(f.up(1), 1).with(f.up(2), 1);
        assert_eq!(d.prob(&both_up), Ratio::new(16, 25));
        // Both down: (1/5)^2. Down flags are 0 = absent, so the outcome is
        // the empty packet (no fl counter with k=∞).
        let both_down = Packet::new();
        assert_eq!(d.prob(&both_down), Ratio::new(1, 25));
        // Exactly one down: 1/5 · 4/5 each way.
        let one_down = Packet::new().with(f.up(2), 1);
        assert_eq!(d.prob(&one_down), Ratio::new(4, 25));
    }

    #[test]
    fn bounded_model_caps_failures() {
        let f = fields();
        let model = FailureModel::bounded(Ratio::new(1, 2), 1);
        let prog = model.hop_program(&f, &[1, 2]);
        let d = Interp::new().eval_packet(&prog, &Packet::new());
        // With k=1, the outcome "both links down" is impossible.
        let mut none_up = Packet::new().with(f.fl, 2);
        none_up.set(f.up(1), 0);
        assert_eq!(d.prob(&none_up), Ratio::zero());
        // One failure: up1 down (fl=1), up2 forced up: 1/2.
        let one = Packet::new().with(f.fl, 1).with(f.up(2), 1);
        assert_eq!(d.prob(&one), Ratio::new(1, 2));
        // No failure: 1/2 * 1/2.
        let zero = Packet::new().with(f.up(1), 1).with(f.up(2), 1);
        assert_eq!(d.prob(&zero), Ratio::new(1, 4));
        assert_eq!(d.mass(), Ratio::one());
    }

    #[test]
    fn exhausted_budget_forces_up() {
        let f = fields();
        let model = FailureModel::bounded(Ratio::new(1, 2), 1);
        let prog = model.hop_program(&f, &[1]);
        // Start with fl already at the bound.
        let start = Packet::new().with(f.fl, 1);
        let d = Interp::new().eval_packet(&prog, &start);
        assert_eq!(d.prob(&start.with(f.up(1), 1)), Ratio::one());
    }

    #[test]
    fn erase_resets_flags() {
        let f = fields();
        let prog = FailureModel::erase_program(&f, &[1, 2]);
        let start = Packet::new().with(f.up(1), 1).with(f.up(2), 1);
        let d = Interp::new().eval_packet(&prog, &start);
        assert_eq!(d.prob(&Packet::new()), Ratio::one());
    }

    #[test]
    fn spec_without_extras_encodes_like_the_model() {
        // A `FailureSpec` with no overrides and no groups must produce the
        // *identical* program (benchmarks and existing models rely on it).
        let f = fields();
        for model in [
            FailureModel::none(),
            FailureModel::independent(Ratio::new(1, 7)),
            FailureModel::bounded(Ratio::new(2, 5), 2),
        ] {
            let spec: FailureSpec = model.clone().into();
            assert_eq!(
                model.hop_program(&f, &[1, 3]),
                spec.hop_program(&f, 9, &[1, 3])
            );
        }
    }

    #[test]
    fn heterogeneous_overrides_change_one_port() {
        let f = fields();
        let spec = FailureSpec::independent(Ratio::new(1, 5)).with_link_pr(2, Ratio::new(1, 2));
        let prog = spec.hop_program(&f, 1, &[1, 2]);
        let d = Interp::new().eval_packet(&prog, &Packet::new());
        // Port 1 keeps the uniform 1/5, port 2 uses 1/2.
        let both_up = Packet::new().with(f.up(1), 1).with(f.up(2), 1);
        assert_eq!(d.prob(&both_up), Ratio::new(4, 5) * Ratio::new(1, 2));
        let only_two_down = Packet::new().with(f.up(1), 1);
        assert_eq!(d.prob(&only_two_down), Ratio::new(4, 5) * Ratio::new(1, 2));
        let only_one_down = Packet::new().with(f.up(2), 1);
        assert_eq!(d.prob(&only_one_down), Ratio::new(1, 5) * Ratio::new(1, 2));
        assert_eq!(d.mass(), Ratio::one());
    }

    #[test]
    fn zero_probability_override_never_fails() {
        let f = fields();
        let spec = FailureSpec::independent(Ratio::new(1, 2)).with_link_pr(1, Ratio::zero());
        assert!(!spec.is_failure_free());
        let prog = spec.hop_program(&f, 1, &[1]);
        let d = Interp::new().eval_packet(&prog, &Packet::new());
        assert_eq!(d.prob(&Packet::new().with(f.up(1), 1)), Ratio::one());
    }

    #[test]
    fn srlg_members_fail_together() {
        let f = NetFields::with_groups(4, 1);
        let spec = FailureSpec::independent(Ratio::zero()).with_group(Srlg::new(
            "conduit",
            Ratio::new(1, 3),
            vec![(7, 1), (7, 2)],
        ));
        let prog = spec.hop_program(&f, 7, &[1, 2, 3]);
        let d = Interp::new().eval_packet(&prog, &Packet::new());
        // Port 3 is ungrouped with pr 0: always up. Ports 1 and 2 are
        // perfectly correlated: both down with 1/3, both up with 2/3 —
        // no mixed outcome exists.
        let both_up = Packet::new()
            .with(f.up(1), 1)
            .with(f.up(2), 1)
            .with(f.up(3), 1)
            .with(f.grp(1), 1);
        assert_eq!(d.prob(&both_up), Ratio::new(2, 3));
        let both_down = Packet::new().with(f.up(3), 1);
        assert_eq!(d.prob(&both_down), Ratio::new(1, 3));
        assert_eq!(d.mass(), Ratio::one());
        assert_eq!(d.iter().count(), 2);
    }

    #[test]
    fn srlg_charges_budget_once_per_group() {
        // With budget k=1 a two-member group can still take *both* links
        // down — a line-card failure is one event — which the independent
        // bounded model cannot.
        let f = NetFields::with_groups(4, 1);
        let spec = FailureSpec::bounded(Ratio::new(1, 2), 1).with_group(Srlg::new(
            "card",
            Ratio::new(1, 2),
            vec![(1, 1), (1, 2)],
        ));
        let prog = spec.hop_program(&f, 1, &[1, 2]);
        let d = Interp::new().eval_packet(&prog, &Packet::new());
        let card_down = Packet::new().with(f.fl, 1);
        assert_eq!(d.prob(&card_down), Ratio::new(1, 2));
        assert_eq!(d.mass(), Ratio::one());
    }

    #[test]
    fn srlg_respects_exhausted_budget() {
        let f = NetFields::with_groups(4, 1);
        let spec = FailureSpec::bounded(Ratio::zero(), 1).with_group(Srlg::new(
            "card",
            Ratio::new(1, 2),
            vec![(1, 1), (1, 2)],
        ));
        let start = Packet::new().with(f.fl, 1);
        let prog = spec.hop_program(&f, 1, &[1, 2]);
        let d = Interp::new().eval_packet(&prog, &start);
        let all_up = start.with(f.up(1), 1).with(f.up(2), 1).with(f.grp(1), 1);
        assert_eq!(d.prob(&all_up), Ratio::one());
    }

    #[test]
    fn groups_only_draw_on_their_switch() {
        let f = NetFields::with_groups(4, 1);
        let spec = FailureSpec::independent(Ratio::zero()).with_group(Srlg::new(
            "elsewhere",
            Ratio::new(1, 2),
            vec![(2, 1)],
        ));
        // Switch 1 has no member of the group: port 1 draws independently
        // (pr 0 ⇒ up), and grp1 is not drawn at all.
        let prog = spec.hop_program(&f, 1, &[1]);
        let d = Interp::new().eval_packet(&prog, &Packet::new());
        assert_eq!(d.prob(&Packet::new().with(f.up(1), 1)), Ratio::one());
    }

    #[test]
    fn erase_clears_ups_and_groups() {
        let f = NetFields::with_groups(4, 2);
        let spec = FailureSpec::independent(Ratio::new(1, 2))
            .with_group(Srlg::new("a", Ratio::new(1, 2), vec![(1, 1)]))
            .with_group(Srlg::new("b", Ratio::new(1, 2), vec![(1, 2)]));
        let prog = spec.erase_program(&f, &[1, 2]);
        let start = Packet::new()
            .with(f.up(1), 1)
            .with(f.up(2), 1)
            .with(f.grp(1), 1)
            .with(f.grp(2), 1);
        let d = Interp::new().eval_packet(&prog, &start);
        assert_eq!(d.prob(&Packet::new()), Ratio::one());
    }

    #[test]
    fn validate_rejects_bad_specs() {
        use mcnetkat_topo::ab_fattree;
        let topo = ab_fattree(4);
        let agg = topo.find("agg0_0").unwrap();
        let sw = topo.sw_value(agg);
        let down = down_ports(&topo, agg);
        let ok = FailureSpec::independent(Ratio::new(1, 10)).with_group(Srlg::new(
            "card",
            Ratio::new(1, 10),
            vec![(sw, down[0])],
        ));
        assert!(ok.validate(&topo).is_ok());
        // Unknown switch value.
        let bad_sw =
            FailureSpec::none().with_group(Srlg::new("x", Ratio::new(1, 2), vec![(10_000, 1)]));
        assert!(bad_sw.validate(&topo).unwrap_err().contains("no switch"));
        // A non-prone (upward) port.
        let edge = topo.find("edge0_0").unwrap();
        let up_port = topo.ports(edge)[0].port;
        let bad_port = FailureSpec::none().with_group(Srlg::new(
            "x",
            Ratio::new(1, 2),
            vec![(topo.sw_value(edge), up_port)],
        ));
        assert!(bad_port
            .validate(&topo)
            .unwrap_err()
            .contains("not failure-prone"));
        // Overlapping groups.
        let overlap = FailureSpec::none()
            .with_group(Srlg::new("a", Ratio::new(1, 2), vec![(sw, down[0])]))
            .with_group(Srlg::new("b", Ratio::new(1, 2), vec![(sw, down[0])]));
        assert!(overlap
            .validate(&topo)
            .unwrap_err()
            .contains("more than one group"));
        // A non-probability.
        let bad_pr = FailureSpec::independent(Ratio::new(3, 2));
        assert!(bad_pr.validate(&topo).unwrap_err().contains("probability"));
        // A group spanning two switches: per-hop draws cannot correlate
        // across switches, so this must be rejected.
        let agg2 = topo.find("agg1_0").unwrap();
        let spanning = FailureSpec::none().with_group(Srlg::new(
            "conduit",
            Ratio::new(1, 2),
            vec![(sw, down[0]), (topo.sw_value(agg2), 1)],
        ));
        assert!(spanning
            .validate(&topo)
            .unwrap_err()
            .contains("spans multiple switches"));
        // A link_pr override on a port number no switch can ever draw.
        let bad_override =
            FailureSpec::independent(Ratio::new(1, 10)).with_link_pr(99, Ratio::new(1, 2));
        assert!(bad_override
            .validate(&topo)
            .unwrap_err()
            .contains("no switch has failure-prone port"));
    }

    #[test]
    fn linecards_cover_every_prone_link_once() {
        use mcnetkat_topo::ab_fattree;
        let topo = ab_fattree(4);
        let cards = Srlg::linecards(&topo, &Ratio::new(1, 100));
        // Aggregation + core switches only; together they own every prone
        // link exactly once, so the spec validates.
        let total: usize = topo
            .switches()
            .iter()
            .map(|&s| down_ports(&topo, s).len())
            .sum();
        assert_eq!(cards.iter().map(|g| g.members.len()).sum::<usize>(), total);
        let spec = FailureSpec::independent(Ratio::zero()).with_groups(cards);
        assert!(spec.validate(&topo).is_ok());
    }

    #[test]
    fn singleton_helpers_cover_all_prone_links() {
        use mcnetkat_topo::ab_fattree;
        let topo = ab_fattree(4);
        let singles = Srlg::singletons(&topo, &Ratio::new(1, 100));
        let total: usize = topo
            .switches()
            .iter()
            .map(|&s| down_ports(&topo, s).len())
            .sum();
        assert_eq!(singles.len(), total);
        assert!(singles.iter().all(|g| g.members.len() == 1));
        let spec = FailureSpec::independent(Ratio::new(1, 100)).with_groups(singles);
        assert!(spec.validate(&topo).is_ok());
    }
}
