//! The parallelising backend of §6 ("Parallel speedup"): per-switch
//! *fused hops* are compiled on worker threads — each with a private FDD
//! manager, mirroring the paper's per-process workers — and merged
//! map/tree-reduce style into the main manager.
//!
//! # Pipeline
//!
//! 1. **Map.** The switch set is split into contiguous chunks, one per
//!    worker. Each worker compiles its switches' fused hop diagrams
//!    (`draw ; scheme ; topology step ; bump`, scratch fields eliminated
//!    per switch — see `net::fused`) and folds them into a partial `case`
//!    chain locally: `if sw=s₁ then h₁ else if sw=s₂ then h₂ … else
//!    drop`, together with the matching guard `sw∈{s₁,…}`. Guard and
//!    chain leave the worker as one multi-root [`FddExport`] with a
//!    shared node table. Because the hops are already scratch-free, the
//!    exports carry no `up_i`/`grp_j` state.
//! 2. **Tree-reduce.** Partial chains are merged pairwise in parallel
//!    rounds, each merge in a fresh scratch manager:
//!    `merge(A, B) = if guard_A then chain_A else chain_B` (sound because
//!    chunk switch sets are disjoint). After ⌈log₂ workers⌉ rounds a
//!    single export remains.
//! 3. **Import + sequential tail.** The main manager performs *one*
//!    import of the fully merged loop body (the topology step now rides
//!    inside each hop), then runs the same tail as the sequential fused
//!    pipeline (`fused::assemble_model`): loop solve, ingress,
//!    normalisation, local wrappers. The `while` solve goes through
//!    [`Manager::while_loop`], so repeated loops across models sharing a
//!    manager hit the loop-solution cache.

use crate::fused::{assemble_model, compile_switch_hop, FusedStats};
use crate::NetworkModel;
use mcnetkat_fdd::{CancelToken, CompileError, CompileOptions, Fdd, FddExport, Manager};
use mcnetkat_topo::{NodeId, ShortestPaths};
use std::any::Any;

/// Renders a caught panic payload for [`CompileError::WorkerPanicked`].
fn payload_string(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Error-precedence accumulator for fan-in joins: the first *real* error
/// wins; [`CompileError::Cancelled`] only sticks when nothing better
/// arrives, because sibling workers are cancelled *as a consequence* of
/// the first failure and their cancellation must not mask its cause.
fn note_error(slot: &mut Option<CompileError>, e: CompileError) {
    match slot {
        None => *slot = Some(e),
        Some(CompileError::Cancelled) if !matches!(e, CompileError::Cancelled) => *slot = Some(e),
        Some(_) => {}
    }
}

/// Runs `f`, converting any panic into [`CompileError::WorkerPanicked`]
/// so a fan-out phase degrades into a typed error instead of tearing the
/// process down. The default panic hook still reports the panic site to
/// stderr, which is exactly what a postmortem wants.
fn contain_panics<T>(f: impl FnOnce() -> Result<T, CompileError>) -> Result<T, CompileError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(CompileError::WorkerPanicked {
            payload: payload_string(payload.as_ref()),
        }),
    }
}

/// Polls the named failpoint at a parallel seam. Compiles away without
/// the `failpoints` feature.
fn parallel_failpoint(site: &str) -> Result<(), CompileError> {
    #[cfg(feature = "failpoints")]
    {
        use mcnetkat_fdd::failpoints::{check, InjectedFault};
        match check(site) {
            None => Ok(()),
            Some(InjectedFault::Cancelled) => Err(CompileError::Cancelled),
            Some(InjectedFault::Singular) => {
                Err(CompileError::Solver(mcnetkat_fdd::LinalgError::Singular(0)))
            }
        }
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        Ok(())
    }
}

/// Compiles `model` using `workers` threads for the per-switch policies.
///
/// Returns the diagram in `mgr`. With `workers == 1` this degenerates to a
/// sequential compile through the same code path (useful as the baseline
/// for speedup measurements). `opts` governs every compile performed by
/// this function, on worker threads and in `mgr` alike.
///
/// # Errors
///
/// Propagates the first [`CompileError`] raised by any worker.
pub fn compile_model_parallel(
    mgr: &Manager,
    model: &NetworkModel,
    workers: usize,
    opts: &CompileOptions,
) -> Result<Fdd, CompileError> {
    Ok(compile_model_parallel_with_stats(mgr, model, workers, opts)?.0)
}

/// [`compile_model_parallel`] plus the fused pipeline's scratch-size
/// gauges, merged over every worker (`switches` sums, peaks max).
///
/// # Errors
///
/// Propagates the first [`CompileError`] raised by any worker.
pub fn compile_model_parallel_with_stats(
    mgr: &Manager,
    model: &NetworkModel,
    workers: usize,
    opts: &CompileOptions,
) -> Result<(Fdd, FusedStats), CompileError> {
    let workers = workers.max(1);
    let sp = ShortestPaths::towards(&model.topo, model.dst);
    let switches: Vec<NodeId> = model.topo.switches().to_vec();

    // Fan-out cancellation: workers run under a *child* of the caller's
    // token (or a fresh one), so the first failure can cancel its
    // siblings promptly without firing the caller's own token.
    let abort = opts
        .budget
        .cancel
        .as_ref()
        .map_or_else(CancelToken::new, CancelToken::child);
    let worker_opts = CompileOptions {
        budget: opts.budget.clone().with_cancel(abort.clone()),
        ..opts.clone()
    };
    let worker_opts = &worker_opts;

    // Map: each worker compiles its chunk's fused hops and builds the
    // partial `case` chain (and its guard) inside a private manager.
    // Every join is collected — a worker panic is converted into
    // `WorkerPanicked` and cancels the remaining workers; it never
    // propagates as a panic and never leaks a running thread.
    let chunk = switches.len().div_ceil(workers).max(1);
    let mut parts: Vec<FddExport> = Vec::with_capacity(workers);
    let mut stats = FusedStats::default();
    let mut first_err: Option<CompileError> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for work in switches.chunks(chunk) {
            let sp = &sp;
            let abort = &abort;
            handles.push(scope.spawn(move || {
                let result = contain_panics(|| compile_chunk(model, work, sp, worker_opts));
                if result.is_err() {
                    // Fail fast: siblings see the cancellation at their
                    // next checkpoint, not after finishing their chunk.
                    abort.cancel();
                }
                result
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(Ok((part, worker_stats))) => {
                    parts.push(part);
                    stats.merge(&worker_stats);
                }
                Ok(Err(e)) => note_error(&mut first_err, e),
                // Unreachable in practice (`contain_panics` already caught
                // inside the worker), kept so a join failure can never
                // poison the scope.
                Err(payload) => note_error(
                    &mut first_err,
                    CompileError::WorkerPanicked {
                        payload: payload_string(payload.as_ref()),
                    },
                ),
            }
        }
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    opts.budget.check_external()?;

    // Tree-reduce: merge the partial chains pairwise in parallel rounds
    // until at most two remain; the last merge runs in the main manager
    // directly, saving a scratch-manager round trip of the full body.
    let parts = tree_reduce(parts, &abort)?;
    opts.budget.check_external()?;
    let body = match parts.as_slice() {
        [] => mgr.fail(), // no switches: the body drops everything
        [only] => mgr.import_all(only)[1],
        [a, b] => {
            let ra = mgr.import_all(a);
            let rb = mgr.import_all(b);
            mgr.ite(ra[0], ra[1], rb[1])
        }
        _ => unreachable!("tree_reduce leaves at most two parts"),
    };

    // Sequential tail, shared with the fused sequential pipeline: loop
    // solve, ingress, normalisation, local wrappers. The hops already
    // carry the topology step and hop bump, and their scratch fields were
    // eliminated inside the workers — no erasure or projection remains.
    let fdd = assemble_model(mgr, model, body, opts)?;
    #[cfg(feature = "audit")]
    crate::fused::audit_compiled_model(mgr, model, fdd);
    Ok((fdd, stats))
}

/// Compiles one worker's chunk of fused per-switch hops and folds them
/// into a partial `case` chain in a private manager. Returns a two-root
/// export — `[guard, chain]` where `guard` tests `sw ∈ chunk` and `chain`
/// behaves like the fused hop on matching packets and drops everything
/// else — together with the worker's scratch-size gauges.
fn compile_chunk(
    model: &NetworkModel,
    work: &[NodeId],
    sp: &ShortestPaths,
    opts: &CompileOptions,
) -> Result<(FddExport, FusedStats), CompileError> {
    let local = Manager::new();
    let mut stats = FusedStats::default();
    let mut chain = local.fail();
    let mut guard = local.fail();
    for &s in work.iter().rev() {
        // Per-switch checkpoint: a cancelled sibling token or expired
        // deadline stops this worker at the next switch boundary.
        parallel_failpoint("net::parallel::worker")?;
        opts.budget.check_external()?;
        let branch = compile_switch_hop(&local, model, s, sp, opts, &mut stats)?;
        let test = local.branch(
            model.fields.sw,
            model.topo.sw_value(s),
            local.pass(),
            local.fail(),
        );
        chain = local.ite(test, branch, chain);
        guard = local.ite(test, local.pass(), guard);
    }
    Ok((local.export_all(&[guard, chain]), stats))
}

/// Merges partial `[guard, chain]` exports pairwise in parallel rounds
/// until at most two remain (the caller finishes in the main manager).
/// Sound because the chunks cover disjoint `sw` values:
/// `if guard_A then chain_A else chain_B` never shadows a `B` branch.
///
/// Merge-round panics and errors get the same containment as the map
/// phase: every handle is joined, a panic becomes
/// [`CompileError::WorkerPanicked`], and `abort` cancels the round's
/// siblings.
fn tree_reduce(
    mut parts: Vec<FddExport>,
    abort: &CancelToken,
) -> Result<Vec<FddExport>, CompileError> {
    while parts.len() > 2 {
        let mut round: Vec<FddExport> = Vec::with_capacity(parts.len().div_ceil(2));
        let mut first_err: Option<CompileError> = None;
        let mut iter = parts.into_iter();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => handles.push(Some(scope.spawn(move || {
                        let result = contain_panics(|| merge_pair(&a, &b, abort));
                        if result.is_err() {
                            abort.cancel();
                        }
                        result
                    }))),
                    None => {
                        // Odd part out: carried into the next round as is.
                        round.push(a);
                        handles.push(None);
                    }
                }
            }
            for handle in handles.into_iter().flatten() {
                match handle.join() {
                    Ok(Ok(merged)) => round.push(merged),
                    Ok(Err(e)) => note_error(&mut first_err, e),
                    Err(payload) => note_error(
                        &mut first_err,
                        CompileError::WorkerPanicked {
                            payload: payload_string(payload.as_ref()),
                        },
                    ),
                }
            }
        });
        if let Some(e) = first_err {
            return Err(e);
        }
        parts = round;
    }
    Ok(parts)
}

/// Merges two partial chains in a scratch manager and re-exports.
fn merge_pair(
    a: &FddExport,
    b: &FddExport,
    abort: &CancelToken,
) -> Result<FddExport, CompileError> {
    parallel_failpoint("net::parallel::merge")?;
    if abort.is_cancelled() {
        return Err(CompileError::Cancelled);
    }
    let scratch = Manager::new();
    let ra = scratch.import_all(a);
    let rb = scratch.import_all(b);
    let (guard_a, chain_a) = (ra[0], ra[1]);
    let (guard_b, chain_b) = (rb[0], rb[1]);
    let guard = scratch.ite(guard_a, scratch.pass(), guard_b);
    let chain = scratch.ite(guard_a, chain_a, chain_b);
    Ok(scratch.export_all(&[guard, chain]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailureModel, Queries, RoutingScheme};
    use mcnetkat_num::Ratio;
    use mcnetkat_topo::ab_fattree;

    fn model() -> NetworkModel {
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        NetworkModel::new(
            topo,
            dst,
            RoutingScheme::F10_3,
            FailureModel::independent(Ratio::new(1, 10)),
        )
    }

    #[test]
    fn parallel_matches_sequential() {
        let m = model();
        let mgr = Manager::new();
        let sequential = m.compile(&mgr).unwrap();
        // Includes worker counts that do not divide the switch count and
        // exceed the core count.
        for workers in [1, 2, 3, 4, 7] {
            let parallel = compile_model_parallel(&mgr, &m, workers, &Default::default()).unwrap();
            assert!(mgr.equiv(sequential, parallel), "workers = {workers}");
        }
    }

    #[test]
    fn parallel_matches_sequential_with_more_workers_than_switches() {
        let m = model();
        let switches = m.topo.switches().len();
        let mgr = Manager::new();
        let sequential = m.compile(&mgr).unwrap();
        let parallel = compile_model_parallel(&mgr, &m, switches + 5, &Default::default()).unwrap();
        assert!(mgr.equiv(sequential, parallel));
    }

    #[test]
    fn parallel_matches_sequential_with_bounded_failures() {
        // A non-trivial failure model: at most 2 concurrent failures with
        // the 5-hop F10 rerouting scheme.
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        let m = NetworkModel::new(
            topo,
            dst,
            RoutingScheme::F10_3_5,
            FailureModel::bounded(Ratio::new(1, 10), 2),
        );
        let mgr = Manager::new();
        let sequential = m.compile(&mgr).unwrap();
        for workers in [3, 7] {
            let parallel = compile_model_parallel(&mgr, &m, workers, &Default::default()).unwrap();
            assert!(mgr.equiv(sequential, parallel), "workers = {workers}");
        }
    }

    #[test]
    fn parallel_queries_agree() {
        let m = model();
        let mgr = Manager::new();
        let fdd = compile_model_parallel(&mgr, &m, 4, &Default::default()).unwrap();
        let q = Queries::from_fdd(&mgr, &m, fdd);
        let seq_q = Queries::new(&mgr, &m).unwrap();
        let src = m.topo.find("edge1_0").unwrap();
        assert_eq!(q.delivery_prob(src), seq_q.delivery_prob(src));
    }

    #[test]
    fn parallel_respects_state_limit_like_sequential() {
        // Regression: workers used to compile with `CompileOptions::default()`
        // regardless of the caller's options. A tiny state limit must make
        // the parallel path fail with the same error as the sequential one.
        let m = model();
        let opts = CompileOptions {
            state_limit: 4,
            ..CompileOptions::default()
        };
        let mgr = Manager::new();
        let seq_err = m.compile_with(&mgr, &opts).unwrap_err();
        assert!(
            matches!(seq_err, CompileError::StateSpaceTooLarge { .. }),
            "sequential: {seq_err}"
        );
        for workers in [1, 4] {
            let par_err = compile_model_parallel(&mgr, &m, workers, &opts).unwrap_err();
            assert!(
                matches!(par_err, CompileError::StateSpaceTooLarge { .. }),
                "workers = {workers}: {par_err}"
            );
        }
    }

    #[test]
    fn parallel_stats_cover_every_switch() {
        let m = model();
        let mgr = Manager::new();
        let (fdd, stats) =
            compile_model_parallel_with_stats(&mgr, &m, 3, &Default::default()).unwrap();
        assert_eq!(stats.switches, m.topo.switches().len());
        assert!(stats.max_scratch_nodes > 0);
        assert!(mgr.equiv(fdd, m.compile(&mgr).unwrap()));
    }

    #[test]
    fn parallel_loop_solutions_hit_the_cache_on_recompile() {
        let m = model();
        let mgr = Manager::new();
        let first = compile_model_parallel(&mgr, &m, 2, &Default::default()).unwrap();
        let misses_after_first = mgr.while_cache_stats().misses;
        let second = compile_model_parallel(&mgr, &m, 3, &Default::default()).unwrap();
        assert!(mgr.equiv(first, second));
        let stats = mgr.while_cache_stats();
        assert!(stats.hits >= 1, "expected a cache hit, got {stats:?}");
        assert_eq!(stats.misses, misses_after_first, "no new loop solves");
    }
}
