//! The parallelising backend of §6 ("Parallel speedup"): per-switch
//! policies are compiled on worker threads — each with a private FDD
//! manager, mirroring the paper's per-process workers — and merged
//! map-reduce style into the main manager.

use crate::NetworkModel;
use mcnetkat_core::Prog;
use mcnetkat_fdd::{CompileError, CompileOptions, Fdd, FddExport, Manager};
use mcnetkat_topo::ShortestPaths;

/// Compiles `model` using `workers` threads for the per-switch policies.
///
/// Returns the diagram in `mgr`. With `workers == 1` this degenerates to a
/// sequential compile through the same code path (useful as the baseline
/// for speedup measurements).
///
/// # Errors
///
/// Propagates the first [`CompileError`] raised by any worker.
pub fn compile_model_parallel(
    mgr: &Manager,
    model: &NetworkModel,
    workers: usize,
    opts: &CompileOptions,
) -> Result<Fdd, CompileError> {
    let workers = workers.max(1);
    let sp = ShortestPaths::towards(&model.topo, model.dst);
    let switch_progs: Vec<(u32, Prog)> = model
        .topo
        .switches()
        .iter()
        .map(|&s| (model.topo.sw_value(s), model.switch_policy(s, &sp)))
        .collect();

    // Map: compile per-switch programs on worker threads, each with its
    // own manager (no shared locks), then export the results.
    let chunk = switch_progs.len().div_ceil(workers);
    let mut exported: Vec<(u32, FddExport)> = Vec::with_capacity(switch_progs.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for work in switch_progs.chunks(chunk.max(1)) {
            handles.push(scope.spawn(move || {
                let local = Manager::new();
                work.iter()
                    .map(|(sw, prog)| {
                        local
                            .compile_with(prog, &CompileOptions::default())
                            .map(|fdd| (*sw, local.export(fdd)))
                    })
                    .collect::<Result<Vec<_>, CompileError>>()
            }));
        }
        for handle in handles {
            let batch = handle.join().expect("worker panicked")?;
            exported.extend(batch);
        }
        Ok::<(), CompileError>(())
    })?;

    // Reduce: import into the main manager and fold the disjoint `case`.
    let mut policy = mgr.fail();
    for (sw, export) in exported.into_iter().rev() {
        let branch = mgr.import(&export);
        let test = mgr.branch(model.fields.sw, sw, mgr.pass(), mgr.fail());
        policy = mgr.ite(test, branch, policy);
    }

    // Sequential tail: topology, counter, erasure, loop, wrappers. These
    // are cheap compared to the per-switch map phase.
    let topo_fdd = mgr.compile(&model.topology_program())?;
    let mut body = mgr.seq(policy, topo_fdd);
    // Hop counting + flag erasure (mirrors `NetworkModel::body`).
    let remainder = body_remainder(model);
    let rem_fdd = mgr.compile(&remainder)?;
    body = mgr.seq(body, rem_fdd);

    let guard = mgr.compile_pred(&model.guard());
    let loop_fdd = mgr.while_loop(guard, body, opts)?;
    let do_while = mgr.seq(body, loop_fdd);

    let ingress = mgr.compile(&Prog::filter(model.ingress_pred()))?;
    let with_in = mgr.seq(ingress, do_while);
    let normalise = mgr.compile(&Prog::assign(model.fields.pt, 0))?;
    let core = mgr.seq(with_in, normalise);

    // Local-variable wrappers (enter assignments before, erasures after).
    let (pre, post) = local_wrappers(model);
    let pre_fdd = mgr.compile(&pre)?;
    let post_fdd = mgr.compile(&post)?;
    let tmp = mgr.seq(core, post_fdd);
    Ok(mgr.seq(pre_fdd, tmp))
}

/// The part of the loop body that follows `p ; t̂`: hop counting and flag
/// erasure (mirrors [`NetworkModel::body`]).
fn body_remainder(model: &NetworkModel) -> Prog {
    use mcnetkat_core::Pred;
    let mut prog = Prog::skip();
    if let Some(cap) = model.hop_cap {
        let mut bump = Prog::skip();
        for v in (0..cap).rev() {
            bump = Prog::ite(
                Pred::test(model.fields.cnt, v),
                Prog::assign(model.fields.cnt, v + 1),
                bump,
            );
        }
        prog = prog.seq(bump);
    }
    let ports: Vec<u32> = (1..=model.topo.max_degree() as u32).collect();
    prog.seq(crate::FailureModel::erase_program(&model.fields, &ports))
}

/// The local-variable wrappers of [`NetworkModel::program`] as explicit
/// pre/post assignment sequences.
fn local_wrappers(model: &NetworkModel) -> (Prog, Prog) {
    let mut pre = Vec::new();
    let mut post = Vec::new();
    for i in 1..=model.topo.max_degree() as u32 {
        pre.push(Prog::assign(model.fields.up(i), 1));
        post.push(Prog::assign(model.fields.up(i), 0));
    }
    if model.failure.k.is_some() && !model.failure.is_failure_free() {
        pre.push(Prog::assign(model.fields.fl, 0));
        post.push(Prog::assign(model.fields.fl, 0));
    }
    pre.push(Prog::assign(model.fields.dt, 0));
    post.push(Prog::assign(model.fields.dt, 0));
    (Prog::seq_all(pre), Prog::seq_all(post))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailureModel, Queries, RoutingScheme};
    use mcnetkat_num::Ratio;
    use mcnetkat_topo::ab_fattree;

    fn model() -> NetworkModel {
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        NetworkModel::new(
            topo,
            dst,
            RoutingScheme::F10_3,
            FailureModel::independent(Ratio::new(1, 10)),
        )
    }

    #[test]
    fn parallel_matches_sequential() {
        let m = model();
        let mgr = Manager::new();
        let sequential = m.compile(&mgr).unwrap();
        for workers in [1, 2, 4] {
            let parallel = compile_model_parallel(&mgr, &m, workers, &Default::default()).unwrap();
            assert!(mgr.equiv(sequential, parallel), "workers = {workers}");
        }
    }

    #[test]
    fn parallel_queries_agree() {
        let m = model();
        let mgr = Manager::new();
        let fdd = compile_model_parallel(&mgr, &m, 4, &Default::default()).unwrap();
        let q = Queries::from_fdd(&mgr, &m, fdd);
        let seq_q = Queries::new(&mgr, &m).unwrap();
        let src = m.topo.find("edge1_0").unwrap();
        assert_eq!(q.delivery_prob(src), seq_q.delivery_prob(src));
    }
}
