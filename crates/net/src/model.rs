//! Network model assembly: the `M̂(p, t, f)` construction of §2/§7.
//!
//! ```text
//! M̂(p, f) ≜ var up₁<-1 in … var up_d<-1 in
//!            in ; do (f ; p ; t̂ ; erase) while (¬ sw=dst) ; pt<-0
//! ```
//!
//! where `t̂` is the failure-aware topology program (links move packets
//! only when their `up` flag is set) and `erase` clears the per-hop link
//! flags so loop states stay small (flags are re-drawn every hop — the
//! failure model is memoryless, exactly as in the paper where `f` runs at
//! every hop).

use crate::fused::{compile_model_fused, FusedStats};
use crate::scheme::{down_ports, switch_program};
use crate::{FailureSpec, NetFields, RoutingScheme};
use mcnetkat_core::{Pred, Prog};
use mcnetkat_fdd::{CompileError, CompileOptions, Fdd, Manager};
use mcnetkat_topo::{Level, NodeId, ShortestPaths, Topology};
use std::collections::BTreeMap;

/// A complete network verification model.
#[derive(Clone, Debug)]
pub struct NetworkModel {
    /// The fabric.
    pub topo: Topology,
    /// Destination switch (packets exit the loop on arrival).
    pub dst: NodeId,
    /// Field handles.
    pub fields: NetFields,
    /// Routing scheme on every switch (unless overridden per switch).
    pub scheme: RoutingScheme,
    /// Per-switch scheme overrides: switches listed here run their own
    /// scheme instead of [`NetworkModel::scheme`] — the seam that lets an
    /// incremental engine model a single-switch program edit (see
    /// [`NetworkModel::scheme_for`]).
    pub scheme_overrides: BTreeMap<NodeId, RoutingScheme>,
    /// Failure specification run at every hop (the plain [`crate::FailureModel`]
    /// converts into this via `Into`).
    pub failure: FailureSpec,
    /// When set, a hop counter is threaded through the model, capped at
    /// this many hops (for the path-stretch analyses of Figure 12 b/c).
    pub hop_cap: Option<u32>,
}

impl NetworkModel {
    /// Builds a model for `topo` with destination `dst`. `failure` is
    /// anything convertible into a [`FailureSpec`] — a plain
    /// [`crate::FailureModel`] or a full spec with overrides and
    /// shared-risk groups.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`FailureSpec::validate`] against `topo`
    /// (bad probabilities, unknown group members, overlapping groups).
    pub fn new(
        topo: Topology,
        dst: NodeId,
        scheme: RoutingScheme,
        failure: impl Into<FailureSpec>,
    ) -> NetworkModel {
        let failure = failure.into();
        let fields = NetFields::with_groups(topo.max_degree(), failure.group_count());
        NetworkModel::new_with_fields(topo, dst, fields, scheme, failure)
    }

    /// Builds a model over explicitly provided field handles — the hook
    /// for sweeping [`crate::FieldOrder`] policies (each policy interns
    /// its fields in its own order, possibly namespaced).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`FailureSpec::validate`], or if `fields`
    /// declares fewer `up`/`grp` handles than the topology and spec need.
    pub fn new_with_fields(
        topo: Topology,
        dst: NodeId,
        fields: NetFields,
        scheme: RoutingScheme,
        failure: impl Into<FailureSpec>,
    ) -> NetworkModel {
        let failure = failure.into();
        if let Err(e) = failure.validate(&topo) {
            panic!("invalid failure spec: {e}");
        }
        assert!(
            fields.ups().len() >= topo.max_degree(),
            "fields declare {} up flags, topology needs {}",
            fields.ups().len(),
            topo.max_degree()
        );
        assert!(
            fields.grps().len() >= failure.group_count(),
            "fields declare {} group flags, spec needs {}",
            fields.grps().len(),
            failure.group_count()
        );
        NetworkModel {
            topo,
            dst,
            fields,
            scheme,
            scheme_overrides: BTreeMap::new(),
            failure,
            hop_cap: None,
        }
    }

    /// Enables the hop counter with the given cap.
    pub fn with_hop_cap(mut self, cap: u32) -> NetworkModel {
        self.hop_cap = Some(cap);
        self
    }

    /// Overrides the routing scheme of one switch (a "switch program
    /// edit"): `s` runs `scheme` instead of the model-wide default. Every
    /// compile path — legacy, fused, parallel — honours the override.
    pub fn with_switch_scheme(mut self, s: NodeId, scheme: RoutingScheme) -> NetworkModel {
        self.scheme_overrides.insert(s, scheme);
        self
    }

    /// The routing scheme switch `s` actually runs: its override if one is
    /// set, the model-wide default otherwise.
    pub fn scheme_for(&self, s: NodeId) -> RoutingScheme {
        self.scheme_overrides
            .get(&s)
            .copied()
            .unwrap_or(self.scheme)
    }

    /// The ingress locations: every edge switch other than the
    /// destination, at the virtual host port 0. Topologies without levels
    /// (e.g. the chain) use their first switch.
    pub fn ingresses(&self) -> Vec<NodeId> {
        let edges: Vec<NodeId> = self
            .topo
            .switches()
            .iter()
            .copied()
            .filter(|&s| self.topo.info(s).level == Level::Edge && s != self.dst)
            .collect();
        if edges.is_empty() {
            self.topo.switches().first().copied().into_iter().collect()
        } else {
            edges
        }
    }

    /// The `in` predicate: a disjunction of switch tests over the ingress
    /// locations (port 0 — the virtual host-facing port).
    pub fn ingress_pred(&self) -> Pred {
        Pred::any(self.ingresses().into_iter().map(|s| {
            Pred::test(self.fields.sw, self.topo.sw_value(s)).and(Pred::test(self.fields.pt, 0))
        }))
    }

    /// The failure-prone ports of switch `s` (downward links, §7).
    pub fn prone_ports(&self, s: NodeId) -> Vec<u32> {
        down_ports(&self.topo, s)
    }

    /// The failure-prone ports any switch ever draws — the union of
    /// [`NetworkModel::prone_ports`] over all switches. Ports outside this
    /// set are never drawn, so the per-hop erasure skips them.
    pub fn drawn_ports(&self) -> Vec<u32> {
        let mut drawn = std::collections::BTreeSet::new();
        for &s in self.topo.switches() {
            drawn.extend(self.prone_ports(s));
        }
        drawn.into_iter().collect()
    }

    /// The per-switch hop program `f_s ; p_s`: draw link health, then
    /// forward.
    pub fn switch_policy(&self, s: NodeId, sp: &ShortestPaths) -> Prog {
        let prone = self.prone_ports(s);
        let draw = self
            .failure
            .hop_program(&self.fields, self.topo.sw_value(s), &prone);
        let route = switch_program(
            self.scheme_for(s),
            &self.fields,
            &self.topo,
            sp,
            s,
            self.dst,
        );
        draw.seq(route)
    }

    /// The full forwarding policy: `case sw=1 then … else case sw=2 …`.
    pub fn policy(&self) -> Prog {
        let sp = ShortestPaths::towards(&self.topo, self.dst);
        let branches = self
            .topo
            .switches()
            .iter()
            .map(|&s| {
                (
                    Pred::test(self.fields.sw, self.topo.sw_value(s)),
                    self.switch_policy(s, &sp),
                )
            })
            .collect();
        Prog::case(branches, Prog::drop())
    }

    /// The failure-aware topology program `t̂`: moves the packet across the
    /// link at `(sw, pt)` provided the link is up; packets on dead or
    /// unknown ports are dropped.
    pub fn topology_program(&self) -> Prog {
        let mut branches = Vec::new();
        for &s in self.topo.switches() {
            let prone = self.prone_ports(s);
            for pp in self.topo.ports(s) {
                // Only switch-to-switch links move packets.
                if self.topo.info(pp.peer).level == Level::Host {
                    continue;
                }
                let here = Pred::test(self.fields.sw, self.topo.sw_value(s))
                    .and(Pred::test(self.fields.pt, pp.port));
                branches.push((here, self.link_step(pp, &prone)));
            }
        }
        Prog::case(branches, Prog::drop())
    }

    /// The topology step restricted to switch `s` — the `sw = s` slice of
    /// [`NetworkModel::topology_program`], dispatching on `pt` only. The
    /// fused per-switch pipeline composes this with `s`'s routing program,
    /// where `sw = s` is established by the surrounding case chain.
    pub fn topology_step(&self, s: NodeId) -> Prog {
        let prone = self.prone_ports(s);
        let mut branches = Vec::new();
        for pp in self.topo.ports(s) {
            if self.topo.info(pp.peer).level == Level::Host {
                continue;
            }
            branches.push((
                Pred::test(self.fields.pt, pp.port),
                self.link_step(pp, &prone),
            ));
        }
        Prog::case(branches, Prog::drop())
    }

    /// One link crossing: move across `pp` to the peer, guarded by the
    /// link's health flag when the link can fail (`prone` is the owning
    /// switch's failure-prone port set, hoisted by the caller).
    fn link_step(&self, pp: &mcnetkat_topo::PortPeer, prone: &[u32]) -> Prog {
        let mv = Prog::assign(self.fields.sw, self.topo.sw_value(pp.peer))
            .seq(Prog::assign(self.fields.pt, pp.peer_port));
        if prone.contains(&pp.port) && !self.failure.is_failure_free() {
            Prog::ite(Pred::test(self.fields.up(pp.port), 1), mv, Prog::drop())
        } else {
            mv
        }
    }

    /// One loop iteration: `f ; p ; t̂` plus hop counting and per-hop flag
    /// erasure.
    pub fn body(&self) -> Prog {
        let mut prog = self.policy().seq(self.topology_program());
        if let Some(cap) = self.hop_cap {
            prog = prog.seq(bump_hop_counter(&self.fields, cap));
        }
        // Clear the flags: they are re-drawn next hop, and carrying them in
        // the loop state would blow up the chain for no semantic gain.
        // Ports that no switch ever draws keep their declaration value and
        // need no erasure; group fields are cleared alongside the flags.
        prog.seq(
            self.failure
                .erase_program(&self.fields, &self.drawn_ports()),
        )
    }

    /// The guard: keep forwarding while not at the destination.
    pub fn guard(&self) -> Pred {
        Pred::test(self.fields.sw, self.topo.sw_value(self.dst)).not()
    }

    /// The complete program `M̂`.
    pub fn program(&self) -> Prog {
        let ingress = Prog::filter(self.ingress_pred());
        let loop_prog = Prog::do_while(self.body(), self.guard());
        // Normalise the arrival port so outputs are canonical.
        let mut inner = ingress.seq(loop_prog).seq(Prog::assign(self.fields.pt, 0));
        // Local declarations: up flags, failure budget, detour flag. The
        // detour flag is declared for *every* scheme so that models with
        // different schemes stay comparable on every input class.
        inner = Prog::local(self.fields.dt, 0, inner);
        if self.failure.k.is_some() && !self.failure.is_failure_free() {
            inner = Prog::local(self.fields.fl, 0, inner);
        }
        for i in (1..=self.topo.max_degree() as u32).rev() {
            inner = Prog::local(self.fields.up(i), 1, inner);
        }
        inner
    }

    /// Compiles the model to its big-step FDD through the fused
    /// per-switch pipeline: each switch's hop program (`failure draw ;
    /// scheme ; topology step ; hop bump`) is compiled in its own scratch
    /// manager, its `up_i`/`grp_j` scratch fields are eliminated
    /// immediately ([`Manager::eliminate`]), and only then is the global
    /// `sw`-case chain assembled — so peak diagram size scales with the
    /// largest single switch, not the whole topology. The result mentions
    /// no scratch field, and a spec whose groups are all singletons
    /// yields a diagram equivalent to the plain independent model's.
    ///
    /// The legacy whole-body path survives as
    /// [`NetworkModel::compile_legacy`] (the two are pinned equivalent by
    /// differential tests).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the FDD backend.
    pub fn compile(&self, mgr: &Manager) -> Result<Fdd, CompileError> {
        self.compile_with(mgr, &CompileOptions::default())
    }

    /// Compiles with explicit options (fused pipeline, see
    /// [`NetworkModel::compile`]).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the FDD backend.
    pub fn compile_with(&self, mgr: &Manager, opts: &CompileOptions) -> Result<Fdd, CompileError> {
        Ok(compile_model_fused(mgr, self, opts)?.0)
    }

    /// Compiles with explicit options and returns the fused pipeline's
    /// scratch-size gauges alongside the diagram (see [`FusedStats`]).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the FDD backend.
    pub fn compile_with_stats(
        &self,
        mgr: &Manager,
        opts: &CompileOptions,
    ) -> Result<(Fdd, FusedStats), CompileError> {
        compile_model_fused(mgr, self, opts)
    }

    /// The legacy whole-body compile: builds the complete program AST
    /// (every switch's scratch fields alive simultaneously), compiles it
    /// in `mgr`, and projects the group scratch fields out with
    /// [`Manager::forget`]. Kept as the differential-testing oracle for
    /// the fused pipeline; prefer [`NetworkModel::compile`].
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the FDD backend.
    pub fn compile_legacy(&self, mgr: &Manager) -> Result<Fdd, CompileError> {
        let fdd = mgr.compile(&self.program())?;
        Ok(mgr.forget(fdd, self.fields.grps()))
    }

    /// The legacy whole-body compile with explicit options (see
    /// [`NetworkModel::compile_legacy`]).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the FDD backend.
    pub fn compile_legacy_with(
        &self,
        mgr: &Manager,
        opts: &CompileOptions,
    ) -> Result<Fdd, CompileError> {
        let fdd = mgr.compile_with(&self.program(), opts)?;
        Ok(mgr.forget(fdd, self.fields.grps()))
    }

    /// The ideal specification: teleport every ingress packet straight to
    /// the destination (`in ; sw<-dst ; pt<-0`), with the same local-field
    /// erasure as the model so the two are comparable on every input
    /// class.
    pub fn teleport(&self) -> Prog {
        teleport(self)
    }
}

/// `cnt <- min(cnt + 1, cap)` over the hop-counter field.
pub(crate) fn bump_hop_counter(fields: &NetFields, cap: u32) -> Prog {
    let mut prog = Prog::skip(); // at the cap: saturate
    for v in (0..cap).rev() {
        prog = Prog::ite(
            Pred::test(fields.cnt, v),
            Prog::assign(fields.cnt, v + 1),
            prog,
        );
    }
    prog
}

/// The teleport specification for a model (see
/// [`NetworkModel::teleport`]).
pub fn teleport(model: &NetworkModel) -> Prog {
    let fields = &model.fields;
    let mut prog = Prog::filter(model.ingress_pred())
        .seq(Prog::assign(fields.sw, model.topo.sw_value(model.dst)))
        .seq(Prog::assign(fields.pt, 0));
    if model.hop_cap.is_some() {
        // Teleportation is never compared against hop-counting models, but
        // keep the field deterministic if someone tries.
        prog = prog.seq(Prog::assign(fields.cnt, 0));
    }
    prog = Prog::local(fields.dt, 0, prog);
    if model.failure.k.is_some() && !model.failure.is_failure_free() {
        prog = Prog::local(fields.fl, 0, prog);
    }
    for i in (1..=model.topo.max_degree() as u32).rev() {
        prog = Prog::local(fields.up(i), 1, prog);
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailureModel;
    use mcnetkat_core::Packet;
    use mcnetkat_num::Ratio;
    use mcnetkat_topo::ab_fattree;

    fn ingress_packet(model: &NetworkModel, sw: NodeId) -> Packet {
        Packet::new().with(model.fields.sw, model.topo.sw_value(sw))
    }

    #[test]
    fn failure_free_ecmp_delivers_everything() {
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        let model = NetworkModel::new(topo, dst, RoutingScheme::Ecmp, FailureModel::none());
        let mgr = Manager::new();
        let fdd = model.compile(&mgr).unwrap();
        for src in model.ingresses() {
            let pk = ingress_packet(&model, src);
            assert_eq!(
                mgr.prob_delivery(fdd, &pk),
                Ratio::one(),
                "from {}",
                model.topo.info(src).name
            );
        }
    }

    #[test]
    fn failure_free_model_equals_teleport() {
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        let model = NetworkModel::new(topo, dst, RoutingScheme::Ecmp, FailureModel::none());
        let mgr = Manager::new();
        let fdd = model.compile(&mgr).unwrap();
        let tele = mgr.compile(&model.teleport()).unwrap();
        assert!(mgr.equiv(fdd, tele));
    }

    #[test]
    fn non_ingress_packets_are_dropped() {
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        let model = NetworkModel::new(topo, dst, RoutingScheme::Ecmp, FailureModel::none());
        let mgr = Manager::new();
        let fdd = model.compile(&mgr).unwrap();
        // A core switch is not an ingress.
        let core = model.topo.find("core0").unwrap();
        let pk = ingress_packet(&model, core);
        assert_eq!(mgr.prob_delivery(fdd, &pk), Ratio::zero());
    }

    #[test]
    fn ecmp_is_lossy_under_failures() {
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        let model = NetworkModel::new(
            topo,
            dst,
            RoutingScheme::Ecmp,
            FailureModel::independent(Ratio::new(1, 4)),
        );
        let mgr = Manager::new();
        let fdd = model.compile(&mgr).unwrap();
        let src = model.topo.find("edge1_0").unwrap();
        let pk = ingress_packet(&model, src);
        let p = mgr.prob_delivery(fdd, &pk);
        assert!(p < Ratio::one(), "delivery should be lossy, got {p}");
        assert!(p > Ratio::zero());
    }

    #[test]
    fn f103_beats_ecmp_under_failures() {
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        let failure = FailureModel::independent(Ratio::new(1, 4));
        let mgr = Manager::new();
        let ecmp = NetworkModel::new(topo.clone(), dst, RoutingScheme::Ecmp, failure.clone());
        let f103 = NetworkModel::new(topo, dst, RoutingScheme::F10_3, failure);
        let fe = ecmp.compile(&mgr).unwrap();
        let f3 = f103.compile(&mgr).unwrap();
        let src = ecmp.topo.find("edge1_0").unwrap();
        let pk = ingress_packet(&ecmp, src);
        let pe = mgr.prob_delivery(fe, &pk);
        let p3 = mgr.prob_delivery(f3, &pk);
        assert!(p3 > pe, "F10_3 ({p3}) should beat ECMP ({pe})");
    }

    #[test]
    fn hop_counter_counts_path_length() {
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        let model =
            NetworkModel::new(topo, dst, RoutingScheme::Ecmp, FailureModel::none()).with_hop_cap(8);
        let mgr = Manager::new();
        let fdd = model.compile(&mgr).unwrap();
        // From the other edge in pod 0 the path is always 2 hops.
        let src = model.topo.find("edge0_1").unwrap();
        let pk = ingress_packet(&model, src);
        let out = mgr.output_dist(fdd, &pk);
        let cnt = model.fields.cnt;
        for (o, r) in out {
            let o = o.expect("no drops without failures");
            assert_eq!(o.get(cnt), 2, "prob {r}");
        }
    }
}
