//! The canonical packet fields used by network models.
//!
//! Field interning order fixes the FDD variable order, which matters for
//! diagram size: `sw` is tested at the root of every per-switch `case`, so
//! it comes first, followed by `pt`, the detour flag, the failure budget,
//! the hop counter, and finally the per-port link-health flags.

use mcnetkat_core::Field;

/// The field handles shared by all model-building code.
#[derive(Clone, Debug)]
pub struct NetFields {
    /// Current switch (1-based; 0 = unset).
    pub sw: Field,
    /// Current port on the switch.
    pub pt: Field,
    /// F10₃,₅ detour flag.
    pub dt: Field,
    /// Remaining-failure budget counter for bounded failure models `f_k`.
    pub fl: Field,
    /// Hop counter for path-stretch queries (Figure 12 b/c).
    pub cnt: Field,
    /// `up_i` link-health flags, indexed by port number (1-based).
    ups: Vec<Field>,
    /// `grp_j` shared-risk-group health flags, indexed by group (1-based).
    /// Scratch state: drawn once per group per hop, consumed by the member
    /// links' `up_i` derivations, erased before the next hop, and projected
    /// out of the compiled diagram entirely (`Manager::forget`).
    grps: Vec<Field>,
}

impl NetFields {
    /// Interns the canonical fields for a topology with maximum degree
    /// `max_ports`.
    pub fn new(max_ports: usize) -> NetFields {
        NetFields::with_groups(max_ports, 0)
    }

    /// Interns the canonical fields plus `groups` shared-risk-group health
    /// flags (for models with a [`crate::FailureSpec`] that declares
    /// SRLGs).
    pub fn with_groups(max_ports: usize, groups: usize) -> NetFields {
        NetFields {
            sw: Field::named("sw"),
            pt: Field::named("pt"),
            dt: Field::named("dt"),
            fl: Field::named("fl"),
            cnt: Field::named("cnt"),
            ups: (1..=max_ports)
                .map(|i| Field::named(&format!("up{i}")))
                .collect(),
            grps: (1..=groups)
                .map(|j| Field::named(&format!("grp{j}")))
                .collect(),
        }
    }

    /// The `up_i` flag for port `i` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or exceeds the maximum degree.
    pub fn up(&self, i: u32) -> Field {
        self.ups[(i as usize).checked_sub(1).expect("ports are 1-based")]
    }

    /// All `up` fields, in port order.
    pub fn ups(&self) -> &[Field] {
        &self.ups
    }

    /// The `grp_j` health flag for shared-risk group `j` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `j` is 0 or exceeds the declared group count.
    pub fn grp(&self, j: u32) -> Field {
        self.grps[(j as usize).checked_sub(1).expect("groups are 1-based")]
    }

    /// All group fields, in group order.
    pub fn grps(&self) -> &[Field] {
        &self.grps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn up_fields_are_one_based() {
        let f = NetFields::new(3);
        assert_eq!(f.up(1).name(), "up1");
        assert_eq!(f.up(3).name(), "up3");
        assert_eq!(f.ups().len(), 3);
    }

    #[test]
    fn interning_is_shared() {
        let a = NetFields::new(2);
        let b = NetFields::new(2);
        assert_eq!(a.sw, b.sw);
        assert_eq!(a.up(2), b.up(2));
    }

    #[test]
    fn group_fields_are_one_based_and_shared() {
        let a = NetFields::with_groups(2, 3);
        let b = NetFields::with_groups(4, 2);
        assert_eq!(a.grp(1).name(), "grp1");
        assert_eq!(a.grp(3).name(), "grp3");
        assert_eq!(a.grps().len(), 3);
        assert_eq!(a.grp(2), b.grp(2));
        assert!(NetFields::new(2).grps().is_empty());
    }
}
