//! The canonical packet fields used by network models.
//!
//! Field interning order fixes the FDD variable order, which matters for
//! diagram size: `sw` is tested at the root of every per-switch `case`, so
//! it comes first, followed by `pt`, the detour flag, the failure budget,
//! the hop counter, and finally the per-port link-health flags.

use mcnetkat_core::Field;

/// The field handles shared by all model-building code.
#[derive(Clone, Debug)]
pub struct NetFields {
    /// Current switch (1-based; 0 = unset).
    pub sw: Field,
    /// Current port on the switch.
    pub pt: Field,
    /// F10₃,₅ detour flag.
    pub dt: Field,
    /// Remaining-failure budget counter for bounded failure models `f_k`.
    pub fl: Field,
    /// Hop counter for path-stretch queries (Figure 12 b/c).
    pub cnt: Field,
    /// `up_i` link-health flags, indexed by port number (1-based).
    ups: Vec<Field>,
}

impl NetFields {
    /// Interns the canonical fields for a topology with maximum degree
    /// `max_ports`.
    pub fn new(max_ports: usize) -> NetFields {
        NetFields {
            sw: Field::named("sw"),
            pt: Field::named("pt"),
            dt: Field::named("dt"),
            fl: Field::named("fl"),
            cnt: Field::named("cnt"),
            ups: (1..=max_ports)
                .map(|i| Field::named(&format!("up{i}")))
                .collect(),
        }
    }

    /// The `up_i` flag for port `i` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or exceeds the maximum degree.
    pub fn up(&self, i: u32) -> Field {
        self.ups[(i as usize).checked_sub(1).expect("ports are 1-based")]
    }

    /// All `up` fields, in port order.
    pub fn ups(&self) -> &[Field] {
        &self.ups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn up_fields_are_one_based() {
        let f = NetFields::new(3);
        assert_eq!(f.up(1).name(), "up1");
        assert_eq!(f.up(3).name(), "up3");
        assert_eq!(f.ups().len(), 3);
    }

    #[test]
    fn interning_is_shared() {
        let a = NetFields::new(2);
        let b = NetFields::new(2);
        assert_eq!(a.sw, b.sw);
        assert_eq!(a.up(2), b.up(2));
    }
}
