//! The canonical packet fields used by network models.
//!
//! Field interning order fixes the FDD variable order, which matters for
//! diagram size: `sw` is tested at the root of every per-switch `case`, so
//! it comes first. The rest of the order is a pluggable [`FieldOrder`]
//! policy; the default keeps the historical layout (`pt`, detour flag,
//! failure budget, hop counter, link-health flags, group flags).
//!
//! Since the fused per-switch pipeline eliminates every `up_i`/`grp_j`
//! scratch field before the global diagram is assembled, the order of the
//! health flags is now a second-order effect — it only shapes the small
//! per-switch scratch diagrams (see `perf_profile --order` for the
//! empirical sweep that picked the default).

use mcnetkat_core::Field;

/// Interning-order policy for the model fields — i.e. the FDD variable
/// order (DESIGN.md invariant 5: order changes diagram size, never
/// semantics).
///
/// Fields are interned process-wide at first use, so within one process
/// the *first* `NetFields` built for a name set fixes the order; the
/// namespaced constructor ([`NetFields::with_order_in`]) gives each
/// policy its own name space so `perf_profile --order` can sweep all
/// policies in a single run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FieldOrder {
    /// `sw, pt, dt, fl, cnt, up₁…, grp₁…` — the historical order and the
    /// empirical default: loop state (`dt`, `fl`, `cnt`) sits right under
    /// the switch/port dispatch, scratch fields last.
    #[default]
    Standard,
    /// `sw, pt, up₁…, grp₁…, dt, fl, cnt` — link state directly under the
    /// switch/port tests, loop bookkeeping last.
    SwitchMajor,
    /// `sw, pt, dt, fl, cnt, grp₁…, up₁…` — every group flag adjacent to
    /// (just before) the member `up` flags its draw derives.
    DrawAdjacent,
}

impl FieldOrder {
    /// Human-readable policy name (for tables and CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            FieldOrder::Standard => "standard",
            FieldOrder::SwitchMajor => "switch-major",
            FieldOrder::DrawAdjacent => "draw-adjacent",
        }
    }

    /// Parses a CLI spelling of a policy name.
    pub fn parse(s: &str) -> Option<FieldOrder> {
        match s {
            "standard" => Some(FieldOrder::Standard),
            "switch-major" => Some(FieldOrder::SwitchMajor),
            "draw-adjacent" => Some(FieldOrder::DrawAdjacent),
            _ => None,
        }
    }

    /// All policies, for sweeps.
    pub fn all() -> [FieldOrder; 3] {
        [
            FieldOrder::Standard,
            FieldOrder::SwitchMajor,
            FieldOrder::DrawAdjacent,
        ]
    }
}

/// The field handles shared by all model-building code.
#[derive(Clone, Debug)]
pub struct NetFields {
    /// Current switch (1-based; 0 = unset).
    pub sw: Field,
    /// Current port on the switch.
    pub pt: Field,
    /// F10₃,₅ detour flag.
    pub dt: Field,
    /// Remaining-failure budget counter for bounded failure models `f_k`.
    pub fl: Field,
    /// Hop counter for path-stretch queries (Figure 12 b/c).
    pub cnt: Field,
    /// `up_i` link-health flags, indexed by port number (1-based).
    ups: Vec<Field>,
    /// `grp_j` shared-risk-group health flags, indexed by group (1-based).
    /// Scratch state: drawn once per group per hop, consumed by the member
    /// links' `up_i` derivations, erased before the next hop, and projected
    /// out of the compiled diagram entirely (`Manager::forget`).
    grps: Vec<Field>,
}

impl NetFields {
    /// Interns the canonical fields for a topology with maximum degree
    /// `max_ports`.
    pub fn new(max_ports: usize) -> NetFields {
        NetFields::with_groups(max_ports, 0)
    }

    /// Interns the canonical fields plus `groups` shared-risk-group health
    /// flags (for models with a [`crate::FailureSpec`] that declares
    /// SRLGs), in the default [`FieldOrder`].
    pub fn with_groups(max_ports: usize, groups: usize) -> NetFields {
        NetFields::with_order(max_ports, groups, FieldOrder::default())
    }

    /// Interns the canonical fields in the given [`FieldOrder`].
    ///
    /// Field interning is process-wide and first-use-wins: this only
    /// controls the FDD variable order if the canonical names have not
    /// been interned yet (use [`NetFields::with_order_in`] to sweep
    /// several orders in one process).
    pub fn with_order(max_ports: usize, groups: usize, order: FieldOrder) -> NetFields {
        NetFields::with_order_in("", max_ports, groups, order)
    }

    /// Interns the fields inside a namespace (names become `ns::sw` etc.
    /// for a non-empty `ns`), in the given [`FieldOrder`]. A fresh
    /// namespace guarantees the interner hands out ascending ids in
    /// exactly the policy's order, no matter what was interned before.
    pub fn with_order_in(
        ns: &str,
        max_ports: usize,
        groups: usize,
        order: FieldOrder,
    ) -> NetFields {
        let name = |base: &str| -> Field {
            if ns.is_empty() {
                Field::named(base)
            } else {
                Field::named(&format!("{ns}::{base}"))
            }
        };
        // Every policy dispatches on sw first, then pt.
        let sw = name("sw");
        let pt = name("pt");
        let intern_ups =
            |n: usize| -> Vec<Field> { (1..=n).map(|i| name(&format!("up{i}"))).collect() };
        let intern_grps =
            |n: usize| -> Vec<Field> { (1..=n).map(|j| name(&format!("grp{j}"))).collect() };
        let (dt, fl, cnt, ups, grps) = match order {
            FieldOrder::Standard => {
                let dt = name("dt");
                let fl = name("fl");
                let cnt = name("cnt");
                let ups = intern_ups(max_ports);
                let grps = intern_grps(groups);
                (dt, fl, cnt, ups, grps)
            }
            FieldOrder::SwitchMajor => {
                let ups = intern_ups(max_ports);
                let grps = intern_grps(groups);
                let dt = name("dt");
                let fl = name("fl");
                let cnt = name("cnt");
                (dt, fl, cnt, ups, grps)
            }
            FieldOrder::DrawAdjacent => {
                let dt = name("dt");
                let fl = name("fl");
                let cnt = name("cnt");
                let grps = intern_grps(groups);
                let ups = intern_ups(max_ports);
                (dt, fl, cnt, ups, grps)
            }
        };
        NetFields {
            sw,
            pt,
            dt,
            fl,
            cnt,
            ups,
            grps,
        }
    }

    /// The `up_i` flag for port `i` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or exceeds the maximum degree.
    pub fn up(&self, i: u32) -> Field {
        self.ups[(i as usize).checked_sub(1).expect("ports are 1-based")]
    }

    /// All `up` fields, in port order.
    pub fn ups(&self) -> &[Field] {
        &self.ups
    }

    /// The `grp_j` health flag for shared-risk group `j` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `j` is 0 or exceeds the declared group count.
    pub fn grp(&self, j: u32) -> Field {
        self.grps[(j as usize).checked_sub(1).expect("groups are 1-based")]
    }

    /// All group fields, in group order.
    pub fn grps(&self) -> &[Field] {
        &self.grps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn up_fields_are_one_based() {
        let f = NetFields::new(3);
        assert_eq!(f.up(1).name(), "up1");
        assert_eq!(f.up(3).name(), "up3");
        assert_eq!(f.ups().len(), 3);
    }

    #[test]
    fn interning_is_shared() {
        let a = NetFields::new(2);
        let b = NetFields::new(2);
        assert_eq!(a.sw, b.sw);
        assert_eq!(a.up(2), b.up(2));
    }

    #[test]
    fn field_orders_intern_namespaced_policies() {
        // Each namespace gets its own interner slice, so the policy fully
        // controls relative order within it.
        let std = NetFields::with_order_in("t_std", 3, 2, FieldOrder::Standard);
        assert!(std.sw < std.pt && std.pt < std.dt);
        assert!(std.cnt < std.up(1) && std.up(3) < std.grp(1));
        let sm = NetFields::with_order_in("t_sm", 3, 2, FieldOrder::SwitchMajor);
        assert!(sm.pt < sm.up(1) && sm.up(3) < sm.grp(1));
        assert!(sm.grp(2) < sm.dt && sm.dt < sm.fl && sm.fl < sm.cnt);
        let da = NetFields::with_order_in("t_da", 3, 2, FieldOrder::DrawAdjacent);
        assert!(da.cnt < da.grp(1) && da.grp(2) < da.up(1));
        // Policy names round-trip through the CLI parser.
        for order in FieldOrder::all() {
            assert_eq!(FieldOrder::parse(order.name()), Some(order));
        }
        assert_eq!(FieldOrder::parse("nope"), None);
    }

    #[test]
    fn group_fields_are_one_based_and_shared() {
        let a = NetFields::with_groups(2, 3);
        let b = NetFields::with_groups(4, 2);
        assert_eq!(a.grp(1).name(), "grp1");
        assert_eq!(a.grp(3).name(), "grp3");
        assert_eq!(a.grps().len(), 3);
        assert_eq!(a.grp(2), b.grp(2));
        assert!(NetFields::new(2).grps().is_empty());
    }
}
