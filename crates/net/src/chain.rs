//! The Figure 9/10 benchmark: reliability of a simple routing scheme on
//! the chain-of-diamonds topology, expressed as one ProbNetKAT program
//! that all backends (native, PRISM-translation, exact-inference
//! baseline) analyse.

use crate::NetFields;
use mcnetkat_core::{Packet, Pred, Prog};
use mcnetkat_num::Ratio;
use mcnetkat_topo::{chain, NodeId, ShortestPaths, Topology};

/// A fully assembled chain benchmark instance.
#[derive(Clone, Debug)]
pub struct ChainBenchmark {
    /// The topology (4k switches plus the two hosts).
    pub topo: Topology,
    /// Field handles.
    pub fields: NetFields,
    /// The complete model program.
    pub program: Prog,
    /// The ingress packet (at the first switch).
    pub input: Packet,
    /// Delivery predicate: the packet reached the last switch.
    pub accept: Pred,
    /// Destination switch.
    pub dst: NodeId,
}

/// Builds the `k`-diamond chain benchmark with per-diamond failure
/// probability `pfail` (the paper uses `pfail = 1/1000`).
///
/// Within each diamond, `S0` forwards with equal probability to `S1` and
/// `S2`; `S2`'s link to `S3` fails with probability `pfail`, dropping the
/// packet ("S2 drops the packet if the link to S3 fails").
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn chain_benchmark(k: usize, pfail: Ratio) -> ChainBenchmark {
    let topo = chain(k);
    let fields = NetFields::new(topo.max_degree());
    let sw = fields.sw;
    let pt = fields.pt;
    let dst = topo.find(&format!("S{}", 4 * k - 1)).unwrap();
    let sp = ShortestPaths::towards(&topo, dst);

    // Per-switch forwarding: uniform over shortest-path ports; the fragile
    // S2 → S3 hop is guarded by a freshly drawn `up` flag.
    let mut branches = Vec::new();
    let mut topo_branches = Vec::new();
    for &s in topo.switches() {
        let sv = topo.sw_value(s);
        let name = topo.info(s).name.clone();
        let is_lower = name
            .strip_prefix('S')
            .and_then(|ix| ix.parse::<usize>().ok())
            .is_some_and(|ix| ix % 4 == 2);
        let ports = sp.next_hop_ports_in(&topo, s);
        // Exclude the host-facing egress port of the last switch.
        let ports: Vec<u32> = ports
            .into_iter()
            .filter(|&p| {
                topo.neighbor(s, p)
                    .is_some_and(|(peer, _)| topo.info(peer).level != mcnetkat_topo::Level::Host)
            })
            .collect();
        if s == dst {
            branches.push((Pred::test(sw, sv), Prog::drop()));
            continue;
        }
        let forward = if ports.is_empty() {
            Prog::drop()
        } else {
            Prog::uniform(ports.iter().map(|&p| Prog::assign(pt, p)).collect())
        };
        let policy = if is_lower {
            // Draw the fragile link's health; the topology tests it.
            let port = ports[0];
            let draw = Prog::choice2(
                Prog::assign(fields.up(port), 0),
                pfail.clone(),
                Prog::assign(fields.up(port), 1),
            );
            draw.seq(forward)
        } else {
            forward
        };
        branches.push((Pred::test(sw, sv), policy));

        // Topology edges out of this switch.
        for pp in topo.ports(s) {
            if topo.info(pp.peer).level == mcnetkat_topo::Level::Host {
                continue;
            }
            let here = Pred::test(sw, sv).and(Pred::test(pt, pp.port));
            let mv = Prog::assign(sw, topo.sw_value(pp.peer)).seq(Prog::assign(pt, pp.peer_port));
            let step = if is_lower && pp.port == ports[0] {
                Prog::ite(Pred::test(fields.up(pp.port), 1), mv, Prog::drop())
                    .seq(Prog::assign(fields.up(pp.port), 0))
            } else {
                mv
            };
            topo_branches.push((here, step));
        }
    }
    let policy = Prog::case(branches, Prog::drop());
    let topo_prog = Prog::case(topo_branches, Prog::drop());

    let first = topo.find("S0").unwrap();
    let ingress = Pred::test(sw, topo.sw_value(first)).and(Pred::test(pt, 0));
    let guard = Pred::test(sw, topo.sw_value(dst)).not();
    let body = policy.seq(topo_prog);
    let mut program = Prog::filter(ingress)
        .seq(Prog::do_while(body, guard))
        .seq(Prog::assign(pt, 0));
    for i in (1..=topo.max_degree() as u32).rev() {
        program = Prog::local(fields.up(i), 1, program);
    }

    let input = Packet::new().with(sw, topo.sw_value(first));
    let accept = Pred::test(sw, topo.sw_value(dst));
    ChainBenchmark {
        topo,
        fields,
        program,
        input,
        accept,
        dst,
    }
}

/// The exact closed-form answer: each diamond delivers with probability
/// `1 - pfail/2`, independently.
pub fn chain_expected_delivery(k: usize, pfail: &Ratio) -> Ratio {
    let per_diamond = Ratio::one() - &(pfail / &Ratio::from_integer(2));
    per_diamond.pow(k as u32)
}

/// Convenience: an equivalent [`NetworkModel`](crate::NetworkModel)-free delivery query via the
/// native backend.
///
/// # Errors
///
/// Propagates compile errors from the FDD backend.
pub fn chain_delivery_native(
    bench: &ChainBenchmark,
    mgr: &mcnetkat_fdd::Manager,
) -> Result<Ratio, mcnetkat_fdd::CompileError> {
    let fdd = mgr.compile(&bench.program)?;
    Ok(mgr.prob_matching(fdd, &bench.input, &bench.accept))
}

// Re-exported for the docs: the chain benchmark complements the
// fabric-level `NetworkModel`s used for FatTrees.
impl ChainBenchmark {
    /// Whether this instance's program stays in the guarded fragment.
    pub fn is_guarded(&self) -> bool {
        self.program.is_guarded()
    }

    /// A fabric-style model over the same topology is *not* provided: the
    /// chain uses its own bespoke routing per Figure 9.
    pub fn diamonds(&self) -> usize {
        self.topo.switches().len() / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnetkat_fdd::Manager;

    #[test]
    fn single_diamond_delivery_probability() {
        let pfail = Ratio::new(1, 10);
        let bench = chain_benchmark(1, pfail.clone());
        let mgr = Manager::new();
        let p = chain_delivery_native(&bench, &mgr).unwrap();
        // Upper path always works (prob ½); lower works w.p. 1 - pfail.
        assert_eq!(p, chain_expected_delivery(1, &pfail));
        assert_eq!(p, Ratio::new(19, 20));
    }

    #[test]
    fn deliveries_compose_across_diamonds() {
        let pfail = Ratio::new(1, 4);
        let mgr = Manager::new();
        for k in 1..=3 {
            let bench = chain_benchmark(k, pfail.clone());
            let p = chain_delivery_native(&bench, &mgr).unwrap();
            assert_eq!(p, chain_expected_delivery(k, &pfail), "k = {k}");
        }
    }

    #[test]
    fn agrees_with_prism_backend() {
        let pfail = Ratio::new(1, 8);
        let bench = chain_benchmark(2, pfail.clone());
        let auto = mcnetkat_prism::translate(&bench.program).unwrap();
        let r = mcnetkat_prism::check_reachability(
            &auto,
            &bench.input,
            &bench.accept,
            mcnetkat_prism::McMode::Exact,
        )
        .unwrap();
        assert_eq!(r.exact, Some(chain_expected_delivery(2, &pfail)));
    }

    #[test]
    fn agrees_with_baseline() {
        let pfail = Ratio::new(1, 8);
        let bench = chain_benchmark(2, pfail.clone());
        let r = mcnetkat_baseline::ExactInference::new(64).query(
            &bench.program,
            &bench.input,
            &bench.accept,
        );
        assert!(r.is_exact());
        assert_eq!(r.probability, chain_expected_delivery(2, &pfail));
    }
}
