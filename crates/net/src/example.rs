//! The running example of §2: a three-switch triangle with a naive and a
//! fault-tolerant forwarding scheme under failure models `f0`, `f1`, `f2`.
//!
//! This module transcribes the paper's programs literally, so tests can
//! check the numbers the paper quotes (80% vs 96% delivery under `f2`,
//! 1-resilience of the fault-tolerant scheme under `f1`, …).

use crate::NetFields;
use mcnetkat_core::{Pred, Prog};
use mcnetkat_num::Ratio;

/// All the programs of the §2 running example.
#[derive(Clone, Debug)]
pub struct RunningExample {
    /// Field handles (`up2` and `up3` are the two fragile links of
    /// switch 1).
    pub fields: NetFields,
    /// `in ≜ sw=1 ; pt=1`.
    pub ingress: Pred,
    /// `out ≜ sw=2 ; pt=2`.
    pub egress: Pred,
    /// The naive forwarding policy `p`.
    pub naive: Prog,
    /// The fault-tolerant policy `p̂`.
    pub resilient: Prog,
    /// The failure-aware topology `t̂`.
    pub topology: Prog,
    /// `f0`: no failures.
    pub f0: Prog,
    /// `f1`: at most one of the two links fails, each with probability ¼.
    pub f1: Prog,
    /// `f2`: both links fail independently with probability ⅕.
    pub f2: Prog,
}

/// Builds the §2 example.
pub fn running_example() -> RunningExample {
    let fields = NetFields::new(3);
    let sw = fields.sw;
    let pt = fields.pt;
    let up2 = fields.up(2);
    let up3 = fields.up(3);

    let ingress = Pred::test(sw, 1).and(Pred::test(pt, 1));
    let egress = Pred::test(sw, 2).and(Pred::test(pt, 2));

    // p ≜ if sw=1 then pt<-2 else if sw=2 then pt<-2 else drop
    let naive = Prog::ite(
        Pred::test(sw, 1),
        Prog::assign(pt, 2),
        Prog::ite(Pred::test(sw, 2), Prog::assign(pt, 2), Prog::drop()),
    );

    // p̂₁ ≜ if up2=1 then pt<-2 else pt<-3 ; p̂₂ = p̂₃ = pt<-2
    let p1 = Prog::ite(Pred::test(up2, 1), Prog::assign(pt, 2), Prog::assign(pt, 3));
    let resilient = Prog::ite(
        Pred::test(sw, 1),
        p1,
        Prog::ite(
            Pred::test(sw, 2).or(Pred::test(sw, 3)),
            Prog::assign(pt, 2),
            Prog::drop(),
        ),
    );

    // t̂: links 1:2 → 2:1 (guarded by up2), 1:3 → 3:1 (guarded by up3),
    // and 3:2 → 2:3.
    let topology = Prog::case(
        vec![
            (
                Pred::test(sw, 1)
                    .and(Pred::test(pt, 2))
                    .and(Pred::test(up2, 1)),
                Prog::assign(sw, 2).seq(Prog::assign(pt, 1)),
            ),
            (
                Pred::test(sw, 1)
                    .and(Pred::test(pt, 3))
                    .and(Pred::test(up3, 1)),
                Prog::assign(sw, 3).seq(Prog::assign(pt, 1)),
            ),
            (
                Pred::test(sw, 3).and(Pred::test(pt, 2)),
                Prog::assign(sw, 2).seq(Prog::assign(pt, 3)),
            ),
        ],
        Prog::drop(),
    );

    // f0 ≜ up2<-1 ; up3<-1
    let f0 = Prog::assign(up2, 1).seq(Prog::assign(up3, 1));

    // f1 ≜ ⊕ { f0 @ ½ , (up2<-0 ; up3<-1) @ ¼ , (up2<-1 ; up3<-0) @ ¼ }
    let f1 = Prog::choice(vec![
        (f0.clone(), Ratio::new(1, 2)),
        (
            Prog::assign(up2, 0).seq(Prog::assign(up3, 1)),
            Ratio::new(1, 4),
        ),
        (
            Prog::assign(up2, 1).seq(Prog::assign(up3, 0)),
            Ratio::new(1, 4),
        ),
    ]);

    // f2 ≜ (up2<-1 ⊕.8 up2<-0) ; (up3<-1 ⊕.8 up3<-0)
    let f2 = Prog::choice2(Prog::assign(up2, 1), Ratio::new(4, 5), Prog::assign(up2, 0)).seq(
        Prog::choice2(Prog::assign(up3, 1), Ratio::new(4, 5), Prog::assign(up3, 0)),
    );

    RunningExample {
        fields,
        ingress,
        egress,
        naive,
        resilient,
        topology,
        f0,
        f1,
        f2,
    }
}

impl RunningExample {
    /// `M̂(p, t̂, f) ≜ var up2<-1 in var up3<-1 in M((f;p), t̂)` where
    /// `M(p, t) ≜ in ; p ; while ¬out do (t ; p)`.
    pub fn model(&self, policy: &Prog, failure: &Prog) -> Prog {
        let fp = failure.clone().seq(policy.clone());
        let loop_body = self.topology.clone().seq(fp.clone());
        let m = Prog::filter(self.ingress.clone())
            .seq(fp)
            .seq(Prog::while_(self.egress.clone().not(), loop_body));
        Prog::local(self.fields.up(2), 1, Prog::local(self.fields.up(3), 1, m))
    }

    /// The specification `in ; sw<-2 ; pt<-2`, wrapped in the same local
    /// declarations as the models.
    pub fn teleport(&self) -> Prog {
        let inner = Prog::filter(self.ingress.clone())
            .seq(Prog::assign(self.fields.sw, 2))
            .seq(Prog::assign(self.fields.pt, 2));
        Prog::local(
            self.fields.up(2),
            1,
            Prog::local(self.fields.up(3), 1, inner),
        )
    }

    /// The ingress packet `{sw=1, pt=1}`.
    pub fn ingress_packet(&self) -> mcnetkat_core::Packet {
        mcnetkat_core::Packet::new()
            .with(self.fields.sw, 1)
            .with(self.fields.pt, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnetkat_fdd::Manager;

    #[test]
    fn naive_scheme_correct_without_failures() {
        let ex = running_example();
        let mgr = Manager::new();
        let model = mgr.compile(&ex.model(&ex.naive, &ex.f0)).unwrap();
        let tele = mgr.compile(&ex.teleport()).unwrap();
        assert!(mgr.equiv(model, tele));
    }

    #[test]
    fn resilient_scheme_is_one_resilient() {
        let ex = running_example();
        let mgr = Manager::new();
        // M̂(p̂, t̂, f1) ≡ teleport, but M̂(p, t̂, f1) ̸≡ teleport.
        let good = mgr.compile(&ex.model(&ex.resilient, &ex.f1)).unwrap();
        let bad = mgr.compile(&ex.model(&ex.naive, &ex.f1)).unwrap();
        let tele = mgr.compile(&ex.teleport()).unwrap();
        assert!(mgr.equiv(good, tele));
        assert!(!mgr.equiv(bad, tele));
    }

    #[test]
    fn resilient_also_handles_f0() {
        let ex = running_example();
        let mgr = Manager::new();
        let model = mgr.compile(&ex.model(&ex.resilient, &ex.f0)).unwrap();
        let tele = mgr.compile(&ex.teleport()).unwrap();
        assert!(mgr.equiv(model, tele));
    }

    #[test]
    fn delivery_probabilities_match_the_paper() {
        // "80% for the naive scheme and 96% for the resilient scheme."
        let ex = running_example();
        let mgr = Manager::new();
        let naive = mgr.compile(&ex.model(&ex.naive, &ex.f2)).unwrap();
        let resil = mgr.compile(&ex.model(&ex.resilient, &ex.f2)).unwrap();
        let pk = ex.ingress_packet();
        assert_eq!(mgr.prob_delivery(naive, &pk), Ratio::new(4, 5));
        assert_eq!(mgr.prob_delivery(resil, &pk), Ratio::new(24, 25));
    }

    #[test]
    fn refinement_chain_under_f2() {
        // M̂(p, t̂, f2) < M̂(p̂, t̂, f2) — the resilient scheme refines the
        // naive one.
        let ex = running_example();
        let mgr = Manager::new();
        let naive = mgr.compile(&ex.model(&ex.naive, &ex.f2)).unwrap();
        let resil = mgr.compile(&ex.model(&ex.resilient, &ex.f2)).unwrap();
        assert!(mgr.less(naive, resil));
    }

    #[test]
    fn resilient_under_f2_not_fully_resilient() {
        let ex = running_example();
        let mgr = Manager::new();
        let resil = mgr.compile(&ex.model(&ex.resilient, &ex.f2)).unwrap();
        let tele = mgr.compile(&ex.teleport()).unwrap();
        assert!(!mgr.equiv(resil, tele));
        assert!(mgr.less(resil, tele));
    }
}
