//! High-level verification queries on compiled network models: delivery
//! probability, resilience (equivalence with teleport), refinement between
//! schemes, and hop-count statistics (Figure 12).
//!
//! All queries are failure-model agnostic: the Figure 11b k-resilience
//! check and the refinement order run unchanged under the correlated
//! shared-risk-group specs of [`crate::FailureSpec`] — the compiled
//! diagram carries no group scratch state (see
//! [`crate::NetworkModel::compile`]).

use crate::NetworkModel;
use mcnetkat_core::Packet;
use mcnetkat_fdd::{CompileError, CompileOptions, Fdd, Manager};
use mcnetkat_num::Ratio;
use mcnetkat_topo::NodeId;

/// A compiled model plus the manager that owns its diagram.
pub struct Queries<'a> {
    mgr: &'a Manager,
    model: &'a NetworkModel,
    fdd: Fdd,
}

/// Hop-count statistics for one ingress (Figure 12 b/c).
#[derive(Clone, Debug)]
pub struct HopStats {
    /// `P(delivered ∧ hops ≤ x)` for each x up to the cap.
    pub cdf: Vec<(u32, f64)>,
    /// Overall delivery probability.
    pub delivery: f64,
    /// `E[hops | delivered]`.
    pub expected_hops: f64,
}

impl<'a> Queries<'a> {
    /// Compiles `model` and wraps the result.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from compilation.
    pub fn new(mgr: &'a Manager, model: &'a NetworkModel) -> Result<Queries<'a>, CompileError> {
        Ok(Queries {
            mgr,
            model,
            fdd: model.compile(mgr)?,
        })
    }

    /// Compiles with explicit options.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from compilation.
    pub fn with_options(
        mgr: &'a Manager,
        model: &'a NetworkModel,
        opts: &CompileOptions,
    ) -> Result<Queries<'a>, CompileError> {
        Ok(Queries {
            mgr,
            model,
            fdd: model.compile_with(mgr, opts)?,
        })
    }

    /// Wraps an externally compiled diagram (e.g. from the parallel
    /// backend).
    pub fn from_fdd(mgr: &'a Manager, model: &'a NetworkModel, fdd: Fdd) -> Queries<'a> {
        Queries { mgr, model, fdd }
    }

    /// The compiled diagram.
    pub fn fdd(&self) -> Fdd {
        self.fdd
    }

    /// The ingress packet for source switch `src`.
    pub fn ingress_packet(&self, src: NodeId) -> Packet {
        Packet::new().with(self.model.fields.sw, self.model.topo.sw_value(src))
    }

    /// Delivery probability from `src`.
    pub fn delivery_prob(&self, src: NodeId) -> Ratio {
        self.mgr.prob_delivery(self.fdd, &self.ingress_packet(src))
    }

    /// Minimum delivery probability over all ingresses — the worst-case
    /// SLA number.
    pub fn min_delivery(&self) -> Ratio {
        self.model
            .ingresses()
            .into_iter()
            .map(|s| self.delivery_prob(s))
            .min()
            .unwrap_or_else(Ratio::zero)
    }

    /// Whether the model is equivalent to teleportation — i.e. delivers
    /// every packet with probability 1 (the resilience check of
    /// Figure 11b).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from compiling the specification.
    pub fn equiv_teleport(&self) -> Result<bool, CompileError> {
        let tele = self.mgr.compile(&self.model.teleport())?;
        Ok(self.mgr.equiv(self.fdd, tele))
    }

    /// Whether `self`'s scheme is refined by `other` (`self ≤ other`):
    /// `other` delivers every packet with at least `self`'s probability
    /// (Figure 11c).
    pub fn refines(&self, other: &Queries<'_>) -> bool {
        assert!(
            std::ptr::eq(self.mgr, other.mgr),
            "refinement requires diagrams from the same manager"
        );
        self.mgr.less_eq(self.fdd, other.fdd)
    }

    /// Strict refinement `self < other`.
    pub fn strictly_refines(&self, other: &Queries<'_>) -> bool {
        self.refines(other) && !other.refines(self)
    }

    /// Resilience check with a float tolerance, for models whose loops
    /// were solved by the 64-bit-float backend.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from compiling the specification.
    pub fn equiv_teleport_within(&self, eps: f64) -> Result<bool, CompileError> {
        let tele = self.mgr.compile(&self.model.teleport())?;
        Ok(self.mgr.equiv_within(self.fdd, tele, eps))
    }

    /// Refinement with a float tolerance (see
    /// [`Queries::equiv_teleport_within`]).
    pub fn refines_within(&self, other: &Queries<'_>, eps: f64) -> bool {
        self.mgr.less_eq_within(self.fdd, other.fdd, eps)
    }

    /// Mean delivery probability over all ingresses (packets enter the
    /// fabric uniformly at random, as in the paper's aggregate plots).
    pub fn delivery_avg(&self) -> f64 {
        let sources = self.model.ingresses();
        let n = sources.len() as f64;
        sources
            .into_iter()
            .map(|s| self.delivery_prob(s).to_f64())
            .sum::<f64>()
            / n
    }

    /// Hop-count statistics from `src`. The model must have been built
    /// with [`NetworkModel::with_hop_cap`].
    ///
    /// # Panics
    ///
    /// Panics if the model has no hop counter.
    pub fn hop_stats(&self, src: NodeId) -> HopStats {
        self.hop_stats_of(&[src])
    }

    /// Hop-count statistics aggregated over all ingresses, weighting each
    /// source uniformly — the view of Figure 12(b)/(c), where delivered
    /// traffic shifts towards short intra-pod paths as failures increase.
    ///
    /// # Panics
    ///
    /// Panics if the model has no hop counter.
    pub fn hop_stats_avg(&self) -> HopStats {
        self.hop_stats_of(&self.model.ingresses())
    }

    fn hop_stats_of(&self, sources: &[NodeId]) -> HopStats {
        let cap = self
            .model
            .hop_cap
            .expect("hop_stats requires a model with a hop cap");
        let cnt = self.model.fields.cnt;
        let weight = 1.0 / sources.len() as f64;
        let mut by_hops = vec![0.0f64; cap as usize + 1];
        let mut delivery = 0.0f64;
        for &src in sources {
            let out = self.mgr.output_dist(self.fdd, &self.ingress_packet(src));
            for (o, r) in out {
                if let Some(pk) = o {
                    let hops = pk.get(cnt).min(cap) as usize;
                    by_hops[hops] += weight * r.to_f64();
                    delivery += weight * r.to_f64();
                }
            }
        }
        let mut cdf = Vec::with_capacity(cap as usize + 1);
        let mut acc = 0.0;
        for (hops, p) in by_hops.iter().enumerate() {
            acc += p;
            cdf.push((hops as u32, acc));
        }
        let expected_hops = if delivery > 0.0 {
            by_hops
                .iter()
                .enumerate()
                .map(|(h, p)| h as f64 * p)
                .sum::<f64>()
                / delivery
        } else {
            0.0
        };
        HopStats {
            cdf,
            delivery,
            expected_hops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailureModel, RoutingScheme};
    use mcnetkat_topo::ab_fattree;

    fn model(scheme: RoutingScheme, failure: FailureModel) -> NetworkModel {
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        NetworkModel::new(topo, dst, scheme, failure)
    }

    #[test]
    fn teleport_equivalence_without_failures() {
        let mgr = Manager::new();
        let m = model(RoutingScheme::F10_3, FailureModel::none());
        let q = Queries::new(&mgr, &m).unwrap();
        assert!(q.equiv_teleport().unwrap());
        assert_eq!(q.min_delivery(), Ratio::one());
    }

    #[test]
    fn ecmp_not_one_resilient() {
        let mgr = Manager::new();
        let m = model(
            RoutingScheme::Ecmp,
            FailureModel::bounded(Ratio::new(1, 100), 1),
        );
        let q = Queries::new(&mgr, &m).unwrap();
        assert!(!q.equiv_teleport().unwrap());
    }

    #[test]
    fn f103_is_one_resilient() {
        let mgr = Manager::new();
        let m = model(
            RoutingScheme::F10_3,
            FailureModel::bounded(Ratio::new(1, 100), 1),
        );
        let q = Queries::new(&mgr, &m).unwrap();
        assert!(q.equiv_teleport().unwrap());
    }

    #[test]
    fn resilience_table_runs_under_correlated_models() {
        // The Figure 11b check under a *correlated* bounded spec: with at
        // most one failure event, F10_3 survives any single-link group
        // but not a group spanning an aggregation switch's line card
        // towards the destination edge.
        use crate::{FailureSpec, Srlg};
        let mgr = Manager::new();
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        let agg = topo.find("agg0_0").unwrap();
        let pr = Ratio::new(1, 100);
        let single = FailureSpec::bounded(Ratio::zero(), 1).with_group(Srlg::new(
            "one-link",
            pr.clone(),
            vec![(topo.sw_value(agg), 1)],
        ));
        let m = NetworkModel::new(topo.clone(), dst, RoutingScheme::F10_3, single);
        let q = Queries::new(&mgr, &m).unwrap();
        assert!(q.equiv_teleport().unwrap());
        // A core's whole line card in one group: rerouting candidates die
        // with the primary, so 1-resilience is lost.
        let core = topo.find("core0").unwrap();
        let card =
            FailureSpec::bounded(Ratio::zero(), 1).with_group(Srlg::down_links_of(&topo, core, pr));
        let m = NetworkModel::new(topo.clone(), dst, RoutingScheme::F10_3, card);
        let q = Queries::new(&mgr, &m).unwrap();
        assert!(!q.equiv_teleport().unwrap());
        assert!(q.min_delivery() < Ratio::one());
    }

    #[test]
    fn refinement_between_schemes() {
        let mgr = Manager::new();
        let failure = FailureModel::independent(Ratio::new(1, 8));
        let me = model(RoutingScheme::Ecmp, failure.clone());
        let m3 = model(RoutingScheme::F10_3, failure);
        let qe = Queries::new(&mgr, &me).unwrap();
        let q3 = Queries::new(&mgr, &m3).unwrap();
        assert!(qe.refines(&q3));
        assert!(qe.strictly_refines(&q3));
        assert!(!q3.refines(&qe));
    }

    #[test]
    fn hop_stats_shape() {
        let mgr = Manager::new();
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        let m =
            NetworkModel::new(topo, dst, RoutingScheme::Ecmp, FailureModel::none()).with_hop_cap(8);
        let q = Queries::new(&mgr, &m).unwrap();
        let src = m.topo.find("edge1_0").unwrap();
        let stats = q.hop_stats(src);
        assert!((stats.delivery - 1.0).abs() < 1e-9);
        // Cross-pod shortest paths are 4 hops.
        assert!((stats.expected_hops - 4.0).abs() < 1e-9);
        assert!(stats.cdf[3].1 < 1e-9);
        assert!((stats.cdf[4].1 - 1.0).abs() < 1e-9);
    }
}
