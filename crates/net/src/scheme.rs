//! Per-switch routing programs: ECMP (the paper's F10₀ approximation),
//! F10₃ (3-hop rerouting), and F10₃,₅ (3-hop + 5-hop rerouting), §7.
//!
//! Every scheme picks a port by priority: the first *live* candidate set
//! wins, and the port is chosen uniformly within it (modelling ECMP
//! hashing). Liveness is read from the `up_i` flags drawn by the failure
//! model at the start of the hop; following the paper, only downward links
//! are failure-prone, so upward candidates need no liveness tests.

use crate::NetFields;
use mcnetkat_core::{Pred, Prog};
use mcnetkat_topo::{Level, NodeId, ShortestPaths, Topology};

/// The routing scheme running on every switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoutingScheme {
    /// F10₀: random shortest-path forwarding (ECMP approximation);
    /// no failure awareness on the downward path.
    Ecmp,
    /// F10₃: ECMP plus 3-hop rerouting through opposite-type aggregation
    /// switches; dead-end aggregation switches bounce packets back up.
    F10_3,
    /// F10₃,₅: F10₃ plus 5-hop rerouting through same-type subtrees, using
    /// a detour flag carried by the packet.
    F10_3_5,
}

impl RoutingScheme {
    /// Human-readable name matching the paper's notation.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingScheme::Ecmp => "F10_0",
            RoutingScheme::F10_3 => "F10_3",
            RoutingScheme::F10_3_5 => "F10_3,5",
        }
    }

    /// Whether this scheme reads the `up` flags when choosing ports.
    pub fn is_failure_aware(&self) -> bool {
        !matches!(self, RoutingScheme::Ecmp)
    }

    /// Whether this scheme uses the detour flag `dt`.
    pub fn uses_detour_flag(&self) -> bool {
        matches!(self, RoutingScheme::F10_3_5)
    }
}

/// A candidate port set with liveness information.
#[derive(Clone, Debug)]
pub(crate) struct Candidates {
    /// Ports requiring a live `up` flag.
    pub prone: Vec<u32>,
    /// Ports that cannot fail (upward links).
    pub safe: Vec<u32>,
    /// Program to run before forwarding (e.g. set/clear the detour flag).
    pub prelude: Prog,
}

impl Candidates {
    fn prone(ports: Vec<u32>) -> Candidates {
        Candidates {
            prone: ports,
            safe: Vec::new(),
            prelude: Prog::skip(),
        }
    }

    fn safe(ports: Vec<u32>) -> Candidates {
        Candidates {
            prone: Vec::new(),
            safe: ports,
            prelude: Prog::skip(),
        }
    }

    fn with_prelude(mut self, prelude: Prog) -> Candidates {
        self.prelude = prelude;
        self
    }
}

/// The ports of `s` that point *down* the fabric (these are the
/// failure-prone links of §7's model). Exposed so failure specifications
/// — e.g. custom [`crate::Srlg`] groups — can be built against a topology
/// before any [`crate::NetworkModel`] exists.
pub fn down_ports(topo: &Topology, s: NodeId) -> Vec<u32> {
    let my_level = topo.info(s).level;
    topo.ports(s)
        .iter()
        .filter(|pp| {
            let peer = topo.info(pp.peer).level;
            matches!(
                (my_level, peer),
                (Level::Core, Level::Agg) | (Level::Agg, Level::Edge)
            )
        })
        .map(|pp| pp.port)
        .collect()
}

fn up_ports(topo: &Topology, s: NodeId) -> Vec<u32> {
    let my_level = topo.info(s).level;
    topo.ports(s)
        .iter()
        .filter(|pp| {
            let peer = topo.info(pp.peer).level;
            matches!(
                (my_level, peer),
                (Level::Edge, Level::Agg) | (Level::Agg, Level::Core)
            )
        })
        .map(|pp| pp.port)
        .collect()
}

/// Splits the ECMP next-hop ports of `s` into failure-prone and safe.
fn ecmp_candidates(topo: &Topology, sp: &ShortestPaths, s: NodeId) -> Candidates {
    let down = down_ports(topo, s);
    let mut prone = Vec::new();
    let mut safe = Vec::new();
    for port in sp.next_hop_ports_in(topo, s) {
        if down.contains(&port) {
            prone.push(port);
        } else {
            safe.push(port);
        }
    }
    Candidates {
        prone,
        safe,
        prelude: Prog::skip(),
    }
}

/// Builds the forwarding program for switch `s` under the given scheme.
///
/// The destination switch itself gets `drop` (it is never executed: the
/// surrounding loop exits first, like "switch 3" in the §2 example).
pub(crate) fn switch_program(
    scheme: RoutingScheme,
    fields: &NetFields,
    topo: &Topology,
    sp: &ShortestPaths,
    s: NodeId,
    dst: NodeId,
) -> Prog {
    if s == dst {
        return Prog::drop();
    }
    let ecmp = ecmp_candidates(topo, sp, s);
    match scheme {
        RoutingScheme::Ecmp => {
            // Failure-oblivious: uniform over all shortest-path ports
            // regardless of health (dead links drop in the topology
            // program).
            let all: Vec<u32> = ecmp.safe.iter().chain(ecmp.prone.iter()).copied().collect();
            if all.is_empty() {
                Prog::drop()
            } else {
                forward_uniform(fields, &all)
            }
        }
        RoutingScheme::F10_3 => {
            let sets = candidate_sets(scheme, fields, topo, sp, s, dst);
            priority_choose(fields, &sets, Prog::drop())
        }
        RoutingScheme::F10_3_5 => {
            let normal = candidate_sets(scheme, fields, topo, sp, s, dst);
            let normal_prog = priority_choose(fields, &normal, Prog::drop());
            if topo.info(s).level == Level::Agg && topo.info(s).pod != topo.info(dst).pod {
                // A detoured packet in a foreign pod travels *down* to an
                // edge switch (5-hop detour mid-leg); if no down link is
                // live it bounces up and retries.
                let down = Candidates::prone(down_ports(topo, s));
                let up = Candidates::safe(up_ports(topo, s));
                let detour_prog = priority_choose(fields, &[down, up], Prog::drop());
                Prog::ite(Pred::test(fields.dt, 1), detour_prog, normal_prog)
            } else if topo.info(s).level == Level::Edge {
                // Edges clear the detour flag: the packet resumes normal
                // (upward) routing from here.
                Prog::assign(fields.dt, 0).seq(normal_prog)
            } else {
                normal_prog
            }
        }
    }
}

/// The priority-ordered candidate sets of F10 routing for switch `s`.
fn candidate_sets(
    scheme: RoutingScheme,
    fields: &NetFields,
    topo: &Topology,
    sp: &ShortestPaths,
    s: NodeId,
    dst: NodeId,
) -> Vec<Candidates> {
    let mut sets = vec![ecmp_candidates(topo, sp, s)];
    match topo.info(s).level {
        Level::Core => {
            // 3-hop rerouting: aggregation switches of the *opposite* type.
            let dst_pod = topo.info(dst).pod;
            let dst_agg_type = dst_pod.and_then(|_| {
                topo.ports(s)
                    .iter()
                    .find(|pp| topo.info(pp.peer).pod == dst_pod)
                    .and_then(|pp| topo.info(pp.peer).pod_type)
            });
            let mut opposite = Vec::new();
            let mut same = Vec::new();
            for pp in topo.ports(s) {
                let info = topo.info(pp.peer);
                if info.pod == dst_pod {
                    continue; // the normal path, already in the ECMP set
                }
                match (info.pod_type, dst_agg_type) {
                    (Some(a), Some(b)) if a != b => opposite.push(pp.port),
                    (Some(_), Some(_)) => same.push(pp.port),
                    _ => {}
                }
            }
            sets.push(Candidates::prone(opposite));
            if scheme == RoutingScheme::F10_3_5 {
                // 5-hop rerouting through a same-type subtree: mark the
                // packet so foreign-pod aggregation switches send it down.
                sets.push(Candidates::prone(same).with_prelude(Prog::assign(fields.dt, 1)));
            }
        }
        Level::Agg => {
            // A dead-end aggregation switch bounces the packet back up to
            // the core layer (upward links are failure-free).
            sets.push(Candidates::safe(up_ports(topo, s)));
        }
        _ => {}
    }
    sets
}

/// `pt <- uniform(ports)`.
fn forward_uniform(fields: &NetFields, ports: &[u32]) -> Prog {
    Prog::uniform(ports.iter().map(|&p| Prog::assign(fields.pt, p)).collect())
}

/// Chooses uniformly among the live ports of the first candidate set with
/// at least one live port; falls through to `otherwise` when every set is
/// dead. Liveness of prone ports is resolved by nested conditionals on the
/// `up` flags (an explicit subset enumeration, exponential in the number
/// of prone ports per set — small in practice).
pub(crate) fn priority_choose(fields: &NetFields, sets: &[Candidates], otherwise: Prog) -> Prog {
    match sets.split_first() {
        None => otherwise,
        Some((set, rest)) => {
            let fallback = priority_choose(fields, rest, otherwise);
            // The prelude (e.g. setting the detour flag) only takes effect
            // on the leaves where this set actually wins.
            enumerate_live_with_prelude(
                fields,
                &set.prone,
                set.safe.clone(),
                &set.prelude,
                fallback,
            )
        }
    }
}

fn enumerate_live_with_prelude(
    fields: &NetFields,
    prone: &[u32],
    live: Vec<u32>,
    prelude: &Prog,
    fallback: Prog,
) -> Prog {
    match prone.split_first() {
        None => {
            if live.is_empty() {
                fallback
            } else {
                prelude.clone().seq(forward_uniform(fields, &live))
            }
        }
        Some((&p, rest)) => {
            let mut with_p = live.clone();
            with_p.push(p);
            Prog::ite(
                Pred::test(fields.up(p), 1),
                enumerate_live_with_prelude(fields, rest, with_p, prelude, fallback.clone()),
                enumerate_live_with_prelude(fields, rest, live, prelude, fallback),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnetkat_core::{Interp, Packet};
    use mcnetkat_num::Ratio;
    use mcnetkat_topo::ab_fattree;

    fn setup() -> (Topology, NetFields, NodeId, ShortestPaths) {
        let topo = ab_fattree(4);
        let fields = NetFields::new(topo.max_degree());
        let dst = topo.find("edge0_0").unwrap();
        let sp = ShortestPaths::towards(&topo, dst);
        (topo, fields, dst, sp)
    }

    fn all_up(fields: &NetFields, n: usize) -> Packet {
        let mut pk = Packet::new();
        for i in 1..=n {
            pk.set(fields.up(i as u32), 1);
        }
        pk
    }

    #[test]
    fn ecmp_splits_uniformly_at_source_edge() {
        let (topo, fields, dst, sp) = setup();
        let src = topo.find("edge1_0").unwrap();
        let prog = switch_program(RoutingScheme::Ecmp, &fields, &topo, &sp, src, dst);
        let d = Interp::new().eval_packet(&prog, &Packet::new());
        // Two aggregation uplinks on shortest paths → ½ each.
        assert_eq!(d.mass(), Ratio::one());
        let ports: Vec<_> = d.iter().collect();
        assert_eq!(ports.len(), 2);
        for (_, r) in ports {
            assert_eq!(*r, Ratio::new(1, 2));
        }
    }

    #[test]
    fn destination_switch_drops() {
        let (topo, fields, dst, sp) = setup();
        for scheme in [
            RoutingScheme::Ecmp,
            RoutingScheme::F10_3,
            RoutingScheme::F10_3_5,
        ] {
            let prog = switch_program(scheme, &fields, &topo, &sp, dst, dst);
            assert_eq!(prog, Prog::drop(), "{scheme:?}");
        }
    }

    #[test]
    fn f103_core_reroutes_to_opposite_type() {
        let (topo, fields, dst, sp) = setup();
        let core = topo.find("core0").unwrap();
        let prog = switch_program(RoutingScheme::F10_3, &fields, &topo, &sp, core, dst);
        // All links up: forwards on the unique shortest-path port.
        let up = all_up(&fields, topo.ports(core).len());
        let d = Interp::new().eval_packet(&prog, &up);
        assert_eq!(d.mass(), Ratio::one());
        let normal_port = sp.next_hop_ports_in(&topo, core)[0];
        let expect = up.with(fields.pt, normal_port);
        assert_eq!(d.prob(&expect), Ratio::one());
        // Kill the shortest-path link: mass moves to opposite-type ports.
        let mut broken = up.clone();
        broken.set(fields.up(normal_port), 0);
        let d2 = Interp::new().eval_packet(&prog, &broken);
        assert_eq!(d2.mass(), Ratio::one());
        assert_eq!(d2.prob(&broken.with(fields.pt, normal_port)), Ratio::zero());
        // Two opposite-type choices, uniform.
        let choices: Vec<_> = d2.iter().collect();
        assert_eq!(choices.len(), 2);
        for (_, r) in choices {
            assert_eq!(*r, Ratio::new(1, 2));
        }
    }

    #[test]
    fn f103_drops_only_when_all_candidates_dead() {
        let (topo, fields, dst, sp) = setup();
        let core = topo.find("core0").unwrap();
        let prog = switch_program(RoutingScheme::F10_3, &fields, &topo, &sp, core, dst);
        // Everything down → drop (F10_3 has no same-type fallback).
        let all_down = Packet::new();
        let d = Interp::new().eval_packet(&prog, &all_down);
        assert_eq!(d.drop_prob(), Ratio::one());
    }

    #[test]
    fn f1035_core_falls_back_to_same_type_with_flag() {
        let (topo, fields, dst, sp) = setup();
        let core = topo.find("core0").unwrap();
        let prog = switch_program(RoutingScheme::F10_3_5, &fields, &topo, &sp, core, dst);
        // Normal + both opposite-type links dead; same-type (pod 2) alive.
        let mut pk = Packet::new();
        for pp in topo.ports(core) {
            let pod = topo.info(pp.peer).pod;
            pk.set(fields.up(pp.port), if pod == Some(2) { 1 } else { 0 });
        }
        let d = Interp::new().eval_packet(&prog, &pk);
        assert_eq!(d.mass(), Ratio::one());
        let (out, r) = d.iter().next().unwrap();
        let out = out.as_ref().unwrap();
        assert_eq!(*r, Ratio::one());
        assert_eq!(out.get(fields.dt), 1, "detour flag set");
        let chosen = out.get(fields.pt);
        let (peer, _) = topo.neighbor(core, chosen).unwrap();
        assert_eq!(topo.info(peer).pod, Some(2));
    }

    #[test]
    fn f1035_foreign_agg_sends_detoured_packets_down() {
        let (topo, fields, dst, sp) = setup();
        let agg = topo.find("agg2_0").unwrap();
        let prog = switch_program(RoutingScheme::F10_3_5, &fields, &topo, &sp, agg, dst);
        let nports = topo.ports(agg).len();
        // Detoured packet, all links alive → goes down to an edge switch.
        let pk = all_up(&fields, nports).with(fields.dt, 1);
        let d = Interp::new().eval_packet(&prog, &pk);
        for (out, _) in d.iter() {
            let out = out.as_ref().unwrap();
            let (peer, _) = topo.neighbor(agg, out.get(fields.pt)).unwrap();
            assert_eq!(topo.info(peer).level, Level::Edge);
        }
        // Normal packet goes up.
        let pk2 = all_up(&fields, nports);
        let d2 = Interp::new().eval_packet(&prog, &pk2);
        for (out, _) in d2.iter() {
            let out = out.as_ref().unwrap();
            let (peer, _) = topo.neighbor(agg, out.get(fields.pt)).unwrap();
            assert_eq!(topo.info(peer).level, Level::Core);
        }
    }

    #[test]
    fn dst_pod_agg_bounces_up_when_down_link_dead() {
        let (topo, fields, dst, sp) = setup();
        let agg = topo.find("agg0_0").unwrap();
        for scheme in [RoutingScheme::F10_3, RoutingScheme::F10_3_5] {
            let prog = switch_program(scheme, &fields, &topo, &sp, agg, dst);
            // The unique down-port to the destination edge is dead.
            let down = sp.next_hop_ports_in(&topo, agg);
            assert_eq!(down.len(), 1);
            let mut pk = all_up(&fields, topo.ports(agg).len());
            pk.set(fields.up(down[0]), 0);
            let d = Interp::new().eval_packet(&prog, &pk);
            assert_eq!(d.mass(), Ratio::one(), "{scheme:?}");
            assert_eq!(d.drop_prob(), Ratio::zero(), "{scheme:?}");
            for (out, _) in d.iter() {
                let out = out.as_ref().unwrap();
                let (peer, _) = topo.neighbor(agg, out.get(fields.pt)).unwrap();
                assert_eq!(topo.info(peer).level, Level::Core, "{scheme:?}");
            }
        }
    }

    #[test]
    fn ecmp_ignores_failures() {
        let (topo, fields, dst, sp) = setup();
        let core = topo.find("core0").unwrap();
        let prog = switch_program(RoutingScheme::Ecmp, &fields, &topo, &sp, core, dst);
        // ECMP picks the dead port anyway — the topology will drop it.
        let dead = Packet::new();
        let d = Interp::new().eval_packet(&prog, &dead);
        assert_eq!(d.drop_prob(), Ratio::zero());
        assert_eq!(d.mass(), Ratio::one());
    }
}
