//! A self-contained binary codec for model descriptions.
//!
//! The serve engine's durability layer (`mcnetkat-serve`) journals model
//! deltas and snapshots model descriptions to disk. The build environment
//! is offline — no `serde` — so this module implements the little that is
//! actually needed: a length-checked byte [`Reader`], a [`Codec`] trait
//! with implementations for the model-description types (topologies,
//! routing schemes, failure specs, shared-risk groups, exact rationals),
//! and [`ModelDescription`] — the compact, compile-free value that fully
//! determines a [`NetworkModel`] (the diagrams themselves are *not*
//! serialised: recompilation is the source of truth).
//!
//! Encoding is deliberately dumb and explicit: fixed-width little-endian
//! integers, length-prefixed sequences, one tag byte per enum variant.
//! [`BigInt`] magnitudes ride as decimal strings
//! (probabilities are small; simplicity beats compactness here). The
//! format carries no version byte of its own — the journal and snapshot
//! containers in `mcnetkat-serve` version their headers.
//!
//! Round-tripping a [`Topology`] preserves **everything** observable:
//! node ids (insertion order), names, levels, pod metadata, port numbers,
//! and the order of each node's adjacency list (see `link_order`) — so
//! a decoded model compiles to a diagram structurally identical to the
//! original's, not merely an equivalent one.

use crate::{FailureSpec, NetworkModel, RoutingScheme, Srlg};
use mcnetkat_num::{BigInt, Ratio};
use mcnetkat_topo::{Level, NodeId, NodeInfo, PodType, Topology};
use std::collections::BTreeMap;

/// Why a decode failed. The byte stream is untrusted (it came from disk),
/// so every length, tag, index, and invariant is checked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value did.
    Eof,
    /// An enum tag byte had no matching variant.
    BadTag {
        /// Which type was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A decoded value violated a structural invariant (bad UTF-8, a node
    /// index out of range, a zero denominator, a port wired twice, …).
    Invalid(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Eof => write!(f, "unexpected end of input"),
            CodecError::BadTag { what, tag } => write!(f, "bad tag {tag} for {what}"),
            CodecError::Invalid(why) => write!(f, "invalid encoding: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A checked cursor over an encoded byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed — decoders of containers
    /// should end exactly at the end.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Eof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A length prefix, sanity-capped against the remaining input so a
    /// corrupt length can't drive a huge allocation.
    fn len(&mut self) -> Result<usize, CodecError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| CodecError::Invalid("length overflow".into()))?;
        if n > self.remaining() {
            return Err(CodecError::Eof);
        }
        Ok(n)
    }
}

/// Binary encode/decode. `decode` must accept exactly what `encode`
/// produced and reject everything else with a typed [`CodecError`].
pub trait Codec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the reader, advancing it.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated, mistagged, or invalid input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Convenience: decode a value that must span the whole slice.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated, mistagged, invalid, or oversized
    /// input (trailing bytes are an error).
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(CodecError::Invalid(format!(
                "{} trailing bytes after value",
                r.remaining()
            )));
        }
        Ok(v)
    }
}

impl Codec for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<u8, CodecError> {
        r.u8()
    }
}

impl Codec for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<u32, CodecError> {
        r.u32()
    }
}

impl Codec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<u64, CodecError> {
        r.u64()
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<bool, CodecError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { what: "bool", tag }),
        }
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<String, CodecError> {
        let n = r.len()?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Invalid("non-UTF-8 string".into()))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Option<T>, CodecError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Vec<T>, CodecError> {
        // Cap the reservation at what the input could possibly hold (each
        // element is ≥ 1 byte), so a corrupt count can't blow the heap.
        let n = r.u64()?;
        let n = usize::try_from(n).map_err(|_| CodecError::Invalid("length overflow".into()))?;
        let mut out = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<(A, B), CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<K: Codec + Ord, V: Codec> Codec for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<BTreeMap<K, V>, CodecError> {
        let n = r.u64()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            if out.insert(k, v).is_some() {
                return Err(CodecError::Invalid("duplicate map key".into()));
            }
        }
        Ok(out)
    }
}

impl Codec for Ratio {
    /// Numerator and denominator as decimal strings — exact at any
    /// magnitude, trivially debuggable in a hex dump.
    fn encode(&self, out: &mut Vec<u8>) {
        self.numer().to_string().encode(out);
        self.denom().to_string().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Ratio, CodecError> {
        let parse = |s: String| {
            BigInt::parse(&s).ok_or_else(|| CodecError::Invalid(format!("bad integer {s:?}")))
        };
        let num = parse(String::decode(r)?)?;
        let den = parse(String::decode(r)?)?;
        if den.is_zero() {
            return Err(CodecError::Invalid("zero denominator".into()));
        }
        Ok(Ratio::from_bigints(num, den))
    }
}

impl Codec for NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.0 as u64).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<NodeId, CodecError> {
        let i = r.u64()?;
        let i =
            usize::try_from(i).map_err(|_| CodecError::Invalid("node index overflow".into()))?;
        Ok(NodeId(i))
    }
}

impl Codec for RoutingScheme {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            RoutingScheme::Ecmp => 0,
            RoutingScheme::F10_3 => 1,
            RoutingScheme::F10_3_5 => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<RoutingScheme, CodecError> {
        match r.u8()? {
            0 => Ok(RoutingScheme::Ecmp),
            1 => Ok(RoutingScheme::F10_3),
            2 => Ok(RoutingScheme::F10_3_5),
            tag => Err(CodecError::BadTag {
                what: "RoutingScheme",
                tag,
            }),
        }
    }
}

impl Codec for Level {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Level::Host => 0,
            Level::Edge => 1,
            Level::Agg => 2,
            Level::Core => 3,
            Level::Plain => 4,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Level, CodecError> {
        match r.u8()? {
            0 => Ok(Level::Host),
            1 => Ok(Level::Edge),
            2 => Ok(Level::Agg),
            3 => Ok(Level::Core),
            4 => Ok(Level::Plain),
            tag => Err(CodecError::BadTag { what: "Level", tag }),
        }
    }
}

impl Codec for PodType {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            PodType::A => 0,
            PodType::B => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<PodType, CodecError> {
        match r.u8()? {
            0 => Ok(PodType::A),
            1 => Ok(PodType::B),
            tag => Err(CodecError::BadTag {
                what: "PodType",
                tag,
            }),
        }
    }
}

impl Codec for Srlg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.pr.encode(out);
        self.members.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Srlg, CodecError> {
        Ok(Srlg {
            name: String::decode(r)?,
            pr: Ratio::decode(r)?,
            members: Vec::<(u32, u32)>::decode(r)?,
        })
    }
}

impl Codec for FailureSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pr.encode(out);
        self.k.encode(out);
        self.link_pr.encode(out);
        self.groups.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<FailureSpec, CodecError> {
        Ok(FailureSpec {
            pr: Ratio::decode(r)?,
            k: Option::<u32>::decode(r)?,
            link_pr: BTreeMap::<u32, Ratio>::decode(r)?,
            groups: Vec::<Srlg>::decode(r)?,
        })
    }
}

/// The topology's links in an order that reproduces every node's
/// adjacency-list order on replay.
///
/// A link appears in *both* endpoints' adjacency lists; replaying a
/// global link sequence through [`Topology::link_ports`] appends to both
/// lists, so the sequence must interleave consistently with every
/// per-node order. Any topology built through `link`/`link_ports` has
/// such an order (links are appended to both lists atomically), and the
/// greedy below finds one: repeatedly emit a link that currently heads
/// **both** of its endpoints' remaining lists — the earliest-inserted
/// remaining link always qualifies, so the scan makes progress.
fn link_order(t: &Topology) -> Result<Vec<(NodeId, u32, NodeId, u32)>, CodecError> {
    let n = t.len();
    let mut cursor = vec![0usize; n];
    let total: usize = (0..n).map(|i| t.ports(NodeId(i)).len()).sum::<usize>() / 2;
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let before = out.len();
        for i in 0..n {
            loop {
                let node = NodeId(i);
                let Some(pp) = t.ports(node).get(cursor[i]).copied() else {
                    break;
                };
                if pp.peer == node {
                    // A self-loop occupies two consecutive slots of the
                    // same list; it is always emittable.
                    out.push((node, pp.port, node, pp.peer_port));
                    cursor[i] += 2;
                    continue;
                }
                let peer_head = t.ports(pp.peer).get(cursor[pp.peer.0]).copied();
                let mirrored = peer_head.is_some_and(|ph| {
                    ph.peer == node && ph.port == pp.peer_port && ph.peer_port == pp.port
                });
                if !mirrored {
                    break;
                }
                out.push((node, pp.port, pp.peer, pp.peer_port));
                cursor[i] += 1;
                cursor[pp.peer.0] += 1;
            }
        }
        if out.len() == before {
            // No consistent interleaving — the adjacency lists were not
            // produced by pairwise appends. No constructor in this
            // workspace can create this.
            return Err(CodecError::Invalid(
                "adjacency lists admit no consistent link order".into(),
            ));
        }
    }
    Ok(out)
}

impl Codec for Topology {
    fn encode(&self, out: &mut Vec<u8>) {
        let nodes: Vec<NodeId> = self.nodes().collect();
        (nodes.len() as u64).encode(out);
        for n in nodes {
            let info = self.info(n);
            info.name.encode(out);
            info.level.encode(out);
            info.pod.map(|p| p as u64).encode(out);
            info.pod_type.encode(out);
        }
        let links = link_order(self).expect("constructed topologies always have a link order");
        (links.len() as u64).encode(out);
        for (a, pa, b, pb) in links {
            a.encode(out);
            pa.encode(out);
            b.encode(out);
            pb.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Topology, CodecError> {
        let mut topo = Topology::new();
        let nodes = r.u64()?;
        for _ in 0..nodes {
            let name = String::decode(r)?;
            let level = Level::decode(r)?;
            let pod = Option::<u64>::decode(r)?
                .map(|p| usize::try_from(p).map_err(|_| CodecError::Invalid("pod overflow".into())))
                .transpose()?;
            let pod_type = Option::<PodType>::decode(r)?;
            topo.add_node(NodeInfo {
                name,
                level,
                pod,
                pod_type,
            });
        }
        let links = r.u64()?;
        for _ in 0..links {
            let a = NodeId::decode(r)?;
            let pa = r.u32()?;
            let b = NodeId::decode(r)?;
            let pb = r.u32()?;
            for (end, port) in [(a, pa), (b, pb)] {
                if end.0 >= topo.len() {
                    return Err(CodecError::Invalid(format!(
                        "link endpoint {end:?} out of range"
                    )));
                }
                // `link_ports` panics on a doubly-wired port; the input
                // is untrusted, so check first. A self-loop uses the same
                // node twice with two distinct ports — the pairwise check
                // below still catches reuse.
                if topo.neighbor(end, port).is_some() {
                    return Err(CodecError::Invalid(format!(
                        "port {port} on node {} wired twice",
                        end.0
                    )));
                }
            }
            if a == b && pa == pb {
                return Err(CodecError::Invalid(format!(
                    "self-link on node {} reuses port {pa}",
                    a.0
                )));
            }
            topo.link_ports(a, pa, b, pb);
        }
        Ok(topo)
    }
}

/// Everything that determines a [`NetworkModel`], minus the compiled
/// diagrams: the value the serve engine snapshots and journals. Building
/// the model back ([`ModelDescription::build`]) revalidates the spec and
/// re-derives field handles through the process-wide interner, so a
/// description is portable across processes (diagrams are not — they are
/// recompiled, which is the durability design's source of truth).
#[derive(Clone, Debug)]
pub struct ModelDescription {
    /// The fabric (round-trips exactly — see [`Codec` for `Topology`](Topology)).
    pub topo: Topology,
    /// Destination switch.
    pub dst: NodeId,
    /// Model-wide default routing scheme.
    pub scheme: RoutingScheme,
    /// Per-switch scheme overrides.
    pub scheme_overrides: BTreeMap<NodeId, RoutingScheme>,
    /// Failure specification.
    pub failure: FailureSpec,
    /// Hop-counter cap, if threaded.
    pub hop_cap: Option<u32>,
}

impl ModelDescription {
    /// Captures a model's description. Only the default
    /// [`crate::FieldOrder`] survives a round-trip — models built over a
    /// custom field order rebuild with standard handles (the serve
    /// engine, the only producer of descriptions, is pinned to the
    /// default order already).
    pub fn of(model: &NetworkModel) -> ModelDescription {
        ModelDescription {
            topo: model.topo.clone(),
            dst: model.dst,
            scheme: model.scheme,
            scheme_overrides: model.scheme_overrides.clone(),
            failure: model.failure.clone(),
            hop_cap: model.hop_cap,
        }
    }

    /// Reconstructs the model, revalidating everything
    /// [`NetworkModel::new`] would assert: the destination must be a
    /// switch of the topology, every override must name a switch, and the
    /// failure spec must validate.
    ///
    /// # Errors
    ///
    /// A human-readable reason; descriptions produced by
    /// [`ModelDescription::of`] from a live model never fail.
    pub fn build(&self) -> Result<NetworkModel, String> {
        if !self.topo.switches().contains(&self.dst) {
            return Err(format!("destination {:?} is not a switch", self.dst));
        }
        for s in self.scheme_overrides.keys() {
            if !self.topo.switches().contains(s) {
                return Err(format!("scheme override on non-switch {s:?}"));
            }
        }
        self.failure.validate(&self.topo)?;
        let mut model = NetworkModel::new(
            self.topo.clone(),
            self.dst,
            self.scheme,
            self.failure.clone(),
        );
        model.scheme_overrides = self.scheme_overrides.clone();
        model.hop_cap = self.hop_cap;
        Ok(model)
    }
}

impl Codec for ModelDescription {
    fn encode(&self, out: &mut Vec<u8>) {
        self.topo.encode(out);
        self.dst.encode(out);
        self.scheme.encode(out);
        self.scheme_overrides.encode(out);
        self.failure.encode(out);
        self.hop_cap.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<ModelDescription, CodecError> {
        Ok(ModelDescription {
            topo: Topology::decode(r)?,
            dst: NodeId::decode(r)?,
            scheme: RoutingScheme::decode(r)?,
            scheme_overrides: BTreeMap::<NodeId, RoutingScheme>::decode(r)?,
            failure: FailureSpec::decode(r)?,
            hop_cap: Option::<u32>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailureModel;
    use mcnetkat_topo::{ab_fattree, chain, fattree};

    fn assert_topo_identical(a: &Topology, b: &Topology) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.switches(), b.switches());
        assert_eq!(a.hosts(), b.hosts());
        for n in a.nodes() {
            let (ia, ib) = (a.info(n), b.info(n));
            assert_eq!(ia.name, ib.name);
            assert_eq!(ia.level, ib.level);
            assert_eq!(ia.pod, ib.pod);
            assert_eq!(ia.pod_type, ib.pod_type);
            // Same entries in the same order — PortPeer is PartialEq.
            assert_eq!(a.ports(n), b.ports(n), "adjacency of {}", ia.name);
        }
    }

    #[test]
    fn topology_roundtrip_preserves_adjacency_order() {
        for topo in [fattree(4), fattree(6), ab_fattree(4), chain(5)] {
            let decoded = Topology::from_bytes(&topo.to_bytes()).unwrap();
            assert_topo_identical(&topo, &decoded);
            // Re-encoding the decoded topology is byte-identical.
            assert_eq!(topo.to_bytes(), decoded.to_bytes());
        }
    }

    #[test]
    fn ratio_roundtrip_exact() {
        for r in [
            Ratio::zero(),
            Ratio::one(),
            Ratio::new(1, 3),
            Ratio::new(-7, 24),
            Ratio::new(1, 1_000_000),
            Ratio::new(i64::MAX, 2).pow(3), // forces the BigInt path
        ] {
            assert_eq!(Ratio::from_bytes(&r.to_bytes()).unwrap(), r);
        }
    }

    #[test]
    fn model_description_roundtrip() {
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        let core = topo.find("core0").unwrap();
        let core_sw = topo.sw_value(core);
        let prone = down_ports_of(&topo, core);
        let spec = FailureSpec::bounded(Ratio::new(1, 100), 2)
            .with_link_pr(prone[0], Ratio::new(1, 10))
            .with_group(Srlg::new(
                "card",
                Ratio::new(1, 50),
                prone.iter().map(|&p| (core_sw, p)).collect(),
            ));
        let mut model = NetworkModel::new(topo, dst, RoutingScheme::Ecmp, spec);
        model.scheme_overrides.insert(core, RoutingScheme::F10_3);
        model.hop_cap = Some(8);

        let desc = ModelDescription::of(&model);
        let bytes = desc.to_bytes();
        let back = ModelDescription::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes, "re-encode is byte-identical");

        let rebuilt = back.build().unwrap();
        assert_eq!(rebuilt.dst, model.dst);
        assert_eq!(rebuilt.scheme, model.scheme);
        assert_eq!(rebuilt.scheme_overrides, model.scheme_overrides);
        assert_eq!(rebuilt.failure, model.failure);
        assert_eq!(rebuilt.hop_cap, model.hop_cap);
        assert_topo_identical(&model.topo, &rebuilt.topo);
    }

    #[test]
    fn rebuilt_model_compiles_identically() {
        use mcnetkat_fdd::Manager;
        let topo = fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        let model = NetworkModel::new(
            topo,
            dst,
            RoutingScheme::F10_3,
            FailureModel::independent(Ratio::new(1, 64)),
        );
        let desc = ModelDescription::from_bytes(&ModelDescription::of(&model).to_bytes()).unwrap();
        let rebuilt = desc.build().unwrap();
        let mgr = Manager::new();
        let a = model.compile(&mgr).unwrap();
        let b = rebuilt.compile(&mgr).unwrap();
        // Adjacency order round-trips exactly, so the programs are
        // structurally identical — the diagrams are the *same* node.
        assert_eq!(a, b);
    }

    #[test]
    fn truncated_input_is_eof_not_panic() {
        let bytes = ModelDescription::of(&NetworkModel::new(
            fattree(4),
            fattree(4).find("edge0_0").unwrap(),
            RoutingScheme::Ecmp,
            FailureModel::none(),
        ))
        .to_bytes();
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            let err = ModelDescription::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Eof | CodecError::Invalid(_)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn hostile_inputs_are_rejected() {
        // Bad enum tag.
        assert!(matches!(
            RoutingScheme::from_bytes(&[9]),
            Err(CodecError::BadTag { .. })
        ));
        // Zero denominator.
        let mut out = Vec::new();
        "1".to_string().encode(&mut out);
        "0".to_string().encode(&mut out);
        assert!(matches!(
            Ratio::from_bytes(&out),
            Err(CodecError::Invalid(_))
        ));
        // A length prefix far past the end of input.
        let mut out = Vec::new();
        u64::MAX.encode(&mut out);
        assert!(matches!(String::from_bytes(&out), Err(CodecError::Eof)));
        // Link endpoint out of range.
        let mut topo = Topology::new();
        topo.add_switch("a", Level::Plain);
        let mut bytes = topo.to_bytes();
        // Append a bogus link count of 1 with an out-of-range endpoint.
        bytes.truncate(bytes.len() - 8); // drop the 0 link count
        1u64.encode(&mut bytes);
        NodeId(7).encode(&mut bytes);
        1u32.encode(&mut bytes);
        NodeId(0).encode(&mut bytes);
        1u32.encode(&mut bytes);
        assert!(matches!(
            Topology::from_bytes(&bytes),
            Err(CodecError::Invalid(_))
        ));
        // Trailing garbage.
        let mut bytes = Ratio::one().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Ratio::from_bytes(&bytes),
            Err(CodecError::Invalid(_))
        ));
    }

    fn down_ports_of(topo: &Topology, s: NodeId) -> Vec<u32> {
        crate::down_ports(topo, s)
    }
}
