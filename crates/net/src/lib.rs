//! Network models for McNetKAT: the `M(p, t)` / `M̂(p, t, f)` constructions
//! of §2 and §7, routing schemes (ECMP/F10₀, F10₃, F10₃,₅), failure models
//! `f_k` and their generalisation [`FailureSpec`] (per-link heterogeneous
//! probabilities, correlated shared-risk link groups), the teleport
//! specification, verification queries, and the parallel per-switch
//! compilation backend.

#![forbid(unsafe_code)]

mod chain;
pub mod codec;
mod example;
mod failure;
mod fields;
pub mod fused;
mod model;
mod parallel;
mod queries;
mod scheme;

pub use chain::{chain_benchmark, chain_delivery_native, chain_expected_delivery, ChainBenchmark};
pub use codec::{Codec, CodecError, ModelDescription, Reader};
pub use example::{running_example, RunningExample};
pub use failure::{FailureModel, FailureSpec, Srlg};
pub use fields::{FieldOrder, NetFields};
pub use fused::FusedStats;
pub use model::{teleport, NetworkModel};
pub use parallel::{compile_model_parallel, compile_model_parallel_with_stats};
pub use queries::{HopStats, Queries};
pub use scheme::{down_ports, RoutingScheme};
