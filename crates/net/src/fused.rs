//! Fused per-switch compilation with eager scratch-field elimination.
//!
//! The legacy pipeline compiled the *whole* loop body — every switch's
//! failure draw, routing scheme, topology step and flag erasure — into one
//! FDD before solving the loop, so every switch's `up_i` (and `grp_j`)
//! scratch fields were alive in the same manager simultaneously. Peak
//! diagram size therefore scaled with the cross-product of the entire
//! topology's per-hop randomness (~165 k live nodes and ~1.8 M leaf
//! distribution entries on fattree(8)), even though each scratch field is
//! born and dies within a single switch-hop.
//!
//! This module restructures compilation the way the paper does
//! (conf_pldi_SmolkaKKFHK019 compiles switch-local programs first and only
//! then assembles the global model):
//!
//! ```text
//!   per switch s (scratch manager):
//!     draw_s ; scheme_s ; topo-step_s ; bump?      — compile
//!     eliminate up_i / grp_j                        — Manager::eliminate
//!     export → import                               — scratch-free, tiny
//!   main manager:
//!     case sw=s₁ … sw=sₙ chain of imported hops     — assemble
//!     while-solve ; ingress ; pt<-0 ; local wrappers
//! ```
//!
//! Peak live nodes now scale with the *largest single switch*, not the
//! topology. Two elimination modes:
//!
//! * **Factored** (`FailureSpec::is_factorable`, i.e. no failure budget):
//!   the draw program is never compiled at all. The routing diagram tests
//!   `up_i`/`grp_j` directly, and [`Manager::eliminate`] convex-sums each
//!   test with the corresponding Bernoulli weight — the factored
//!   failure-draw representation the ROADMAP called for.
//! * **Budget-coupled** (`k = Some(_)`): the budget guard sequences the
//!   draws, so the draw program is compiled into the hop first; the
//!   scratch fields are then write-only and stripped by elimination.
//!
//! Both modes produce per-switch diagrams that mention no scratch field,
//! so the global body, the loop solve, and the final diagram never see
//! them — no per-hop erasure, no final [`Manager::forget`] projection.

use crate::model::bump_hop_counter;
use crate::scheme::switch_program;
use crate::NetworkModel;
use mcnetkat_core::{Pred, Prog};
use mcnetkat_fdd::{CompileError, CompileOptions, Fdd, Manager, ScratchField};
use mcnetkat_num::Ratio;
use mcnetkat_topo::{NodeId, ShortestPaths};
use std::collections::BTreeSet;

/// Size gauges from one fused compile: how big the per-switch scratch
/// compilations got before elimination. Together with the main manager's
/// [`Manager::peak_live_nodes`] / [`Manager::peak_dist_entries`] this
/// bounds the pipeline's true peak memory.
#[derive(Clone, Copy, Debug, Default)]
pub struct FusedStats {
    /// Switches compiled.
    pub switches: usize,
    /// Largest scratch-manager node count over all switches.
    pub max_scratch_nodes: usize,
    /// Largest scratch-manager distribution-entry total over all switches.
    pub max_scratch_dist_entries: usize,
}

impl FusedStats {
    fn absorb_scratch(&mut self, scratch: &Manager) {
        self.switches += 1;
        self.max_scratch_nodes = self.max_scratch_nodes.max(scratch.peak_live_nodes());
        self.max_scratch_dist_entries = self
            .max_scratch_dist_entries
            .max(scratch.peak_dist_entries());
    }

    /// Folds another gauge set in (sums switch counts, maxes the peaks) —
    /// used to merge per-worker gauges in the parallel backend.
    pub fn merge(&mut self, other: &FusedStats) {
        self.switches += other.switches;
        self.max_scratch_nodes = self.max_scratch_nodes.max(other.max_scratch_nodes);
        self.max_scratch_dist_entries = self
            .max_scratch_dist_entries
            .max(other.max_scratch_dist_entries);
    }
}

/// The complete, self-contained inputs of one switch's fused hop compile:
/// the program to compile (draw prefix + route + topology step + hop
/// bump) and the scratch-field specification to eliminate afterwards.
///
/// Everything the compiled hop diagram depends on is in here — the
/// routing scheme (via the expanded program), the topology slice, the
/// hop cap, and the failure-spec slice relevant to this switch (group
/// membership, Bernoulli weights, budget coupling). `Eq`/`Hash` are
/// structural, so two switches — or the same switch before and after a
/// model delta — compile to identical diagrams **iff** their `HopInputs`
/// compare equal. That makes [`HopInputs::cache_key`] a sound
/// invalidation key for incremental recompilation (`mcnetkat-serve`
/// builds its per-switch diagram cache on exactly this).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct HopInputs {
    /// The hop program compiled in the scratch manager.
    pub prog: Prog,
    /// Scratch fields eliminated from the compiled hop, in order.
    pub scratch: Vec<ScratchField>,
}

impl HopInputs {
    /// A 64-bit structural fingerprint of the inputs (a [`std::hash::Hash`]
    /// digest). Stable within a process — which is all an in-memory
    /// diagram cache needs — but not across processes or builds.
    pub fn cache_key(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Assembles switch `s`'s fused hop-compile inputs: `failure draw ;
/// scheme ; topology step ; hop bump` plus the scratch fields to
/// eliminate. Pure AST/spec work — no manager involved.
pub fn hop_inputs(model: &NetworkModel, s: NodeId, sp: &ShortestPaths) -> HopInputs {
    let fields = &model.fields;
    let spec = &model.failure;
    let prone = model.prone_ports(s);
    let sw_val = model.topo.sw_value(s);

    // The deterministic part of the hop: route, cross the link, count.
    let mut route = switch_program(model.scheme_for(s), fields, &model.topo, sp, s, model.dst)
        .seq(model.topology_step(s));
    if let Some(cap) = model.hop_cap {
        route = route.seq(bump_hop_counter(fields, cap));
    }

    let mut scratch: Vec<ScratchField> = Vec::new();
    let prog = if spec.is_factorable() {
        // Factored mode: never compile the draw. Group flags and ungrouped
        // `up` flags become entry draws summed out by `eliminate`; grouped
        // `up` flags are *derived* from their group flag by a compiled
        // prefix, which resolves every downstream test, leaving them
        // write-only.
        let mut prefix = Vec::new();
        let mut grouped: BTreeSet<u32> = BTreeSet::new();
        for (j, group) in spec.groups.iter().enumerate() {
            let members = group.ports_on(sw_val, &prone);
            if members.is_empty() {
                continue;
            }
            let grp = fields.grp(j as u32 + 1);
            scratch.push(ScratchField::bernoulli(
                grp,
                Ratio::one() - group.pr.clone(),
            ));
            for &p in &members {
                grouped.insert(p);
                prefix.push(Prog::ite(
                    Pred::test(grp, 1),
                    Prog::assign(fields.up(p), 1),
                    Prog::assign(fields.up(p), 0),
                ));
            }
        }
        for &p in &prone {
            if grouped.contains(&p) {
                scratch.push(ScratchField::write_only(fields.up(p)));
            } else {
                scratch.push(ScratchField::bernoulli(
                    fields.up(p),
                    Ratio::one() - spec.port_pr(p).clone(),
                ));
            }
        }
        Prog::seq_all(prefix).seq(route)
    } else {
        // Budget-coupled mode: the `fl` guard sequences the draws, so they
        // must be compiled into the hop. Every health test downstream is
        // then resolved by the draw's assignments, leaving the scratch
        // fields write-only.
        let draw = spec.hop_program(fields, sw_val, &prone);
        for &p in &prone {
            scratch.push(ScratchField::write_only(fields.up(p)));
        }
        // Mirror `FailureSpec::hop_program`: only groups with members on
        // this switch are drawn here, so only their flags exist to
        // eliminate. Listing the rest would couple every switch's
        // `HopInputs` to every group, making a group edit invalidate
        // switches the group never touches.
        for (j, group) in spec.groups.iter().enumerate() {
            if !group.ports_on(sw_val, &prone).is_empty() {
                scratch.push(ScratchField::write_only(fields.grp(j as u32 + 1)));
            }
        }
        draw.seq(route)
    };
    HopInputs { prog, scratch }
}

/// Compiles one hop's [`HopInputs`] in a fresh scratch manager, eliminates
/// the scratch fields, and imports the (tiny, scratch-free) result into
/// `target`. `stats` records the scratch manager's peak size.
///
/// # Errors
///
/// Propagates [`CompileError`] from the scratch compile.
pub fn compile_hop_import(
    target: &Manager,
    inputs: &HopInputs,
    opts: &CompileOptions,
    stats: &mut FusedStats,
) -> Result<Fdd, CompileError> {
    let scratch = Manager::new();
    let hop = scratch.compile_with(&inputs.prog, opts)?;
    let fdd = scratch.eliminate(hop, &inputs.scratch);
    stats.absorb_scratch(&scratch);
    Ok(target.import(&scratch.export(fdd)))
}

/// Compiles switch `s`'s fused hop — `failure draw ; scheme ; topology
/// step ; hop bump` with every scratch field eliminated — in a fresh
/// scratch manager, and imports the (tiny, scratch-free) result into
/// `target`. Returns the imported diagram; `stats` records the scratch
/// manager's peak size.
///
/// # Errors
///
/// Propagates [`CompileError`] from the scratch compile.
pub fn compile_switch_hop(
    target: &Manager,
    model: &NetworkModel,
    s: NodeId,
    sp: &ShortestPaths,
    opts: &CompileOptions,
    stats: &mut FusedStats,
) -> Result<Fdd, CompileError> {
    compile_hop_import(target, &hop_inputs(model, s, sp), opts, stats)
}

/// Folds per-switch hop diagrams into the global `sw`-case chain, in
/// reverse switch order so the chain tests switches in declaration order
/// (mirroring the legacy `Prog::case`). `hop` supplies each switch's
/// scratch-free diagram — a fresh compile in the batch pipeline, a cache
/// lookup in an incremental engine.
///
/// # Errors
///
/// Propagates the first error `hop` returns.
pub fn assemble_chain(
    mgr: &Manager,
    model: &NetworkModel,
    mut hop: impl FnMut(NodeId) -> Result<Fdd, CompileError>,
) -> Result<Fdd, CompileError> {
    let mut body = mgr.fail();
    for &s in model.topo.switches().iter().rev() {
        let fdd = hop(s)?;
        let test = mgr.branch(
            model.fields.sw,
            model.topo.sw_value(s),
            mgr.pass(),
            mgr.fail(),
        );
        body = mgr.ite(test, fdd, body);
    }
    Ok(body)
}

/// Compiles the whole model through the fused pipeline, returning the
/// diagram in `mgr` together with the scratch-size gauges.
pub(crate) fn compile_model_fused(
    mgr: &Manager,
    model: &NetworkModel,
    opts: &CompileOptions,
) -> Result<(Fdd, FusedStats), CompileError> {
    let sp = ShortestPaths::towards(&model.topo, model.dst);
    let mut stats = FusedStats::default();
    let body = assemble_chain(mgr, model, |s| {
        // Per-switch budget checkpoint: deadline/cancellation aborts land
        // at switch granularity even before the per-op governor notices.
        opts.budget.check_external()?;
        compile_switch_hop(mgr, model, s, &sp, opts, &mut stats)
    })?;
    let fdd = assemble_model(mgr, model, body, opts)?;
    #[cfg(feature = "audit")]
    audit_compiled_model(mgr, model, fdd);
    Ok((fdd, stats))
}

/// The `audit` feature's post-compile verification, run on every diagram
/// the fused and parallel backends return: the manager's node and
/// interning tables pass [`Manager::audit`], and the compiled model
/// mentions no scratch field — `up_i`/`grp_j` must not survive
/// elimination, whatever the failure spec.
///
/// # Panics
///
/// Panics on any audit violation or surviving scratch-field test.
#[cfg(feature = "audit")]
pub(crate) fn audit_compiled_model(mgr: &Manager, model: &NetworkModel, fdd: Fdd) {
    mgr.audit().assert_clean();
    let dom = mgr.domain(fdd);
    for &f in model.fields.ups().iter().chain(model.fields.grps()) {
        assert!(
            !dom.tested.contains_key(&f),
            "compiled model diagram tests scratch field {f} — elimination failed to strip it"
        );
    }
}

/// The shared sequential tail of both backends: loop solve, ingress
/// filter, arrival-port normalisation and the local-variable wrappers,
/// given an already-assembled loop-body diagram.
///
/// This is the patch seam of the incremental engine: after a model delta
/// recompiles only the invalidated switches and re-folds the `sw`-case
/// chain ([`assemble_chain`]), this tail finishes the model. An unchanged
/// chain body hits the manager's `while`-loop solution cache, so the loop
/// solve itself is also incremental.
///
/// # Errors
///
/// Propagates [`CompileError`] from the loop solve and the tail compiles.
pub fn assemble_model(
    mgr: &Manager,
    model: &NetworkModel,
    body: Fdd,
    opts: &CompileOptions,
) -> Result<Fdd, CompileError> {
    let guard = mgr.compile_pred(&model.guard());
    let loop_fdd = mgr.while_loop(guard, body, opts)?;
    let do_while = mgr.seq(body, loop_fdd);

    let ingress = mgr.compile_with(&Prog::filter(model.ingress_pred()), opts)?;
    let with_in = mgr.seq(ingress, do_while);
    let normalise = mgr.compile_with(&Prog::assign(model.fields.pt, 0), opts)?;
    let core = mgr.seq(with_in, normalise);

    let (pre, post) = local_wrappers(model);
    let pre_fdd = mgr.compile_with(&pre, opts)?;
    let post_fdd = mgr.compile_with(&post, opts)?;
    let tmp = mgr.seq(core, post_fdd);
    Ok(mgr.seq(pre_fdd, tmp))
}

/// The local-variable wrappers of [`NetworkModel::program`] as explicit
/// pre/post assignment sequences (enter assignments before, erasures
/// after).
pub(crate) fn local_wrappers(model: &NetworkModel) -> (Prog, Prog) {
    let mut pre = Vec::new();
    let mut post = Vec::new();
    for i in 1..=model.topo.max_degree() as u32 {
        pre.push(Prog::assign(model.fields.up(i), 1));
        post.push(Prog::assign(model.fields.up(i), 0));
    }
    if model.failure.k.is_some() && !model.failure.is_failure_free() {
        pre.push(Prog::assign(model.fields.fl, 0));
        post.push(Prog::assign(model.fields.fl, 0));
    }
    pre.push(Prog::assign(model.fields.dt, 0));
    post.push(Prog::assign(model.fields.dt, 0));
    (Prog::seq_all(pre), Prog::seq_all(post))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailureModel, FailureSpec, RoutingScheme, Srlg};
    use mcnetkat_topo::ab_fattree;

    fn mk(scheme: RoutingScheme, failure: impl Into<FailureSpec>) -> NetworkModel {
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        NetworkModel::new(topo, dst, scheme, failure)
    }

    #[test]
    fn fused_matches_legacy_unbounded() {
        let m = mk(
            RoutingScheme::F10_3,
            FailureModel::independent(Ratio::new(1, 10)),
        );
        let mgr = Manager::new();
        let legacy = m.compile_legacy(&mgr).unwrap();
        let fused = m.compile(&mgr).unwrap();
        assert!(mgr.equiv(fused, legacy));
    }

    #[test]
    fn fused_matches_legacy_bounded() {
        let m = mk(
            RoutingScheme::F10_3_5,
            FailureModel::bounded(Ratio::new(1, 10), 2),
        );
        let mgr = Manager::new();
        let legacy = m.compile_legacy(&mgr).unwrap();
        let fused = m.compile(&mgr).unwrap();
        assert!(mgr.equiv(fused, legacy));
    }

    #[test]
    fn fused_matches_legacy_failure_free() {
        let m = mk(RoutingScheme::Ecmp, FailureModel::none());
        let mgr = Manager::new();
        let legacy = m.compile_legacy(&mgr).unwrap();
        let fused = m.compile(&mgr).unwrap();
        assert!(mgr.equiv(fused, legacy));
    }

    #[test]
    fn fused_matches_legacy_srlg_unbounded() {
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        let pr = Ratio::new(1, 50);
        let spec = FailureSpec::independent(Ratio::zero()).with_groups(Srlg::linecards(&topo, &pr));
        let m = NetworkModel::new(topo, dst, RoutingScheme::F10_3, spec);
        let mgr = Manager::new();
        let legacy = m.compile_legacy(&mgr).unwrap();
        let fused = m.compile(&mgr).unwrap();
        assert!(mgr.equiv(fused, legacy));
    }

    #[test]
    fn fused_scratch_stats_are_per_switch_sized() {
        let m = mk(
            RoutingScheme::Ecmp,
            FailureModel::independent(Ratio::new(1, 1000)),
        );
        let mgr = Manager::new();
        let (fdd, stats) = m
            .compile_with_stats(&mgr, &CompileOptions::default())
            .unwrap();
        assert_eq!(stats.switches, m.topo.switches().len());
        assert!(stats.max_scratch_nodes > 0);
        // The compiled diagram mentions no scratch field.
        let dom = mgr.domain(fdd);
        for up in m.fields.ups() {
            assert!(!dom.tested.contains_key(up));
        }
    }
}
