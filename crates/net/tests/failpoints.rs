//! Deterministic fault-injection tests (`--features failpoints`): armed
//! faults at the compiler's registered sites must surface as the matching
//! typed [`CompileError`] — never as a process abort, a hang, or a leaked
//! thread — and after clearing the faults the *same* manager must retry
//! to the exact paper probabilities.
//!
//! The failpoint registry is process-global, so every test here holds
//! [`SERIAL`] for its whole body and clears the registry before arming.

#![cfg(feature = "failpoints")]

use mcnetkat_fdd::failpoints::{self, FaultAction};
use mcnetkat_fdd::{Budget, CompileError, CompileOptions, FallbackPolicy, LinalgError, Manager};
use mcnetkat_net::{
    compile_model_parallel, running_example, FailureModel, NetworkModel, RoutingScheme,
};
use mcnetkat_num::Ratio;
use mcnetkat_topo::ab_fattree;
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Serialises every test in this binary: the registry is process-global
/// and the test runner is multi-threaded. Panic-poisoned locks are fine —
/// the next test clears the registry anyway.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Eight merge-friendly workers: 8 parts tree-reduce through two parallel
/// merge rounds (8 → 4 → 2) before the main-manager finish.
const WORKERS: usize = 8;

fn model() -> NetworkModel {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    NetworkModel::new(
        topo,
        dst,
        RoutingScheme::Ecmp,
        FailureModel::independent(Ratio::new(1, 1000)),
    )
}

/// The pristine delivery probability of [`model`] from `edge1_0`,
/// computed once on an uninjected manager.
fn reference_prob(m: &NetworkModel) -> &'static Ratio {
    static REF: OnceLock<Ratio> = OnceLock::new();
    REF.get_or_init(|| {
        let mgr = Manager::new();
        let fdd = compile_model_parallel(&mgr, m, WORKERS, &Default::default()).unwrap();
        delivery(&mgr, m, fdd)
    })
}

fn delivery(mgr: &Manager, m: &NetworkModel, fdd: mcnetkat_fdd::Fdd) -> Ratio {
    let src = m.topo.find("edge1_0").unwrap();
    let pk = mcnetkat_core::Packet::new().with(m.fields.sw, m.topo.sw_value(src));
    mgr.prob_delivery(fdd, &pk)
}

/// After a contained fault: the manager's tables are still sound, and an
/// uninjected retry of the same compile lands on the reference answer.
fn assert_recovers(mgr: &Manager, m: &NetworkModel) {
    failpoints::clear_all();
    #[cfg(feature = "audit")]
    mgr.audit().assert_clean();
    let fdd = compile_model_parallel(mgr, m, WORKERS, &Default::default()).unwrap();
    assert_eq!(&delivery(mgr, m, fdd), reference_prob(m));
    #[cfg(feature = "audit")]
    mgr.audit().assert_clean();
}

#[test]
fn worker_panic_is_contained_and_typed() {
    let _guard = serial();
    failpoints::clear_all();
    let m = model();
    let mgr = Manager::new();
    failpoints::configure(
        "net::parallel::worker",
        FaultAction::Panic("injected worker crash".into()),
        1,
        1,
    );
    match compile_model_parallel(&mgr, &m, WORKERS, &Default::default()) {
        Err(CompileError::WorkerPanicked { payload }) => {
            assert!(
                payload.contains("injected worker crash"),
                "panic payload should survive containment: {payload}"
            );
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    assert!(failpoints::fired("net::parallel::worker") >= 1);
    assert_recovers(&mgr, &m);
}

#[test]
fn merge_round_panic_is_contained_and_typed() {
    let _guard = serial();
    failpoints::clear_all();
    let m = model();
    let mgr = Manager::new();
    failpoints::configure(
        "net::parallel::merge",
        FaultAction::Panic("injected merge crash".into()),
        1,
        1,
    );
    match compile_model_parallel(&mgr, &m, WORKERS, &Default::default()) {
        Err(CompileError::WorkerPanicked { payload }) => {
            assert!(payload.contains("injected merge crash"));
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    assert_recovers(&mgr, &m);
}

#[test]
fn singular_solver_degrades_through_lumping_retry() {
    let _guard = serial();
    failpoints::clear_all();
    let m = model();
    let mgr = Manager::new();
    // First sparse rung dies; the default policy retries without lumping
    // and the compile still produces the exact answer.
    failpoints::configure("fdd::loops::solve", FaultAction::Singular, 1, 1);
    let fdd = compile_model_parallel(&mgr, &m, WORKERS, &Default::default()).unwrap();
    assert_eq!(&delivery(&mgr, &m, fdd), reference_prob(&m));
    let report = mgr.solve_report();
    assert!(
        report.lumping_retries >= 1,
        "expected a recorded lumping retry: {report:?}"
    );
    assert_eq!(report.dense_fallbacks, 0);
    assert_recovers(&mgr, &m);
}

#[test]
fn singular_solver_degrades_to_dense_reference() {
    let _guard = serial();
    failpoints::clear_all();
    let m = model();
    let mgr = Manager::new();
    // Both sparse rungs die; the dense exact rung rescues the compile.
    failpoints::configure("fdd::loops::solve", FaultAction::Singular, 1, 2);
    let fdd = compile_model_parallel(&mgr, &m, WORKERS, &Default::default()).unwrap();
    assert_eq!(&delivery(&mgr, &m, fdd), reference_prob(&m));
    let report = mgr.solve_report();
    assert!(report.dense_fallbacks >= 1, "{report:?}");
    let stats = mgr.loop_solve_stats();
    assert!(stats.dense_fallbacks >= 1, "mirrored into LoopSolveStats");
    assert_recovers(&mgr, &m);
}

#[test]
fn lump_site_failure_is_survived_by_the_unlumped_retry() {
    let _guard = serial();
    failpoints::clear_all();
    let m = model();
    let mgr = Manager::new();
    failpoints::configure("linalg::lump", FaultAction::Singular, 1, 1);
    let fdd = compile_model_parallel(&mgr, &m, WORKERS, &Default::default()).unwrap();
    assert_eq!(&delivery(&mgr, &m, fdd), reference_prob(&m));
    assert!(mgr.solve_report().lumping_retries >= 1);
    assert_recovers(&mgr, &m);
}

#[test]
fn strict_policy_turns_injected_singular_into_an_error() {
    let _guard = serial();
    failpoints::clear_all();
    let m = model();
    let mgr = Manager::new();
    failpoints::configure("fdd::loops::solve", FaultAction::Singular, 1, 3);
    let opts = CompileOptions {
        fallback: FallbackPolicy::strict(),
        ..CompileOptions::default()
    };
    match compile_model_parallel(&mgr, &m, WORKERS, &opts) {
        Err(CompileError::Solver(LinalgError::Singular(_))) => {}
        other => panic!("expected Solver(Singular), got {other:?}"),
    }
    assert!(mgr.solve_report().exhausted >= 1);
    assert_recovers(&mgr, &m);
}

#[test]
fn injected_delays_trip_a_deadline_budget() {
    let _guard = serial();
    failpoints::clear_all();
    let m = model();
    let mgr = Manager::new();
    failpoints::configure(
        "net::parallel::worker",
        FaultAction::Delay(Duration::from_millis(30)),
        1,
        10_000,
    );
    let opts = CompileOptions {
        budget: Budget::default().with_deadline(Duration::from_millis(10)),
        ..CompileOptions::default()
    };
    match compile_model_parallel(&mgr, &m, WORKERS, &opts) {
        Err(CompileError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_recovers(&mgr, &m);
}

#[test]
fn injected_cancellation_surfaces_cancelled() {
    let _guard = serial();
    failpoints::clear_all();
    let m = model();
    let mgr = Manager::new();
    failpoints::configure("net::parallel::worker", FaultAction::Cancel, 2, 1);
    match compile_model_parallel(&mgr, &m, WORKERS, &Default::default()) {
        Err(CompileError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert_recovers(&mgr, &m);
}

/// One storm case: which site gets armed, with what action, and when.
#[derive(Clone, Debug)]
struct Schedule {
    site: &'static str,
    action: FaultAction,
    nth: u64,
    times: u64,
}

/// Sites where a panic is caught by the containment layer. Panicking at a
/// sequential-path site would (correctly) abort the test process, so the
/// storm only arms `Panic` here.
const PARALLEL_SITES: [&str; 2] = ["net::parallel::worker", "net::parallel::merge"];
/// All sites reachable from the parallel fattree(4) compile.
const ALL_SITES: [&str; 5] = [
    "fdd::intern",
    "fdd::loops::solve",
    "linalg::lump",
    "net::parallel::worker",
    "net::parallel::merge",
];

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    (0..4u8, 0..8u8, 1..=6u64, 1..=3u64).prop_map(|(kind, site_sel, nth, times)| match kind {
        0 => Schedule {
            site: PARALLEL_SITES[site_sel as usize % PARALLEL_SITES.len()],
            action: FaultAction::Panic("storm panic".into()),
            nth,
            times,
        },
        1 => Schedule {
            site: ALL_SITES[site_sel as usize % ALL_SITES.len()],
            action: FaultAction::Singular,
            nth,
            times,
        },
        2 => Schedule {
            site: ALL_SITES[site_sel as usize % ALL_SITES.len()],
            action: FaultAction::Delay(Duration::from_millis(1)),
            nth,
            times,
        },
        _ => Schedule {
            site: ALL_SITES[site_sel as usize % ALL_SITES.len()],
            action: FaultAction::Cancel,
            nth,
            times,
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The storm: for a random fault schedule, the parallel fattree(4)
    /// compile either succeeds with the exact reference probability or
    /// returns a typed error consistent with the injected action — and
    /// either way the manager retries clean afterwards. The test binary
    /// terminating at all is the no-leaked-threads/no-deadlock assertion.
    #[test]
    fn storm_random_schedules_against_fattree4(schedule in arb_schedule()) {
        let _guard = serial();
        failpoints::clear_all();
        let m = model();
        let mgr = Manager::new();
        failpoints::configure(schedule.site, schedule.action.clone(), schedule.nth, schedule.times);
        let result = compile_model_parallel(&mgr, &m, WORKERS, &Default::default());
        match result {
            Ok(fdd) => {
                // Fault never fired, was a pure delay, or the fallback
                // chain absorbed it — the answer must still be exact.
                prop_assert_eq!(&delivery(&mgr, &m, fdd), reference_prob(&m));
            }
            Err(CompileError::WorkerPanicked { .. }) => {
                prop_assert!(matches!(schedule.action, FaultAction::Panic(_)));
            }
            Err(CompileError::Cancelled) => {
                prop_assert!(matches!(schedule.action, FaultAction::Cancel));
            }
            Err(CompileError::Solver(_)) => {
                prop_assert!(matches!(schedule.action, FaultAction::Singular));
            }
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
        assert_recovers(&mgr, &m);
    }

    /// Same storm against the paper's §2 running example through the
    /// sequential compiler (no panic actions — there is no containment
    /// boundary on this path, by design). The resilient scheme under f2
    /// must deliver with probability exactly 24/25 whenever the compile
    /// succeeds, and after clearing, always.
    #[test]
    fn storm_sequential_sec2_example(
        site_sel in 0..3u8,
        kind in 0..3u8,
        nth in 1..=4u64,
        times in 1..=3u64,
    ) {
        let _guard = serial();
        failpoints::clear_all();
        let sites = ["fdd::intern", "fdd::loops::solve", "linalg::lump"];
        let site = sites[site_sel as usize % sites.len()];
        let action = match kind {
            0 => FaultAction::Singular,
            1 => FaultAction::Delay(Duration::from_millis(1)),
            _ => FaultAction::Cancel,
        };
        failpoints::configure(site, action.clone(), nth, times);
        let ex = running_example();
        let mgr = Manager::new();
        let prog = ex.model(&ex.resilient, &ex.f2);
        match mgr.compile(&prog) {
            Ok(fdd) => {
                prop_assert_eq!(
                    mgr.prob_delivery(fdd, &ex.ingress_packet()),
                    Ratio::new(24, 25)
                );
            }
            Err(CompileError::Cancelled) => {
                prop_assert!(matches!(action, FaultAction::Cancel));
            }
            Err(CompileError::Solver(_)) => {
                prop_assert!(matches!(action, FaultAction::Singular));
            }
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
        failpoints::clear_all();
        #[cfg(feature = "audit")]
        mgr.audit().assert_clean();
        let fdd = mgr.compile(&prog).unwrap();
        prop_assert_eq!(
            mgr.prob_delivery(fdd, &ex.ingress_packet()),
            Ratio::new(24, 25)
        );
    }
}
