//! Symmetry lumping is invisible in the answers: compiling with the
//! quotiented loop solve (`lumping: true`, the default) must produce a
//! diagram `equiv` to — and refining, both ways — the unquotiented solve
//! on real network models, with exactly equal delivery probabilities.
//!
//! Fat-trees are the interesting case: their pods are isomorphic, so the
//! lumped chain is a fraction of the size of the raw one (the stats
//! assertions pin that the quotient actually engages rather than
//! trivially holding because nothing lumped).

use mcnetkat_fdd::{CompileOptions, Manager};
use mcnetkat_net::{running_example, FailureModel, NetworkModel, Queries, RoutingScheme};
use mcnetkat_num::Ratio;
use mcnetkat_topo::{fattree, Topology};

fn opts(lumping: bool) -> CompileOptions {
    CompileOptions {
        lumping,
        ..CompileOptions::default()
    }
}

/// Compiles `model` with and without lumping (same manager, exact solver
/// both times) and pins equivalence, refinement both ways, and exact
/// delivery-probability equality from every ingress.
fn assert_quotient_invisible(model: &NetworkModel) {
    let mgr = Manager::new();
    let lumped = Queries::with_options(&mgr, model, &opts(true)).unwrap();
    let stats = mgr.loop_solve_stats();
    assert!(
        stats.lumped_blocks < stats.transient_states,
        "lumping should engage on a symmetric fat-tree: {} blocks from {} states",
        stats.lumped_blocks,
        stats.transient_states,
    );
    let plain = Queries::with_options(&mgr, model, &opts(false)).unwrap();
    assert!(
        mgr.equiv(lumped.fdd(), plain.fdd()),
        "quotiented compile ≢ unquotiented"
    );
    assert!(
        lumped.refines(&plain) && plain.refines(&lumped),
        "refinement must hold both ways"
    );
    for src in model.ingresses() {
        assert_eq!(
            lumped.delivery_prob(src),
            plain.delivery_prob(src),
            "delivery from {src:?} must be bit-identical"
        );
    }
}

fn fattree_model(p: usize) -> (NetworkModel, Topology) {
    let topo = fattree(p);
    let dst = topo.find("edge0_0").unwrap();
    let m = NetworkModel::new(
        topo.clone(),
        dst,
        RoutingScheme::Ecmp,
        FailureModel::independent(Ratio::new(1, 1000)),
    );
    (m, topo)
}

#[test]
fn fattree4_quotiented_equals_unquotiented() {
    let (m, _) = fattree_model(4);
    assert_quotient_invisible(&m);
}

#[test]
fn fattree6_quotiented_equals_unquotiented() {
    let (m, _) = fattree_model(6);
    assert_quotient_invisible(&m);
}

/// The §2 running example end to end: quotiented ≡ unquotiented, and both
/// still hit the paper's exact 24/25 delivery for the resilient scheme
/// under `f2` (a number a float solve can only approximate).
#[test]
fn sec2_example_quotient_invisible_and_exact() {
    let ex = running_example();
    let prog = ex.model(&ex.resilient, &ex.f2);
    let mgr = Manager::new();
    let lumped = mgr.compile_with(&prog, &opts(true)).unwrap();
    let plain = mgr.compile_with(&prog, &opts(false)).unwrap();
    assert!(mgr.equiv(lumped, plain));
    assert!(mgr.less_eq(lumped, plain) && mgr.less_eq(plain, lumped));
    let pk = ex.ingress_packet();
    assert_eq!(mgr.prob_delivery(lumped, &pk), Ratio::new(24, 25));
    assert_eq!(mgr.prob_delivery(plain, &pk), Ratio::new(24, 25));
}
