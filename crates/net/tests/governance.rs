//! Governed-abort tests: deadline, cross-thread cancellation, and
//! table-size ceilings must abort a compile with the matching typed
//! error, within a bounded grace period, leaving the manager audit-clean
//! and able to complete the same compile on retry.

use mcnetkat_fdd::{Budget, CancelToken, CompileError, CompileOptions, Manager};
use mcnetkat_net::{compile_model_parallel, FailureModel, NetworkModel, RoutingScheme};
use mcnetkat_num::Ratio;
use mcnetkat_topo::ab_fattree;
use std::time::{Duration, Instant};

fn model(k: usize) -> NetworkModel {
    let topo = ab_fattree(k);
    let dst = topo.find("edge0_0").unwrap();
    NetworkModel::new(
        topo,
        dst,
        RoutingScheme::Ecmp,
        FailureModel::independent(Ratio::new(1, 1000)),
    )
}

fn delivery(mgr: &Manager, m: &NetworkModel, fdd: mcnetkat_fdd::Fdd) -> Ratio {
    let src = m.topo.find("edge1_0").unwrap();
    let pk = mcnetkat_core::Packet::new().with(m.fields.sw, m.topo.sw_value(src));
    mgr.prob_delivery(fdd, &pk)
}

#[cfg(feature = "audit")]
fn assert_audit_clean(mgr: &Manager) {
    mgr.audit().assert_clean();
}
#[cfg(not(feature = "audit"))]
fn assert_audit_clean(_mgr: &Manager) {}

/// A fattree(12) compile is far too large to finish in 100 ms, so the
/// deadline must trip mid-compile — and the per-switch checkpoints plus
/// the op-level governor must surface it long before the compile would
/// have completed. The grace bound is deliberately generous for slow
/// debug builds; the point is "seconds, not the minutes a full
/// fattree(12) compile takes".
#[test]
fn deadline_expired_fattree12_aborts_within_bounded_grace() {
    let m = model(12);
    let mgr = Manager::new();
    let opts = CompileOptions {
        budget: Budget::default().with_deadline(Duration::from_millis(100)),
        ..CompileOptions::default()
    };
    let start = Instant::now();
    let err = m.compile_with(&mgr, &opts).unwrap_err();
    let elapsed = start.elapsed();
    assert!(
        matches!(err, CompileError::DeadlineExceeded),
        "expected DeadlineExceeded, got {err:?}"
    );
    assert!(
        elapsed < Duration::from_secs(60),
        "governed abort took {elapsed:?} — checkpoints are not firing"
    );
    assert_audit_clean(&mgr);
    // The manager is still fully usable: a small model compiles fine.
    let small = model(4);
    let fdd = small.compile(&mgr).unwrap();
    assert!(delivery(&mgr, &small, fdd) > Ratio::zero());
}

/// A `CancelToken` fired from another thread mid-compile surfaces as
/// `Cancelled`, and the same manager then completes the same compile.
#[test]
fn cross_thread_cancellation_mid_compile() {
    let m = model(8);
    // Reference run: how long does this compile take here, and what is
    // the right answer?
    let reference = Manager::new();
    let start = Instant::now();
    let ref_fdd = m.compile(&reference).unwrap();
    let full = start.elapsed();
    let expected = delivery(&reference, &m, ref_fdd);

    // Deterministic warm-up: a pre-fired token cancels instantly.
    let mgr = Manager::new();
    let fired = CancelToken::new();
    fired.cancel();
    let opts = CompileOptions {
        budget: Budget::default().with_cancel(fired),
        ..CompileOptions::default()
    };
    assert!(matches!(
        m.compile_with(&mgr, &opts),
        Err(CompileError::Cancelled)
    ));

    // Mid-compile: fire the token from another thread at ~10% of the
    // measured compile time.
    let token = CancelToken::new();
    let trigger = token.clone();
    let delay = full / 10;
    let firer = std::thread::spawn(move || {
        std::thread::sleep(delay);
        trigger.cancel();
    });
    let opts = CompileOptions {
        budget: Budget::default().with_cancel(token),
        ..CompileOptions::default()
    };
    let result = m.compile_with(&mgr, &opts);
    firer.join().unwrap();
    assert!(
        matches!(result, Err(CompileError::Cancelled)),
        "expected Cancelled, got {result:?}"
    );
    assert_audit_clean(&mgr);

    // Retry on the very same manager, uncancelled: exact same answer.
    let fdd = m.compile(&mgr).unwrap();
    assert_eq!(delivery(&mgr, &m, fdd), expected);
    assert_audit_clean(&mgr);
}

/// A live-node ceiling below the compile's real peak trips
/// `ResourceExhausted`; lifting it lets the same manager finish.
#[test]
fn live_node_ceiling_trips_resource_exhausted() {
    let m = model(4);
    let reference = Manager::new();
    let ref_fdd = m.compile(&reference).unwrap();
    let peak = reference.peak_live_nodes();
    let expected = delivery(&reference, &m, ref_fdd);
    assert!(peak > 2, "fattree(4) compile must build real diagrams");

    let mgr = Manager::new();
    let opts = CompileOptions {
        budget: Budget::default().with_max_live_nodes(peak / 2),
        ..CompileOptions::default()
    };
    match m.compile_with(&mgr, &opts) {
        Err(CompileError::ResourceExhausted { resource, .. }) => {
            assert_eq!(resource, "live nodes");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    assert_audit_clean(&mgr);
    let fdd = m.compile(&mgr).unwrap();
    assert_eq!(delivery(&mgr, &m, fdd), expected);
}

/// The same governance applies through the parallel backend: the caller's
/// token cancels all workers, and the typed error comes back intact.
#[test]
fn parallel_backend_honours_pre_fired_cancellation() {
    let m = model(4);
    let mgr = Manager::new();
    let token = CancelToken::new();
    token.cancel();
    let opts = CompileOptions {
        budget: Budget::default().with_cancel(token),
        ..CompileOptions::default()
    };
    assert!(matches!(
        compile_model_parallel(&mgr, &m, 4, &opts),
        Err(CompileError::Cancelled)
    ));
    assert_audit_clean(&mgr);
    let fdd = compile_model_parallel(&mgr, &m, 4, &Default::default()).unwrap();
    let reference = Manager::new();
    let ref_fdd = m.compile(&reference).unwrap();
    assert_eq!(delivery(&mgr, &m, fdd), delivery(&reference, &m, ref_fdd));
}
