//! Integration tests for correlated (shared-risk-group) failure models:
//! the singleton-SRLG ≡ independent semantic anchor on the §2 running
//! example and fattree(4), correlated-vs-independent separation on the
//! F10 schemes, and parallel-compile agreement under SRLG specs.

use mcnetkat_fdd::Manager;
use mcnetkat_net::{
    compile_model_parallel, running_example, FailureModel, FailureSpec, NetFields, NetworkModel,
    Queries, RoutingScheme, Srlg,
};
use mcnetkat_num::Ratio;
use mcnetkat_topo::{ab_fattree, fattree, Topology};

/// The all-singletons SRLG spec over every failure-prone link: must be
/// indistinguishable from independent failures with the same `pr`.
fn singleton_spec(topo: &Topology, pr: &Ratio, k: Option<u32>) -> FailureSpec {
    let base = match k {
        Some(k) => FailureSpec::bounded(pr.clone(), k),
        None => FailureSpec::independent(pr.clone()),
    };
    base.with_groups(Srlg::singletons(topo, pr))
}

/// One "line card" group per aggregation/core switch: all of a switch's
/// down links fail together.
fn linecard_spec(topo: &Topology, pr: &Ratio, k: Option<u32>) -> FailureSpec {
    let base = match k {
        Some(k) => FailureSpec::bounded(Ratio::zero(), k),
        None => FailureSpec::independent(Ratio::zero()),
    };
    base.with_groups(Srlg::linecards(topo, pr))
}

#[test]
fn singleton_srlg_matches_independent_on_running_example_hop() {
    // The §2 running example draws up2/up3 independently with pr 1/5
    // (`f2`). A spec with one singleton group per link must compile to an
    // equivalent diagram once the group scratch fields are projected out.
    let ex = running_example();
    let fields = NetFields::with_groups(3, 2);
    let pr = Ratio::new(1, 5);
    let spec = FailureSpec::independent(pr.clone())
        .with_group(Srlg::new("l12", pr.clone(), vec![(1, 2)]))
        .with_group(Srlg::new("l13", pr.clone(), vec![(1, 3)]));
    let mgr = Manager::new();
    let corr = mgr.compile(&spec.hop_program(&fields, 1, &[2, 3])).unwrap();
    let corr = mgr.forget(corr, fields.grps());
    let indep = mgr.compile(&ex.f2).unwrap();
    assert!(mgr.equiv(corr, indep));
    assert!(mgr.less_eq(corr, indep) && mgr.less_eq(indep, corr));
}

#[test]
fn singleton_srlg_matches_independent_on_running_example_model() {
    let ex = running_example();
    let fields = NetFields::with_groups(3, 2);
    let pr = Ratio::new(1, 5);
    let spec = FailureSpec::independent(pr.clone())
        .with_group(Srlg::new("l12", pr.clone(), vec![(1, 2)]))
        .with_group(Srlg::new("l13", pr, vec![(1, 3)]));
    // Per-hop failure program plus the per-hop group erasure (no up-flag
    // erasure: the §2 model carries the flags in its loop states).
    let f_corr = spec
        .hop_program(&fields, 1, &[2, 3])
        .seq(spec.erase_program(&fields, &[]));
    let mgr = Manager::new();
    for policy in [&ex.naive, &ex.resilient] {
        let corr = mgr.compile(&ex.model(policy, &f_corr)).unwrap();
        let corr = mgr.forget(corr, fields.grps());
        let indep = mgr.compile(&ex.model(policy, &ex.f2)).unwrap();
        assert!(mgr.equiv(corr, indep));
        assert!(mgr.less_eq(corr, indep) && mgr.less_eq(indep, corr));
    }
}

#[test]
fn singleton_srlg_refines_independent_both_ways_on_fattree4() {
    let topo = fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    let pr = Ratio::new(1, 100);
    for k in [None, Some(1), Some(2)] {
        let indep = match k {
            Some(k) => FailureModel::bounded(pr.clone(), k),
            None => FailureModel::independent(pr.clone()),
        };
        let m_indep = NetworkModel::new(topo.clone(), dst, RoutingScheme::Ecmp, indep);
        let m_srlg = NetworkModel::new(
            topo.clone(),
            dst,
            RoutingScheme::Ecmp,
            singleton_spec(&topo, &pr, k),
        );
        let mgr = Manager::new();
        let q_indep = Queries::new(&mgr, &m_indep).unwrap();
        let q_srlg = Queries::new(&mgr, &m_srlg).unwrap();
        assert!(q_srlg.refines(&q_indep), "k={k:?}");
        assert!(q_indep.refines(&q_srlg), "k={k:?}");
        assert!(mgr.equiv(q_srlg.fdd(), q_indep.fdd()), "k={k:?}");
    }
}

#[test]
fn linecard_correlation_separates_from_independent_on_f10() {
    // F10₃'s core-level rerouting candidates share the core's line card
    // with the primary next hop, so correlated card failures kill primary
    // and backup together: delivery drops strictly below the independent
    // model with identical per-link marginals.
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    let pr = Ratio::new(1, 10);
    let m_indep = NetworkModel::new(
        topo.clone(),
        dst,
        RoutingScheme::F10_3,
        FailureModel::independent(pr.clone()),
    );
    let m_corr = NetworkModel::new(
        topo.clone(),
        dst,
        RoutingScheme::F10_3,
        linecard_spec(&topo, &pr, None),
    );
    let mgr = Manager::new();
    let q_indep = Queries::new(&mgr, &m_indep).unwrap();
    let q_corr = Queries::new(&mgr, &m_corr).unwrap();
    assert!(!mgr.equiv(q_corr.fdd(), q_indep.fdd()));
    assert!(
        q_corr.min_delivery() < q_indep.min_delivery(),
        "correlated {} vs independent {}",
        q_corr.min_delivery(),
        q_indep.min_delivery()
    );
    // Correlation only ever hurts here: the correlated model refines the
    // independent one, strictly.
    assert!(q_corr.refines(&q_indep));
    assert!(!q_indep.refines(&q_corr));
}

#[test]
fn one_linecard_failure_breaks_f10_one_resilience() {
    // Figure 11b: F10₃ is 1-resilient under f_1 — any *single link*
    // failure is routed around. A single line-card event that takes a
    // whole core's downlinks with it is not: every rerouting candidate at
    // that core dies with the primary.
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    let pr = Ratio::new(1, 100);
    let mgr = Manager::new();
    let m_indep = NetworkModel::new(
        topo.clone(),
        dst,
        RoutingScheme::F10_3,
        FailureModel::bounded(pr.clone(), 1),
    );
    let q_indep = Queries::new(&mgr, &m_indep).unwrap();
    assert!(q_indep.equiv_teleport().unwrap());
    let m_corr = NetworkModel::new(
        topo.clone(),
        dst,
        RoutingScheme::F10_3,
        linecard_spec(&topo, &pr, Some(1)),
    );
    let q_corr = Queries::new(&mgr, &m_corr).unwrap();
    assert!(!q_corr.equiv_teleport().unwrap());
}

#[test]
fn parallel_compile_agrees_under_srlg() {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    let spec = linecard_spec(&topo, &Ratio::new(1, 10), None);
    let m = NetworkModel::new(topo, dst, RoutingScheme::F10_3, spec);
    let mgr = Manager::new();
    let sequential = m.compile(&mgr).unwrap();
    for workers in [2, 3] {
        let parallel = compile_model_parallel(&mgr, &m, workers, &Default::default()).unwrap();
        assert!(mgr.equiv(sequential, parallel), "workers = {workers}");
    }
}

#[test]
fn heterogeneous_links_order_between_uniform_bounds() {
    // Raising one link's failure probability sits between the all-low and
    // all-high uniform models in the refinement order. Destination
    // edge0_1 makes the override genuinely partial: paths towards it
    // cross aggregation down-port 2 (overridden high) and core down-port
    // 1 (kept low), so the mixed model is strictly between the uniforms.
    let topo = fattree(4);
    let dst = topo.find("edge0_1").unwrap();
    let low = Ratio::new(1, 10);
    let high = Ratio::new(1, 4);
    let mixed = FailureSpec::independent(low.clone()).with_link_pr(2, high.clone());
    let mgr = Manager::new();
    let mk = |failure: FailureSpec| -> NetworkModel {
        NetworkModel::new(topo.clone(), dst, RoutingScheme::Ecmp, failure)
    };
    let m_low = mk(FailureSpec::independent(low));
    let m_mixed = mk(mixed);
    let m_high = mk(FailureSpec::independent(high));
    let q_low = Queries::new(&mgr, &m_low).unwrap();
    let q_mixed = Queries::new(&mgr, &m_mixed).unwrap();
    let q_high = Queries::new(&mgr, &m_high).unwrap();
    assert!(q_high.refines(&q_mixed));
    assert!(q_mixed.refines(&q_low));
    assert!(q_mixed.strictly_refines(&q_low));
    assert!(q_high.strictly_refines(&q_mixed));
}

#[test]
fn compiled_srlg_models_mention_no_group_fields() {
    // The group scratch fields must be fully projected out of compiled
    // diagrams: no tests (Domain) on any grp field.
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    let spec = linecard_spec(&topo, &Ratio::new(1, 10), Some(2));
    let m = NetworkModel::new(topo, dst, RoutingScheme::F10_3_5, spec);
    let mgr = Manager::new();
    let fdd = m.compile(&mgr).unwrap();
    let dom = mgr.domain(fdd);
    for &g in m.fields.grps() {
        assert!(!dom.tested.contains_key(&g), "{g} tested in compiled model");
    }
    // And the model still answers queries.
    let q = Queries::from_fdd(&mgr, &m, fdd);
    let d = q.min_delivery();
    assert!(d > Ratio::zero() && d < Ratio::one(), "min delivery {d}");
}
