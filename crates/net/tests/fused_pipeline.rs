//! Differential tests pinning the fused per-switch pipeline against the
//! legacy whole-body compile path.
//!
//! The fused pipeline (`NetworkModel::compile`) compiles each switch's
//! hop in a scratch manager, eliminates the `up_i`/`grp_j` scratch fields
//! eagerly, and assembles the global model from scratch-free diagrams.
//! The legacy path (`NetworkModel::compile_legacy`) builds the whole body
//! FDD first. These tests pin the two `equiv` (and `refines` both ways)
//! on the §2 running example's hop, fattree(4)/(6), all-singleton and
//! correlated SRLG specs, and randomised guarded specs — for both the
//! sequential and parallel backends, bounded and unbounded.

use mcnetkat_fdd::{Manager, ScratchField};
use mcnetkat_net::{
    compile_model_parallel, running_example, FailureModel, FailureSpec, NetworkModel,
    RoutingScheme, Srlg,
};
use mcnetkat_num::Ratio;
use mcnetkat_topo::{ab_fattree, fattree, Topology};

/// Pins fused ≡ legacy (and ≤ both ways) for one model, sequentially and
/// through the parallel backend.
fn assert_fused_matches_legacy(model: &NetworkModel, workers: &[usize]) {
    let mgr = Manager::new();
    let legacy = model.compile_legacy(&mgr).unwrap();
    let fused = model.compile(&mgr).unwrap();
    assert!(mgr.equiv(fused, legacy), "sequential fused ≢ legacy");
    assert!(
        mgr.less_eq(fused, legacy) && mgr.less_eq(legacy, fused),
        "refinement must hold both ways"
    );
    for &w in workers {
        let par = compile_model_parallel(&mgr, model, w, &Default::default()).unwrap();
        assert!(mgr.equiv(par, legacy), "parallel({w}) fused ≢ legacy");
    }
}

/// The §2 running example's fragile hop: compiling the routing program
/// *without* the draw and eliminating `up2`/`up3` with the `f2` weights
/// must equal compiling the full `f2 ; p̂ ; t̂` hop — the factored draw
/// representation behind the fused pipeline, pinned on the paper's own
/// example.
#[test]
fn sec2_example_hop_eliminates_to_the_drawn_hop() {
    let ex = running_example();
    let pr = Ratio::new(1, 5); // f2: both links fail with probability 1/5
    let mgr = Manager::new();
    let hop = ex.resilient.clone().seq(ex.topology.clone());
    let drawn = mgr.compile(&ex.f2.clone().seq(hop.clone())).unwrap();
    let drawn = mgr.forget(drawn, &[ex.fields.up(1), ex.fields.up(2), ex.fields.up(3)]);
    let routed = mgr.compile(&hop).unwrap();
    let eliminated = mgr.eliminate(
        routed,
        &[
            ScratchField::bernoulli(ex.fields.up(2), Ratio::one() - pr.clone()),
            ScratchField::bernoulli(ex.fields.up(3), Ratio::one() - pr.clone()),
            ScratchField::write_only(ex.fields.up(1)),
        ],
    );
    assert!(mgr.equiv(eliminated, drawn));
    assert!(mgr.less_eq(eliminated, drawn) && mgr.less_eq(drawn, eliminated));
}

#[test]
fn fattree4_all_schemes_unbounded() {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    for scheme in [
        RoutingScheme::Ecmp,
        RoutingScheme::F10_3,
        RoutingScheme::F10_3_5,
    ] {
        let m = NetworkModel::new(
            topo.clone(),
            dst,
            scheme,
            FailureModel::independent(Ratio::new(1, 10)),
        );
        assert_fused_matches_legacy(&m, &[3]);
    }
}

#[test]
fn fattree4_bounded_budgets() {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    for k in [0u32, 1, 2] {
        let m = NetworkModel::new(
            topo.clone(),
            dst,
            RoutingScheme::F10_3,
            FailureModel::bounded(Ratio::new(1, 10), k),
        );
        assert_fused_matches_legacy(&m, &[2]);
    }
}

#[test]
fn fattree4_heterogeneous_link_probabilities() {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    let spec = FailureSpec::independent(Ratio::new(1, 100))
        .with_link_pr(1, Ratio::new(1, 2))
        .with_link_pr(2, Ratio::zero());
    let m = NetworkModel::new(topo, dst, RoutingScheme::F10_3, spec);
    assert_fused_matches_legacy(&m, &[3]);
}

#[test]
fn fattree6_ecmp_unbounded() {
    let topo = fattree(6);
    let dst = topo.find("edge0_0").unwrap();
    let m = NetworkModel::new(
        topo,
        dst,
        RoutingScheme::Ecmp,
        FailureModel::independent(Ratio::new(1, 1000)),
    );
    assert_fused_matches_legacy(&m, &[4]);
}

#[test]
fn fattree4_hop_capped_model() {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    let m = NetworkModel::new(
        topo,
        dst,
        RoutingScheme::Ecmp,
        FailureModel::independent(Ratio::new(1, 10)),
    )
    .with_hop_cap(6);
    assert_fused_matches_legacy(&m, &[2]);
}

/// All-singleton SRLG specs: fused ≡ legacy *and* both ≡ the plain
/// independent model (the semantic anchor from PR 4), unbounded and
/// bounded.
#[test]
fn srlg_singletons_match_independent_through_both_pipelines() {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    let pr = Ratio::new(1, 20);
    for k in [None, Some(1)] {
        let base = match k {
            Some(k) => FailureSpec::bounded(pr.clone(), k),
            None => FailureSpec::independent(pr.clone()),
        };
        let spec = base.with_groups(Srlg::singletons(&topo, &pr));
        let m = NetworkModel::new(topo.clone(), dst, RoutingScheme::F10_3, spec);
        assert_fused_matches_legacy(&m, &[3]);
        let indep = match k {
            Some(k) => FailureModel::bounded(pr.clone(), k),
            None => FailureModel::independent(pr.clone()),
        };
        let mi = NetworkModel::new(topo.clone(), dst, RoutingScheme::F10_3, indep);
        let mgr = Manager::new();
        let grouped = m.compile(&mgr).unwrap();
        let plain = mi.compile(&mgr).unwrap();
        assert!(mgr.equiv(grouped, plain), "k = {k:?}");
    }
}

/// Correlated line-card groups (members genuinely fail together).
#[test]
fn srlg_linecards_match_legacy_through_both_pipelines() {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    let pr = Ratio::new(1, 20);
    for k in [None, Some(1)] {
        let base = match k {
            Some(k) => FailureSpec::bounded(Ratio::zero(), k),
            None => FailureSpec::independent(Ratio::zero()),
        };
        let spec = base.with_groups(Srlg::linecards(&topo, &pr));
        let m = NetworkModel::new(topo.clone(), dst, RoutingScheme::F10_3_5, spec);
        assert_fused_matches_legacy(&m, &[2]);
    }
}

/// Randomised guarded specs: a small deterministic sweep over failure
/// probability, budget, scheme and singleton-group presence (pseudo-random
/// in spirit, exhaustive in practice — every combination is checked).
#[test]
fn randomised_spec_sweep_matches_legacy() {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    let prs = [Ratio::new(1, 4), Ratio::new(1, 16)];
    let ks = [None, Some(1)];
    let schemes = [RoutingScheme::Ecmp, RoutingScheme::F10_3_5];
    for pr in &prs {
        for &k in &ks {
            for &scheme in &schemes {
                for grouped in [false, true] {
                    let base = match k {
                        Some(k) => FailureSpec::bounded(pr.clone(), k),
                        None => FailureSpec::independent(pr.clone()),
                    };
                    let spec = if grouped {
                        FailureSpec {
                            pr: Ratio::zero(),
                            ..base
                        }
                        .with_groups(Srlg::linecards(&topo, pr))
                    } else {
                        base
                    };
                    let m = NetworkModel::new(topo.clone(), dst, scheme, spec);
                    let mgr = Manager::new();
                    let legacy = m.compile_legacy(&mgr).unwrap();
                    let fused = m.compile(&mgr).unwrap();
                    assert!(
                        mgr.equiv(fused, legacy),
                        "pr={pr} k={k:?} scheme={scheme:?} grouped={grouped}"
                    );
                }
            }
        }
    }
}

/// The scale the fused pipeline unlocks: fattree(10) compiles in well
/// under a second even in debug builds — this is the CI smoke gate that
/// keeps p ≥ 10 green.
#[test]
fn fattree10_smoke_compile() {
    let topo = fattree(10);
    let dst = topo.find("edge0_0").unwrap();
    let m = NetworkModel::new(topo, dst, RoutingScheme::Ecmp, FailureModel::none());
    let mgr = Manager::new();
    let fdd = m.compile(&mgr).unwrap();
    let tele = mgr.compile(&m.teleport()).unwrap();
    assert!(
        mgr.equiv(fdd, tele),
        "failure-free ECMP delivers everything"
    );
}

/// The scale the sparse SCC solve (plus symmetry lumping) unlocks:
/// fattree(16) *with failures* — thousands of transient loop states —
/// compiles inside a strict wall-clock budget even in debug builds, and
/// the answer is a real probability, not a degenerate one. The budget is
/// generous for CI-grade hardware but would blow up instantly if the
/// dense solve ever crept back in.
#[test]
fn fattree16_smoke_compile_with_failures() {
    let budget = std::time::Duration::from_secs(120);
    let start = std::time::Instant::now();
    let topo = fattree(16);
    let dst = topo.find("edge0_0").unwrap();
    let m = NetworkModel::new(
        topo,
        dst,
        RoutingScheme::Ecmp,
        FailureModel::independent(Ratio::new(1, 1000)),
    );
    let mgr = Manager::new();
    let fdd = m.compile(&mgr).unwrap();
    let elapsed = start.elapsed();
    assert!(
        elapsed < budget,
        "fattree(16) compile took {elapsed:?}, budget {budget:?}"
    );
    let src = m.topo.find("edge1_0").unwrap();
    let pk = mcnetkat_core::Packet::new().with(m.fields.sw, m.topo.sw_value(src));
    let p = mgr.prob_delivery(fdd, &pk);
    assert!(
        p > Ratio::new(99, 100) && p < Ratio::one(),
        "delivery under 1/1000 failures should be near-certain but not 1"
    );
    let stats = mgr.loop_solve_stats();
    assert!(
        stats.lumped_blocks < stats.transient_states / 10,
        "symmetry quotient should collapse the chain by ≥10×: {} blocks from {} states",
        stats.lumped_blocks,
        stats.transient_states,
    );
}

/// Sanity check that the §2-style delivery numbers survive the pipeline
/// swap on a real fattree: fused and legacy agree on the actual query
/// output, not just on `equiv`.
fn delivery(topo: Topology, scheme: RoutingScheme) -> (Ratio, Ratio) {
    let dst = topo.find("edge0_0").unwrap();
    let m = NetworkModel::new(
        topo,
        dst,
        scheme,
        FailureModel::independent(Ratio::new(1, 4)),
    );
    let mgr = Manager::new();
    let fused = m.compile(&mgr).unwrap();
    let legacy = m.compile_legacy(&mgr).unwrap();
    let src = m.topo.find("edge1_0").unwrap();
    let pk = mcnetkat_core::Packet::new().with(m.fields.sw, m.topo.sw_value(src));
    (
        mgr.prob_delivery(fused, &pk),
        mgr.prob_delivery(legacy, &pk),
    )
}

#[test]
fn delivery_probabilities_agree_exactly() {
    for scheme in [RoutingScheme::Ecmp, RoutingScheme::F10_3] {
        let (fused, legacy) = delivery(ab_fattree(4), scheme);
        assert_eq!(fused, legacy, "{scheme:?}");
        assert!(fused > Ratio::zero() && fused < Ratio::one());
    }
}
