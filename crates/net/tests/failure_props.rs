//! Property tests for failure-model hop programs: every variant —
//! uniform, bounded, heterogeneous, and SRLG — must yield a probability
//! distribution with mass exactly 1, and bounded variants must respect
//! the failure budget (at most `k` failure events in the support, with a
//! group event charged once however many links it downs).

use mcnetkat_core::{Interp, Packet};
use mcnetkat_net::{FailureSpec, NetFields, Srlg};
use mcnetkat_num::Ratio;
use proptest::prelude::*;

/// The switch every generated spec draws for.
const SW: u32 = 1;
/// The failure-prone ports of the generated hop.
const PORTS: [u32; 3] = [1, 2, 3];

/// Group layouts over `PORTS`: index into this table is generated.
/// `None` entries draw independently.
fn group_layout(sel: u8) -> Vec<Vec<(u32, u32)>> {
    match sel % 4 {
        0 => vec![],                                      // no groups
        1 => vec![vec![(SW, 1), (SW, 2)]],                // one pair
        2 => vec![vec![(SW, 1), (SW, 2), (SW, 3)]],       // whole line card
        _ => vec![vec![(SW, 1)], vec![(SW, 2), (SW, 3)]], // singleton + pair
    }
}

/// A random composite spec: uniform pr, optional budget, an override on
/// port 2, and one of the group layouts.
fn arb_spec() -> impl Strategy<Value = FailureSpec> {
    (0..=4i64, 0..4u32, 0..=4i64, 0..4u8, 0..=4i64).prop_map(
        |(num, ksel, override_num, layout, group_num)| {
            let pr = Ratio::new(num, 4);
            let mut spec = match ksel {
                0 => FailureSpec::independent(pr),
                k => FailureSpec::bounded(pr, k - 1),
            };
            spec = spec.with_link_pr(2, Ratio::new(override_num, 4));
            for (j, members) in group_layout(layout).into_iter().enumerate() {
                spec = spec.with_group(Srlg::new(
                    format!("g{j}"),
                    Ratio::new(group_num, 4),
                    members,
                ));
            }
            spec
        },
    )
}

/// The failure events of one outcome: downed drawn groups count once,
/// downed ungrouped ports once each.
fn failure_events(spec: &FailureSpec, fields: &NetFields, pk: &Packet) -> u32 {
    let mut events = 0;
    let mut grouped = std::collections::BTreeSet::new();
    for g in &spec.groups {
        let members: Vec<u32> = g
            .members
            .iter()
            .filter(|&&(sw, _)| sw == SW)
            .map(|&(_, p)| p)
            .collect();
        grouped.extend(members.iter().copied());
        if !members.is_empty() && members.iter().all(|&p| pk.get(fields.up(p)) == 0) {
            events += 1;
        }
    }
    for &p in &PORTS {
        if !grouped.contains(&p) && pk.get(fields.up(p)) == 0 {
            events += 1;
        }
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Mass is exactly 1 and nothing is ever dropped by a failure draw.
    #[test]
    fn hop_program_is_a_distribution(spec in arb_spec()) {
        let fields = NetFields::with_groups(PORTS.len(), spec.group_count());
        let prog = spec.hop_program(&fields, SW, &PORTS);
        let d = Interp::new().eval_packet(&prog, &Packet::new());
        prop_assert_eq!(d.mass(), Ratio::one());
        prop_assert_eq!(d.drop_prob(), Ratio::zero());
    }

    /// Bounded specs exhibit at most `k` failure events in their support,
    /// the budget counter records exactly that number, and unbounded
    /// specs never touch the counter.
    #[test]
    fn budget_bounds_failure_events(spec in arb_spec()) {
        let fields = NetFields::with_groups(PORTS.len(), spec.group_count());
        let prog = spec.hop_program(&fields, SW, &PORTS);
        let d = Interp::new().eval_packet(&prog, &Packet::new());
        for (out, pr) in d.iter() {
            let out = out.as_ref().expect("failure draws never drop");
            prop_assert!(!pr.is_zero());
            let events = failure_events(&spec, &fields, out);
            match spec.k {
                Some(k) => {
                    prop_assert!(events <= k, "{events} events under budget {k}");
                    prop_assert_eq!(out.get(fields.fl), events, "fl mismatch");
                }
                None => prop_assert_eq!(out.get(fields.fl), 0, "fl drawn without budget"),
            }
        }
    }

    /// Correlation invariant: all members of one group always agree.
    #[test]
    fn group_members_always_agree(spec in arb_spec()) {
        let fields = NetFields::with_groups(PORTS.len(), spec.group_count());
        let prog = spec.hop_program(&fields, SW, &PORTS);
        let d = Interp::new().eval_packet(&prog, &Packet::new());
        for (out, _) in d.iter() {
            let out = out.as_ref().unwrap();
            for g in &spec.groups {
                let states: Vec<u32> = g
                    .members
                    .iter()
                    .filter(|&&(sw, _)| sw == SW)
                    .map(|&(_, p)| out.get(fields.up(p)))
                    .collect();
                prop_assert!(
                    states.windows(2).all(|w| w[0] == w[1]),
                    "group {} split: {states:?}",
                    &g.name
                );
            }
        }
    }

    /// An exhausted budget freezes the draw: starting at `fl = k`, the
    /// only outcome is "everything up".
    #[test]
    fn exhausted_budget_freezes_all_draws(spec in arb_spec()) {
        let Some(k) = spec.k else { return Ok(()) };
        let fields = NetFields::with_groups(PORTS.len(), spec.group_count());
        let prog = spec.hop_program(&fields, SW, &PORTS);
        let start = Packet::new().with(fields.fl, k.max(1));
        // `fl` can only legitimately sit at k when k > 0; for k = 0 the
        // spec is failure-free and the claim holds trivially from fl = 0.
        if k == 0 { return Ok(()) }
        let d = Interp::new().eval_packet(&prog, &start);
        for (out, _) in d.iter() {
            let out = out.as_ref().unwrap();
            for &p in &PORTS {
                prop_assert_eq!(out.get(fields.up(p)), 1, "port {} down at budget", p);
            }
        }
    }
}
