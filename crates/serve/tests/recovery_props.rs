//! Crash-recovery differential tests: an engine rebuilt from its
//! write-ahead journal (and optional snapshot) must be *the same engine*
//! — byte-identical model descriptions, `equiv` diagrams (recovery
//! re-verifies every model against a cold compile before returning), and
//! preserved delta accounting — no matter where the crash cut the
//! journal: at a record boundary, inside an intent, or inside a commit
//! marker.

use mcnetkat_net::{
    down_ports, Codec, FailureModel, ModelDescription, NetworkModel, RoutingScheme, Srlg,
};
use mcnetkat_num::Ratio;
use mcnetkat_serve::journal::RecoveryError;
use mcnetkat_serve::{Delta, Engine, EngineConfig, EngineError, Query, QueryRequest};
use mcnetkat_topo::ab_fattree;
use proptest::collection::vec;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::time::Duration;

const SCHEMES: [RoutingScheme; 3] = [
    RoutingScheme::Ecmp,
    RoutingScheme::F10_3,
    RoutingScheme::F10_3_5,
];

fn pr_pool(i: u8) -> Ratio {
    match i % 4 {
        0 => Ratio::zero(),
        1 => Ratio::new(1, 100),
        2 => Ratio::new(1, 10),
        _ => Ratio::new(1, 4),
    }
}

/// A fresh durability directory under the system temp dir.
fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "mcnetkat-recovery-{}-{tag}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn cleanup(dir: &Path) {
    std::fs::remove_dir_all(dir).ok();
}

fn base_model() -> NetworkModel {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    NetworkModel::new(
        topo,
        dst,
        RoutingScheme::Ecmp,
        FailureModel::independent(Ratio::new(1, 100)),
    )
}

/// The identity that matters across processes: the model's encoded
/// description (topology round-trips adjacency-exactly, so byte equality
/// is full structural equality).
fn desc_bytes(engine: &Engine, id: mcnetkat_serve::ModelId) -> Vec<u8> {
    ModelDescription::of(engine.model(id).expect("model loaded")).to_bytes()
}

/// Abstract deltas, concretized against the current model (a trimmed
/// copy of the incremental-props generator: enough variants to cover
/// patches, structural rebuilds, group churn, and the rejection path).
#[derive(Clone, Debug)]
enum Desc {
    Scheme(u8),
    SwitchScheme(usize, u8),
    UniformPr(u8),
    LinkPr(usize, u8),
    AddGroup(usize, u8),
    RemoveGroup(usize),
    HopCap(u8),
    Budget(u8),
    Dst(usize),
}

fn arb_desc() -> impl Strategy<Value = Desc> {
    prop_oneof![
        (0..3u8).prop_map(Desc::Scheme),
        (0..64usize, 0..3u8).prop_map(|(s, c)| Desc::SwitchScheme(s, c)),
        (0..4u8).prop_map(Desc::UniformPr),
        (0..8usize, 0..4u8).prop_map(|(p, r)| Desc::LinkPr(p, r)),
        (0..64usize, 1..4u8).prop_map(|(s, r)| Desc::AddGroup(s, r)),
        (0..4usize).prop_map(Desc::RemoveGroup),
        (0..3u8).prop_map(Desc::HopCap),
        (0..2u8).prop_map(Desc::Budget),
        (0..64usize).prop_map(Desc::Dst),
    ]
}

fn concretize(d: &Desc, model: &NetworkModel) -> Delta {
    let switches = model.topo.switches();
    let pick_switch = |i: usize| switches[i % switches.len()];
    let prone: Vec<u32> = {
        let mut ports: Vec<u32> = switches
            .iter()
            .flat_map(|&s| down_ports(&model.topo, s))
            .collect();
        ports.sort_unstable();
        ports.dedup();
        ports
    };
    let pick_group_name = |i: usize| -> String {
        if model.failure.groups.is_empty() || i >= model.failure.groups.len() {
            "absent".to_string()
        } else {
            model.failure.groups[i].name.clone()
        }
    };
    match d {
        Desc::Scheme(c) => Delta::SetScheme(SCHEMES[*c as usize % SCHEMES.len()]),
        Desc::SwitchScheme(s, c) => {
            Delta::SetSwitchScheme(pick_switch(*s), SCHEMES[*c as usize % SCHEMES.len()])
        }
        Desc::UniformPr(r) => Delta::SetUniformPr(pr_pool(*r)),
        Desc::LinkPr(p, r) => Delta::SetLinkPr(prone[p % prone.len()], pr_pool(*r)),
        Desc::AddGroup(s, r) => {
            let node = pick_switch(*s);
            let mut g = Srlg::down_links_of(&model.topo, node, pr_pool(*r));
            g.name = format!("grp_{}", model.topo.info(node).name);
            Delta::AddGroup(g)
        }
        Desc::RemoveGroup(g) => Delta::RemoveGroup(pick_group_name(*g)),
        Desc::HopCap(c) => Delta::SetHopCap([None, Some(8), Some(16)][*c as usize % 3]),
        Desc::Budget(b) => Delta::SetBudget([None, Some(1)][*b as usize % 2]),
        Desc::Dst(s) => Delta::SetDst(pick_switch(*s)),
    }
}

/// Applies `descs` on a journaled engine, recording the journal offset,
/// description bytes, and accounting after the load and after every
/// *successful* apply. Returns the per-prefix history.
struct History {
    id: mcnetkat_serve::ModelId,
    /// `journal_bytes` after each durable prefix (index 0 = just the
    /// load).
    offsets: Vec<u64>,
    /// Encoded model description after each durable prefix.
    descs: Vec<Vec<u8>>,
    /// `(deltas_applied, switches_changed, full_rebuilds)` after each
    /// durable prefix.
    counters: Vec<(u64, u64, u64)>,
}

fn run_history(dir: &Path, descs: &[Desc]) -> Result<History, TestCaseError> {
    let mut engine = Engine::with_journal(EngineConfig::default(), dir)
        .map_err(|e| TestCaseError::Fail(format!("with_journal: {e}")))?;
    let id = engine
        .load(base_model())
        .map_err(|e| TestCaseError::Fail(format!("load: {e}")))?;
    let mut h = History {
        id,
        offsets: vec![engine.stats().journal_bytes],
        descs: vec![desc_bytes(&engine, id)],
        counters: vec![(0, 0, 0)],
    };
    for d in descs {
        let delta = concretize(d, engine.model(id).unwrap());
        match engine.apply(id, delta) {
            Ok(_) => {
                let s = engine.stats();
                h.offsets.push(s.journal_bytes);
                h.descs.push(desc_bytes(&engine, id));
                h.counters
                    .push((s.deltas_applied, s.switches_changed, s.full_rebuilds));
            }
            // Invalid deltas are rejected before the journal sees them.
            Err(EngineError::InvalidDelta(_)) => {}
            Err(e) => return Err(TestCaseError::Fail(format!("apply: {e}"))),
        }
    }
    Ok(h)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Clean-shutdown differential: recovery from the full journal is
    /// the survivor — same description bytes, same accounting, and
    /// `recover` itself re-verified the diagram against a cold compile.
    #[test]
    fn recovered_engine_equals_survivor(descs in vec(arb_desc(), 1..5)) {
        let dir = tmp_dir("clean");
        let h = run_history(&dir, &descs)?;
        let (rec, report) = Engine::recover(EngineConfig::default(), &dir)
            .map_err(|e| TestCaseError::Fail(format!("recover: {e}")))?;
        prop_assert_eq!(&desc_bytes(&rec, h.id), h.descs.last().unwrap());
        let s = rec.stats();
        let &(applied, changed, rebuilds) = h.counters.last().unwrap();
        prop_assert_eq!(s.deltas_applied, applied);
        prop_assert_eq!(s.switches_changed, changed);
        prop_assert_eq!(s.full_rebuilds, rebuilds);
        prop_assert_eq!(s.recoveries, 1);
        prop_assert_eq!(report.records_replayed, applied + 1, "load + each delta");
        prop_assert_eq!(report.uncommitted_intents, 0);
        prop_assert_eq!(report.truncated_bytes, 0);
        // The recovered engine still verifies and still answers.
        prop_assert!(rec.verify_against_cold(h.id).unwrap());
        cleanup(&dir);
    }

    /// Kill-after-random-prefix differential: truncate the journal at a
    /// random byte — a clean record boundary or anywhere inside the next
    /// prefix's records (a torn write) — and recovery must equal the
    /// survivor of exactly the durable prefix, accounting included.
    #[test]
    fn recovery_from_random_kill_point(
        descs in vec(arb_desc(), 1..5),
        kill_seed in 0..1024usize,
        tear_seed in 0..1024u64,
    ) {
        let dir = tmp_dir("kill");
        let h = run_history(&dir, &descs)?;
        // Pick the prefix that survives, and a cut inside the records of
        // the next apply (or exactly at the boundary).
        let k = kill_seed % h.offsets.len();
        let cut = if k + 1 < h.offsets.len() {
            h.offsets[k] + tear_seed % (h.offsets[k + 1] - h.offsets[k])
        } else {
            h.offsets[k]
        };
        let journal = dir.join(mcnetkat_serve::journal::JOURNAL_FILE);
        let f = std::fs::OpenOptions::new().write(true).open(&journal).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let (rec, _) = Engine::recover(EngineConfig::default(), &dir)
            .map_err(|e| TestCaseError::Fail(format!("recover after cut: {e}")))?;
        prop_assert_eq!(&desc_bytes(&rec, h.id), &h.descs[k], "prefix {}", k);
        let s = rec.stats();
        prop_assert_eq!(s.deltas_applied, h.counters[k].0);
        prop_assert_eq!(s.switches_changed, h.counters[k].1);
        prop_assert_eq!(s.full_rebuilds, h.counters[k].2);
        prop_assert!(rec.verify_against_cold(h.id).unwrap());
        // The recovered engine keeps working: a fresh delta applies,
        // journals, and still matches a cold compile.
        let mut rec = rec;
        rec.apply(h.id, Delta::SetHopCap(Some(12))).unwrap();
        prop_assert!(rec.verify_against_cold(h.id).unwrap());
        cleanup(&dir);
    }
}

#[test]
fn snapshot_bounds_replay_and_preserves_accounting() {
    let dir = tmp_dir("snapshot");
    let snap_path = dir.join(mcnetkat_serve::journal::SNAPSHOT_FILE);
    let mut engine = Engine::with_journal(EngineConfig::default(), &dir).unwrap();
    let id = engine.load(base_model()).unwrap();
    let core = engine.model(id).unwrap().topo.find("core0").unwrap();
    engine
        .apply(id, Delta::SetSwitchScheme(core, RoutingScheme::F10_3))
        .unwrap();
    engine
        .apply(id, Delta::SetUniformPr(Ratio::new(1, 10)))
        .unwrap();
    engine.snapshot(&snap_path).unwrap();
    engine.apply(id, Delta::SetHopCap(Some(10))).unwrap();
    let survivor = desc_bytes(&engine, id);
    let survivor_stats = engine.stats();
    drop(engine);

    let (rec, report) = Engine::recover(EngineConfig::default(), &dir).unwrap();
    // Only the post-snapshot record replays; the two pre-snapshot deltas
    // come back through the checkpoint, accounting included.
    assert_eq!(report.snapshot_models, 1);
    assert_eq!(report.records_replayed, 1);
    assert_eq!(desc_bytes(&rec, id), survivor);
    let s = rec.stats();
    assert_eq!(s.deltas_applied, survivor_stats.deltas_applied);
    assert_eq!(s.switches_changed, survivor_stats.switches_changed);
    assert_eq!(s.full_rebuilds, survivor_stats.full_rebuilds);
    assert!(rec.verify_against_cold(id).unwrap());
    cleanup(&dir);
}

#[test]
fn interior_corruption_is_refused() {
    let dir = tmp_dir("corrupt");
    let mut engine = Engine::with_journal(EngineConfig::default(), &dir).unwrap();
    let id = engine.load(base_model()).unwrap();
    engine
        .apply(id, Delta::SetUniformPr(Ratio::new(1, 10)))
        .unwrap();
    engine.apply(id, Delta::SetHopCap(Some(8))).unwrap();
    drop(engine);

    let journal = dir.join(mcnetkat_serve::journal::JOURNAL_FILE);
    let mut bytes = std::fs::read(&journal).unwrap();
    // Flip a byte well inside the load record (valid records follow it):
    // this is bit rot, not a torn write, and recovery must say so.
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0x40;
    std::fs::write(&journal, &bytes).unwrap();
    match Engine::recover(EngineConfig::default(), &dir) {
        Err(RecoveryError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt, got {:?}", other.map(|(_, r)| r)),
    }
    cleanup(&dir);
}

#[test]
fn empty_dir_has_nothing_to_recover() {
    let dir = tmp_dir("empty");
    assert!(matches!(
        Engine::recover(EngineConfig::default(), &dir),
        Err(RecoveryError::NothingToRecover)
    ));
    cleanup(&dir);
}

#[test]
fn unload_autotrims_only_unshared_entries() {
    let mut engine = Engine::default();
    let a = engine.load(base_model()).unwrap();
    // Identical model: every hop diagram is shared with `a`.
    let b = engine.load(base_model()).unwrap();
    let entries = engine.stats().hop_cache_entries;
    engine.unload(b).unwrap();
    assert_eq!(
        engine.stats().hop_cache_evictions,
        0,
        "shared diagrams must stay warm"
    );
    assert_eq!(engine.stats().hop_cache_entries, entries);

    // A disjoint model (different failure pr ⇒ different inputs on every
    // prone switch): unloading it evicts its private entries.
    let mut lossy = base_model();
    lossy.failure.pr = Ratio::new(1, 4);
    let c = engine.load(lossy).unwrap();
    let with_lossy = engine.stats().hop_cache_entries;
    assert!(with_lossy > entries);
    engine.unload(c).unwrap();
    let s = engine.stats();
    assert_eq!(s.hop_cache_entries, entries);
    assert_eq!(s.hop_cache_evictions, (with_lossy - entries) as u64);
    assert!(engine.verify_against_cold(a).unwrap());
}

#[test]
fn zero_limit_sheds_every_query() {
    let config = EngineConfig {
        max_concurrent_queries: Some(0),
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(config);
    let id = engine.load(base_model()).unwrap();
    let res = engine.query(&Query::MinDelivery { model: id }.into());
    assert!(matches!(
        res,
        Err(EngineError::Overloaded {
            active: 0,
            limit: 0
        })
    ));
    let s = engine.stats();
    assert_eq!(s.queries_shed, 1);
    assert_eq!(s.queries, 1, "shed queries still count as queries");
}

#[test]
fn concurrent_batches_account_for_sheds_exactly() {
    let config = EngineConfig {
        max_concurrent_queries: Some(1),
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(config);
    let id = engine.load(base_model()).unwrap();
    let reqs: Vec<QueryRequest> =
        std::iter::repeat_with(|| QueryRequest::from(Query::MinDelivery { model: id }))
            .take(16)
            .collect();
    // Two batches race for one permit. Each batch runs one worker (the
    // fan-out cap), so sheds come only from cross-batch contention —
    // possibly zero; the accounting must be exact either way.
    let (r1, r2) = std::thread::scope(|scope| {
        let h1 = scope.spawn(|| engine.query_batch(&reqs));
        let h2 = scope.spawn(|| engine.query_batch(&reqs));
        (h1.join().unwrap(), h2.join().unwrap())
    });
    let shed = r1
        .iter()
        .chain(r2.iter())
        .filter(|r| matches!(r, Err(EngineError::Overloaded { .. })))
        .count() as u64;
    let answered = r1.iter().chain(r2.iter()).filter(|r| r.is_ok()).count() as u64;
    assert_eq!(answered + shed, 32, "every request either answers or sheds");
    let s = engine.stats();
    assert_eq!(s.queries_shed, shed);
    assert_eq!(s.queries, 32);
    // The gate is fully released: a sequential query admits fine.
    assert!(engine
        .query(&Query::MinDelivery { model: id }.into())
        .is_ok());
}

#[test]
fn expired_deadline_gets_a_degraded_retry() {
    let config = EngineConfig {
        degraded_grace: Some(Duration::from_secs(60)),
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(config);
    let id = engine.load(base_model()).unwrap();
    // A zero deadline is already expired at admission: without the
    // grace path this is a guaranteed DeadlineExceeded.
    let req = QueryRequest::from(Query::MinDelivery { model: id }).with_deadline(Duration::ZERO);
    let answer = engine.query(&req).expect("degraded retry salvages it");
    assert!(answer.prob().is_some());
    assert_eq!(engine.stats().degraded_answers, 1);

    // Without the grace configured, the same request is a plain error.
    let mut strict = Engine::default();
    let id = strict.load(base_model()).unwrap();
    let req = QueryRequest::from(Query::MinDelivery { model: id }).with_deadline(Duration::ZERO);
    assert!(strict.query(&req).is_err());
}

#[test]
fn journal_counts_two_records_per_operation() {
    let dir = tmp_dir("counts");
    let mut engine = Engine::with_journal(EngineConfig::default(), &dir).unwrap();
    let id = engine.load(base_model()).unwrap();
    let after_load = engine.stats();
    assert_eq!(after_load.journal_records, 2, "intent + commit");
    assert!(after_load.journal_bytes > 0);
    engine
        .apply(id, Delta::SetUniformPr(Ratio::new(1, 10)))
        .unwrap();
    // A rejected delta never reaches the journal.
    let _ = engine
        .apply(id, Delta::SetUniformPr(Ratio::new(3, 2)))
        .unwrap_err();
    engine.unload(id).unwrap();
    let s = engine.stats();
    assert_eq!(s.journal_records, 6);
    assert!(!s.journal_poisoned);
    cleanup(&dir);
}
