//! Fault-storm and kill-and-recover tests for the serve engine, armed
//! through the shared failpoint registry (`mcnetkat_fdd::failpoints`).
//! The contract under every injected fault is the same: an operation is
//! *fully applied or fully restored* — the in-memory model, diagram, and
//! accounting either all move or none do — and a recovery from the
//! journal agrees with whatever the survivor reports.
//!
//! The registry is process-global, so every test here serializes on a
//! static mutex and clears the registry at entry (the same idiom as
//! `crates/net/tests/failpoints.rs`).

#![cfg(feature = "failpoints")]

use mcnetkat_fdd::failpoints::{self, FaultAction};
use mcnetkat_fdd::CompileError;
use mcnetkat_net::{Codec, FailureModel, ModelDescription, NetworkModel, RoutingScheme};
use mcnetkat_num::Ratio;
use mcnetkat_serve::journal::JournalError;
use mcnetkat_serve::{Delta, Engine, EngineConfig, EngineError, ModelId, Query};
use mcnetkat_topo::ab_fattree;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

static SERIAL: Mutex<()> = Mutex::new(());

/// Serializes tests that arm global failpoints; a poisoned lock (an
/// earlier test's injected panic) is fine — the registry is re-cleared.
fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mcnetkat-chaos-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn cleanup(dir: &Path) {
    std::fs::remove_dir_all(dir).ok();
}

fn base_model() -> NetworkModel {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    NetworkModel::new(
        topo,
        dst,
        RoutingScheme::Ecmp,
        FailureModel::independent(Ratio::new(1, 100)),
    )
}

fn desc_bytes(engine: &Engine, id: ModelId) -> Vec<u8> {
    ModelDescription::of(engine.model(id).expect("model loaded")).to_bytes()
}

/// One armed fault against one compile seam: the apply must fail with the
/// mapped error, restore the pre-fault model/diagram/accounting exactly,
/// and — once disarmed — the identical delta must succeed.
fn storm_one(site: &str, action: FaultAction, expect_compile: fn(&CompileError) -> bool) {
    failpoints::clear_all();
    let dir = tmp_dir("storm");
    let mut engine = Engine::with_journal(EngineConfig::default(), &dir).unwrap();
    let id = engine.load(base_model()).unwrap();
    let before = desc_bytes(&engine, id);
    let fdd_before = engine.fdd(id).unwrap();
    let stats_before = engine.stats();

    failpoints::configure(site, action, 1, 1);
    let delta = Delta::SetUniformPr(Ratio::new(1, 10));
    match engine.apply(id, delta.clone()) {
        Err(EngineError::Compile(e)) if expect_compile(&e) => {}
        other => panic!("{site}: expected injected compile error, got {other:?}"),
    }
    assert!(failpoints::fired(site) >= 1, "{site} never fired");

    // Fully restored: description, diagram handle, and accounting.
    assert_eq!(desc_bytes(&engine, id), before, "{site}: model mutated");
    assert_eq!(
        engine.fdd(id).unwrap(),
        fdd_before,
        "{site}: diagram swapped"
    );
    let s = engine.stats();
    assert_eq!(s.deltas_applied, stats_before.deltas_applied);
    assert_eq!(s.switches_changed, stats_before.switches_changed);
    assert_eq!(s.full_rebuilds, stats_before.full_rebuilds);
    assert!(
        !s.journal_poisoned,
        "{site}: clean compile fault poisoned journal"
    );
    assert!(engine.verify_against_cold(id).unwrap());

    // Disarmed, the same delta applies; the failed attempt's uncommitted
    // intent is still in the journal and recovery must skip it.
    failpoints::clear_all();
    engine.apply(id, delta).unwrap();
    let survivor = desc_bytes(&engine, id);
    let survivor_stats = engine.stats();
    drop(engine);
    let (rec, report) = Engine::recover(EngineConfig::default(), &dir).unwrap();
    assert_eq!(desc_bytes(&rec, id), survivor, "{site}: recovery disagrees");
    assert_eq!(rec.stats().deltas_applied, survivor_stats.deltas_applied);
    assert!(
        report.uncommitted_intents >= 1,
        "{site}: the failed attempt's intent should be uncommitted"
    );
    cleanup(&dir);
}

#[test]
fn compile_fault_storm_applies_fully_or_restores_fully() {
    let _guard = serial();
    for site in ["serve::apply::patch", "serve::apply::assemble"] {
        storm_one(site, FaultAction::Cancel, |e| {
            matches!(e, CompileError::Cancelled)
        });
        storm_one(site, FaultAction::Singular, |e| {
            matches!(e, CompileError::Solver(_))
        });
    }
}

#[test]
fn clean_journal_fault_rejects_before_any_mutation() {
    let _guard = serial();
    failpoints::clear_all();
    let dir = tmp_dir("clean-journal");
    let mut engine = Engine::with_journal(EngineConfig::default(), &dir).unwrap();
    let id = engine.load(base_model()).unwrap();
    let before = desc_bytes(&engine, id);
    let records_before = engine.stats().journal_records;

    failpoints::configure("serve::journal::append", FaultAction::Cancel, 1, 1);
    match engine.apply(id, Delta::SetUniformPr(Ratio::new(1, 10))) {
        Err(EngineError::Journal(JournalError::Cancelled)) => {}
        other => panic!("expected Journal(Cancelled), got {other:?}"),
    }
    failpoints::clear_all();
    // Nothing moved — not even journal bytes — and the engine is not
    // poisoned: the next apply goes through.
    assert_eq!(desc_bytes(&engine, id), before);
    let s = engine.stats();
    assert_eq!(s.journal_records, records_before);
    assert!(!s.journal_poisoned);
    engine.apply(id, Delta::SetHopCap(Some(10))).unwrap();
    assert!(engine.verify_against_cold(id).unwrap());
    cleanup(&dir);
}

#[test]
fn torn_intent_poisons_writer_but_state_survives_and_recovers() {
    let _guard = serial();
    failpoints::clear_all();
    let dir = tmp_dir("torn-intent");
    let mut engine = Engine::with_journal(EngineConfig::default(), &dir).unwrap();
    let id = engine.load(base_model()).unwrap();
    engine.apply(id, Delta::SetHopCap(Some(10))).unwrap();
    let before = desc_bytes(&engine, id);
    let stats_before = engine.stats();

    // Singular at the append site = the intent write tears partway.
    failpoints::configure("serve::journal::append", FaultAction::Singular, 1, 1);
    match engine.apply(id, Delta::SetUniformPr(Ratio::new(1, 10))) {
        Err(EngineError::Journal(JournalError::Torn(_))) => {}
        other => panic!("expected Journal(Torn), got {other:?}"),
    }
    failpoints::clear_all();

    // In-memory state is untouched and still serves queries, but the
    // journal is poisoned: durable mutations now refuse instead of
    // writing after an untrusted tail.
    assert_eq!(desc_bytes(&engine, id), before);
    assert!(engine.stats().journal_poisoned);
    match engine.apply(id, Delta::SetHopCap(None)) {
        Err(EngineError::Journal(JournalError::Poisoned)) => {}
        other => panic!("expected Journal(Poisoned), got {other:?}"),
    }
    assert!(engine
        .query(&Query::MinDelivery { model: id }.into())
        .is_ok());
    assert!(engine.verify_against_cold(id).unwrap());

    // Recovery truncates the torn tail and rebuilds the pre-fault state;
    // the recovered engine journals again (fresh writer past the tear).
    drop(engine);
    let (mut rec, report) = Engine::recover(EngineConfig::default(), &dir).unwrap();
    assert_eq!(desc_bytes(&rec, id), before);
    assert!(report.truncated_bytes > 0, "the torn prefix must be cut");
    let s = rec.stats();
    assert!(!s.journal_poisoned);
    assert_eq!(s.deltas_applied, stats_before.deltas_applied);
    assert_eq!(s.switches_changed, stats_before.switches_changed);
    rec.apply(id, Delta::SetUniformPr(Ratio::new(1, 10)))
        .unwrap();
    assert!(rec.verify_against_cold(id).unwrap());
    cleanup(&dir);
}

#[test]
fn failed_commit_marker_rolls_back_intent_and_state() {
    let _guard = serial();
    failpoints::clear_all();
    let dir = tmp_dir("commit-marker");
    let mut engine = Engine::with_journal(EngineConfig::default(), &dir).unwrap();
    let id = engine.load(base_model()).unwrap();
    let before = desc_bytes(&engine, id);
    let bytes_before = engine.stats().journal_bytes;

    // nth=1 is the apply's intent; nth=2 is its commit marker. A clean
    // failure there must roll the intent back off the journal and leave
    // the compiled-but-uncommitted state unapplied.
    failpoints::configure("serve::journal::append", FaultAction::Cancel, 2, 1);
    match engine.apply(id, Delta::SetUniformPr(Ratio::new(1, 10))) {
        Err(EngineError::Journal(JournalError::Cancelled)) => {}
        other => panic!("expected Journal(Cancelled), got {other:?}"),
    }
    failpoints::clear_all();
    assert_eq!(desc_bytes(&engine, id), before);
    let s = engine.stats();
    assert_eq!(s.journal_bytes, bytes_before, "intent not rolled back");
    assert!(!s.journal_poisoned);

    // Journal and survivor agree — and no uncommitted intent lingers.
    engine.apply(id, Delta::SetHopCap(Some(10))).unwrap();
    let survivor = desc_bytes(&engine, id);
    drop(engine);
    let (rec, report) = Engine::recover(EngineConfig::default(), &dir).unwrap();
    assert_eq!(desc_bytes(&rec, id), survivor);
    assert_eq!(report.uncommitted_intents, 0);
    assert!(rec.verify_against_cold(id).unwrap());
    cleanup(&dir);
}

#[test]
fn injected_panic_is_contained_by_recovery() {
    let _guard = serial();
    failpoints::clear_all();
    let dir = tmp_dir("panic");
    let mut engine = Engine::with_journal(EngineConfig::default(), &dir).unwrap();
    let id = engine.load(base_model()).unwrap();
    engine.apply(id, Delta::SetHopCap(Some(10))).unwrap();
    let before = desc_bytes(&engine, id);
    let stats_before = engine.stats();

    // A panic mid-patch is the crash the journal exists for: the process
    // dies with an intent on disk and no commit marker. The survivor
    // (recovery) must report the pre-panic state.
    failpoints::configure(
        "serve::apply::patch",
        FaultAction::Panic("injected crash".into()),
        1,
        1,
    );
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = engine.apply(id, Delta::SetUniformPr(Ratio::new(1, 10)));
    }));
    assert!(panicked.is_err(), "the armed panic must fire");
    failpoints::clear_all();

    drop(engine); // the "dead process"
    let (rec, report) = Engine::recover(EngineConfig::default(), &dir).unwrap();
    assert_eq!(desc_bytes(&rec, id), before);
    assert_eq!(report.uncommitted_intents, 1, "the panicked apply's intent");
    let s = rec.stats();
    assert_eq!(s.deltas_applied, stats_before.deltas_applied);
    assert_eq!(s.switches_changed, stats_before.switches_changed);
    assert!(rec.verify_against_cold(id).unwrap());
    cleanup(&dir);
}

/// The CI smoke: a journaled engine takes deltas and a snapshot, dies to
/// a torn write mid-apply, and recovery rebuilds, re-verifies, and keeps
/// serving. Honors `MCNETKAT_CHAOS_DIR` so the CI job can upload the
/// journal as an artifact when this fails (the directory is left in
/// place); otherwise runs in a cleaned-up temp dir.
#[test]
fn kill_and_recover_smoke() {
    let _guard = serial();
    failpoints::clear_all();
    let (dir, ephemeral) = match std::env::var_os("MCNETKAT_CHAOS_DIR") {
        Some(d) => {
            let d = PathBuf::from(d);
            std::fs::create_dir_all(&d).expect("create chaos dir");
            (d, false)
        }
        None => (tmp_dir("smoke"), true),
    };

    let mut engine = Engine::with_journal(EngineConfig::default(), &dir).unwrap();
    let id = engine.load(base_model()).unwrap();
    let core = engine.model(id).unwrap().topo.find("core0").unwrap();
    engine
        .apply(id, Delta::SetSwitchScheme(core, RoutingScheme::F10_3))
        .unwrap();
    engine
        .snapshot(dir.join(mcnetkat_serve::journal::SNAPSHOT_FILE))
        .unwrap();
    engine
        .apply(id, Delta::SetUniformPr(Ratio::new(1, 10)))
        .unwrap();
    let survivor = desc_bytes(&engine, id);

    // The kill: the next intent tears and the process "dies".
    failpoints::configure("serve::journal::append", FaultAction::Singular, 1, 1);
    assert!(engine.apply(id, Delta::SetHopCap(Some(8))).is_err());
    failpoints::clear_all();
    drop(engine);

    let (rec, report) = Engine::recover(EngineConfig::default(), &dir).unwrap();
    assert_eq!(desc_bytes(&rec, id), survivor);
    assert_eq!(report.snapshot_models, 1);
    assert_eq!(report.records_replayed, 1, "only the post-snapshot delta");
    assert!(report.truncated_bytes > 0);
    let answer = rec
        .query(&Query::MinDelivery { model: id }.into())
        .expect("recovered engine answers");
    assert!(answer.prob().is_some());
    assert!(rec.verify_against_cold(id).unwrap());
    if ephemeral {
        cleanup(&dir);
    }
}
