//! Differential property tests for the incremental engine: for random
//! delta sequences — switch program edits, link-probability changes,
//! SRLG membership churn, budget/hop-cap/destination flips — the engine's
//! patched diagram must equal a cold compile of the current model after
//! *every* prefix, and the patch accounting must respect the delta's
//! declared invalidation bound.

use mcnetkat_net::{down_ports, FailureModel, NetworkModel, RoutingScheme, Srlg};
use mcnetkat_num::Ratio;
use mcnetkat_serve::{Delta, Engine, EngineError, Query};
use mcnetkat_topo::ab_fattree;
use proptest::collection::vec;
use proptest::prelude::*;

const SCHEMES: [RoutingScheme; 3] = [
    RoutingScheme::Ecmp,
    RoutingScheme::F10_3,
    RoutingScheme::F10_3_5,
];

fn pr_pool(i: u8) -> Ratio {
    match i % 4 {
        0 => Ratio::zero(),
        1 => Ratio::new(1, 100),
        2 => Ratio::new(1, 10),
        _ => Ratio::new(1, 4),
    }
}

/// An abstract delta: indices into pools, concretized against the
/// *current* model so sequences stay mostly valid as the model evolves.
/// Some combinations are deliberately invalid (removing an absent group,
/// adding an overlapping one) — those exercise the rejection path, which
/// must leave the engine untouched.
#[derive(Clone, Debug)]
enum Desc {
    Scheme(u8),
    SwitchScheme(usize, u8),
    ClearSwitchScheme(usize),
    UniformPr(u8),
    LinkPr(usize, u8),
    ClearLinkPr(usize),
    AddGroup(usize, u8),
    RemoveGroup(usize),
    GroupPr(usize, u8),
    GroupMembers(usize, usize),
    HopCap(u8),
    Budget(u8),
    Dst(usize),
}

fn arb_desc() -> impl Strategy<Value = Desc> {
    prop_oneof![
        (0..3u8).prop_map(Desc::Scheme),
        (0..64usize, 0..3u8).prop_map(|(s, c)| Desc::SwitchScheme(s, c)),
        (0..64usize).prop_map(Desc::ClearSwitchScheme),
        (0..4u8).prop_map(Desc::UniformPr),
        (0..8usize, 0..4u8).prop_map(|(p, r)| Desc::LinkPr(p, r)),
        (0..8usize).prop_map(Desc::ClearLinkPr),
        (0..64usize, 1..4u8).prop_map(|(s, r)| Desc::AddGroup(s, r)),
        (0..4usize).prop_map(Desc::RemoveGroup),
        (0..4usize, 0..4u8).prop_map(|(g, r)| Desc::GroupPr(g, r)),
        (0..4usize, 0..64usize).prop_map(|(g, s)| Desc::GroupMembers(g, s)),
        (0..3u8).prop_map(Desc::HopCap),
        (0..2u8).prop_map(Desc::Budget),
        (0..64usize).prop_map(Desc::Dst),
    ]
}

/// Maps an abstract descriptor onto the model's actual switches, prone
/// ports, and current group list.
fn concretize(d: &Desc, model: &NetworkModel) -> Delta {
    let switches = model.topo.switches();
    let pick_switch = |i: usize| switches[i % switches.len()];
    let prone: Vec<u32> = {
        let mut ports: Vec<u32> = switches
            .iter()
            .flat_map(|&s| down_ports(&model.topo, s))
            .collect();
        ports.sort_unstable();
        ports.dedup();
        ports
    };
    let pick_port = |i: usize| prone[i % prone.len()];
    // Index past the current group list on purpose sometimes: an absent
    // name must be rejected cleanly.
    let pick_group_name = |i: usize| -> String {
        if model.failure.groups.is_empty() || i >= model.failure.groups.len() {
            "absent".to_string()
        } else {
            model.failure.groups[i].name.clone()
        }
    };
    match d {
        Desc::Scheme(c) => Delta::SetScheme(SCHEMES[*c as usize % SCHEMES.len()]),
        Desc::SwitchScheme(s, c) => {
            Delta::SetSwitchScheme(pick_switch(*s), SCHEMES[*c as usize % SCHEMES.len()])
        }
        Desc::ClearSwitchScheme(s) => Delta::ClearSwitchScheme(pick_switch(*s)),
        Desc::UniformPr(r) => Delta::SetUniformPr(pr_pool(*r)),
        Desc::LinkPr(p, r) => Delta::SetLinkPr(pick_port(*p), pr_pool(*r)),
        Desc::ClearLinkPr(p) => Delta::ClearLinkPr(pick_port(*p)),
        Desc::AddGroup(s, r) => {
            let node = pick_switch(*s);
            let mut g = Srlg::down_links_of(&model.topo, node, pr_pool(*r));
            g.name = format!("grp_{}", model.topo.info(node).name);
            Delta::AddGroup(g)
        }
        Desc::RemoveGroup(g) => Delta::RemoveGroup(pick_group_name(*g)),
        Desc::GroupPr(g, r) => Delta::SetGroupPr(pick_group_name(*g), pr_pool(*r)),
        Desc::GroupMembers(g, s) => {
            let node = pick_switch(*s);
            let sw = model.topo.sw_value(node);
            let members: Vec<(u32, u32)> = down_ports(&model.topo, node)
                .into_iter()
                .map(|p| (sw, p))
                .collect();
            Delta::SetGroupMembers(pick_group_name(*g), members)
        }
        Desc::HopCap(c) => Delta::SetHopCap([None, Some(8), Some(16)][*c as usize % 3]),
        Desc::Budget(b) => Delta::SetBudget([None, Some(1)][*b as usize % 2]),
        Desc::Dst(s) => Delta::SetDst(pick_switch(*s)),
    }
}

fn base_model() -> NetworkModel {
    let topo = ab_fattree(4);
    let dst = topo.find("edge0_0").unwrap();
    NetworkModel::new(
        topo,
        dst,
        RoutingScheme::Ecmp,
        FailureModel::independent(Ratio::new(1, 100)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The differential invariant: after every delta-sequence prefix the
    /// engine's patched diagram is `equiv` to a from-scratch compile of
    /// the current model, and on every successful patch the accounting
    /// respects the bound `switches_recompiled ≤ switches_changed ≤
    /// |touched(delta)|` (recompile count may only exceed the changed set
    /// when a structural delta dropped the whole cache).
    #[test]
    fn patched_equals_cold_after_every_prefix(descs in vec(arb_desc(), 1..7)) {
        let mut engine = Engine::default();
        let id = engine.load(base_model()).unwrap();
        prop_assert!(engine.verify_against_cold(id).unwrap());
        for d in &descs {
            let delta = concretize(d, engine.model(id).unwrap());
            match engine.apply(id, delta) {
                Ok(report) => {
                    prop_assert!(
                        report.switches_changed <= report.touched_upper_bound,
                        "{d:?}: changed {} > touched bound {}",
                        report.switches_changed,
                        report.touched_upper_bound
                    );
                    if !report.full_rebuild {
                        prop_assert!(
                            report.switches_recompiled <= report.switches_changed,
                            "{d:?}: recompiled {} > changed {}",
                            report.switches_recompiled,
                            report.switches_changed
                        );
                    }
                }
                // Deliberately-invalid combinations must reject cleanly …
                Err(EngineError::InvalidDelta(_)) => {}
                Err(e) => return Err(TestCaseError::Fail(format!("unexpected error: {e}"))),
            }
            // … and either way the live diagram matches a cold compile.
            prop_assert!(engine.verify_against_cold(id).unwrap());
        }
        // The model stays queryable after the whole sequence.
        let min = engine
            .query(&Query::MinDelivery { model: id }.into())
            .unwrap();
        prop_assert!(min.prob().is_some());
    }
}
