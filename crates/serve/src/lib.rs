//! `mcnetkat-serve`: a long-lived incremental verification engine.
//!
//! The batch compilers rebuild the world on every call, but the fused
//! per-switch pipeline already factors a model into independently
//! compiled, scratch-free switch diagrams — so a model *delta* (a switch
//! program edit, a link-probability change, SRLG membership churn, a
//! topology swap) invalidates only the touched switches' diagrams. This
//! crate exploits that: an [`Engine`] owns one long-lived
//! [`Manager`], caches every per-switch diagram keyed on its full compile
//! inputs ([`mcnetkat_net::fused::HopInputs`] — switch program, failure-spec
//! slice, hop cap), and on [`Engine::apply`] recompiles only the switches
//! whose inputs changed, re-folds the `sw`-case chain, and finishes
//! through the same [`mcnetkat_net::fused::assemble_model`] tail as the
//! batch pipeline. The manager's `while`-loop solution cache makes the
//! loop solve incremental too: a chain body the engine has seen before
//! (a link flapping back up, a scheme toggled back) skips the solve
//! entirely.
//!
//! Invalidation is *correct by construction*: a hop diagram depends on
//! nothing but its `HopInputs`, two hops with equal inputs compile to
//! identical diagrams, so cache keys are exactly the structural hashes of
//! those inputs. Deltas that touch shared structure — the failure budget
//! `k`, the topology — fall back to a full rebuild (the per-switch cache
//! is dropped); see [`Delta::is_structural`].
//!
//! Queries ([`Engine::query_batch`]) answer concurrently over the shared
//! manager (its tables are lock-protected), each under its own
//! [`Budget`]: a query whose budget is already cancelled or expired is
//! rejected without running, and per-query latencies feed the engine's
//! p50/p99 gauges ([`EngineStats`]). Under load the engine degrades
//! instead of falling over: an admission gate
//! ([`EngineConfig::max_concurrent_queries`]) sheds excess queries with
//! [`EngineError::Overloaded`], batch fan-out is capped at the same
//! limit (the rest queue), and a deadline-tripped query gets one bounded
//! retry ([`EngineConfig::degraded_grace`]) before its error surfaces.
//!
//! The engine's state can also survive the process. A journaling engine
//! ([`Engine::with_journal`]) appends every load/delta/unload to a
//! checksummed write-ahead journal *before* mutating state and marks it
//! committed once the compile succeeds; [`Engine::snapshot`] checkpoints
//! the loaded models' descriptions; and [`Engine::recover`] rebuilds an
//! engine from snapshot + journal tail, truncating torn tails, refusing
//! interior corruption, and re-verifying every recovered model against a
//! cold compile. See the [`journal`] module docs for the format and the
//! atomicity contract.
//!
//! ```
//! use mcnetkat_net::{FailureModel, NetworkModel, RoutingScheme};
//! use mcnetkat_num::Ratio;
//! use mcnetkat_serve::{Delta, Engine, Query};
//! use mcnetkat_topo::ab_fattree;
//!
//! let topo = ab_fattree(4);
//! let dst = topo.find("edge0_0").unwrap();
//! let core = topo.find("core0").unwrap();
//! let model = NetworkModel::new(
//!     topo, dst, RoutingScheme::Ecmp,
//!     FailureModel::independent(Ratio::new(1, 100)),
//! );
//!
//! let mut engine = Engine::default();
//! let id = engine.load(model)?;
//!
//! // A single-switch program edit recompiles one switch, not 20.
//! let report = engine.apply(id, Delta::SetSwitchScheme(core, RoutingScheme::F10_3))?;
//! assert_eq!(report.switches_changed, 1);
//!
//! // Batch queries answer concurrently under per-query budgets.
//! let src = engine.model(id)?.topo.find("edge0_1").unwrap();
//! let answers = engine.query_batch(&[
//!     Query::DeliveryProb { model: id, src }.into(),
//!     Query::MinDelivery { model: id }.into(),
//! ]);
//! assert!(answers.iter().all(Result::is_ok));
//! # Ok::<(), mcnetkat_serve::EngineError>(())
//! ```

#![forbid(unsafe_code)]

pub mod journal;

use journal::{JournalError, Record, RecoveryError};
use mcnetkat_fdd::{Budget, CompileError, CompileOptions, Fdd, Manager, WhileCacheStats};
use mcnetkat_net::fused::{
    assemble_chain, assemble_model, compile_hop_import, hop_inputs, FusedStats, HopInputs,
};
use mcnetkat_net::{FailureSpec, ModelDescription, NetworkModel, Queries, RoutingScheme, Srlg};
use mcnetkat_num::Ratio;
use mcnetkat_topo::{NodeId, ShortestPaths, Topology};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Handle to a model loaded into an [`Engine`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ModelId(u64);

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Errors surfaced by the engine API.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// The [`ModelId`] names no loaded model (never loaded, or evicted).
    UnknownModel(ModelId),
    /// The delta cannot be applied to the current model (validation
    /// failure, unknown group name, …) — the model is left untouched.
    InvalidDelta(String),
    /// The underlying compile failed (budget trip, solver failure, …).
    Compile(CompileError),
    /// The write-ahead journal rejected the operation's intent record —
    /// the in-memory state is untouched (the journal append runs
    /// *before* any mutation).
    Journal(JournalError),
    /// The admission gate shed this query:
    /// [`EngineConfig::max_concurrent_queries`] queries were already in
    /// flight. Retry later; nothing ran.
    Overloaded {
        /// In-flight queries observed at admission.
        active: usize,
        /// The configured admission limit.
        limit: usize,
    },
}

impl From<CompileError> for EngineError {
    fn from(e: CompileError) -> EngineError {
        EngineError::Compile(e)
    }
}

impl From<JournalError> for EngineError {
    fn from(e: JournalError) -> EngineError {
        EngineError::Journal(e)
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownModel(id) => write!(f, "unknown model {id}"),
            EngineError::InvalidDelta(why) => write!(f, "invalid delta: {why}"),
            EngineError::Compile(e) => write!(f, "compile failed: {e}"),
            EngineError::Journal(e) => write!(f, "journal failed: {e}"),
            EngineError::Overloaded { active, limit } => {
                write!(f, "overloaded: {active} queries in flight (limit {limit})")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A model delta: an edit to a loaded model's configuration. Applied with
/// [`Engine::apply`], which recompiles only the switches the delta
/// touches (computed by comparing per-switch [`HopInputs`] before and
/// after) unless the delta [`Delta::is_structural`].
#[derive(Clone, Debug)]
pub enum Delta {
    /// Replace the model-wide default routing scheme.
    SetScheme(RoutingScheme),
    /// Override one switch's routing scheme (a switch program edit).
    SetSwitchScheme(NodeId, RoutingScheme),
    /// Drop one switch's scheme override (back to the model default).
    ClearSwitchScheme(NodeId),
    /// Replace the uniform per-link failure probability.
    SetUniformPr(Ratio),
    /// Override one port's failure probability (heterogeneous links).
    SetLinkPr(u32, Ratio),
    /// Drop one port's probability override.
    ClearLinkPr(u32),
    /// Replace the failure budget `k` — **structural**: the budget guard
    /// sequences every draw, so the whole per-switch cache is dropped.
    SetBudget(Option<u32>),
    /// Append one shared-risk link group.
    AddGroup(Srlg),
    /// Remove the named shared-risk group. Groups after it shift down one
    /// index (and scratch field), so their switches are touched too.
    RemoveGroup(String),
    /// Replace the named group's failure probability.
    SetGroupPr(String, Ratio),
    /// Replace the named group's member set (SRLG membership churn).
    SetGroupMembers(String, Vec<(u32, u32)>),
    /// Enable/disable/retarget the hop-counter cap.
    SetHopCap(Option<u32>),
    /// Replace the topology wholesale (link/switch add/remove) —
    /// **structural**: shortest paths shift globally.
    SetTopology(Topology),
    /// Retarget the destination switch — every route changes.
    SetDst(NodeId),
}

/// The upper bound on which switches a [`Delta`] may invalidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Touched {
    /// Potentially every switch.
    All,
    /// At most these switches.
    Set(BTreeSet<NodeId>),
}

impl Touched {
    /// Whether `s` is inside the bound.
    pub fn contains(&self, s: NodeId) -> bool {
        match self {
            Touched::All => true,
            Touched::Set(set) => set.contains(&s),
        }
    }

    /// The bound's size, given the model's switch count.
    pub fn len(&self, switches: usize) -> usize {
        match self {
            Touched::All => switches,
            Touched::Set(set) => set.len(),
        }
    }
}

impl Delta {
    /// Whether this delta touches shared compile structure (the failure
    /// budget's draw sequencing, the topology's global shortest paths) and
    /// therefore drops the per-switch cache for a full rebuild instead of
    /// patching.
    pub fn is_structural(&self) -> bool {
        matches!(self, Delta::SetBudget(_) | Delta::SetTopology(_))
    }

    /// The switches this delta may invalidate, as an upper bound computed
    /// *before* application — the incremental engine's accounting
    /// invariant is that every switch whose [`HopInputs`] actually change
    /// lies inside this set ([`DeltaReport::switches_changed`] never
    /// exceeds its size).
    pub fn touched(&self, model: &NetworkModel) -> Touched {
        let prone_switches = || {
            Touched::Set(
                model
                    .topo
                    .switches()
                    .iter()
                    .copied()
                    .filter(|&s| !model.prone_ports(s).is_empty())
                    .collect(),
            )
        };
        let group_switch = |members: &[(u32, u32)]| -> BTreeSet<NodeId> {
            members
                .iter()
                .filter_map(|&(sw, _)| model.topo.node_of_sw(sw))
                .collect()
        };
        match self {
            Delta::SetScheme(_) => Touched::Set(
                model
                    .topo
                    .switches()
                    .iter()
                    .copied()
                    .filter(|s| !model.scheme_overrides.contains_key(s))
                    .collect(),
            ),
            Delta::SetSwitchScheme(s, _) | Delta::ClearSwitchScheme(s) => {
                Touched::Set([*s].into_iter().collect())
            }
            Delta::SetUniformPr(_) => prone_switches(),
            Delta::SetLinkPr(port, _) | Delta::ClearLinkPr(port) => Touched::Set(
                model
                    .topo
                    .switches()
                    .iter()
                    .copied()
                    .filter(|&s| model.prone_ports(s).contains(port))
                    .collect(),
            ),
            Delta::AddGroup(g) => Touched::Set(group_switch(&g.members)),
            Delta::RemoveGroup(name) => {
                // The removed group's switch, plus every group after it
                // (their scratch-field index shifts down by one).
                let mut touched = BTreeSet::new();
                if let Some(i) = model.failure.groups.iter().position(|g| &g.name == name) {
                    for g in &model.failure.groups[i..] {
                        touched.extend(group_switch(&g.members));
                    }
                }
                Touched::Set(touched)
            }
            Delta::SetGroupPr(name, _) => Touched::Set(
                model
                    .failure
                    .groups
                    .iter()
                    .find(|g| &g.name == name)
                    .map(|g| group_switch(&g.members))
                    .unwrap_or_default(),
            ),
            Delta::SetGroupMembers(name, new_members) => {
                let mut touched = group_switch(new_members);
                if let Some(g) = model.failure.groups.iter().find(|g| &g.name == name) {
                    touched.extend(group_switch(&g.members));
                }
                Touched::Set(touched)
            }
            Delta::SetHopCap(_)
            | Delta::SetBudget(_)
            | Delta::SetTopology(_)
            | Delta::SetDst(_) => Touched::All,
        }
    }

    /// Builds the updated model this delta describes, without compiling
    /// anything. Field handles are re-derived through the process-wide
    /// interner, so they stay identical for identical names — cached
    /// diagrams remain valid across deltas.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidDelta`] when the edit is inconsistent (bad
    /// probability, unknown group, spec/topology mismatch); the input
    /// model is untouched.
    pub fn apply_to(&self, model: &NetworkModel) -> Result<NetworkModel, EngineError> {
        let mut topo = model.topo.clone();
        let mut dst = model.dst;
        let mut scheme = model.scheme;
        let mut overrides = model.scheme_overrides.clone();
        let mut failure = model.failure.clone();
        let mut hop_cap = model.hop_cap;

        let find_group = |failure: &FailureSpec, name: &str| -> Result<usize, EngineError> {
            failure
                .groups
                .iter()
                .position(|g| g.name == name)
                .ok_or_else(|| EngineError::InvalidDelta(format!("no group named {name:?}")))
        };
        match self {
            Delta::SetScheme(s) => scheme = *s,
            Delta::SetSwitchScheme(node, s) => {
                if !topo.switches().contains(node) {
                    return Err(EngineError::InvalidDelta(format!(
                        "no switch with id {node:?}"
                    )));
                }
                overrides.insert(*node, *s);
            }
            Delta::ClearSwitchScheme(node) => {
                overrides.remove(node);
            }
            Delta::SetUniformPr(pr) => failure.pr = pr.clone(),
            Delta::SetLinkPr(port, pr) => {
                failure.link_pr.insert(*port, pr.clone());
            }
            Delta::ClearLinkPr(port) => {
                failure.link_pr.remove(port);
            }
            Delta::SetBudget(k) => failure.k = *k,
            Delta::AddGroup(g) => failure.groups.push(g.clone()),
            Delta::RemoveGroup(name) => {
                let i = find_group(&failure, name)?;
                failure.groups.remove(i);
            }
            Delta::SetGroupPr(name, pr) => {
                let i = find_group(&failure, name)?;
                failure.groups[i].pr = pr.clone();
            }
            Delta::SetGroupMembers(name, members) => {
                let i = find_group(&failure, name)?;
                failure.groups[i].members = members.clone();
            }
            Delta::SetHopCap(cap) => hop_cap = *cap,
            Delta::SetTopology(t) => {
                // `NodeId` is an index into a topology's node table, so a
                // raw id carried across a swap can silently rebind to a
                // different switch. Remap the destination and the scheme
                // overrides by node *name* into the replacement topology;
                // overrides whose switch no longer exists are dropped.
                let next_topo = t.clone();
                let dst_name = &topo.info(dst).name;
                dst = next_topo
                    .find(dst_name)
                    .filter(|n| next_topo.switches().contains(n))
                    .ok_or_else(|| {
                        EngineError::InvalidDelta(format!(
                            "new topology has no switch named {dst_name:?} \
                             (the current destination)"
                        ))
                    })?;
                overrides = overrides
                    .iter()
                    .filter_map(|(s, sch)| {
                        next_topo
                            .find(&topo.info(*s).name)
                            .filter(|n| next_topo.switches().contains(n))
                            .map(|n| (n, *sch))
                    })
                    .collect();
                topo = next_topo;
            }
            Delta::SetDst(node) => {
                if !topo.switches().contains(node) {
                    return Err(EngineError::InvalidDelta(format!(
                        "no switch with id {node:?}"
                    )));
                }
                dst = *node;
            }
        }
        // Validate before constructing: `NetworkModel::new` panics on a
        // bad spec, and a rejected delta must leave the engine untouched.
        failure.validate(&topo).map_err(EngineError::InvalidDelta)?;
        let mut next = NetworkModel::new(topo, dst, scheme, failure);
        next.scheme_overrides = overrides;
        next.hop_cap = hop_cap;
        Ok(next)
    }
}

/// What one [`Engine::apply`] did.
#[derive(Clone, Copy, Debug)]
pub struct DeltaReport {
    /// Size of the delta's declared invalidation upper bound
    /// ([`Delta::touched`]; the switch count when `All`).
    pub touched_upper_bound: usize,
    /// Switches whose [`HopInputs`] actually changed. Invariant:
    /// `switches_changed <= touched_upper_bound`.
    pub switches_changed: usize,
    /// Switches recompiled (per-switch cache misses). At most
    /// `switches_changed` on a patch; up to the full switch count on a
    /// structural rebuild (the cache was dropped).
    pub switches_recompiled: usize,
    /// Whether the delta was structural (cache dropped, full rebuild).
    pub full_rebuild: bool,
    /// Whether the loop solve was answered from the `while`-solution
    /// cache (a chain body the engine had already seen).
    pub loop_cache_hit: bool,
    /// Wall-clock time of the whole patch.
    pub elapsed: Duration,
}

/// A single query against loaded models.
#[derive(Clone, Debug)]
pub enum Query {
    /// Probability a packet injected at ingress `src` reaches the
    /// destination.
    DeliveryProb {
        /// The model to query.
        model: ModelId,
        /// Ingress switch.
        src: NodeId,
    },
    /// Whether `src` can reach the destination at all (delivery
    /// probability strictly positive).
    Reachable {
        /// The model to query.
        model: ModelId,
        /// Ingress switch.
        src: NodeId,
    },
    /// The minimum delivery probability over every ingress.
    MinDelivery {
        /// The model to query.
        model: ModelId,
    },
    /// Whether `left` refines `right`: at least as likely to deliver from
    /// every ingress ([`Queries::refines`]).
    Refines {
        /// The candidate refinement.
        left: ModelId,
        /// The model refined against.
        right: ModelId,
    },
    /// Whether the two compiled models are equivalent as packet
    /// transformers.
    Equiv {
        /// First model.
        left: ModelId,
        /// Second model.
        right: ModelId,
    },
    /// Whether the model delivers like the ideal teleport specification
    /// (failure-free resilience check).
    EquivTeleport {
        /// The model to query.
        model: ModelId,
    },
}

/// A [`Query`] plus its resource [`Budget`]. A budget that is already
/// cancelled or past its deadline rejects the query at admission; limits
/// are also re-checked against the manager between query steps.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// What to answer.
    pub query: Query,
    /// Per-query resource budget (unlimited by default).
    pub budget: Budget,
}

impl QueryRequest {
    /// Gives the request a deadline this far in the future, keeping the
    /// rest of its budget. The overload story in one line: batch
    /// producers attach deadlines, slow queries trip them, and the
    /// degraded-answer path ([`EngineConfig::degraded_grace`]) gets one
    /// bounded retry before the error surfaces.
    pub fn with_deadline(mut self, timeout: Duration) -> QueryRequest {
        self.budget = self.budget.with_deadline(timeout);
        self
    }
}

impl From<Query> for QueryRequest {
    fn from(query: Query) -> QueryRequest {
        QueryRequest {
            query,
            budget: Budget::unlimited(),
        }
    }
}

/// A query's answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Answer {
    /// An exact probability.
    Prob(Ratio),
    /// A truth value.
    Bool(bool),
}

impl Answer {
    /// The probability inside, if this is a probability answer.
    pub fn prob(&self) -> Option<&Ratio> {
        match self {
            Answer::Prob(r) => Some(r),
            Answer::Bool(_) => None,
        }
    }

    /// The truth value inside, if this is a boolean answer.
    pub fn truth(&self) -> Option<bool> {
        match self {
            Answer::Bool(b) => Some(*b),
            Answer::Prob(_) => None,
        }
    }
}

/// A point-in-time snapshot of the engine's gauges.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Loaded models.
    pub models: usize,
    /// Per-switch diagrams currently cached.
    pub hop_cache_entries: usize,
    /// Per-switch compiles answered from the cache (cumulative).
    pub hop_cache_hits: u64,
    /// Per-switch compiles that ran (cumulative).
    pub hop_cache_misses: u64,
    /// Deltas applied (cumulative).
    pub deltas_applied: u64,
    /// Deltas that dropped the cache for a structural rebuild.
    pub full_rebuilds: u64,
    /// Switches whose inputs changed, summed over all deltas.
    pub switches_changed: u64,
    /// Switches recompiled, summed over all deltas.
    pub switches_recompiled: u64,
    /// Queries answered (cumulative, including rejected ones).
    pub queries: u64,
    /// Median per-query latency in nanoseconds (0 before any query).
    pub query_p50_ns: u64,
    /// 99th-percentile per-query latency in nanoseconds.
    pub query_p99_ns: u64,
    /// The manager's `while`-loop solution cache counters — the gauge of
    /// how many chain-body solves the warm cache absorbed.
    pub while_cache: WhileCacheStats,
    /// Op-cache lookups answered from cache, summed over all op caches.
    pub op_cache_hits: u64,
    /// Op-cache lookups that had to compute, summed.
    pub op_cache_misses: u64,
    /// Op-cache entries discarded by the capacity bound
    /// ([`Manager::set_cache_capacity`]) — nonzero means the bound is
    /// actively limiting the long-lived manager's memory.
    pub op_cache_evictions: u64,
    /// Peak live nodes the shared manager ever held.
    pub peak_live_nodes: usize,
    /// Bytes of write-ahead journal written (0 when not journaling).
    pub journal_bytes: u64,
    /// Records appended to the journal, including a resumed prefix's.
    pub journal_records: u64,
    /// Whether a journal failure has poisoned the writer (mutating
    /// operations now refuse; recover to resume).
    pub journal_poisoned: bool,
    /// Times this engine's state was rebuilt by [`Engine::recover`]
    /// (0 or 1 — an engine recovers at construction, never live).
    pub recoveries: u64,
    /// Queries shed by the admission gate ([`EngineError::Overloaded`]).
    pub queries_shed: u64,
    /// Deadline-tripped queries salvaged by the degraded retry
    /// ([`EngineConfig::degraded_grace`]).
    pub degraded_answers: u64,
    /// Hop-cache entries evicted by unload auto-trim,
    /// [`Engine::trim_hop_cache`], and the configured cache limit.
    pub hop_cache_evictions: u64,
}

struct ModelEntry {
    model: NetworkModel,
    fdd: Fdd,
    inputs: BTreeMap<NodeId, HopInputs>,
}

/// Configuration for a fresh [`Engine`].
#[derive(Clone, Debug, Default)]
pub struct EngineConfig {
    /// Compile options for every compile the engine runs (loop solver
    /// backend, lumping, default budget for loads/patches).
    pub opts: CompileOptions,
    /// When set, bound each of the manager's op caches to this many
    /// entries (clear-on-overflow; see [`Manager::set_cache_capacity`]).
    /// Evictions surface in [`EngineStats::op_cache_evictions`].
    pub cache_capacity: Option<usize>,
    /// When set, the per-switch hop cache is trimmed back to the entries
    /// referenced by the loaded models whenever it grows past this many
    /// entries ([`Engine::trim_hop_cache`] runs after the load/apply that
    /// overflowed). Unset means the cache only shrinks on structural
    /// rebuilds and unloads — fine for benchmarks; bound it for a
    /// long-lived server.
    pub hop_cache_limit: Option<usize>,
    /// When set, at most this many queries run at once; excess queries
    /// are shed at admission with [`EngineError::Overloaded`] instead of
    /// queueing without bound. [`Engine::query_batch`] also caps its
    /// worker fan-out here (its own requests queue rather than shed).
    /// Unset means no gate (every caller thread runs).
    pub max_concurrent_queries: Option<usize>,
    /// When set, a query that trips its deadline is retried once with a
    /// fresh budget of this duration (under the default solver fallback
    /// chain) before the error surfaces — a late degraded answer beats
    /// none. Salvaged queries count in
    /// [`EngineStats::degraded_answers`]. Unset disables the retry.
    pub degraded_grace: Option<Duration>,
}

/// Cap on retained query-latency samples. Once full, new samples
/// overwrite the oldest (a ring), so the gauges track a recent window
/// instead of the whole process lifetime and [`Engine::stats`] sorts a
/// bounded vector.
const LATENCY_SAMPLE_CAP: usize = 4096;

/// A fixed-capacity ring of latency samples. Order is irrelevant (the
/// percentile pass sorts), so overwrite-at-cursor is all it needs.
struct LatencyRing {
    samples: Vec<u64>,
    cursor: usize,
}

impl LatencyRing {
    fn new() -> LatencyRing {
        LatencyRing {
            samples: Vec::new(),
            cursor: 0,
        }
    }

    fn push(&mut self, ns: u64) {
        if self.samples.len() < LATENCY_SAMPLE_CAP {
            self.samples.push(ns);
        } else {
            self.samples[self.cursor] = ns;
            self.cursor = (self.cursor + 1) % LATENCY_SAMPLE_CAP;
        }
    }

    fn clear(&mut self) {
        self.samples.clear();
        self.cursor = 0;
    }
}

/// A long-lived incremental verification engine: one shared [`Manager`],
/// a per-switch diagram cache keyed on [`HopInputs`], loaded models, and
/// latency-tracked concurrent queries. See the crate docs for the full
/// story.
pub struct Engine {
    mgr: Manager,
    opts: CompileOptions,
    models: BTreeMap<ModelId, ModelEntry>,
    next_id: u64,
    hops: HashMap<HopInputs, Fdd>,
    // Cumulative counters. Delta-path counters are plain (apply takes
    // `&mut self`); query counters are atomics (query_batch takes `&self`
    // and runs concurrently).
    hop_hits: u64,
    hop_misses: u64,
    deltas_applied: u64,
    full_rebuilds: u64,
    switches_changed: u64,
    switches_recompiled: u64,
    hop_cache_evictions: u64,
    queries: AtomicU64,
    latencies_ns: Mutex<LatencyRing>,
    hop_cache_limit: Option<usize>,
    // Durability: the write-ahead journal (None for an in-memory-only
    // engine) and how many times this state was rebuilt by recovery.
    journal: Option<journal::JournalWriter>,
    recoveries: u64,
    // Overload tolerance: the admission gate and its gauges.
    max_concurrent_queries: Option<usize>,
    degraded_grace: Option<Duration>,
    active_queries: AtomicUsize,
    queries_shed: AtomicU64,
    degraded_answers: AtomicU64,
}

/// What [`Engine::recover`] rebuilt and repaired.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReport {
    /// Models rebuilt from the snapshot checkpoint.
    pub snapshot_models: usize,
    /// Committed journal records replayed past the snapshot offset.
    pub records_replayed: u64,
    /// Intent records with no commit marker — operations that failed (or
    /// died) mid-flight and were correctly *not* replayed.
    pub uncommitted_intents: u64,
    /// Torn-tail bytes truncated off the journal before resuming.
    pub truncated_bytes: u64,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Engine {
        let mgr = match config.cache_capacity {
            Some(cap) => Manager::with_cache_capacity(cap),
            None => Manager::new(),
        };
        Engine {
            mgr,
            opts: config.opts,
            models: BTreeMap::new(),
            next_id: 0,
            hops: HashMap::new(),
            hop_hits: 0,
            hop_misses: 0,
            deltas_applied: 0,
            full_rebuilds: 0,
            switches_changed: 0,
            switches_recompiled: 0,
            hop_cache_evictions: 0,
            queries: AtomicU64::new(0),
            latencies_ns: Mutex::new(LatencyRing::new()),
            hop_cache_limit: config.hop_cache_limit,
            journal: None,
            recoveries: 0,
            max_concurrent_queries: config.max_concurrent_queries,
            degraded_grace: config.degraded_grace,
            active_queries: AtomicUsize::new(0),
            queries_shed: AtomicU64::new(0),
            degraded_answers: AtomicU64::new(0),
        }
    }

    /// Creates a **journaling** engine over a fresh durability directory:
    /// every load, delta, and unload is appended to
    /// `dir/`[`journal::JOURNAL_FILE`] *before* it mutates state, so a
    /// crash at any point recovers ([`Engine::recover`]) to exactly the
    /// state the survivor would have reported.
    ///
    /// This is a *fresh start*: any stale journal or snapshot in `dir`
    /// is discarded. To resume an existing directory's state, use
    /// [`Engine::recover`] instead.
    ///
    /// # Errors
    ///
    /// [`EngineError::Journal`] when the directory or journal cannot be
    /// created.
    pub fn with_journal(
        config: EngineConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Engine, EngineError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| JournalError::Io(e.to_string()))?;
        let snap = dir.join(journal::SNAPSHOT_FILE);
        if snap.exists() {
            std::fs::remove_file(&snap).map_err(|e| JournalError::Io(e.to_string()))?;
        }
        let writer = journal::JournalWriter::create(&dir.join(journal::JOURNAL_FILE))?;
        let mut engine = Engine::new(config);
        engine.journal = Some(writer);
        Ok(engine)
    }

    /// Rebuilds an engine from a durability directory: the snapshot's
    /// models (if one exists), then the journal's committed records past
    /// the snapshot offset, applied in order through the normal
    /// (non-journaling) load/apply/unload paths. A torn journal tail is
    /// truncated (partial writes are expected on crash); interior
    /// corruption is refused with a typed [`RecoveryError`]. Every
    /// recovered model is then re-verified against a cold compile
    /// ([`Engine::verify_against_cold`]) before the engine is handed
    /// back, journaling resumed at the truncated tail.
    ///
    /// `config` should match the crashed engine's (the replay re-runs
    /// its compiles under this config's budget and options).
    ///
    /// # Errors
    ///
    /// [`RecoveryError`]; the partially-built engine is dropped.
    pub fn recover(
        config: EngineConfig,
        dir: impl AsRef<Path>,
    ) -> Result<(Engine, RecoveryReport), RecoveryError> {
        let dir = dir.as_ref();
        let journal_path = dir.join(journal::JOURNAL_FILE);
        let snapshot_path = dir.join(journal::SNAPSHOT_FILE);
        if !journal_path.exists() && !snapshot_path.exists() {
            return Err(RecoveryError::NothingToRecover);
        }

        let scanned = if journal_path.exists() {
            journal::scan(&journal_path)?
        } else {
            journal::ScanResult {
                records: Vec::new(),
                valid_len: 0,
                truncated_bytes: 0,
            }
        };
        let snap = if snapshot_path.exists() {
            let s = journal::read_snapshot(&snapshot_path)?;
            if s.journal_offset > scanned.valid_len {
                return Err(RecoveryError::Snapshot(format!(
                    "snapshot taken at journal offset {} but only {} valid journal bytes exist",
                    s.journal_offset, scanned.valid_len
                )));
            }
            Some(s)
        } else {
            None
        };

        let mut engine = Engine::new(config);
        let mut snapshot_models = 0usize;
        if let Some(s) = &snap {
            engine.next_id = s.next_id;
            engine.deltas_applied = s.counters.deltas_applied;
            engine.full_rebuilds = s.counters.full_rebuilds;
            engine.switches_changed = s.counters.switches_changed;
            for (id, desc) in &s.models {
                let model = desc.build().map_err(|e| {
                    RecoveryError::Snapshot(format!("model m{id} failed to build: {e}"))
                })?;
                engine.load_recovered(ModelId(*id), model).map_err(|e| {
                    RecoveryError::Snapshot(format!("model m{id} failed to compile: {e}"))
                })?;
                snapshot_models += 1;
            }
        }

        // Replay the committed tail. An intent with no commit marker is
        // an operation that died (or failed) before its mutation — the
        // survivor never saw it applied, so neither does the replay.
        let floor = snap.as_ref().map_or(0, |s| s.journal_offset);
        let committed = journal::committed(&scanned);
        let intents = scanned
            .records
            .iter()
            .filter(|(_, r)| !matches!(r, Record::Commit))
            .count() as u64;
        let mut replayed = 0u64;
        for (offset, rec) in &committed {
            if *offset < floor {
                continue; // already inside the snapshot
            }
            let fail = |why: String| RecoveryError::Replay {
                index: replayed,
                why,
            };
            match rec {
                Record::Load { id, desc } => {
                    let model = desc.build().map_err(fail)?;
                    engine
                        .load_recovered(ModelId(*id), model)
                        .map_err(|e| fail(e.to_string()))?;
                    engine.next_id = engine.next_id.max(id + 1);
                }
                Record::Apply { id, delta } => {
                    // The engine's journal is still `None`, so this is
                    // the ordinary apply path minus journaling — same
                    // compile, same accounting.
                    engine
                        .apply(ModelId(*id), delta.clone())
                        .map_err(|e| fail(e.to_string()))?;
                }
                Record::Unload { id } => {
                    engine
                        .unload(ModelId(*id))
                        .map_err(|e| fail(e.to_string()))?;
                }
                Record::Commit => unreachable!("committed() never yields markers"),
            }
            replayed += 1;
        }

        // The recovered state must not merely load — it must be the
        // ground truth. Re-verify every model against a cold compile.
        let ids: Vec<ModelId> = engine.models.keys().copied().collect();
        for id in ids {
            match engine.verify_against_cold(id) {
                Ok(true) => {}
                Ok(false) => {
                    return Err(RecoveryError::Verify(format!(
                        "model {id} differs from a cold compile"
                    )))
                }
                Err(e) => return Err(RecoveryError::Verify(format!("model {id}: {e}"))),
            }
        }

        // Truncate the torn tail for real and resume journaling there.
        let writer = journal::JournalWriter::open_at(
            &journal_path,
            scanned.valid_len,
            scanned.records.len() as u64,
        )
        .map_err(|e| RecoveryError::Io(e.to_string()))?;
        engine.journal = Some(writer);
        engine.recoveries = 1;

        Ok((
            engine,
            RecoveryReport {
                snapshot_models,
                records_replayed: replayed,
                uncommitted_intents: intents - committed.len() as u64,
                truncated_bytes: scanned.truncated_bytes,
            },
        ))
    }

    /// Writes a snapshot checkpoint of the durable state — every loaded
    /// model's description (not its FDD — recompilation is the source of
    /// truth), the id counter, the delta accounting, and the journal
    /// offset — atomically (temp file + rename). Recovery from a
    /// snapshot replays only the journal records past its offset, so
    /// periodic snapshots bound replay time for long delta histories.
    ///
    /// # Errors
    ///
    /// [`EngineError::Journal`] on write failure.
    pub fn snapshot(&self, path: impl AsRef<Path>) -> Result<(), EngineError> {
        let snap = journal::Snapshot {
            journal_offset: self.journal.as_ref().map_or(0, |w| w.offset()),
            next_id: self.next_id,
            models: self
                .models
                .iter()
                .map(|(id, e)| (id.0, ModelDescription::of(&e.model)))
                .collect(),
            counters: journal::SnapshotCounters {
                deltas_applied: self.deltas_applied,
                full_rebuilds: self.full_rebuilds,
                switches_changed: self.switches_changed,
            },
        };
        journal::write_snapshot(path.as_ref(), &snap)?;
        Ok(())
    }

    /// Appends an intent record (before any mutation), returning the
    /// rollback mark for [`Engine::journal_commit`]. No-op without a
    /// journal.
    fn journal_intent(&mut self, rec: &Record) -> Result<Option<(u64, u64)>, EngineError> {
        match &mut self.journal {
            None => Ok(None),
            Some(w) => {
                let mark = (w.offset(), w.records());
                w.append(rec)?;
                Ok(Some(mark))
            }
        }
    }

    /// Appends the commit marker for the intent at `mark`. On failure
    /// the intent is rolled back (best effort — a rollback failure
    /// poisons the writer, and the uncommitted intent is skipped by
    /// replay anyway), and the caller must leave the engine unmutated.
    fn journal_commit(&mut self, mark: Option<(u64, u64)>) -> Result<(), EngineError> {
        let Some(w) = &mut self.journal else {
            return Ok(());
        };
        if let Err(e) = w.append(&Record::Commit) {
            if let Some((offset, records)) = mark {
                let _ = w.abort_to(offset, records);
            }
            return Err(e.into());
        }
        Ok(())
    }

    /// The engine's shared manager (for cross-manager imports in
    /// differential tests and for direct diagram queries).
    pub fn manager(&self) -> &Manager {
        &self.mgr
    }

    /// Loads a model, compiling it through the per-switch cache (a model
    /// sharing switches with an already-loaded one reuses their
    /// diagrams), and returns its handle.
    ///
    /// All loaded models must share field handles — build them with
    /// [`NetworkModel::new`] (the default [`mcnetkat_net::FieldOrder`]).
    /// An engine is pinned to one field order for its lifetime; changing
    /// order means a fresh engine, the one "shared structure" delta that
    /// cannot be expressed as a [`Delta`].
    ///
    /// # Errors
    ///
    /// Propagates compile failures; the engine state is unchanged on
    /// error.
    pub fn load(&mut self, model: NetworkModel) -> Result<ModelId, EngineError> {
        let id = ModelId(self.next_id);
        // Write-ahead: the intent hits the journal before any state
        // moves. A compile failure below leaves it uncommitted, and
        // replay skips uncommitted intents.
        let mark = self.journal_intent(&Record::Load {
            id: id.0,
            desc: ModelDescription::of(&model),
        })?;
        let (fdd, inputs, _) = self.compile_incremental(&model)?;
        self.journal_commit(mark)?;
        self.next_id += 1;
        self.models.insert(id, ModelEntry { model, fdd, inputs });
        self.enforce_hop_cache_limit();
        Ok(id)
    }

    /// Loads a model under a recovery-dictated id, bypassing the journal
    /// (recovery replays the journal; re-journaling would double it).
    fn load_recovered(&mut self, id: ModelId, model: NetworkModel) -> Result<(), EngineError> {
        if self.models.contains_key(&id) {
            return Err(EngineError::InvalidDelta(format!(
                "duplicate model id {id} in recovery stream"
            )));
        }
        let (fdd, inputs, _) = self.compile_incremental(&model)?;
        self.models.insert(id, ModelEntry { model, fdd, inputs });
        self.enforce_hop_cache_limit();
        Ok(())
    }

    /// Drops a loaded model and auto-trims its now-unreferenced hop-cache
    /// entries (diagrams other loaded models still reference stay warm);
    /// the evictions count in [`EngineStats::hop_cache_evictions`].
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownModel`] if `id` is not loaded;
    /// [`EngineError::Journal`] when the intent cannot be journaled (the
    /// model stays loaded).
    pub fn unload(&mut self, id: ModelId) -> Result<(), EngineError> {
        if !self.models.contains_key(&id) {
            return Err(EngineError::UnknownModel(id));
        }
        let mark = self.journal_intent(&Record::Unload { id: id.0 })?;
        self.journal_commit(mark)?;
        self.unload_internal(id);
        Ok(())
    }

    /// The journal-free unload: remove the entry, then evict every hop
    /// diagram it referenced that no remaining model does.
    fn unload_internal(&mut self, id: ModelId) {
        let entry = self.models.remove(&id).expect("caller checked presence");
        let live: HashSet<&HopInputs> = self
            .models
            .values()
            .flat_map(|e| e.inputs.values())
            .collect();
        let mut evicted = 0u64;
        for inp in entry.inputs.values() {
            if !live.contains(inp) && self.hops.remove(inp).is_some() {
                evicted += 1;
            }
        }
        drop(live);
        self.hop_cache_evictions += evicted;
        self.enforce_hop_cache_limit();
    }

    /// The current model behind a handle.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownModel`] if `id` is not loaded.
    pub fn model(&self, id: ModelId) -> Result<&NetworkModel, EngineError> {
        self.models
            .get(&id)
            .map(|e| &e.model)
            .ok_or(EngineError::UnknownModel(id))
    }

    /// The model's current compiled diagram (a handle into
    /// [`Engine::manager`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownModel`] if `id` is not loaded.
    pub fn fdd(&self, id: ModelId) -> Result<Fdd, EngineError> {
        self.models
            .get(&id)
            .map(|e| e.fdd)
            .ok_or(EngineError::UnknownModel(id))
    }

    /// Applies a delta to a loaded model: computes the updated model,
    /// recompiles only the switches whose [`HopInputs`] changed (all of
    /// them after a structural delta dropped the cache), re-folds the
    /// `sw`-case chain, and finishes through the batch pipeline's
    /// [`assemble_model`] tail — where an already-seen chain body hits
    /// the `while`-solution cache and skips the loop solve.
    ///
    /// On error the engine keeps the pre-delta model and diagram.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownModel`], [`EngineError::InvalidDelta`], or a
    /// propagated compile failure.
    pub fn apply(&mut self, id: ModelId, delta: Delta) -> Result<DeltaReport, EngineError> {
        let start = Instant::now();
        let entry = self.models.get(&id).ok_or(EngineError::UnknownModel(id))?;
        let next = delta.apply_to(&entry.model)?;
        let touched = delta.touched(&entry.model);
        let full_rebuild = delta.is_structural();
        // Write-ahead: the delta hits the journal before any engine
        // state moves. If the compile below fails, the intent stays
        // uncommitted and replay skips it — journal and survivor agree.
        let mark = self.journal_intent(&Record::Apply {
            id: id.0,
            delta: delta.clone(),
        })?;
        // Shared structure moved under the cache: a structural delta
        // recompiles against a fresh cache so no stale field/budget
        // coupling survives. The pre-delta cache is kept aside and only
        // dropped once the compile succeeds — a budget trip restores it
        // (and the rebuild counter) along with the model.
        let saved_hops = full_rebuild.then(|| std::mem::take(&mut self.hops));

        let while_stats_before = self.mgr.while_cache_stats();
        let old_inputs = std::mem::take(
            &mut self
                .models
                .get_mut(&id)
                .expect("entry looked up above")
                .inputs,
        );
        let compiled = self.compile_incremental(&next);
        let restore = |engine: &mut Engine, old_inputs, saved_hops: Option<_>| {
            engine
                .models
                .get_mut(&id)
                .expect("entry looked up above")
                .inputs = old_inputs;
            if let Some(old) = saved_hops {
                engine.hops = old;
            }
        };
        let (fdd, inputs, recompiled) = match compiled {
            Ok(v) => v,
            Err(e) => {
                restore(self, old_inputs, saved_hops); // pre-delta state intact
                return Err(e);
            }
        };
        // Commit marker before the (infallible) in-memory mutation: a
        // crash on either side of it leaves journal and state agreeing.
        if let Err(e) = self.journal_commit(mark) {
            restore(self, old_inputs, saved_hops);
            return Err(e);
        }
        if full_rebuild {
            self.full_rebuilds += 1;
        }
        let changed = inputs
            .iter()
            .filter(|(s, inp)| old_inputs.get(s) != Some(inp))
            .count();
        debug_assert!(
            inputs
                .iter()
                .filter(|(s, inp)| old_inputs.get(s) != Some(inp))
                .all(|(s, _)| touched.contains(*s)),
            "a switch outside the delta's declared touched set changed inputs"
        );
        let entry = self.models.get_mut(&id).expect("entry looked up above");
        entry.model = next;
        entry.fdd = fdd;
        entry.inputs = inputs;

        self.deltas_applied += 1;
        self.switches_changed += changed as u64;
        self.switches_recompiled += recompiled as u64;
        self.enforce_hop_cache_limit();
        let while_stats_after = self.mgr.while_cache_stats();
        let switches = self.models[&id].model.topo.switches().len();
        Ok(DeltaReport {
            touched_upper_bound: touched.len(switches),
            switches_changed: changed,
            switches_recompiled: recompiled,
            full_rebuild,
            loop_cache_hit: while_stats_after.hits > while_stats_before.hits,
            elapsed: start.elapsed(),
        })
    }

    /// Compiles `model` against the per-switch cache: cache hits reuse
    /// diagrams, misses compile-and-insert. Returns the assembled
    /// diagram, the per-switch inputs, and the miss count.
    fn compile_incremental(
        &mut self,
        model: &NetworkModel,
    ) -> Result<(Fdd, BTreeMap<NodeId, HopInputs>, usize), EngineError> {
        let sp = ShortestPaths::towards(&model.topo, model.dst);
        let mut inputs = BTreeMap::new();
        let mut recompiled = 0usize;
        let mut stats = FusedStats::default();
        // Borrow pieces individually so the closure can mutate the cache
        // and counters while the manager is borrowed immutably.
        let mgr = &self.mgr;
        let opts = &self.opts;
        let hops = &mut self.hops;
        let hop_hits = &mut self.hop_hits;
        let hop_misses = &mut self.hop_misses;
        let body = assemble_chain(mgr, model, |s| {
            // Per-switch budget checkpoint, mirroring the batch pipeline.
            serve_failpoint("serve::apply::patch")?;
            opts.budget.check_external()?;
            let inp = hop_inputs(model, s, &sp);
            let fdd = match hops.get(&inp) {
                Some(&f) => {
                    *hop_hits += 1;
                    f
                }
                None => {
                    *hop_misses += 1;
                    recompiled += 1;
                    let f = compile_hop_import(mgr, &inp, opts, &mut stats)?;
                    hops.insert(inp.clone(), f);
                    f
                }
            };
            inputs.insert(s, inp);
            Ok(fdd)
        })?;
        serve_failpoint("serve::apply::assemble")?;
        let fdd = assemble_model(&self.mgr, model, body, &self.opts)?;
        #[cfg(feature = "audit")]
        self.audit_patched(model, fdd);
        Ok((fdd, inputs, recompiled))
    }

    /// The `audit` feature's post-patch verification, mirroring the batch
    /// pipelines' self-audit: the shared manager's tables are clean and
    /// the patched diagram mentions no scratch field.
    #[cfg(feature = "audit")]
    fn audit_patched(&self, model: &NetworkModel, fdd: Fdd) {
        self.mgr.audit().assert_clean();
        let dom = self.mgr.domain(fdd);
        for &f in model.fields.ups().iter().chain(model.fields.grps()) {
            assert!(
                !dom.tested.contains_key(&f),
                "patched model diagram tests scratch field {f}"
            );
        }
    }

    /// Recompiles the model cold — fresh manager, empty caches, the batch
    /// [`NetworkModel::compile_with`] pipeline — imports the result, and
    /// checks it equivalent to the engine's incrementally patched
    /// diagram. The ground-truth check the CI `serve` job gates on.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownModel`] or a propagated compile failure from
    /// the cold compile.
    pub fn verify_against_cold(&self, id: ModelId) -> Result<bool, EngineError> {
        let entry = self.models.get(&id).ok_or(EngineError::UnknownModel(id))?;
        let cold_mgr = Manager::new();
        let cold = entry.model.compile_with(&cold_mgr, &self.opts)?;
        let imported = self.mgr.import(&cold_mgr.export(cold));
        Ok(self.mgr.equiv(entry.fdd, imported))
    }

    /// Answers a batch of queries concurrently over the shared manager,
    /// each under its own budget. Results come back in request order;
    /// each failure is per-query (one budget trip doesn't poison the
    /// batch).
    ///
    /// Worker fan-out is capped at
    /// [`EngineConfig::max_concurrent_queries`] (falling back to the
    /// machine's parallelism), and the requests past the cap *queue* on
    /// the workers' shared cursor rather than spawning threads — a 10k
    /// query batch runs on a handful of threads. Under cross-batch
    /// contention, individual queries can still shed with
    /// [`EngineError::Overloaded`] (the admission gate is global).
    pub fn query_batch(&self, reqs: &[QueryRequest]) -> Vec<Result<Answer, EngineError>> {
        if reqs.is_empty() {
            return Vec::new();
        }
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = reqs
            .len()
            .min(self.max_concurrent_queries.unwrap_or(hardware))
            .max(1);
        let slots: Vec<OnceLock<Result<Answer, EngineError>>> =
            (0..reqs.len()).map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(req) = reqs.get(i) else { break };
                    let result = self.query(req);
                    slots[i]
                        .set(result)
                        .map_err(|_| "slot")
                        .expect("slot set once");
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("every slot filled by a worker"))
            .collect()
    }

    /// Answers one query under its budget, recording its latency.
    ///
    /// Admission happens in two layers. First the concurrency gate:
    /// when [`EngineConfig::max_concurrent_queries`] queries are already
    /// in flight, the query is *shed* with [`EngineError::Overloaded`]
    /// before any work. Then the budget: a cancelled or expired budget
    /// rejects the query, and limits are re-checked against the manager
    /// between steps of multi-part queries. A query that completes its
    /// computation returns its answer even if the deadline passed
    /// meanwhile — a late exact answer is still an answer — and a query
    /// that *trips* its deadline gets one degraded retry under
    /// [`EngineConfig::degraded_grace`] (when configured) before the
    /// error surfaces.
    ///
    /// # Errors
    ///
    /// [`EngineError::Overloaded`], [`EngineError::UnknownModel`], a
    /// budget-trip [`CompileError`], or a propagated compile failure
    /// (the teleport check compiles its specification on first use).
    pub fn query(&self, req: &QueryRequest) -> Result<Answer, EngineError> {
        let start = Instant::now();
        self.queries.fetch_add(1, Ordering::Relaxed);
        let _permit = self.admit()?;
        let mut result = self.answer(req);
        if let (Err(EngineError::Compile(CompileError::DeadlineExceeded)), Some(grace)) =
            (&result, self.degraded_grace)
        {
            // Degraded path: one bounded retry with a fresh deadline.
            // The solver fallback chain (`CompileOptions::fallback`)
            // already runs under `answer`, so the retry's only new
            // allowance is time.
            let retry = QueryRequest {
                query: req.query.clone(),
                budget: Budget::unlimited().with_deadline(grace),
            };
            if let Ok(answer) = self.answer(&retry) {
                self.degraded_answers.fetch_add(1, Ordering::Relaxed);
                result = Ok(answer);
            }
        }
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.latencies_ns
            .lock()
            .expect("latency gauge poisoned")
            .push(ns);
        result
    }

    /// The admission gate: takes a concurrency permit or sheds.
    fn admit(&self) -> Result<Option<QueryPermit<'_>>, EngineError> {
        let Some(limit) = self.max_concurrent_queries else {
            return Ok(None);
        };
        let mut active = self.active_queries.load(Ordering::Relaxed);
        loop {
            if active >= limit {
                self.queries_shed.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::Overloaded { active, limit });
            }
            match self.active_queries.compare_exchange_weak(
                active,
                active + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(Some(QueryPermit(&self.active_queries))),
                Err(now) => active = now,
            }
        }
    }

    fn answer(&self, req: &QueryRequest) -> Result<Answer, EngineError> {
        req.budget.check_external()?;
        let queries = |id: ModelId| -> Result<Queries<'_>, EngineError> {
            let entry = self.models.get(&id).ok_or(EngineError::UnknownModel(id))?;
            Ok(Queries::from_fdd(&self.mgr, &entry.model, entry.fdd))
        };
        match &req.query {
            Query::DeliveryProb { model, src } => {
                Ok(Answer::Prob(queries(*model)?.delivery_prob(*src)))
            }
            Query::Reachable { model, src } => {
                let p = queries(*model)?.delivery_prob(*src);
                Ok(Answer::Bool(p > Ratio::zero()))
            }
            Query::MinDelivery { model } => {
                let q = queries(*model)?;
                self.mgr.check_budget(&req.budget)?;
                Ok(Answer::Prob(q.min_delivery()))
            }
            Query::Refines { left, right } => {
                let l = queries(*left)?;
                let r = queries(*right)?;
                self.mgr.check_budget(&req.budget)?;
                // `Queries::refines` reads `self ≤ other`; "left refines
                // right" means right's delivery is dominated by left's.
                Ok(Answer::Bool(r.refines(&l)))
            }
            Query::Equiv { left, right } => {
                let l = self.fdd(*left)?;
                let r = self.fdd(*right)?;
                self.mgr.check_budget(&req.budget)?;
                Ok(Answer::Bool(self.mgr.equiv(l, r)))
            }
            Query::EquivTeleport { model } => {
                let q = queries(*model)?;
                self.mgr.check_budget(&req.budget)?;
                Ok(Answer::Bool(q.equiv_teleport()?))
            }
        }
    }

    /// Snapshot of every engine gauge: cache effectiveness, patch
    /// accounting, query latency percentiles, and the shared manager's
    /// cache/memory counters.
    pub fn stats(&self) -> EngineStats {
        let lat = self
            .latencies_ns
            .lock()
            .expect("latency gauge poisoned")
            .samples
            .clone();
        let (p50, p99) = percentiles(&lat);
        let op = self.mgr.op_cache_stats();
        EngineStats {
            models: self.models.len(),
            hop_cache_entries: self.hops.len(),
            hop_cache_hits: self.hop_hits,
            hop_cache_misses: self.hop_misses,
            deltas_applied: self.deltas_applied,
            full_rebuilds: self.full_rebuilds,
            switches_changed: self.switches_changed,
            switches_recompiled: self.switches_recompiled,
            queries: self.queries.load(Ordering::Relaxed),
            query_p50_ns: p50,
            query_p99_ns: p99,
            while_cache: self.mgr.while_cache_stats(),
            op_cache_hits: op.total_hits(),
            op_cache_misses: op.total_misses(),
            op_cache_evictions: op.total_evictions(),
            peak_live_nodes: self.mgr.peak_live_nodes(),
            journal_bytes: self.journal.as_ref().map_or(0, |w| w.offset()),
            journal_records: self.journal.as_ref().map_or(0, |w| w.records()),
            journal_poisoned: self.journal.as_ref().is_some_and(|w| w.is_poisoned()),
            recoveries: self.recoveries,
            queries_shed: self.queries_shed.load(Ordering::Relaxed),
            degraded_answers: self.degraded_answers.load(Ordering::Relaxed),
            hop_cache_evictions: self.hop_cache_evictions,
        }
    }

    /// Clears the recorded query-latency samples (so a benchmark can
    /// measure steady state without its warmup skewing the percentiles).
    pub fn reset_latencies(&self) {
        self.latencies_ns
            .lock()
            .expect("latency gauge poisoned")
            .clear();
    }

    /// Drops every cached per-switch diagram not referenced by a loaded
    /// model's current inputs, returning how many were evicted. Runs
    /// automatically when the cache overflows
    /// [`EngineConfig::hop_cache_limit`]; callable directly to release
    /// diagrams (and the manager nodes they pin) after an unload or a
    /// burst of one-off deltas.
    pub fn trim_hop_cache(&mut self) -> usize {
        let live: HashSet<&HopInputs> = self
            .models
            .values()
            .flat_map(|e| e.inputs.values())
            .collect();
        let before = self.hops.len();
        self.hops.retain(|inp, _| live.contains(inp));
        let evicted = before - self.hops.len();
        self.hop_cache_evictions += evicted as u64;
        evicted
    }

    /// Applies the configured hop-cache bound after a successful
    /// load/apply.
    fn enforce_hop_cache_limit(&mut self) {
        if self
            .hop_cache_limit
            .is_some_and(|limit| self.hops.len() > limit)
        {
            self.trim_hop_cache();
        }
    }
}

/// An admission-gate permit: holding one means the query is counted in
/// `active_queries`; dropping it (on any exit path) releases the slot.
struct QueryPermit<'a>(&'a AtomicUsize);

impl Drop for QueryPermit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// Polls a serve-engine failpoint through the shared registry
/// ([`mcnetkat_fdd::failpoints`]). Compiles away without the
/// `failpoints` feature. `Singular` is mapped to a solver error (the
/// generic injected failure at non-solver sites), `Cancel` to
/// [`CompileError::Cancelled`].
fn serve_failpoint(site: &str) -> Result<(), CompileError> {
    #[cfg(feature = "failpoints")]
    {
        use mcnetkat_fdd::failpoints::{check, InjectedFault};
        match check(site) {
            None => Ok(()),
            Some(InjectedFault::Cancelled) => Err(CompileError::Cancelled),
            Some(InjectedFault::Singular) => {
                Err(CompileError::Solver(mcnetkat_fdd::LinalgError::Singular(0)))
            }
        }
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        Ok(())
    }
}

/// `(p50, p99)` of a latency sample set, in the sample unit. Zero when
/// empty. Nearest-rank percentiles on a sorted copy.
fn percentiles(samples: &[u64]) -> (u64, u64) {
    if samples.is_empty() {
        return (0, 0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = |p: f64| -> u64 {
        let idx = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    };
    (rank(50.0), rank(99.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnetkat_net::FailureModel;
    use mcnetkat_topo::ab_fattree;

    fn fattree_model(pr: Ratio) -> NetworkModel {
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        NetworkModel::new(
            topo,
            dst,
            RoutingScheme::Ecmp,
            FailureModel::independent(pr),
        )
    }

    #[test]
    fn load_matches_cold_compile() {
        let mut engine = Engine::default();
        let id = engine.load(fattree_model(Ratio::new(1, 100))).unwrap();
        assert!(engine.verify_against_cold(id).unwrap());
    }

    #[test]
    fn single_switch_delta_changes_one_switch() {
        let mut engine = Engine::default();
        let model = fattree_model(Ratio::new(1, 100));
        let agg = model.topo.find("core0").unwrap();
        let id = engine.load(model).unwrap();
        let report = engine
            .apply(id, Delta::SetSwitchScheme(agg, RoutingScheme::F10_3))
            .unwrap();
        assert_eq!(report.switches_changed, 1);
        assert_eq!(report.switches_recompiled, 1);
        assert!(!report.full_rebuild);
        assert!(engine.verify_against_cold(id).unwrap());
    }

    #[test]
    fn flapping_delta_hits_all_caches() {
        let mut engine = Engine::default();
        let model = fattree_model(Ratio::new(1, 100));
        let agg = model.topo.find("core0").unwrap();
        let id = engine.load(model).unwrap();
        engine
            .apply(id, Delta::SetSwitchScheme(agg, RoutingScheme::F10_3))
            .unwrap();
        engine.apply(id, Delta::ClearSwitchScheme(agg)).unwrap();
        // Third flap: both configurations are warm — no switch compiles,
        // and the loop solve comes from the while cache.
        let report = engine
            .apply(id, Delta::SetSwitchScheme(agg, RoutingScheme::F10_3))
            .unwrap();
        assert_eq!(report.switches_changed, 1);
        assert_eq!(report.switches_recompiled, 0);
        assert!(report.loop_cache_hit);
        assert!(engine.verify_against_cold(id).unwrap());
    }

    #[test]
    fn budget_delta_is_a_full_rebuild() {
        let mut engine = Engine::default();
        let id = engine.load(fattree_model(Ratio::new(1, 100))).unwrap();
        let report = engine.apply(id, Delta::SetBudget(Some(1))).unwrap();
        assert!(report.full_rebuild);
        assert!(engine.stats().full_rebuilds == 1);
        assert!(engine.verify_against_cold(id).unwrap());
    }

    #[test]
    fn group_delta_under_budget_patches_member_switch_only() {
        // Regression: under a failure budget the budget-coupled branch of
        // `hop_inputs` used to list every group's flag on every switch, so
        // AddGroup/RemoveGroup invalidated the whole network instead of
        // the member-group switches declared by `Delta::touched`.
        let mut engine = Engine::default();
        let id = engine.load(fattree_model(Ratio::new(1, 100))).unwrap();
        engine.apply(id, Delta::SetBudget(Some(1))).unwrap();
        let (sw, port) = {
            let m = engine.model(id).unwrap();
            let node = m.topo.find("core0").unwrap();
            (m.topo.sw_value(node), m.prone_ports(node)[0])
        };
        let group = Srlg {
            name: "conduit".into(),
            pr: Ratio::new(1, 50),
            members: vec![(sw, port)],
        };
        let report = engine.apply(id, Delta::AddGroup(group)).unwrap();
        assert!(!report.full_rebuild);
        assert_eq!(report.touched_upper_bound, 1);
        assert_eq!(report.switches_changed, 1);
        assert!(engine.verify_against_cold(id).unwrap());
        let report = engine
            .apply(id, Delta::RemoveGroup("conduit".into()))
            .unwrap();
        assert_eq!(report.switches_changed, 1);
        assert!(engine.verify_against_cold(id).unwrap());
    }

    #[test]
    fn set_topology_remaps_overrides_and_dst_by_name() {
        use mcnetkat_topo::{Level, Topology};
        let mut t1 = Topology::new();
        let a1 = t1.add_switch("a", Level::Plain);
        let b1 = t1.add_switch("b", Level::Plain);
        let c1 = t1.add_switch("c", Level::Plain);
        t1.link(a1, b1);
        t1.link(b1, c1);
        let mut model = NetworkModel::new(
            t1,
            a1,
            RoutingScheme::Ecmp,
            FailureModel::independent(Ratio::zero()),
        );
        model.scheme_overrides.insert(c1, RoutingScheme::F10_3);

        // Same names, different insertion order: every NodeId shifts, so
        // a raw-id carry-over would rebind dst and the override.
        let mut t2 = Topology::new();
        let x2 = t2.add_switch("x", Level::Plain);
        let c2 = t2.add_switch("c", Level::Plain);
        let b2 = t2.add_switch("b", Level::Plain);
        let a2 = t2.add_switch("a", Level::Plain);
        t2.link(a2, b2);
        t2.link(b2, c2);
        t2.link(c2, x2);
        let next = Delta::SetTopology(t2).apply_to(&model).unwrap();
        assert_eq!(next.dst, a2);
        assert_eq!(next.scheme_overrides.len(), 1);
        assert_eq!(next.scheme_overrides.get(&c2), Some(&RoutingScheme::F10_3));

        // A topology without the destination's name is rejected.
        let mut t3 = Topology::new();
        t3.add_switch("z", Level::Plain);
        assert!(matches!(
            Delta::SetTopology(t3).apply_to(&model),
            Err(EngineError::InvalidDelta(_))
        ));
    }

    #[test]
    fn trim_hop_cache_drops_unreferenced_entries() {
        let mut engine = Engine::default();
        let id = engine.load(fattree_model(Ratio::new(1, 100))).unwrap();
        let core = engine.model(id).unwrap().topo.find("core0").unwrap();
        engine
            .apply(id, Delta::SetSwitchScheme(core, RoutingScheme::F10_3))
            .unwrap();
        // The pre-edit core0 diagram is cached but no longer referenced.
        let entries = engine.stats().hop_cache_entries;
        assert_eq!(engine.trim_hop_cache(), 1);
        assert_eq!(engine.stats().hop_cache_entries, entries - 1);
        assert!(engine.verify_against_cold(id).unwrap());
    }

    #[test]
    fn latency_ring_is_bounded() {
        let mut ring = LatencyRing::new();
        for i in 0..(LATENCY_SAMPLE_CAP as u64 + 10) {
            ring.push(i);
        }
        assert_eq!(ring.samples.len(), LATENCY_SAMPLE_CAP);
        // The newest samples are retained; the oldest were overwritten.
        assert!(ring.samples.contains(&(LATENCY_SAMPLE_CAP as u64 + 9)));
        assert!(!ring.samples.contains(&0));
    }

    #[test]
    fn rejected_delta_leaves_model_intact() {
        let mut engine = Engine::default();
        let id = engine.load(fattree_model(Ratio::new(1, 100))).unwrap();
        let before = engine.fdd(id).unwrap();
        let err = engine
            .apply(id, Delta::SetUniformPr(Ratio::new(3, 2)))
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidDelta(_)));
        assert_eq!(engine.fdd(id).unwrap(), before);
        assert!(engine.verify_against_cold(id).unwrap());
    }

    #[test]
    fn queries_answer_concurrently() {
        let mut engine = Engine::default();
        let model = fattree_model(Ratio::new(1, 4));
        let id = engine.load(model).unwrap();
        let srcs: Vec<NodeId> = engine.model(id).unwrap().ingresses();
        let reqs: Vec<QueryRequest> = srcs
            .iter()
            .map(|&src| Query::DeliveryProb { model: id, src }.into())
            .chain([Query::MinDelivery { model: id }.into()])
            .collect();
        let answers = engine.query_batch(&reqs);
        assert_eq!(answers.len(), srcs.len() + 1);
        let min = answers.last().unwrap().as_ref().unwrap();
        for a in &answers[..srcs.len()] {
            assert!(a.as_ref().unwrap().prob().unwrap() >= min.prob().unwrap());
        }
        assert_eq!(engine.stats().queries, reqs.len() as u64);
        assert!(engine.stats().query_p99_ns >= engine.stats().query_p50_ns);
    }

    #[test]
    fn cancelled_budget_rejects_query() {
        let mut engine = Engine::default();
        let id = engine.load(fattree_model(Ratio::zero())).unwrap();
        let src = engine.model(id).unwrap().ingresses()[0];
        let token = mcnetkat_fdd::CancelToken::new();
        token.cancel();
        let req = QueryRequest {
            query: Query::DeliveryProb { model: id, src },
            budget: Budget::unlimited().with_cancel(token),
        };
        let err = engine.query(&req).unwrap_err();
        assert!(matches!(err, EngineError::Compile(CompileError::Cancelled)));
    }

    #[test]
    fn refines_between_two_cached_models() {
        let mut engine = Engine::default();
        let reliable = engine.load(fattree_model(Ratio::new(1, 100))).unwrap();
        let lossy = engine.load(fattree_model(Ratio::new(1, 4))).unwrap();
        let answers = engine.query_batch(&[
            Query::Refines {
                left: reliable,
                right: lossy,
            }
            .into(),
            Query::Refines {
                left: lossy,
                right: reliable,
            }
            .into(),
        ]);
        // Delivery is monotone in link reliability: the reliable network
        // refines the lossy one from every ingress, strictly.
        assert_eq!(answers[0].as_ref().unwrap().truth(), Some(true));
        assert_eq!(answers[1].as_ref().unwrap().truth(), Some(false));
    }

    #[test]
    fn unknown_model_is_reported() {
        let engine = Engine::default();
        let ghost = ModelId(99);
        assert!(matches!(
            engine.model(ghost).unwrap_err(),
            EngineError::UnknownModel(id) if id == ghost
        ));
        let res = engine.query(&Query::MinDelivery { model: ghost }.into());
        assert!(matches!(
            res.unwrap_err(),
            EngineError::UnknownModel(id) if id == ghost
        ));
    }

    #[test]
    fn second_identical_model_is_all_cache_hits() {
        let mut engine = Engine::default();
        let model = fattree_model(Ratio::new(1, 100));
        let switches = model.topo.switches().len() as u64;
        engine.load(model.clone()).unwrap();
        let misses_before = engine.stats().hop_cache_misses;
        assert_eq!(misses_before, switches);
        engine.load(model).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.hop_cache_misses, misses_before);
        assert_eq!(stats.hop_cache_hits, switches);
    }

    #[test]
    fn percentile_ranks() {
        assert_eq!(percentiles(&[]), (0, 0));
        assert_eq!(percentiles(&[7]), (7, 7));
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentiles(&v), (50, 99));
    }
}
