//! Durable state for the serve engine: a write-ahead delta journal and
//! model-description snapshots.
//!
//! # Journal
//!
//! An append-only file of length-prefixed, checksummed records:
//!
//! ```text
//! [8-byte magic "MCNKJRNL"][u32 version]            — file header
//! [u32 len][u64 fnv1a64(payload)][payload]…         — records
//! ```
//!
//! Every mutating engine operation appends an *intent* record
//! ([`Record::Load`] / [`Record::Apply`] / [`Record::Unload`]) **before**
//! touching engine state, and a [`Record::Commit`] marker once the
//! operation's only fallible work (the compile) has succeeded — the
//! in-memory mutation that follows the commit marker is infallible map
//! surgery. Replay applies an intent only when the record *immediately
//! after it* is a commit marker, so a crash — or a failed compile, which
//! abandons its intent uncommitted — anywhere before the marker replays
//! to exactly the state the survivor reports. No undo records, no
//! double-apply.
//!
//! # Torn tails vs interior corruption
//!
//! A crash mid-append leaves a *prefix* of one record at the end of the
//! file. [`scan`] distinguishes the two failure shapes the way the
//! recovery contract demands:
//!
//! * **torn tail** — the file ends inside a record header, inside a
//!   payload, or with a checksum-failing *final* record: tolerated, the
//!   journal is truncated to the last whole record;
//! * **interior corruption** — a checksum or decode failure on a record
//!   with bytes after it, or an impossible length field: rejected with
//!   [`RecoveryError::Corrupt`], because bytes *behind* a valid suffix
//!   cannot be explained by a partial write.
//!
//! # Snapshots
//!
//! A snapshot ([`Snapshot`]) is a checksummed checkpoint of the loaded
//! models' *descriptions* ([`ModelDescription`] — never FDDs;
//! recompilation is the source of truth), the id counter, the engine's
//! delta accounting, and the journal offset it was taken at. Recovery
//! rebuilds the snapshot models, then replays only the journal records
//! past that offset. Snapshots are written to a temp file and
//! `rename`d into place, so a crash mid-snapshot leaves the previous
//! snapshot intact.

use crate::Delta;
use mcnetkat_net::{Codec, CodecError, ModelDescription, Reader};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

/// Journal file name inside an engine's durability directory.
pub const JOURNAL_FILE: &str = "journal.log";
/// Snapshot file name inside an engine's durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

const JOURNAL_MAGIC: [u8; 8] = *b"MCNKJRNL";
const SNAPSHOT_MAGIC: [u8; 8] = *b"MCNKSNAP";
const VERSION: u32 = 1;
/// Header: magic then version, little-endian.
const HEADER_LEN: usize = 12;
/// Record frame: u32 length + u64 checksum before the payload.
const FRAME_LEN: usize = 12;
/// Cap on a single record's payload. A length field past this cannot be
/// a real record (the largest topology we serve encodes far below it),
/// so it is diagnosed as corruption rather than obeyed.
const MAX_RECORD_LEN: usize = 1 << 28;

fn header(magic: [u8; 8]) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&magic);
    h[8..].copy_from_slice(&VERSION.to_le_bytes());
    h
}

/// FNV-1a, 64-bit — the in-repo checksum (the build environment is
/// offline; no external CRC crates). Not cryptographic: it detects the
/// torn writes and bit rot the journal cares about, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why journaling failed. A fatal append ([`JournalError::Io`],
/// [`JournalError::Torn`]) poisons the writer: the on-disk suffix is no
/// longer trusted, so further appends refuse with
/// [`JournalError::Poisoned`] until the operator recovers
/// ([`crate::Engine::recover`] truncates the torn tail and resumes).
#[derive(Clone, Debug)]
pub enum JournalError {
    /// The underlying file operation failed.
    Io(String),
    /// An injected fault tore the append partway through the record.
    Torn(String),
    /// An injected fault cancelled the append before any byte was
    /// written — the journal file is still clean.
    Cancelled,
    /// A previous append failed; the writer refuses further records.
    Poisoned,
    /// The record is larger than the format allows.
    TooLarge(usize),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io: {e}"),
            JournalError::Torn(why) => write!(f, "torn journal append: {why}"),
            JournalError::Cancelled => write!(f, "journal append cancelled"),
            JournalError::Poisoned => write!(f, "journal poisoned by an earlier failure"),
            JournalError::TooLarge(n) => write!(f, "record of {n} bytes exceeds journal cap"),
        }
    }
}

impl std::error::Error for JournalError {}

/// Why recovery failed. Torn tails are *not* errors (they are truncated
/// and reported in [`crate::RecoveryReport`]); these are the shapes
/// recovery refuses to guess about.
#[derive(Clone, Debug)]
pub enum RecoveryError {
    /// Filesystem failure reading or resuming the durable state.
    Io(String),
    /// The journal file exists but does not start with this format's
    /// header (and is not a bare torn prefix of it).
    BadHeader(String),
    /// A record *before* the journal's tail fails its checksum or
    /// decodes to garbage — interior corruption, not a partial write.
    Corrupt {
        /// Byte offset of the bad record's frame.
        offset: u64,
        /// What was wrong with it.
        why: String,
    },
    /// The snapshot file is unreadable, corrupt, or inconsistent with
    /// the journal (e.g. taken at an offset the journal never reached).
    Snapshot(String),
    /// A committed record failed to re-apply (a description that no
    /// longer builds, a delta the rebuilt model rejects, a compile
    /// failure under the recovery budget).
    Replay {
        /// Index of the failing record in replay order.
        index: u64,
        /// The underlying failure.
        why: String,
    },
    /// A recovered model's diagram did not verify against a cold
    /// compile — the recovered state would be lying.
    Verify(String),
    /// Neither a snapshot nor a journal exists in the directory.
    NothingToRecover,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "recovery io: {e}"),
            RecoveryError::BadHeader(why) => write!(f, "bad journal header: {why}"),
            RecoveryError::Corrupt { offset, why } => {
                write!(f, "journal corrupt at byte {offset}: {why}")
            }
            RecoveryError::Snapshot(why) => write!(f, "bad snapshot: {why}"),
            RecoveryError::Replay { index, why } => {
                write!(f, "replay failed at record {index}: {why}")
            }
            RecoveryError::Verify(why) => write!(f, "recovered state failed verification: {why}"),
            RecoveryError::NothingToRecover => {
                write!(f, "no snapshot or journal to recover from")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

fn io_err(e: std::io::Error) -> JournalError {
    JournalError::Io(e.to_string())
}

/// One journal record. `Load`/`Apply`/`Unload` are intents — declared
/// before the engine mutates anything — and `Commit` marks the
/// *immediately preceding* intent as applied.
#[derive(Clone, Debug)]
pub enum Record {
    /// A model was loaded under this id (ids are engine-assigned and
    /// replay-stable).
    Load {
        /// The id the engine assigned.
        id: u64,
        /// The loaded model's full description.
        desc: ModelDescription,
    },
    /// A delta was applied to the identified model.
    Apply {
        /// The target model.
        id: u64,
        /// The edit.
        delta: Delta,
    },
    /// The identified model was unloaded.
    Unload {
        /// The unloaded model.
        id: u64,
    },
    /// The preceding intent's fallible work succeeded and the in-memory
    /// state was (or is about to be, crash permitting) updated.
    Commit,
}

impl Codec for Delta {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Delta::SetScheme(s) => {
                out.push(0);
                s.encode(out);
            }
            Delta::SetSwitchScheme(n, s) => {
                out.push(1);
                n.encode(out);
                s.encode(out);
            }
            Delta::ClearSwitchScheme(n) => {
                out.push(2);
                n.encode(out);
            }
            Delta::SetUniformPr(pr) => {
                out.push(3);
                pr.encode(out);
            }
            Delta::SetLinkPr(port, pr) => {
                out.push(4);
                port.encode(out);
                pr.encode(out);
            }
            Delta::ClearLinkPr(port) => {
                out.push(5);
                port.encode(out);
            }
            Delta::SetBudget(k) => {
                out.push(6);
                k.encode(out);
            }
            Delta::AddGroup(g) => {
                out.push(7);
                g.encode(out);
            }
            Delta::RemoveGroup(name) => {
                out.push(8);
                name.encode(out);
            }
            Delta::SetGroupPr(name, pr) => {
                out.push(9);
                name.encode(out);
                pr.encode(out);
            }
            Delta::SetGroupMembers(name, members) => {
                out.push(10);
                name.encode(out);
                members.encode(out);
            }
            Delta::SetHopCap(cap) => {
                out.push(11);
                cap.encode(out);
            }
            Delta::SetTopology(t) => {
                out.push(12);
                t.encode(out);
            }
            Delta::SetDst(n) => {
                out.push(13);
                n.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Delta, CodecError> {
        use mcnetkat_net::RoutingScheme;
        use mcnetkat_num::Ratio;
        use mcnetkat_topo::{NodeId, Topology};
        Ok(match u8::decode(r)? {
            0 => Delta::SetScheme(RoutingScheme::decode(r)?),
            1 => Delta::SetSwitchScheme(NodeId::decode(r)?, RoutingScheme::decode(r)?),
            2 => Delta::ClearSwitchScheme(NodeId::decode(r)?),
            3 => Delta::SetUniformPr(Ratio::decode(r)?),
            4 => Delta::SetLinkPr(u32::decode(r)?, Ratio::decode(r)?),
            5 => Delta::ClearLinkPr(u32::decode(r)?),
            6 => Delta::SetBudget(Option::<u32>::decode(r)?),
            7 => Delta::AddGroup(mcnetkat_net::Srlg::decode(r)?),
            8 => Delta::RemoveGroup(String::decode(r)?),
            9 => Delta::SetGroupPr(String::decode(r)?, Ratio::decode(r)?),
            10 => Delta::SetGroupMembers(String::decode(r)?, Vec::<(u32, u32)>::decode(r)?),
            11 => Delta::SetHopCap(Option::<u32>::decode(r)?),
            12 => Delta::SetTopology(Topology::decode(r)?),
            13 => Delta::SetDst(NodeId::decode(r)?),
            tag => return Err(CodecError::BadTag { what: "Delta", tag }),
        })
    }
}

impl Codec for Record {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Record::Load { id, desc } => {
                out.push(0);
                id.encode(out);
                desc.encode(out);
            }
            Record::Apply { id, delta } => {
                out.push(1);
                id.encode(out);
                delta.encode(out);
            }
            Record::Unload { id } => {
                out.push(2);
                id.encode(out);
            }
            Record::Commit => out.push(3),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Record, CodecError> {
        Ok(match u8::decode(r)? {
            0 => Record::Load {
                id: u64::decode(r)?,
                desc: ModelDescription::decode(r)?,
            },
            1 => Record::Apply {
                id: u64::decode(r)?,
                delta: Delta::decode(r)?,
            },
            2 => Record::Unload {
                id: u64::decode(r)?,
            },
            3 => Record::Commit,
            tag => {
                return Err(CodecError::BadTag {
                    what: "Record",
                    tag,
                })
            }
        })
    }
}

/// What [`scan`] found: the decodable records (with the byte offset each
/// frame starts at), the length of the valid prefix, and how many
/// trailing bytes a torn write left behind it.
#[derive(Debug)]
pub struct ScanResult {
    /// Every whole, checksummed, decodable record in file order.
    pub records: Vec<(u64, Record)>,
    /// Bytes of valid journal (header + whole records). Recovery
    /// truncates the file here before resuming appends.
    pub valid_len: u64,
    /// Torn-tail bytes past `valid_len` (0 for a clean journal).
    pub truncated_bytes: u64,
}

/// Reads and validates a journal file, applying the torn-tail rule from
/// the module docs. A missing-at-zero-bytes file is a valid empty
/// journal (a crash between `create` and the header write).
///
/// # Errors
///
/// [`RecoveryError::Io`] on read failure, [`RecoveryError::BadHeader`]
/// when the file is not this format, [`RecoveryError::Corrupt`] on
/// interior (non-tail) corruption.
pub fn scan(path: &Path) -> Result<ScanResult, RecoveryError> {
    let bytes = std::fs::read(path).map_err(|e| RecoveryError::Io(e.to_string()))?;
    let expect = header(JOURNAL_MAGIC);
    if bytes.len() < HEADER_LEN {
        return if expect.starts_with(&bytes) {
            // A torn header write: nothing durable yet.
            Ok(ScanResult {
                records: Vec::new(),
                valid_len: 0,
                truncated_bytes: bytes.len() as u64,
            })
        } else {
            Err(RecoveryError::BadHeader(format!(
                "{} bytes that are not a journal header prefix",
                bytes.len()
            )))
        };
    }
    if bytes[..HEADER_LEN] != expect {
        return Err(RecoveryError::BadHeader(
            "magic or version mismatch".to_string(),
        ));
    }

    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    while pos < bytes.len() {
        let rem = bytes.len() - pos;
        if rem < FRAME_LEN {
            break; // torn inside a frame header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD_LEN {
            // A length field is written in one piece with its frame; a
            // nonsense value is corruption, not a partial write.
            return Err(RecoveryError::Corrupt {
                offset: pos as u64,
                why: format!("record length {len} exceeds format cap"),
            });
        }
        if FRAME_LEN + len > rem {
            break; // torn inside the payload
        }
        let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let payload = &bytes[pos + FRAME_LEN..pos + FRAME_LEN + len];
        let last = pos + FRAME_LEN + len == bytes.len();
        if fnv1a64(payload) != sum {
            if last {
                break; // checksum-failing final record: torn payload
            }
            return Err(RecoveryError::Corrupt {
                offset: pos as u64,
                why: "checksum mismatch on an interior record".to_string(),
            });
        }
        let rec = Record::from_bytes(payload).map_err(|e| RecoveryError::Corrupt {
            offset: pos as u64,
            why: format!("checksummed record failed to decode: {e}"),
        })?;
        records.push((pos as u64, rec));
        pos += FRAME_LEN + len;
    }
    Ok(ScanResult {
        records,
        valid_len: pos as u64,
        truncated_bytes: (bytes.len() - pos) as u64,
    })
}

/// The committed intents of a scanned journal, in order: each intent
/// whose immediately-following record is [`Record::Commit`], paired with
/// the byte offset of its frame.
pub fn committed(scan: &ScanResult) -> Vec<(u64, &Record)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < scan.records.len() {
        let (off, rec) = &scan.records[i];
        if !matches!(rec, Record::Commit)
            && matches!(scan.records.get(i + 1), Some((_, Record::Commit)))
        {
            out.push((*off, rec));
            i += 2;
        } else {
            i += 1; // an uncommitted intent or a stray commit: skip
        }
    }
    out
}

/// The appending half of the journal. One writer per engine; appends are
/// serialized by the engine's `&mut self` mutating API.
pub struct JournalWriter {
    file: File,
    offset: u64,
    records: u64,
    poisoned: bool,
}

impl JournalWriter {
    /// Creates (or truncates) a journal file and writes its header.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`].
    pub fn create(path: &Path) -> Result<JournalWriter, JournalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(io_err)?;
        file.write_all(&header(JOURNAL_MAGIC)).map_err(io_err)?;
        file.sync_data().map_err(io_err)?;
        Ok(JournalWriter {
            file,
            offset: HEADER_LEN as u64,
            records: 0,
            poisoned: false,
        })
    }

    /// Resumes appending to an existing journal at `valid_len` (from a
    /// [`scan`]), truncating any torn tail first. `records` seeds the
    /// record counter (the records already in the valid prefix).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`].
    pub fn open_at(
        path: &Path,
        valid_len: u64,
        records: u64,
    ) -> Result<JournalWriter, JournalError> {
        if valid_len < HEADER_LEN as u64 {
            // Nothing durable (empty or torn-header file): start fresh.
            return Ok(JournalWriter {
                records,
                ..JournalWriter::create(path)?
            });
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(io_err)?;
        file.set_len(valid_len).map_err(io_err)?;
        file.sync_data().map_err(io_err)?;
        file.seek(SeekFrom::End(0)).map_err(io_err)?;
        Ok(JournalWriter {
            file,
            offset: valid_len,
            records,
            poisoned: false,
        })
    }

    /// Bytes of journal written (header + whole records).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Records appended (including those in a resumed prefix).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Whether an earlier failure poisoned the writer.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Appends one record: frame, checksum, payload, then `fsync`.
    ///
    /// # Errors
    ///
    /// [`JournalError`] — `Io`/`Torn` failures poison the writer (the
    /// on-disk tail is untrusted until a recovery truncates it);
    /// `Cancelled` (injected) leaves it clean.
    pub fn append(&mut self, rec: &Record) -> Result<(), JournalError> {
        if self.poisoned {
            return Err(JournalError::Poisoned);
        }
        let payload = rec.to_bytes();
        if payload.len() > MAX_RECORD_LEN {
            return Err(JournalError::TooLarge(payload.len()));
        }
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        (payload.len() as u32).encode(&mut frame);
        fnv1a64(&payload).encode(&mut frame);
        frame.extend_from_slice(&payload);

        if let Some(fault) = journal_failpoint() {
            match fault {
                // `Cancel`: fail cleanly before any byte hits the file.
                InjectedJournalFault::Clean => return Err(JournalError::Cancelled),
                // `Singular` doubles as "the write tore partway": flush a
                // strict prefix of the frame and poison the writer, so
                // recovery must exercise the torn-tail truncation rule.
                InjectedJournalFault::Torn => {
                    let cut = FRAME_LEN + payload.len() / 2;
                    let r = self
                        .file
                        .write_all(&frame[..cut])
                        .and_then(|()| self.file.sync_data());
                    self.poisoned = true;
                    return Err(match r {
                        Ok(()) => JournalError::Torn("injected torn write".to_string()),
                        Err(e) => io_err(e),
                    });
                }
            }
        }

        if let Err(e) = self
            .file
            .write_all(&frame)
            .and_then(|()| self.file.sync_data())
        {
            // How much reached the disk is unknown: poison.
            self.poisoned = true;
            return Err(io_err(e));
        }
        self.offset += frame.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Rolls the journal back to a previously-returned [`offset`]
    /// (dropping the records after it) — the escape hatch for a commit
    /// marker that failed to append after its intent already had.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`]; failure poisons the writer.
    ///
    /// [`offset`]: JournalWriter::offset
    pub fn abort_to(&mut self, offset: u64, records: u64) -> Result<(), JournalError> {
        if self.poisoned {
            return Err(JournalError::Poisoned);
        }
        if let Err(e) = self
            .file
            .set_len(offset)
            .and_then(|()| self.file.sync_data())
            .and_then(|()| self.file.seek(SeekFrom::End(0)))
        {
            self.poisoned = true;
            return Err(io_err(e));
        }
        self.offset = offset;
        self.records = records;
        Ok(())
    }
}

/// What the `serve::journal::append` failpoint asked for, translated
/// into journal terms.
// Only constructed under the `failpoints` feature; the match in
// `append` still names the variants either way.
#[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
enum InjectedJournalFault {
    /// Fail without writing anything.
    Clean,
    /// Write a strict prefix of the record, then fail.
    Torn,
}

/// Polls the `serve::journal::append` failpoint. Compiles away without
/// the `failpoints` feature.
fn journal_failpoint() -> Option<InjectedJournalFault> {
    #[cfg(feature = "failpoints")]
    {
        use mcnetkat_fdd::failpoints::{check, InjectedFault};
        match check("serve::journal::append") {
            None => None,
            Some(InjectedFault::Cancelled) => Some(InjectedJournalFault::Clean),
            Some(InjectedFault::Singular) => Some(InjectedJournalFault::Torn),
        }
    }
    #[cfg(not(feature = "failpoints"))]
    None
}

/// The engine's delta accounting, carried in a snapshot so recovery can
/// seed its counters and replay only the journal tail. (Cache-dependent
/// gauges — recompile counts, hit rates — are deliberately absent: they
/// describe a cache that died with the process.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotCounters {
    /// Deltas applied before the snapshot.
    pub deltas_applied: u64,
    /// Structural rebuilds before the snapshot.
    pub full_rebuilds: u64,
    /// Switches whose inputs changed, summed, before the snapshot.
    pub switches_changed: u64,
}

impl Codec for SnapshotCounters {
    fn encode(&self, out: &mut Vec<u8>) {
        self.deltas_applied.encode(out);
        self.full_rebuilds.encode(out);
        self.switches_changed.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<SnapshotCounters, CodecError> {
        Ok(SnapshotCounters {
            deltas_applied: u64::decode(r)?,
            full_rebuilds: u64::decode(r)?,
            switches_changed: u64::decode(r)?,
        })
    }
}

/// A point-in-time checkpoint of the engine's durable state.
#[derive(Debug)]
pub struct Snapshot {
    /// The journal's [`JournalWriter::offset`] when the snapshot was
    /// taken: recovery replays only records at or past this offset.
    pub journal_offset: u64,
    /// The engine's next unassigned model id.
    pub next_id: u64,
    /// Every loaded model: engine-assigned id and full description.
    pub models: Vec<(u64, ModelDescription)>,
    /// Delta accounting up to the snapshot.
    pub counters: SnapshotCounters,
}

impl Codec for Snapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.journal_offset.encode(out);
        self.next_id.encode(out);
        self.models.encode(out);
        self.counters.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Snapshot, CodecError> {
        Ok(Snapshot {
            journal_offset: u64::decode(r)?,
            next_id: u64::decode(r)?,
            models: Vec::<(u64, ModelDescription)>::decode(r)?,
            counters: SnapshotCounters::decode(r)?,
        })
    }
}

/// Writes a snapshot: header, checksummed payload, to a temp file
/// `rename`d over `path` — a crash mid-write never damages the previous
/// snapshot.
///
/// # Errors
///
/// [`JournalError::Io`].
pub fn write_snapshot(path: &Path, snap: &Snapshot) -> Result<(), JournalError> {
    let payload = snap.to_bytes();
    let mut bytes = Vec::with_capacity(HEADER_LEN + FRAME_LEN + payload.len());
    bytes.extend_from_slice(&header(SNAPSHOT_MAGIC));
    (payload.len() as u32).encode(&mut bytes);
    fnv1a64(&payload).encode(&mut bytes);
    bytes.extend_from_slice(&payload);

    let tmp = path.with_extension("tmp");
    let mut file = File::create(&tmp).map_err(io_err)?;
    file.write_all(&bytes).map_err(io_err)?;
    file.sync_data().map_err(io_err)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(io_err)?;
    Ok(())
}

/// Reads and validates a snapshot written by [`write_snapshot`].
///
/// # Errors
///
/// [`RecoveryError::Io`] when the file is unreadable,
/// [`RecoveryError::Snapshot`] when it is not a whole, checksummed,
/// decodable snapshot (snapshots are written atomically, so *any*
/// damage here is corruption — there is no torn tail to tolerate).
pub fn read_snapshot(path: &Path) -> Result<Snapshot, RecoveryError> {
    let bytes = std::fs::read(path).map_err(|e| RecoveryError::Io(e.to_string()))?;
    let bad = |why: &str| RecoveryError::Snapshot(why.to_string());
    if bytes.len() < HEADER_LEN + FRAME_LEN {
        return Err(bad("file too short"));
    }
    if bytes[..HEADER_LEN] != header(SNAPSHOT_MAGIC) {
        return Err(bad("magic or version mismatch"));
    }
    let len = u32::from_le_bytes(
        bytes[HEADER_LEN..HEADER_LEN + 4]
            .try_into()
            .expect("4 bytes"),
    ) as usize;
    let sum = u64::from_le_bytes(
        bytes[HEADER_LEN + 4..HEADER_LEN + 12]
            .try_into()
            .expect("8 bytes"),
    );
    let body = &bytes[HEADER_LEN + FRAME_LEN..];
    if body.len() != len {
        return Err(bad("payload length mismatch"));
    }
    if fnv1a64(body) != sum {
        return Err(bad("checksum mismatch"));
    }
    Snapshot::from_bytes(body).map_err(|e| bad(&format!("payload failed to decode: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnetkat_net::{FailureModel, NetworkModel, RoutingScheme};
    use mcnetkat_num::Ratio;
    use mcnetkat_topo::ab_fattree;
    use std::path::PathBuf;

    fn tmp_path(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "mcnetkat-journal-{}-{tag}-{n}.bin",
            std::process::id()
        ))
    }

    fn sample_desc() -> ModelDescription {
        let topo = ab_fattree(4);
        let dst = topo.find("edge0_0").unwrap();
        ModelDescription::of(&NetworkModel::new(
            topo,
            dst,
            RoutingScheme::Ecmp,
            FailureModel::independent(Ratio::new(1, 100)),
        ))
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Load {
                id: 0,
                desc: sample_desc(),
            },
            Record::Commit,
            Record::Apply {
                id: 0,
                delta: Delta::SetUniformPr(Ratio::new(1, 10)),
            },
            Record::Commit,
            Record::Unload { id: 0 },
            Record::Commit,
        ]
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn append_scan_roundtrip() {
        let path = tmp_path("roundtrip");
        let mut w = JournalWriter::create(&path).unwrap();
        for rec in &sample_records() {
            w.append(rec).unwrap();
        }
        assert_eq!(w.records(), 6);
        let scanned = scan(&path).unwrap();
        assert_eq!(scanned.records.len(), 6);
        assert_eq!(scanned.valid_len, w.offset());
        assert_eq!(scanned.truncated_bytes, 0);
        assert_eq!(committed(&scanned).len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut() {
        let path = tmp_path("torn");
        let mut w = JournalWriter::create(&path).unwrap();
        let recs = sample_records();
        for rec in &recs[..4] {
            w.append(rec).unwrap();
        }
        let clean_len = w.offset();
        w.append(&recs[4]).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Chop the final record at every possible byte boundary: the scan
        // must recover exactly the first four records every time.
        for cut in clean_len as usize..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let s = scan(&path).unwrap();
            assert_eq!(s.records.len(), 4, "cut at {cut}");
            assert_eq!(s.valid_len, clean_len, "cut at {cut}");
            assert_eq!(s.truncated_bytes as usize, cut - clean_len as usize);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_failing_final_record_is_torn() {
        let path = tmp_path("badsum-tail");
        let mut w = JournalWriter::create(&path).unwrap();
        let recs = sample_records();
        for rec in &recs[..3] {
            w.append(rec).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 2);
        assert!(s.truncated_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interior_corruption_is_rejected_not_truncated() {
        let path = tmp_path("interior");
        let mut w = JournalWriter::create(&path).unwrap();
        for rec in &sample_records() {
            w.append(rec).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the middle of the file — inside some interior
        // record's payload, with valid records after it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        match scan(&path) {
            Err(RecoveryError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn uncommitted_intents_are_skipped() {
        let path = tmp_path("uncommitted");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&Record::Load {
            id: 0,
            desc: sample_desc(),
        })
        .unwrap();
        w.append(&Record::Commit).unwrap();
        // A failed apply leaves its intent with no trailing commit …
        w.append(&Record::Apply {
            id: 0,
            delta: Delta::SetBudget(Some(1)),
        })
        .unwrap();
        // … and the next operation's intent/commit pair follows it.
        w.append(&Record::Apply {
            id: 0,
            delta: Delta::SetHopCap(Some(8)),
        })
        .unwrap();
        w.append(&Record::Commit).unwrap();
        let s = scan(&path).unwrap();
        let committed = committed(&s);
        assert_eq!(committed.len(), 2);
        assert!(matches!(committed[0].1, Record::Load { .. }));
        assert!(matches!(
            committed[1].1,
            Record::Apply {
                delta: Delta::SetHopCap(Some(8)),
                ..
            }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_at_truncates_and_resumes() {
        let path = tmp_path("resume");
        let mut w = JournalWriter::create(&path).unwrap();
        let recs = sample_records();
        for rec in &recs[..2] {
            w.append(rec).unwrap();
        }
        let clean = w.offset();
        // Simulate a torn third record.
        w.append(&recs[2]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, &bytes).unwrap();

        let s = scan(&path).unwrap();
        assert_eq!(s.valid_len, clean);
        let mut w = JournalWriter::open_at(&path, s.valid_len, s.records.len() as u64).unwrap();
        w.append(&recs[2]).unwrap();
        w.append(&Record::Commit).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 4);
        assert_eq!(s.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn abort_rolls_back_an_intent() {
        let path = tmp_path("abort");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&Record::Load {
            id: 0,
            desc: sample_desc(),
        })
        .unwrap();
        w.append(&Record::Commit).unwrap();
        let (off, n) = (w.offset(), w.records());
        w.append(&Record::Unload { id: 0 }).unwrap();
        w.abort_to(off, n).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.valid_len, off);
        // The writer keeps appending cleanly after the rollback.
        w.append(&Record::Unload { id: 0 }).unwrap();
        w.append(&Record::Commit).unwrap();
        assert_eq!(scan(&path).unwrap().records.len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_roundtrip_and_corruption() {
        let path = tmp_path("snapshot");
        let snap = Snapshot {
            journal_offset: 1234,
            next_id: 7,
            models: vec![(3, sample_desc())],
            counters: SnapshotCounters {
                deltas_applied: 41,
                full_rebuilds: 2,
                switches_changed: 99,
            },
        };
        write_snapshot(&path, &snap).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.journal_offset, 1234);
        assert_eq!(back.next_id, 7);
        assert_eq!(back.models.len(), 1);
        assert_eq!(back.models[0].0, 3);
        assert_eq!(back.counters, snap.counters);

        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(RecoveryError::Snapshot(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delta_codec_roundtrips_every_variant() {
        let topo = ab_fattree(4);
        let deltas = vec![
            Delta::SetScheme(RoutingScheme::F10_3),
            Delta::SetSwitchScheme(topo.switches()[0], RoutingScheme::F10_3_5),
            Delta::ClearSwitchScheme(topo.switches()[1]),
            Delta::SetUniformPr(Ratio::new(1, 7)),
            Delta::SetLinkPr(3, Ratio::new(2, 5)),
            Delta::ClearLinkPr(3),
            Delta::SetBudget(Some(2)),
            Delta::AddGroup(mcnetkat_net::Srlg::new(
                "g",
                Ratio::new(1, 9),
                vec![(1, 2), (1, 3)],
            )),
            Delta::RemoveGroup("g".to_string()),
            Delta::SetGroupPr("g".to_string(), Ratio::zero()),
            Delta::SetGroupMembers("g".to_string(), vec![(4, 1)]),
            Delta::SetHopCap(None),
            Delta::SetTopology(topo.clone()),
            Delta::SetDst(topo.switches()[2]),
        ];
        for d in deltas {
            let bytes = d.to_bytes();
            let back = Delta::from_bytes(&bytes).unwrap();
            // Delta lacks PartialEq (Topology doesn't compare); byte
            // equality of re-encodings is the identity that matters.
            assert_eq!(back.to_bytes(), bytes, "{d:?}");
        }
    }
}
