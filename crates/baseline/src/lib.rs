//! A general-purpose exact-inference baseline — the stand-in for
//! Bayonet/PSI in the Figure 10 comparison.
//!
//! Bayonet translates network models into a general-purpose probabilistic
//! language and runs exact symbolic inference with *bounded* loop
//! unrolling ("Bayonet requires programmers to supply an upper bound on
//! loops"). This crate reproduces those structural characteristics
//! honestly: it evaluates the paper's own denotational semantics by
//! explicit forward enumeration of program distributions with exact
//! rational arithmetic, no domain-specific symbolic sharing, and a
//! user-supplied unrolling bound. The residual (un-absorbed) probability
//! mass is reported so callers can see the approximation gap — unlike the
//! native backend, which computes limits in closed form.

#![forbid(unsafe_code)]

use mcnetkat_core::{Interp, Packet, Pred, Prog};
use mcnetkat_num::Ratio;

/// The exact-inference engine.
#[derive(Clone, Debug)]
pub struct ExactInference {
    /// Loop unrolling bound (Bayonet's user-supplied loop bound).
    pub unroll_bound: usize,
}

/// The outcome of a delivery query.
#[derive(Clone, Debug)]
pub struct InferenceResult {
    /// Lower bound on the query probability (exact if `residual` is 0).
    pub probability: Ratio,
    /// Probability mass still circulating when the unroll bound was hit.
    pub residual: Ratio,
}

impl InferenceResult {
    /// Whether the result is exact (all mass absorbed within the bound).
    pub fn is_exact(&self) -> bool {
        self.residual.is_zero()
    }
}

impl Default for ExactInference {
    fn default() -> Self {
        ExactInference { unroll_bound: 256 }
    }
}

impl ExactInference {
    /// Creates an engine with the given loop bound.
    pub fn new(unroll_bound: usize) -> ExactInference {
        ExactInference { unroll_bound }
    }

    /// Probability that `prog` on `input` outputs a packet satisfying
    /// `accept`.
    pub fn query(&self, prog: &Prog, input: &Packet, accept: &Pred) -> InferenceResult {
        let interp = Interp::with_budget(self.unroll_bound);
        let dist = interp.eval_packet(prog, input);
        let probability = dist.prob_matching(accept);
        let residual = Ratio::one() - dist.mass();
        InferenceResult {
            probability,
            residual,
        }
    }

    /// Probability that the packet is delivered (not dropped).
    pub fn delivery(&self, prog: &Prog, input: &Packet) -> InferenceResult {
        let interp = Interp::with_budget(self.unroll_bound);
        let dist = interp.eval_packet(prog, input);
        let delivered: Ratio = dist
            .iter()
            .filter(|(o, _)| o.is_some())
            .map(|(_, r)| r.clone())
            .sum();
        InferenceResult {
            probability: delivered,
            residual: Ratio::one() - dist.mass(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnetkat_core::Field;

    fn field(n: &str) -> Field {
        Field::named(n)
    }

    #[test]
    fn loop_free_queries_are_exact() {
        let f = field("bl_f");
        let prog = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 3), Prog::drop());
        let r = ExactInference::default().query(&prog, &Packet::new(), &Pred::test(f, 1));
        assert!(r.is_exact());
        assert_eq!(r.probability, Ratio::new(1, 3));
    }

    #[test]
    fn bounded_unrolling_reports_residual() {
        let f = field("bl_g");
        // Geometric loop: after n unrollings, 2^-n mass remains.
        let body = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 2), Prog::skip());
        let prog = Prog::while_(Pred::test(f, 0), body);
        let r = ExactInference::new(10).delivery(&prog, &Packet::new());
        assert!(!r.is_exact());
        assert_eq!(r.residual, Ratio::new(1, 2).pow(10));
        assert_eq!(r.probability, Ratio::one() - Ratio::new(1, 2).pow(10));
    }

    #[test]
    fn matches_native_backend_when_exact() {
        let f = field("bl_h");
        let prog = Prog::ite(
            Pred::test(f, 0),
            Prog::choice2(Prog::assign(f, 1), Ratio::new(3, 4), Prog::drop()),
            Prog::skip(),
        );
        let r = ExactInference::default().delivery(&prog, &Packet::new());
        let mgr = mcnetkat_fdd::Manager::new();
        let fdd = mgr.compile(&prog).unwrap();
        assert_eq!(r.probability, mgr.prob_delivery(fdd, &Packet::new()));
    }
}
