//! Interned packet-field identifiers.

use std::fmt;
use std::sync::{Mutex, OnceLock};

/// A packet field such as `sw`, `pt`, `dst`, or a logical variable like
/// `up2`.
///
/// Fields are interned process-wide: two calls to [`Field::named`] with the
/// same name return the same id, so comparisons are integer comparisons and
/// the FDD variable order is stable.
///
/// # Examples
///
/// ```
/// use mcnetkat_core::Field;
/// let a = Field::named("sw");
/// let b = Field::named("sw");
/// assert_eq!(a, b);
/// assert_eq!(a.name(), "sw");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Field(u32);

fn interner() -> &'static Mutex<Vec<String>> {
    static INTERNER: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(Vec::new()))
}

impl Field {
    /// Interns `name` and returns its field id.
    pub fn named(name: &str) -> Field {
        let mut table = interner().lock().unwrap();
        if let Some(ix) = table.iter().position(|n| n == name) {
            return Field(ix as u32);
        }
        table.push(name.to_owned());
        Field((table.len() - 1) as u32)
    }

    /// The interned name of this field.
    pub fn name(&self) -> String {
        interner().lock().unwrap()[self.0 as usize].clone()
    }

    /// The raw interner index (stable for the life of the process).
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Debug for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Field({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Field::named("test_field_x");
        let b = Field::named("test_field_x");
        let c = Field::named("test_field_y");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn name_round_trips() {
        let f = Field::named("round_trip_field");
        assert_eq!(f.name(), "round_trip_field");
        assert_eq!(f.to_string(), "round_trip_field");
    }
}
