//! ProbNetKAT: syntax and reference semantics.
//!
//! This crate defines the guarded, history-free fragment of ProbNetKAT used
//! by McNetKAT (Figure 2 of the paper), together with
//!
//! * an interned [`Field`] universe and canonical [`Packet`] representation,
//! * smart constructors and combinators for building programs,
//! * a pretty-printer, and
//! * a *reference interpreter* implementing the denotational semantics of
//!   Figure 3/Figure 13 over distributions of packet **sets** — the
//!   `2^Pk → D(2^Pk)` model. The production compiler in `mcnetkat-fdd` works
//!   over single packets (§5 "pragmatic restrictions"); tests use this
//!   interpreter to validate it against the paper's semantics
//!   (Theorem 3.1).
//!
//! # Examples
//!
//! ```
//! use mcnetkat_core::{Field, Prog, Pred};
//!
//! let sw = Field::named("sw");
//! let pt = Field::named("pt");
//! // if sw=1 then pt <- 2 else drop
//! let p = Prog::ite(Pred::test(sw, 1), Prog::assign(pt, 2), Prog::drop());
//! assert!(p.is_guarded());
//! ```

#![forbid(unsafe_code)]

mod ast;
mod field;
mod interp;
mod packet;
mod pretty;

pub use ast::{Pred, Prog};
pub use field::Field;
pub use interp::{Interp, PacketDist, SetDist};
pub use packet::{Packet, Value};
