//! Abstract syntax of ProbNetKAT (Figure 2) plus the guarded derived forms
//! of §2/§5: conditionals, while loops, disjoint `case` branching, and local
//! variables.

use crate::{Field, Value};
use mcnetkat_num::Ratio;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A ProbNetKAT predicate.
///
/// Predicates form a Boolean algebra; they filter packet sets without
/// producing randomness.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Pred {
    /// `drop` — false.
    False,
    /// `skip` — true.
    True,
    /// `f = n` — field test.
    Test(Field, Value),
    /// `t & u` — disjunction.
    Or(Arc<Pred>, Arc<Pred>),
    /// `t ; u` — conjunction.
    And(Arc<Pred>, Arc<Pred>),
    /// `¬t` — negation.
    Not(Arc<Pred>),
}

impl Pred {
    /// The always-false predicate `drop`.
    pub fn f() -> Pred {
        Pred::False
    }

    /// The always-true predicate `skip`.
    pub fn t() -> Pred {
        Pred::True
    }

    /// The field test `f = n`.
    pub fn test(f: Field, n: Value) -> Pred {
        Pred::Test(f, n)
    }

    /// Disjunction `self & other` (NetKAT writes union for "or").
    pub fn or(self, other: Pred) -> Pred {
        match (&self, &other) {
            (Pred::True, _) | (_, Pred::False) => self,
            (Pred::False, _) | (_, Pred::True) => other,
            _ => Pred::Or(Arc::new(self), Arc::new(other)),
        }
    }

    /// Conjunction `self ; other`.
    pub fn and(self, other: Pred) -> Pred {
        match (&self, &other) {
            (Pred::False, _) | (_, Pred::True) => self,
            (Pred::True, _) | (_, Pred::False) => other,
            _ => Pred::And(Arc::new(self), Arc::new(other)),
        }
    }

    /// Negation `¬self`.
    ///
    /// Deliberately named like the paper's `¬` combinator rather than
    /// routed through `std::ops::Not`: predicates are consumed by value in
    /// builder chains (`t.and(u).not()`), and `!t` syntax would read as
    /// boolean evaluation, not AST construction.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pred {
        match self {
            Pred::True => Pred::False,
            Pred::False => Pred::True,
            Pred::Not(inner) => inner.as_ref().clone(),
            p => Pred::Not(Arc::new(p)),
        }
    }

    /// Disjunction of a list of predicates (false if empty).
    pub fn any<I: IntoIterator<Item = Pred>>(preds: I) -> Pred {
        preds.into_iter().fold(Pred::False, Pred::or)
    }

    /// Conjunction of a list of predicates (true if empty).
    pub fn all<I: IntoIterator<Item = Pred>>(preds: I) -> Pred {
        preds.into_iter().fold(Pred::True, Pred::and)
    }

    /// Evaluates the predicate on a single packet.
    pub fn eval(&self, pk: &crate::Packet) -> bool {
        match self {
            Pred::False => false,
            Pred::True => true,
            Pred::Test(f, n) => pk.matches(*f, *n),
            Pred::Or(a, b) => a.eval(pk) || b.eval(pk),
            Pred::And(a, b) => a.eval(pk) && b.eval(pk),
            Pred::Not(a) => !a.eval(pk),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Pred::False | Pred::True | Pred::Test(..) => 1,
            Pred::Or(a, b) | Pred::And(a, b) => 1 + a.size() + b.size(),
            Pred::Not(a) => 1 + a.size(),
        }
    }

    fn collect_fields(&self, out: &mut BTreeMap<Field, Vec<Value>>) {
        match self {
            Pred::False | Pred::True => {}
            Pred::Test(f, n) => out.entry(*f).or_default().push(*n),
            Pred::Or(a, b) | Pred::And(a, b) => {
                a.collect_fields(out);
                b.collect_fields(out);
            }
            Pred::Not(a) => a.collect_fields(out),
        }
    }
}

/// A ProbNetKAT program in the guarded, history-free fragment — plus the
/// unguarded operators `Union` and `Star` so the reference interpreter can
/// exercise the full Figure 2 syntax in tests.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Prog {
    /// A predicate used as a filter.
    Filter(Pred),
    /// `f <- n` — assignment.
    Assign(Field, Value),
    /// `p & q` — parallel composition (not in the guarded fragment).
    Union(Arc<Prog>, Arc<Prog>),
    /// `p ; q` — sequential composition.
    Seq(Arc<Prog>, Arc<Prog>),
    /// N-ary probabilistic choice `p1 @ r1 ⊕ … ⊕ pn @ rn`.
    ///
    /// Invariant (checked by [`Prog::choice`]): probabilities are in `[0,1]`
    /// and sum to 1.
    Choice(Arc<Vec<(Prog, Ratio)>>),
    /// `p*` — iteration (not in the guarded fragment).
    Star(Arc<Prog>),
    /// `if t then p else q`.
    If(Pred, Arc<Prog>, Arc<Prog>),
    /// `while t do p`.
    While(Pred, Arc<Prog>),
    /// `var f <- n in p` — a local field, erased to 0 on scope exit.
    Local(Field, Value, Arc<Prog>),
}

impl Prog {
    /// The program `drop`.
    pub fn drop() -> Prog {
        Prog::Filter(Pred::False)
    }

    /// The program `skip`.
    pub fn skip() -> Prog {
        Prog::Filter(Pred::True)
    }

    /// The filter `t`.
    pub fn filter(t: Pred) -> Prog {
        Prog::Filter(t)
    }

    /// The test `f = n` as a program.
    pub fn test(f: Field, n: Value) -> Prog {
        Prog::Filter(Pred::test(f, n))
    }

    /// The assignment `f <- n`.
    pub fn assign(f: Field, n: Value) -> Prog {
        Prog::Assign(f, n)
    }

    /// Sequential composition `self ; other`, simplifying units.
    pub fn seq(self, other: Prog) -> Prog {
        match (&self, &other) {
            (Prog::Filter(Pred::True), _) => other,
            (_, Prog::Filter(Pred::True)) => self,
            (Prog::Filter(Pred::False), _) => Prog::drop(),
            _ => Prog::Seq(Arc::new(self), Arc::new(other)),
        }
    }

    /// Sequences a list of programs (skip if empty).
    pub fn seq_all<I: IntoIterator<Item = Prog>>(progs: I) -> Prog {
        progs.into_iter().fold(Prog::skip(), Prog::seq)
    }

    /// Parallel composition `self & other` (leaves the guarded fragment).
    pub fn union(self, other: Prog) -> Prog {
        Prog::Union(Arc::new(self), Arc::new(other))
    }

    /// Binary probabilistic choice `self ⊕_r other`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not in `[0, 1]`.
    pub fn choice2(self, r: Ratio, other: Prog) -> Prog {
        assert!(r.is_probability(), "choice probability out of range: {r}");
        let complement = Ratio::one() - &r;
        Prog::choice(vec![(self, r), (other, complement)])
    }

    /// N-ary probabilistic choice.
    ///
    /// # Panics
    ///
    /// Panics if the branch list is empty, any probability is outside
    /// `[0, 1]`, or the probabilities do not sum to 1.
    pub fn choice(branches: Vec<(Prog, Ratio)>) -> Prog {
        assert!(!branches.is_empty(), "empty probabilistic choice");
        let total: Ratio = branches.iter().map(|(_, r)| r.clone()).sum();
        assert!(
            total == Ratio::one(),
            "choice probabilities sum to {total}, not 1"
        );
        assert!(
            branches.iter().all(|(_, r)| r.is_probability()),
            "choice probability out of range"
        );
        if branches.len() == 1 {
            return branches.into_iter().next().unwrap().0;
        }
        Prog::Choice(Arc::new(branches))
    }

    /// Uniform choice between the given programs.
    ///
    /// # Panics
    ///
    /// Panics if `progs` is empty.
    pub fn uniform(progs: Vec<Prog>) -> Prog {
        assert!(!progs.is_empty(), "uniform choice over nothing");
        let n = progs.len() as i64;
        Prog::choice(
            progs
                .into_iter()
                .map(|p| (p, Ratio::new(1, n)))
                .collect::<Vec<_>>(),
        )
    }

    /// Iteration `self*` (leaves the guarded fragment).
    pub fn star(self) -> Prog {
        Prog::Star(Arc::new(self))
    }

    /// The conditional `if t then p else q`.
    pub fn ite(t: Pred, p: Prog, q: Prog) -> Prog {
        match t {
            Pred::True => p,
            Pred::False => q,
            t => Prog::If(t, Arc::new(p), Arc::new(q)),
        }
    }

    /// The loop `while t do p`.
    pub fn while_(t: Pred, p: Prog) -> Prog {
        match t {
            Pred::False => Prog::skip(),
            t => Prog::While(t, Arc::new(p)),
        }
    }

    /// The `do p while t` loop used by the case study:
    /// `p ; while t do p`.
    pub fn do_while(p: Prog, t: Pred) -> Prog {
        p.clone().seq(Prog::while_(t, p))
    }

    /// N-ary disjoint `case` branching (§6 "Parallel speedup") with a final
    /// default. Semantically a cascade of conditionals; the FDD backend
    /// compiles the branches in parallel.
    pub fn case(branches: Vec<(Pred, Prog)>, default: Prog) -> Prog {
        branches
            .into_iter()
            .rev()
            .fold(default, |acc, (t, p)| Prog::ite(t, p, acc))
    }

    /// Local variable `var f <- n in p`, desugarable to `f<-n ; p ; f<-0`.
    pub fn local(f: Field, n: Value, p: Prog) -> Prog {
        Prog::Local(f, n, Arc::new(p))
    }

    /// Removes derived forms, yielding a program built only from Figure 2
    /// core syntax (filters, assignments, union, seq, choice, star).
    ///
    /// `if`/`while`/`case` become guarded union and iteration; locals become
    /// the assign/erase sandwich.
    pub fn desugar(&self) -> Prog {
        match self {
            Prog::Filter(_) | Prog::Assign(..) => self.clone(),
            Prog::Union(p, q) => Prog::Union(Arc::new(p.desugar()), Arc::new(q.desugar())),
            Prog::Seq(p, q) => Prog::Seq(Arc::new(p.desugar()), Arc::new(q.desugar())),
            Prog::Choice(branches) => Prog::Choice(Arc::new(
                branches
                    .iter()
                    .map(|(p, r)| (p.desugar(), r.clone()))
                    .collect(),
            )),
            Prog::Star(p) => Prog::Star(Arc::new(p.desugar())),
            Prog::If(t, p, q) => {
                // t;p & ¬t;q
                let left = Prog::filter(t.clone()).seq(p.desugar());
                let right = Prog::filter(t.clone().not()).seq(q.desugar());
                left.union(right)
            }
            Prog::While(t, p) => {
                // (t;p)* ; ¬t
                Prog::filter(t.clone())
                    .seq(p.desugar())
                    .star()
                    .seq(Prog::filter(t.clone().not()))
            }
            Prog::Local(f, n, p) => Prog::assign(*f, *n)
                .seq(p.desugar())
                .seq(Prog::assign(*f, 0)),
        }
    }

    /// Returns `true` if the program stays within the guarded fragment
    /// (no `Union`, no `Star`) that the McNetKAT compiler accepts.
    pub fn is_guarded(&self) -> bool {
        match self {
            Prog::Filter(_) | Prog::Assign(..) => true,
            Prog::Union(..) | Prog::Star(..) => false,
            Prog::Seq(p, q) => p.is_guarded() && q.is_guarded(),
            Prog::Choice(branches) => branches.iter().all(|(p, _)| p.is_guarded()),
            Prog::If(_, p, q) => p.is_guarded() && q.is_guarded(),
            Prog::While(_, p) => p.is_guarded(),
            Prog::Local(_, _, p) => p.is_guarded(),
        }
    }

    /// Returns `true` if the program contains no loop (`While`/`Star`).
    pub fn is_loop_free(&self) -> bool {
        match self {
            Prog::Filter(_) | Prog::Assign(..) => true,
            Prog::Star(..) => false,
            Prog::While(..) => false,
            Prog::Union(p, q) | Prog::Seq(p, q) => p.is_loop_free() && q.is_loop_free(),
            Prog::Choice(branches) => branches.iter().all(|(p, _)| p.is_loop_free()),
            Prog::If(_, p, q) => p.is_loop_free() && q.is_loop_free(),
            Prog::Local(_, _, p) => p.is_loop_free(),
        }
    }

    /// Number of AST nodes (a rough program-size metric for benchmarks).
    pub fn size(&self) -> usize {
        match self {
            Prog::Filter(t) => t.size(),
            Prog::Assign(..) => 1,
            Prog::Union(p, q) | Prog::Seq(p, q) => 1 + p.size() + q.size(),
            Prog::Choice(branches) => 1 + branches.iter().map(|(p, _)| p.size()).sum::<usize>(),
            Prog::Star(p) => 1 + p.size(),
            Prog::If(t, p, q) => 1 + t.size() + p.size() + q.size(),
            Prog::While(t, p) => 1 + t.size() + p.size(),
            Prog::Local(_, _, p) => 2 + p.size(),
        }
    }

    /// The fields the program mentions, with every value each field is
    /// tested against or assigned. Used for PRISM variable bounds and for
    /// sizing symbolic-packet domains.
    pub fn field_values(&self) -> BTreeMap<Field, Vec<Value>> {
        let mut out = BTreeMap::new();
        self.collect_fields(&mut out);
        for values in out.values_mut() {
            values.sort_unstable();
            values.dedup();
        }
        out
    }

    fn collect_fields(&self, out: &mut BTreeMap<Field, Vec<Value>>) {
        match self {
            Prog::Filter(t) => t.collect_fields(out),
            Prog::Assign(f, n) => out.entry(*f).or_default().push(*n),
            Prog::Union(p, q) | Prog::Seq(p, q) => {
                p.collect_fields(out);
                q.collect_fields(out);
            }
            Prog::Choice(branches) => {
                for (p, _) in branches.iter() {
                    p.collect_fields(out);
                }
            }
            Prog::Star(p) => p.collect_fields(out),
            Prog::If(t, p, q) => {
                t.collect_fields(out);
                p.collect_fields(out);
                q.collect_fields(out);
            }
            Prog::While(t, p) => {
                t.collect_fields(out);
                p.collect_fields(out);
            }
            Prog::Local(f, n, p) => {
                out.entry(*f).or_default().push(*n);
                out.entry(*f).or_default().push(0);
                p.collect_fields(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> (Field, Field) {
        (Field::named("ast_sw"), Field::named("ast_pt"))
    }

    #[test]
    fn smart_constructors_simplify() {
        let (sw, _) = fields();
        assert_eq!(Pred::test(sw, 1).or(Pred::t()), Pred::True);
        assert_eq!(Pred::test(sw, 1).and(Pred::f()), Pred::False);
        assert_eq!(Pred::t().not(), Pred::False);
        assert_eq!(Pred::test(sw, 1).not().not(), Pred::test(sw, 1));
        assert_eq!(Prog::skip().seq(Prog::assign(sw, 1)), Prog::assign(sw, 1));
        assert_eq!(Prog::drop().seq(Prog::assign(sw, 1)), Prog::drop());
    }

    #[test]
    fn choice_validates_probabilities() {
        let (sw, _) = fields();
        let p = Prog::assign(sw, 1);
        let q = Prog::assign(sw, 2);
        let ok = Prog::choice2(p.clone(), Ratio::new(1, 2), q.clone());
        assert!(matches!(ok, Prog::Choice(_)));
        let bad = std::panic::catch_unwind(|| {
            Prog::choice(vec![
                (p.clone(), Ratio::new(1, 2)),
                (q.clone(), Ratio::new(1, 3)),
            ])
        });
        assert!(bad.is_err());
    }

    #[test]
    fn uniform_splits_evenly() {
        let (sw, _) = fields();
        let progs = vec![
            Prog::assign(sw, 1),
            Prog::assign(sw, 2),
            Prog::assign(sw, 3),
        ];
        match Prog::uniform(progs) {
            Prog::Choice(branches) => {
                assert!(branches.iter().all(|(_, r)| *r == Ratio::new(1, 3)));
            }
            other => panic!("expected choice, got {other:?}"),
        }
    }

    #[test]
    fn guardedness() {
        let (sw, pt) = fields();
        let guarded = Prog::ite(
            Pred::test(sw, 1),
            Prog::while_(Pred::test(pt, 0), Prog::assign(pt, 1)),
            Prog::drop(),
        );
        assert!(guarded.is_guarded());
        assert!(!guarded.desugar().is_guarded());
        assert!(!Prog::skip().union(Prog::drop()).is_guarded());
        assert!(!Prog::skip().star().is_guarded());
    }

    #[test]
    fn desugar_if_shape() {
        let (sw, pt) = fields();
        let p = Prog::ite(Pred::test(sw, 1), Prog::assign(pt, 2), Prog::drop());
        match p.desugar() {
            Prog::Union(left, _) => match left.as_ref() {
                Prog::Seq(f, _) => assert_eq!(**f, Prog::test(sw, 1)),
                other => panic!("unexpected left branch {other:?}"),
            },
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn case_is_conditional_cascade() {
        let (sw, pt) = fields();
        let p = Prog::case(
            vec![
                (Pred::test(sw, 1), Prog::assign(pt, 1)),
                (Pred::test(sw, 2), Prog::assign(pt, 2)),
            ],
            Prog::drop(),
        );
        match p {
            Prog::If(t, _, els) => {
                assert_eq!(t, Pred::test(sw, 1));
                assert!(matches!(els.as_ref(), Prog::If(..)));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn field_values_collects_tests_and_mods() {
        let (sw, pt) = fields();
        let p = Prog::ite(Pred::test(sw, 1), Prog::assign(pt, 2), Prog::assign(pt, 3));
        let fv = p.field_values();
        assert_eq!(fv[&sw], vec![1]);
        assert_eq!(fv[&pt], vec![2, 3]);
    }

    #[test]
    fn size_counts_nodes() {
        let (sw, pt) = fields();
        assert_eq!(Prog::assign(sw, 1).size(), 1);
        let p = Prog::assign(sw, 1).seq(Prog::assign(pt, 2));
        assert_eq!(p.size(), 3);
    }

    #[test]
    fn loop_freedom() {
        let (sw, _) = fields();
        assert!(Prog::assign(sw, 1).is_loop_free());
        assert!(!Prog::while_(Pred::test(sw, 1), Prog::assign(sw, 2)).is_loop_free());
    }
}
