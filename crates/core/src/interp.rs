//! Reference interpreter for the denotational semantics of Figure 3 /
//! Figure 13: programs as maps `2^Pk → D(2^Pk)`.
//!
//! This is the paper's *specification* semantics. It is exponentially
//! expensive and only used on small universes, primarily to validate the
//! production FDD compiler (Theorem 3.1 states the two agree). Loops are
//! evaluated by iterating the small-step chain of §4 (states are
//! ⟨active set, output accumulator⟩ pairs); programs whose loops terminate
//! within the iteration budget produce *exact* distributions (total mass 1),
//! otherwise the missing mass is reported via [`SetDist::mass`].

use crate::{Packet, Pred, Prog};
use mcnetkat_num::Ratio;
use std::collections::{BTreeMap, BTreeSet};

/// A set of packets — an element of `2^Pk`.
pub type PkSet = BTreeSet<Packet>;

/// A (sub-)distribution over packet sets.
///
/// The total mass is 1 for fully evaluated programs and may be less when a
/// loop exceeded the interpreter's iteration budget.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SetDist {
    map: BTreeMap<PkSet, Ratio>,
}

impl SetDist {
    /// The point mass on `a`.
    pub fn dirac(a: PkSet) -> SetDist {
        let mut map = BTreeMap::new();
        map.insert(a, Ratio::one());
        SetDist { map }
    }

    /// The empty sub-distribution (mass 0).
    pub fn zero() -> SetDist {
        SetDist::default()
    }

    /// Adds `r` probability to outcome `a`.
    pub fn add(&mut self, a: PkSet, r: Ratio) {
        if r.is_zero() {
            return;
        }
        let slot = self.map.entry(a).or_insert_with(Ratio::zero);
        *slot += &r;
    }

    /// Total probability mass.
    pub fn mass(&self) -> Ratio {
        self.map.values().cloned().sum()
    }

    /// Probability of the outcome `a`.
    pub fn prob(&self, a: &PkSet) -> Ratio {
        self.map.get(a).cloned().unwrap_or_else(Ratio::zero)
    }

    /// Iterates over `(outcome, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&PkSet, &Ratio)> {
        self.map.iter()
    }

    /// Number of outcomes with positive probability.
    pub fn support_size(&self) -> usize {
        self.map.len()
    }

    /// Scales every probability by `r`.
    pub fn scale(mut self, r: &Ratio) -> SetDist {
        if r.is_zero() {
            return SetDist::zero();
        }
        for v in self.map.values_mut() {
            *v *= r;
        }
        self
    }

    /// Pointwise sum of two sub-distributions.
    pub fn sum(mut self, other: SetDist) -> SetDist {
        for (a, r) in other.map {
            self.add(a, r);
        }
        self
    }

    /// The product-then-union distribution `D(∪)(self × other)` used for
    /// parallel composition.
    pub fn union_product(&self, other: &SetDist) -> SetDist {
        let mut out = SetDist::zero();
        for (b1, r1) in &self.map {
            for (b2, r2) in &other.map {
                let joined: PkSet = b1.union(b2).cloned().collect();
                out.add(joined, r1 * r2);
            }
        }
        out
    }
}

/// A (sub-)distribution over single-packet outcomes: `Some(π)` for a
/// delivered packet, `None` for a dropped one.
///
/// This is the view the single-packet compiler works with; it is only valid
/// for guarded programs on singleton inputs, where output sets have at most
/// one element.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PacketDist {
    map: BTreeMap<Option<Packet>, Ratio>,
}

impl PacketDist {
    /// Probability of producing packet `pk`.
    pub fn prob(&self, pk: &Packet) -> Ratio {
        self.map
            .get(&Some(pk.clone()))
            .cloned()
            .unwrap_or_else(Ratio::zero)
    }

    /// Probability of dropping the packet.
    pub fn drop_prob(&self) -> Ratio {
        self.map.get(&None).cloned().unwrap_or_else(Ratio::zero)
    }

    /// Total mass (1 unless a loop exceeded the iteration budget).
    pub fn mass(&self) -> Ratio {
        self.map.values().cloned().sum()
    }

    /// Iterates over `(outcome, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Option<Packet>, &Ratio)> {
        self.map.iter()
    }

    /// Probability that the outcome satisfies `pred` (drops never satisfy).
    pub fn prob_matching(&self, pred: &Pred) -> Ratio {
        self.map
            .iter()
            .filter_map(|(o, r)| match o {
                Some(pk) if pred.eval(pk) => Some(r.clone()),
                _ => None,
            })
            .sum()
    }
}

/// The reference interpreter.
///
/// # Examples
///
/// ```
/// use mcnetkat_core::{Field, Interp, Packet, Prog};
/// use mcnetkat_num::Ratio;
///
/// let f = Field::named("doc_interp_f");
/// let p = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 4), Prog::assign(f, 2));
/// let dist = Interp::new().eval_packet(&p, &Packet::new());
/// assert_eq!(dist.prob(&Packet::new().with(f, 1)), Ratio::new(1, 4));
/// assert_eq!(dist.prob(&Packet::new().with(f, 2)), Ratio::new(3, 4));
/// ```
#[derive(Clone, Debug)]
pub struct Interp {
    /// Iteration budget for `While`/`Star`; mass that has not absorbed when
    /// the budget runs out is dropped from the result (visible via
    /// [`SetDist::mass`]).
    pub max_loop_iters: usize,
}

impl Default for Interp {
    fn default() -> Self {
        Interp {
            max_loop_iters: 10_000,
        }
    }
}

impl Interp {
    /// Creates an interpreter with the default iteration budget.
    pub fn new() -> Interp {
        Interp::default()
    }

    /// Creates an interpreter with a custom loop iteration budget.
    pub fn with_budget(max_loop_iters: usize) -> Interp {
        Interp { max_loop_iters }
    }

    /// Evaluates `p` on the input set `a`, returning the output
    /// distribution `⟦p⟧(a)`.
    pub fn eval(&self, p: &Prog, a: &PkSet) -> SetDist {
        match p {
            Prog::Filter(t) => {
                let filtered: PkSet = a.iter().filter(|pk| t.eval(pk)).cloned().collect();
                SetDist::dirac(filtered)
            }
            Prog::Assign(f, n) => {
                let updated: PkSet = a.iter().map(|pk| pk.with(*f, *n)).collect();
                SetDist::dirac(updated)
            }
            Prog::Union(p, q) => {
                let dp = self.eval(p, a);
                let dq = self.eval(q, a);
                dp.union_product(&dq)
            }
            Prog::Seq(p, q) => self.bind(&self.eval(p, a), q),
            Prog::Choice(branches) => {
                let mut out = SetDist::zero();
                for (p, r) in branches.iter() {
                    out = out.sum(self.eval(p, a).scale(r));
                }
                out
            }
            Prog::Star(p) => self.eval_star(p, a, self.max_loop_iters),
            Prog::If(t, p, q) => {
                let a_t: PkSet = a.iter().filter(|pk| t.eval(pk)).cloned().collect();
                let a_f: PkSet = a.iter().filter(|pk| !t.eval(pk)).cloned().collect();
                let dp = self.eval(p, &a_t);
                let dq = self.eval(q, &a_f);
                dp.union_product(&dq)
            }
            Prog::While(t, p) => self.eval_while(t, p, a),
            Prog::Local(f, n, p) => {
                let entered: PkSet = a.iter().map(|pk| pk.with(*f, *n)).collect();
                let body = self.eval(p, &entered);
                self.map_sets(&body, |b| b.iter().map(|pk| pk.with(*f, 0)).collect())
            }
        }
    }

    /// Evaluates a guarded program on a single packet.
    ///
    /// # Panics
    ///
    /// Panics if an intermediate output set has more than one packet, which
    /// cannot happen for guarded programs (§5 "pragmatic restrictions").
    pub fn eval_packet(&self, p: &Prog, pk: &Packet) -> PacketDist {
        let mut a = PkSet::new();
        a.insert(pk.clone());
        let dist = self.eval(p, &a);
        let mut out = PacketDist::default();
        for (set, r) in dist.iter() {
            assert!(
                set.len() <= 1,
                "guarded program produced a proper packet set: {set:?}"
            );
            let key = set.iter().next().cloned();
            let slot = out.map.entry(key).or_insert_with(Ratio::zero);
            *slot += r;
        }
        out
    }

    /// Evaluates `p(n)` — the `n`-th unrolling of `p*` — on input `a`,
    /// following the small-step chain of Figure 4: states are
    /// ⟨active set, accumulator⟩; each step unions the active set into the
    /// accumulator and steps the active set through `p`.
    pub fn eval_star(&self, p: &Prog, a: &PkSet, n: usize) -> SetDist {
        // dist over (active, accumulator)
        let mut states: BTreeMap<(PkSet, PkSet), Ratio> = BTreeMap::new();
        states.insert((a.clone(), PkSet::new()), Ratio::one());
        for _ in 0..n {
            let mut next: BTreeMap<(PkSet, PkSet), Ratio> = BTreeMap::new();
            let mut changed = false;
            for ((active, acc), r) in &states {
                let new_acc: PkSet = acc.union(active).cloned().collect();
                let step = self.eval(p, active);
                for (a2, r2) in step.iter() {
                    let key = (a2.clone(), new_acc.clone());
                    if &key.0 != active || &key.1 != acc {
                        changed = true;
                    }
                    let slot = next.entry(key).or_insert_with(Ratio::zero);
                    *slot += &(r * r2);
                }
            }
            states = next;
            if !changed {
                break;
            }
        }
        // Output = accumulator ∪ active (the (n+1)-step view of Prop 4.2).
        let mut out = SetDist::zero();
        for ((active, acc), r) in states {
            let final_set: PkSet = acc.union(&active).cloned().collect();
            out.add(final_set, r);
        }
        out
    }

    fn eval_while(&self, t: &Pred, p: &Prog, a: &PkSet) -> SetDist {
        // States: (active t-packets, emitted ¬t-packets) with probabilities.
        // `while t do p ≡ if t then (p ; while t do p) else skip`; on sets the
        // guard splits the input, the false part is emitted immediately.
        let mut out = SetDist::zero();
        let mut frontier: BTreeMap<(PkSet, PkSet), Ratio> = BTreeMap::new();
        {
            let a_t: PkSet = a.iter().filter(|pk| t.eval(pk)).cloned().collect();
            let a_f: PkSet = a.iter().filter(|pk| !t.eval(pk)).cloned().collect();
            if a_t.is_empty() {
                return SetDist::dirac(a_f);
            }
            frontier.insert((a_t, a_f), Ratio::one());
        }
        for _ in 0..self.max_loop_iters {
            if frontier.is_empty() {
                break;
            }
            let mut next: BTreeMap<(PkSet, PkSet), Ratio> = BTreeMap::new();
            for ((active, emitted), r) in &frontier {
                let step = self.eval(p, active);
                for (b, rb) in step.iter() {
                    let prob = r * rb;
                    let b_t: PkSet = b.iter().filter(|pk| t.eval(pk)).cloned().collect();
                    let b_f: PkSet = emitted
                        .iter()
                        .cloned()
                        .chain(b.iter().filter(|pk| !t.eval(pk)).cloned())
                        .collect();
                    if b_t.is_empty() {
                        out.add(b_f, prob);
                    } else {
                        let slot = next.entry((b_t, b_f)).or_insert_with(Ratio::zero);
                        *slot += &prob;
                    }
                }
            }
            frontier = next;
        }
        // Mass still in `frontier` did not converge within the budget; it is
        // intentionally dropped (sub-distribution semantics).
        out
    }

    fn bind(&self, dist: &SetDist, q: &Prog) -> SetDist {
        let mut out = SetDist::zero();
        for (b, r) in dist.iter() {
            out = out.sum(self.eval(q, b).scale(r));
        }
        out
    }

    fn map_sets(&self, dist: &SetDist, f: impl Fn(&PkSet) -> PkSet) -> SetDist {
        let mut out = SetDist::zero();
        for (b, r) in dist.iter() {
            out.add(f(b), r.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Field;

    fn singleton(pk: Packet) -> PkSet {
        let mut s = PkSet::new();
        s.insert(pk);
        s
    }

    fn field(n: &str) -> Field {
        Field::named(n)
    }

    #[test]
    fn drop_maps_everything_to_empty() {
        let f = field("it_f1");
        let a = singleton(Packet::new().with(f, 3));
        let d = Interp::new().eval(&Prog::drop(), &a);
        assert_eq!(d.prob(&PkSet::new()), Ratio::one());
    }

    #[test]
    fn skip_is_identity() {
        let f = field("it_f2");
        let a = singleton(Packet::new().with(f, 3));
        let d = Interp::new().eval(&Prog::skip(), &a);
        assert_eq!(d.prob(&a), Ratio::one());
    }

    #[test]
    fn test_filters_sets() {
        let f = field("it_f3");
        let mut a = PkSet::new();
        a.insert(Packet::new().with(f, 1));
        a.insert(Packet::new().with(f, 2));
        let d = Interp::new().eval(&Prog::test(f, 1), &a);
        assert_eq!(d.prob(&singleton(Packet::new().with(f, 1))), Ratio::one());
    }

    #[test]
    fn choice_splits_mass() {
        let f = field("it_f4");
        let p = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 3), Prog::assign(f, 2));
        let d = Interp::new().eval_packet(&p, &Packet::new());
        assert_eq!(d.prob(&Packet::new().with(f, 1)), Ratio::new(1, 3));
        assert_eq!(d.prob(&Packet::new().with(f, 2)), Ratio::new(2, 3));
        assert_eq!(d.mass(), Ratio::one());
    }

    #[test]
    fn seq_composes() {
        let f = field("it_f5");
        let g = field("it_g5");
        let p = Prog::assign(f, 1).seq(Prog::assign(g, 2));
        let d = Interp::new().eval_packet(&p, &Packet::new());
        assert_eq!(d.prob(&Packet::new().with(f, 1).with(g, 2)), Ratio::one());
    }

    #[test]
    fn union_is_not_idempotent_on_randomness() {
        // p & p duplicates the packet when p randomises, producing sets of
        // size two with positive probability.
        let f = field("it_f6");
        let p = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 2), Prog::assign(f, 2));
        let both = p.clone().union(p);
        let a = singleton(Packet::new());
        let d = Interp::new().eval(&both, &a);
        let mut two = PkSet::new();
        two.insert(Packet::new().with(f, 1));
        two.insert(Packet::new().with(f, 2));
        assert_eq!(d.prob(&two), Ratio::new(1, 2));
    }

    #[test]
    fn while_loop_terminates_deterministically() {
        // while f=0 do f <- 1 : one iteration, then exits.
        let f = field("it_f7");
        let p = Prog::while_(Pred::test(f, 0), Prog::assign(f, 1));
        let d = Interp::new().eval_packet(&p, &Packet::new());
        assert_eq!(d.prob(&Packet::new().with(f, 1)), Ratio::one());
    }

    #[test]
    fn while_loop_geometric_converges() {
        // while f=0 do (f<-1 ⊕ skip): terminates with probability 1; with a
        // generous budget the missing mass is 2^-budget.
        let f = field("it_f8");
        let body = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 2), Prog::skip());
        let p = Prog::while_(Pred::test(f, 0), body);
        let d = Interp::with_budget(64).eval_packet(&p, &Packet::new());
        let expect = Ratio::one() - Ratio::new(1, 2).pow(64);
        assert_eq!(d.prob(&Packet::new().with(f, 1)), expect);
    }

    #[test]
    fn local_variable_is_erased() {
        let up = field("it_up9");
        let f = field("it_f9");
        // var up<-1 in if up=1 then f<-5 else drop
        let p = Prog::local(
            up,
            1,
            Prog::ite(Pred::test(up, 1), Prog::assign(f, 5), Prog::drop()),
        );
        let d = Interp::new().eval_packet(&p, &Packet::new());
        assert_eq!(d.prob(&Packet::new().with(f, 5)), Ratio::one());
    }

    #[test]
    fn star_of_assignment_accumulates() {
        // (f<-1)* on {π}: outputs {π, π[f:=1]} with probability 1 after
        // saturation (skip branch keeps π, iteration adds π[f:=1]).
        let f = field("it_f10");
        let pk = Packet::new().with(f, 2);
        let d = Interp::new().eval_star(&Prog::assign(f, 1), &singleton(pk.clone()), 8);
        let mut expect = PkSet::new();
        expect.insert(pk);
        expect.insert(Packet::new().with(f, 1));
        assert_eq!(d.prob(&expect), Ratio::one());
    }

    #[test]
    fn desugared_if_agrees_with_direct() {
        let f = field("it_f11");
        let g = field("it_g11");
        let p = Prog::ite(Pred::test(f, 1), Prog::assign(g, 1), Prog::assign(g, 2));
        let interp = Interp::new();
        for v in [0, 1, 2] {
            let a = singleton(Packet::new().with(f, v));
            assert_eq!(
                interp.eval(&p, &a),
                interp.eval(&p.desugar(), &a),
                "input f={v}"
            );
        }
    }

    #[test]
    fn prob_matching_counts_only_delivered() {
        let f = field("it_f12");
        let p = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 4), Prog::drop());
        let d = Interp::new().eval_packet(&p, &Packet::new());
        assert_eq!(d.prob_matching(&Pred::test(f, 1)), Ratio::new(1, 4));
        assert_eq!(d.drop_prob(), Ratio::new(3, 4));
    }
}
