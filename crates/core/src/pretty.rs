//! Pretty-printing of predicates and programs in the paper's concrete
//! syntax.

use crate::{Pred, Prog};
use std::fmt;

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::False => write!(f, "drop"),
            Pred::True => write!(f, "skip"),
            Pred::Test(field, n) => write!(f, "{field}={n}"),
            Pred::Or(a, b) => write!(f, "({a} & {b})"),
            Pred::And(a, b) => write!(f, "({a} ; {b})"),
            Pred::Not(a) => write!(f, "¬{a}"),
        }
    }
}

impl fmt::Display for Prog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prog::Filter(t) => write!(f, "{t}"),
            Prog::Assign(field, n) => write!(f, "{field}<-{n}"),
            Prog::Union(p, q) => write!(f, "({p} & {q})"),
            Prog::Seq(p, q) => write!(f, "({p} ; {q})"),
            Prog::Choice(branches) => {
                write!(f, "⊕(")?;
                for (i, (p, r)) in branches.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p} @ {r}")?;
                }
                write!(f, ")")
            }
            Prog::Star(p) => write!(f, "({p})*"),
            Prog::If(t, p, q) => write!(f, "if {t} then {p} else {q}"),
            Prog::While(t, p) => write!(f, "while {t} do {p}"),
            Prog::Local(field, n, p) => write!(f, "var {field}<-{n} in {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Field, Pred, Prog};
    use mcnetkat_num::Ratio;

    #[test]
    fn renders_running_example() {
        let sw = Field::named("pretty_sw");
        let pt = Field::named("pretty_pt");
        let p = Prog::ite(
            Pred::test(sw, 1),
            Prog::assign(pt, 2),
            Prog::ite(Pred::test(sw, 2), Prog::assign(pt, 2), Prog::drop()),
        );
        let s = p.to_string();
        assert!(s.contains("if pretty_sw=1 then pretty_pt<-2"));
        assert!(s.contains("else if pretty_sw=2"));
    }

    #[test]
    fn renders_choice_with_probabilities() {
        let pt = Field::named("pretty2_pt");
        let p = Prog::choice2(Prog::assign(pt, 2), Ratio::new(1, 2), Prog::assign(pt, 3));
        assert_eq!(p.to_string(), "⊕(pretty2_pt<-2 @ 1/2, pretty2_pt<-3 @ 1/2)");
    }

    #[test]
    fn renders_while_and_local() {
        let up = Field::named("pretty_up");
        let p = Prog::local(up, 1, Prog::while_(Pred::test(up, 1), Prog::assign(up, 0)));
        assert_eq!(
            p.to_string(),
            "var pretty_up<-1 in while pretty_up=1 do pretty_up<-0"
        );
    }
}
