//! Canonical packet records.

use crate::Field;
use std::fmt;

/// A field value (a bounded natural, Figure 2).
pub type Value = u32;

/// A packet: a record mapping fields to values.
///
/// Representation: a sorted association list that **omits zero-valued
/// fields**. Zero is the canonical "out of scope" value — the paper's local
/// variable desugaring `var f <- n in p = f<-n ; p ; f<-0` erases locals by
/// resetting them to zero — so omitting zeros makes packet equality
/// structural.
///
/// # Examples
///
/// ```
/// use mcnetkat_core::{Field, Packet};
/// let sw = Field::named("sw");
/// let pk = Packet::new().with(sw, 3);
/// assert_eq!(pk.get(sw), 3);
/// assert_eq!(pk.with(sw, 0), Packet::new());
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Packet {
    entries: Vec<(Field, Value)>,
}

impl Packet {
    /// The packet with every field zero.
    pub fn new() -> Packet {
        Packet::default()
    }

    /// Builds a packet from `(field, value)` pairs (later pairs win).
    pub fn from_pairs<I: IntoIterator<Item = (Field, Value)>>(pairs: I) -> Packet {
        let mut pk = Packet::new();
        for (f, v) in pairs {
            pk.set(f, v);
        }
        pk
    }

    /// Reads field `f` (0 if absent).
    pub fn get(&self, f: Field) -> Value {
        match self.entries.binary_search_by_key(&f, |&(g, _)| g) {
            Ok(ix) => self.entries[ix].1,
            Err(_) => 0,
        }
    }

    /// Sets field `f` to `v` in place.
    pub fn set(&mut self, f: Field, v: Value) {
        match self.entries.binary_search_by_key(&f, |&(g, _)| g) {
            Ok(ix) => {
                if v == 0 {
                    self.entries.remove(ix);
                } else {
                    self.entries[ix].1 = v;
                }
            }
            Err(ix) => {
                if v != 0 {
                    self.entries.insert(ix, (f, v));
                }
            }
        }
    }

    /// Returns `π[f := v]` (the paper's update notation).
    pub fn with(&self, f: Field, v: Value) -> Packet {
        let mut pk = self.clone();
        pk.set(f, v);
        pk
    }

    /// Returns `true` if `π.f = v`.
    pub fn matches(&self, f: Field, v: Value) -> bool {
        self.get(f) == v
    }

    /// Iterates over the non-zero fields in field order.
    pub fn iter(&self) -> impl Iterator<Item = (Field, Value)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of non-zero fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if every field is zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (field, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}={v}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Packet{self}")
    }
}

impl FromIterator<(Field, Value)> for Packet {
    fn from_iter<I: IntoIterator<Item = (Field, Value)>>(iter: I) -> Packet {
        Packet::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> (Field, Field, Field) {
        (
            Field::named("pk_test_a"),
            Field::named("pk_test_b"),
            Field::named("pk_test_c"),
        )
    }

    #[test]
    fn zero_fields_are_canonical() {
        let (a, _, _) = fields();
        let pk = Packet::new().with(a, 5).with(a, 0);
        assert_eq!(pk, Packet::new());
        assert!(pk.is_empty());
    }

    #[test]
    fn get_set_round_trip() {
        let (a, b, _) = fields();
        let pk = Packet::new().with(a, 1).with(b, 2);
        assert_eq!(pk.get(a), 1);
        assert_eq!(pk.get(b), 2);
        assert_eq!(pk.len(), 2);
    }

    #[test]
    fn later_writes_win() {
        let (a, _, _) = fields();
        let pk = Packet::from_pairs([(a, 1), (a, 7)]);
        assert_eq!(pk.get(a), 7);
    }

    #[test]
    fn ordering_is_structural() {
        let (a, b, _) = fields();
        let p1 = Packet::new().with(a, 1);
        let p2 = Packet::new().with(a, 1).with(b, 1);
        assert_ne!(p1, p2);
        // Same contents compare equal regardless of construction order.
        let p3 = Packet::from_pairs([(b, 1), (a, 1)]);
        assert_eq!(p2, p3);
    }

    #[test]
    fn matches_missing_field_as_zero() {
        let (a, b, _) = fields();
        let pk = Packet::new().with(a, 1);
        assert!(pk.matches(b, 0));
        assert!(!pk.matches(b, 1));
    }
}
