//! Thompson-style automaton construction (§5.2).
//!
//! Each edge carries a predicate `ϕ`, a probability `p`, and a sequence of
//! updates `u`, subject to the well-formedness conditions of the paper:
//! the predicates on a state's outgoing edges partition the state space,
//! and for each state and predicate the probabilities sum to one.

use mcnetkat_core::{Field, Pred, Prog, Value};
use mcnetkat_num::Ratio;
use std::fmt;

/// An automaton edge `src --ϕ/p/u--> dst`.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Source state.
    pub src: usize,
    /// Guard predicate over packet fields.
    pub guard: Pred,
    /// Probability (within its `(src, guard)` group).
    pub prob: Ratio,
    /// Field updates applied on this transition.
    pub updates: Vec<(Field, Value)>,
    /// Destination state.
    pub dst: usize,
}

/// The control-flow automaton of a guarded ProbNetKAT program.
#[derive(Clone, Debug)]
pub struct Automaton {
    /// Number of states (`pc` ranges over `0..nstates`).
    pub nstates: usize,
    /// All edges.
    pub edges: Vec<Edge>,
    /// Entry state.
    pub entry: usize,
    /// Accepting exit state (absorbing).
    pub exit: usize,
    /// Drop sink (absorbing).
    pub sink: usize,
}

/// Error for programs outside the guarded fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslateError(pub &'static str);

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot translate `{}` to PRISM", self.0)
    }
}

impl std::error::Error for TranslateError {}

/// Translates a guarded program into an [`Automaton`] and collapses basic
/// blocks.
///
/// # Errors
///
/// Fails on `Union` or `Star`.
pub fn translate(prog: &Prog) -> Result<Automaton, TranslateError> {
    let mut auto = Builder::new();
    let entry = auto.fresh();
    let exit = auto.fresh();
    let sink = auto.fresh();
    auto.sink = sink;
    auto.emit(prog, entry, exit)?;
    let mut result = Automaton {
        nstates: auto.next,
        edges: auto.edges,
        entry,
        exit,
        sink,
    };
    result.collapse();
    Ok(result)
}

struct Builder {
    next: usize,
    edges: Vec<Edge>,
    sink: usize,
}

impl Builder {
    fn new() -> Builder {
        Builder {
            next: 0,
            edges: Vec::new(),
            sink: 0,
        }
    }

    fn fresh(&mut self) -> usize {
        self.next += 1;
        self.next - 1
    }

    fn edge(
        &mut self,
        src: usize,
        guard: Pred,
        prob: Ratio,
        updates: Vec<(Field, Value)>,
        dst: usize,
    ) {
        self.edges.push(Edge {
            src,
            guard,
            prob,
            updates,
            dst,
        });
    }

    fn emit(&mut self, prog: &Prog, entry: usize, exit: usize) -> Result<(), TranslateError> {
        match prog {
            Prog::Filter(t) => {
                self.edge(entry, t.clone(), Ratio::one(), Vec::new(), exit);
                self.edge(entry, t.clone().not(), Ratio::one(), Vec::new(), self.sink);
            }
            Prog::Assign(f, n) => {
                self.edge(entry, Pred::t(), Ratio::one(), vec![(*f, *n)], exit);
            }
            Prog::Union(..) => return Err(TranslateError("&")),
            Prog::Star(..) => return Err(TranslateError("*")),
            Prog::Seq(p, q) => {
                let mid = self.fresh();
                self.emit(p, entry, mid)?;
                self.emit(q, mid, exit)?;
            }
            Prog::Choice(branches) => {
                for (p, r) in branches.iter() {
                    let s = self.fresh();
                    self.edge(entry, Pred::t(), r.clone(), Vec::new(), s);
                    self.emit(p, s, exit)?;
                }
            }
            Prog::If(t, p, q) => {
                let sp = self.fresh();
                let sq = self.fresh();
                self.edge(entry, t.clone(), Ratio::one(), Vec::new(), sp);
                self.edge(entry, t.clone().not(), Ratio::one(), Vec::new(), sq);
                self.emit(p, sp, exit)?;
                self.emit(q, sq, exit)?;
            }
            Prog::While(t, body) => {
                let sbody = self.fresh();
                self.edge(entry, t.clone(), Ratio::one(), Vec::new(), sbody);
                self.edge(entry, t.clone().not(), Ratio::one(), Vec::new(), exit);
                // The body loops back to the guard state.
                self.emit(body, sbody, entry)?;
            }
            Prog::Local(f, n, body) => {
                let s1 = self.fresh();
                let s2 = self.fresh();
                self.edge(entry, Pred::t(), Ratio::one(), vec![(*f, *n)], s1);
                self.emit(body, s1, s2)?;
                self.edge(s2, Pred::t(), Ratio::one(), vec![(*f, 0)], exit);
            }
        }
        Ok(())
    }
}

impl Automaton {
    /// Collapses basic blocks: a state whose single outgoing edge is
    /// unconditional (`true/1/u`) is fused into its predecessors,
    /// shrinking the `pc` range — the state-space optimisation of §5.2.
    pub fn collapse(&mut self) {
        loop {
            // Find a fusable state: exactly one outgoing edge, guard true,
            // prob 1, not a self loop, and not the entry.
            let mut fused = false;
            for s in 0..self.nstates {
                if s == self.entry || s == self.exit || s == self.sink {
                    continue;
                }
                let outgoing: Vec<usize> = self
                    .edges
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.src == s)
                    .map(|(i, _)| i)
                    .collect();
                if outgoing.len() != 1 {
                    continue;
                }
                let e = &self.edges[outgoing[0]];
                if e.guard != Pred::True || !e.prob.is_one() || e.dst == s {
                    continue;
                }
                let (chain_updates, chain_dst) = (e.updates.clone(), e.dst);
                let edge_ix = outgoing[0];
                // Redirect predecessors through the chain.
                for edge in &mut self.edges {
                    if edge.dst == s {
                        edge.dst = chain_dst;
                        edge.updates = compose_updates(&edge.updates, &chain_updates);
                    }
                }
                self.edges.swap_remove(edge_ix);
                fused = true;
                break;
            }
            if !fused {
                break;
            }
        }
        self.renumber();
    }

    /// Renumbers states densely (dropping unreachable ids) so the printed
    /// `pc` variable has a tight bound.
    fn renumber(&mut self) {
        let mut map = vec![usize::MAX; self.nstates];
        let mut next = 0;
        let visit = |s: usize, map: &mut Vec<usize>, next: &mut usize| {
            if map[s] == usize::MAX {
                map[s] = *next;
                *next += 1;
            }
        };
        visit(self.entry, &mut map, &mut next);
        visit(self.exit, &mut map, &mut next);
        visit(self.sink, &mut map, &mut next);
        for e in &self.edges {
            visit(e.src, &mut map, &mut next);
            visit(e.dst, &mut map, &mut next);
        }
        for e in &mut self.edges {
            e.src = map[e.src];
            e.dst = map[e.dst];
        }
        self.entry = map[self.entry];
        self.exit = map[self.exit];
        self.sink = map[self.sink];
        self.nstates = next;
    }

    /// The outgoing edges of `s`.
    pub fn outgoing(&self, s: usize) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.src == s)
    }

    /// Checks the §5.2 well-formedness conditions on a sample packet
    /// universe: for every state the live guards' probabilities sum to 1.
    pub fn check_well_formed(&self, packets: &[mcnetkat_core::Packet]) -> Result<(), String> {
        for s in 0..self.nstates {
            if s == self.exit || s == self.sink {
                continue;
            }
            let out: Vec<&Edge> = self.outgoing(s).collect();
            if out.is_empty() {
                continue; // unreachable helper state
            }
            for pk in packets {
                let total: Ratio = out
                    .iter()
                    .filter(|e| e.guard.eval(pk))
                    .map(|e| e.prob.clone())
                    .sum();
                if total != Ratio::one() {
                    return Err(format!(
                        "state {s} has outgoing probability {total} on {pk}"
                    ));
                }
            }
        }
        Ok(())
    }
}

fn compose_updates(first: &[(Field, Value)], second: &[(Field, Value)]) -> Vec<(Field, Value)> {
    let mut out: Vec<(Field, Value)> = first.to_vec();
    for &(f, v) in second {
        match out.iter_mut().find(|(g, _)| *g == f) {
            Some(slot) => slot.1 = v,
            None => out.push((f, v)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnetkat_core::{Field, Packet};

    fn field(n: &str) -> Field {
        Field::named(n)
    }

    #[test]
    fn translates_assignment_chain() {
        let f = field("pa_f");
        let g = field("pa_g");
        let prog = Prog::assign(f, 1).seq(Prog::assign(g, 2));
        let auto = translate(&prog).unwrap();
        // Collapsing fuses the chain into few states.
        assert!(auto.nstates <= 4, "got {} states", auto.nstates);
        auto.check_well_formed(&[Packet::new()]).unwrap();
    }

    #[test]
    fn translates_conditionals_with_partition() {
        let f = field("pa_f2");
        let prog = Prog::ite(Pred::test(f, 1), Prog::assign(f, 2), Prog::drop());
        let auto = translate(&prog).unwrap();
        let pks = [Packet::new(), Packet::new().with(f, 1)];
        auto.check_well_formed(&pks).unwrap();
    }

    #[test]
    fn translates_loops_with_back_edge() {
        let f = field("pa_f3");
        let body = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 2), Prog::skip());
        let prog = Prog::while_(Pred::test(f, 0), body);
        let auto = translate(&prog).unwrap();
        let pks = [Packet::new(), Packet::new().with(f, 1)];
        auto.check_well_formed(&pks).unwrap();
        // There must be a cycle: some edge reaches an ancestor.
        assert!(auto.edges.iter().any(|e| e.dst <= e.src));
    }

    #[test]
    fn rejects_unguarded() {
        let p = Prog::skip().union(Prog::drop());
        assert!(translate(&p).is_err());
        assert!(translate(&Prog::skip().star()).is_err());
    }

    #[test]
    fn collapse_shrinks_state_count() {
        let f = field("pa_f4");
        // A long assignment chain should collapse to ~3 states.
        let prog = Prog::seq_all((1..=10).map(|v| Prog::assign(f, v)));
        let auto = translate(&prog).unwrap();
        assert!(auto.nstates <= 4, "got {}", auto.nstates);
        // The fused edge performs the *last* write.
        let e = auto.outgoing(auto.entry).next().unwrap();
        assert_eq!(e.updates, vec![(f, 10)]);
    }
}
