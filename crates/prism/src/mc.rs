//! An explicit-state DTMC model checker over translated automata — the
//! in-repo stand-in for the external PRISM tool.
//!
//! Builds the reachable state space `(pc, packet)` from an initial packet,
//! then computes the probability of reaching the accepting exit state,
//! either exactly (rational elimination — "PRISM exact") or approximately
//! (float Gauss–Seidel — "PRISM approx").

use crate::Automaton;
use mcnetkat_core::{Packet, Pred};
use mcnetkat_linalg::{AbsorbingChain, SolverBackend};
use mcnetkat_num::Ratio;
use std::collections::HashMap;

/// Which engine computes the reachability probability.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum McMode {
    /// Exact rational arithmetic (PRISM's `-exact`).
    Exact,
    /// 64-bit floats with an iterative solver (PRISM's default).
    Approx,
}

/// The result of a reachability query.
#[derive(Clone, Debug)]
pub struct McResult {
    /// Probability of reaching the exit state with the accept predicate.
    pub probability: f64,
    /// Exact value, when run in [`McMode::Exact`].
    pub exact: Option<Ratio>,
    /// Number of explicit states explored.
    pub states: usize,
}

/// Computes `P [ F (pc = exit ∧ accept) ]` from `(entry, input)`.
///
/// # Errors
///
/// Returns an error string if the automaton is ill-formed (outgoing
/// probabilities that do not sum to one) or the solver fails.
pub fn check_reachability(
    auto: &Automaton,
    input: &Packet,
    accept: &Pred,
    mode: McMode,
) -> Result<McResult, String> {
    // 1. Enumerate reachable (pc, packet) states.
    let mut index: HashMap<(usize, Packet), usize> = HashMap::new();
    let mut states: Vec<(usize, Packet)> = Vec::new();
    let mut worklist: Vec<usize> = Vec::new();
    let mut intern = |st: (usize, Packet),
                      states: &mut Vec<(usize, Packet)>,
                      worklist: &mut Vec<usize>|
     -> usize {
        if let Some(&ix) = index.get(&st) {
            return ix;
        }
        let ix = states.len();
        index.insert(st.clone(), ix);
        states.push(st);
        worklist.push(ix);
        ix
    };
    intern((auto.entry, input.clone()), &mut states, &mut worklist);
    let mut rows: Vec<Vec<(usize, Ratio)>> = Vec::new();
    while let Some(ix) = worklist.pop() {
        let (pc, pk) = states[ix].clone();
        let mut row = Vec::new();
        if pc != auto.exit && pc != auto.sink {
            let mut total = Ratio::zero();
            for e in auto.outgoing(pc) {
                if !e.guard.eval(&pk) {
                    continue;
                }
                let mut next = pk.clone();
                for &(f, v) in &e.updates {
                    next.set(f, v);
                }
                let target = intern((e.dst, next), &mut states, &mut worklist);
                total += &e.prob;
                row.push((target, e.prob.clone()));
            }
            if !row.is_empty() && total != Ratio::one() {
                return Err(format!("state {pc} outgoing probability {total}"));
            }
        }
        if rows.len() <= ix {
            rows.resize(ix + 1, Vec::new());
        }
        rows[ix] = row;
    }
    let n = states.len();

    // 2. Absorbing chain: exit/sink states and dead ends absorb; states
    //    that cannot reach an absorbing state correspond to divergence
    //    (probability-0 delivery) and are redirected to a virtual sink.
    let virtual_sink = n;
    let mut chain = AbsorbingChain::new(n + 1);
    chain.set_absorbing(virtual_sink);
    let mut absorbing = vec![false; n + 1];
    absorbing[virtual_sink] = true;
    for (ix, row) in rows.iter().enumerate() {
        if row.is_empty() {
            chain.set_absorbing(ix);
            absorbing[ix] = true;
        }
    }
    // Backward reachability from absorbing states.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for (s, row) in rows.iter().enumerate() {
        for (t, _) in row {
            rev[*t].push(s);
        }
    }
    let mut reaches = absorbing.clone();
    let mut stack: Vec<usize> = (0..=n).filter(|&s| absorbing[s]).collect();
    while let Some(s) = stack.pop() {
        for &p in &rev[s] {
            if !reaches[p] {
                reaches[p] = true;
                stack.push(p);
            }
        }
    }
    for (ix, row) in rows.iter().enumerate() {
        if absorbing[ix] {
            continue;
        }
        if !reaches[ix] {
            chain.add(ix, virtual_sink, Ratio::one());
            continue;
        }
        for (t, p) in row {
            let target = if reaches[*t] { *t } else { virtual_sink };
            chain.add(ix, target, p.clone());
        }
    }

    // 3. Sum absorption probabilities over accepting exit states.
    let accepting: Vec<usize> = (0..n)
        .filter(|&ix| {
            let (pc, pk) = &states[ix];
            absorbing[ix] && *pc == auto.exit && accept.eval(pk)
        })
        .collect();
    let start = index[&(auto.entry, input.clone())];
    if absorbing[start] {
        let hit = accepting.contains(&start);
        return Ok(McResult {
            probability: if hit { 1.0 } else { 0.0 },
            exact: Some(if hit { Ratio::one() } else { Ratio::zero() }),
            states: n,
        });
    }
    match mode {
        McMode::Exact => {
            let sol = chain.solve_exact().map_err(|e| e.to_string())?;
            // Compact transient rank of `start`.
            let rank = (0..start).filter(|&s| !absorbing[s]).count();
            let a_ranks: Vec<usize> = (0..=n).filter(|&s| absorbing[s]).collect();
            let mut total = Ratio::zero();
            for (col, &a) in a_ranks.iter().enumerate() {
                if accepting.contains(&a) {
                    total += &sol[rank][col];
                }
            }
            Ok(McResult {
                probability: total.to_f64(),
                exact: Some(total),
                states: n,
            })
        }
        McMode::Approx => {
            let sol = chain
                .solve(SolverBackend::GaussSeidel)
                .map_err(|e| e.to_string())?;
            let total: f64 = accepting.iter().map(|&a| sol.prob(start, a)).sum();
            Ok(McResult {
                probability: total,
                exact: None,
                states: n,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate;
    use mcnetkat_core::{Field, Prog};

    fn field(n: &str) -> Field {
        Field::named(n)
    }

    #[test]
    fn deterministic_program_reaches_exit() {
        let f = field("mc_f");
        let prog = Prog::assign(f, 1).seq(Prog::assign(f, 2));
        let auto = translate(&prog).unwrap();
        let r =
            check_reachability(&auto, &Packet::new(), &Pred::test(f, 2), McMode::Exact).unwrap();
        assert_eq!(r.exact, Some(Ratio::one()));
    }

    #[test]
    fn filter_sends_mass_to_sink() {
        let f = field("mc_f2");
        let prog = Prog::test(f, 1);
        let auto = translate(&prog).unwrap();
        let r = check_reachability(&auto, &Packet::new(), &Pred::t(), McMode::Exact).unwrap();
        assert_eq!(r.exact, Some(Ratio::zero()));
        let r2 = check_reachability(&auto, &Packet::new().with(f, 1), &Pred::t(), McMode::Exact)
            .unwrap();
        assert_eq!(r2.exact, Some(Ratio::one()));
    }

    #[test]
    fn probabilistic_choice_splits() {
        let f = field("mc_f3");
        let prog = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 4), Prog::assign(f, 2));
        let auto = translate(&prog).unwrap();
        let r =
            check_reachability(&auto, &Packet::new(), &Pred::test(f, 1), McMode::Exact).unwrap();
        assert_eq!(r.exact, Some(Ratio::new(1, 4)));
    }

    #[test]
    fn geometric_loop_exact_and_approx_agree() {
        let f = field("mc_f4");
        let body = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 3), Prog::skip());
        let prog = Prog::while_(Pred::test(f, 0), body);
        let auto = translate(&prog).unwrap();
        let exact =
            check_reachability(&auto, &Packet::new(), &Pred::test(f, 1), McMode::Exact).unwrap();
        let approx =
            check_reachability(&auto, &Packet::new(), &Pred::test(f, 1), McMode::Approx).unwrap();
        assert_eq!(exact.exact, Some(Ratio::one()));
        assert!((approx.probability - 1.0).abs() < 1e-9);
    }

    #[test]
    fn divergent_loop_has_probability_zero() {
        let f = field("mc_f5");
        let prog = Prog::while_(Pred::test(f, 0), Prog::skip());
        let auto = translate(&prog).unwrap();
        let r = check_reachability(&auto, &Packet::new(), &Pred::t(), McMode::Exact).unwrap();
        assert_eq!(r.exact, Some(Ratio::zero()));
    }

    #[test]
    fn matches_fdd_backend_on_random_walk() {
        let f = field("mc_f6");
        let body = Prog::ite(
            Pred::test(f, 1),
            Prog::choice2(Prog::assign(f, 0), Ratio::new(1, 2), Prog::assign(f, 2)),
            Prog::drop(),
        );
        let prog = Prog::while_(Pred::test(f, 1), body);
        let auto = translate(&prog).unwrap();
        let r = check_reachability(
            &auto,
            &Packet::new().with(f, 1),
            &Pred::test(f, 2),
            McMode::Exact,
        )
        .unwrap();
        assert_eq!(r.exact, Some(Ratio::new(1, 2)));
        // Cross-check against the native backend.
        let mgr = mcnetkat_fdd::Manager::new();
        let fdd = mgr.compile(&prog).unwrap();
        let p = mgr.prob_matching(fdd, &Packet::new().with(f, 1), &Pred::test(f, 2));
        assert_eq!(p, Ratio::new(1, 2));
    }
}
