//! The PRISM backend (§5.2): a syntactic translation from guarded
//! ProbNetKAT to PRISM's guarded-command language, plus an in-repo
//! explicit-state DTMC model checker that stands in for the external PRISM
//! tool (with exact-rational and approximate-float engines, mirroring
//! PRISM's exact and approximate modes in Figure 10).
//!
//! Pipeline: Thompson-style automaton construction → basic-block
//! collapsing (to keep the `pc` variable small) → either pretty-printed
//! PRISM source or direct model checking.

#![forbid(unsafe_code)]

mod automaton;
mod mc;
mod print;

pub use automaton::{translate, Automaton, Edge, TranslateError};
pub use mc::{check_reachability, McMode, McResult};
pub use print::{to_prism_source, to_property};
