//! Pretty-printing automata as PRISM source (a `dtmc` module) and PCTL
//! properties.

use crate::Automaton;
use mcnetkat_core::{Field, Packet, Pred};
use std::collections::BTreeMap;

/// Renders a PRISM predicate.
fn pred_to_prism(p: &Pred) -> String {
    match p {
        Pred::False => "false".into(),
        Pred::True => "true".into(),
        Pred::Test(f, v) => format!("{}={v}", sanitise(&f.name())),
        Pred::Or(a, b) => format!("({} | {})", pred_to_prism(a), pred_to_prism(b)),
        Pred::And(a, b) => format!("({} & {})", pred_to_prism(a), pred_to_prism(b)),
        Pred::Not(a) => format!("!{}", pred_to_prism(a)),
    }
}

fn sanitise(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Collects every field mentioned by the automaton with its maximum value,
/// to derive variable bounds.
fn field_bounds(auto: &Automaton, init: &Packet) -> BTreeMap<Field, u32> {
    fn walk(p: &Pred, out: &mut BTreeMap<Field, u32>) {
        match p {
            Pred::Test(f, v) => {
                let slot = out.entry(*f).or_insert(0);
                *slot = (*slot).max(*v);
            }
            Pred::Or(a, b) | Pred::And(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Pred::Not(a) => walk(a, out),
            _ => {}
        }
    }
    let mut out = BTreeMap::new();
    for e in &auto.edges {
        walk(&e.guard, &mut out);
        for &(f, v) in &e.updates {
            let slot = out.entry(f).or_insert(0);
            *slot = (*slot).max(v);
        }
    }
    for (f, v) in init.iter() {
        let slot = out.entry(f).or_insert(0);
        *slot = (*slot).max(v);
    }
    out
}

/// Renders the automaton as a PRISM `dtmc` model with the given initial
/// packet.
pub fn to_prism_source(auto: &Automaton, init: &Packet) -> String {
    let mut out = String::from("dtmc\n\nmodule net\n");
    out.push_str(&format!(
        "  pc : [0..{}] init {};\n",
        auto.nstates.saturating_sub(1),
        auto.entry
    ));
    for (f, max) in field_bounds(auto, init) {
        out.push_str(&format!(
            "  {} : [0..{max}] init {};\n",
            sanitise(&f.name()),
            init.get(f)
        ));
    }
    out.push('\n');
    // Group edges by (src, guard) into guarded commands.
    let mut groups: BTreeMap<(usize, String), Vec<&crate::Edge>> = BTreeMap::new();
    for e in &auto.edges {
        groups
            .entry((e.src, pred_to_prism(&e.guard)))
            .or_default()
            .push(e);
    }
    for ((src, guard), edges) in groups {
        let branches: Vec<String> = edges
            .iter()
            .map(|e| {
                let mut updates: Vec<String> = vec![format!("(pc'={})", e.dst)];
                for (f, v) in &e.updates {
                    updates.push(format!("({}'={v})", sanitise(&f.name())));
                }
                format!("{} : {}", e.prob, updates.join(" & "))
            })
            .collect();
        out.push_str(&format!(
            "  [] pc={src} & {guard} -> {};\n",
            branches.join(" + ")
        ));
    }
    // Absorbing states.
    out.push_str(&format!(
        "  [] pc={} -> 1 : (pc'={});\n",
        auto.exit, auto.exit
    ));
    out.push_str(&format!(
        "  [] pc={} -> 1 : (pc'={});\n",
        auto.sink, auto.sink
    ));
    out.push_str("endmodule\n");
    out
}

/// Renders the PCTL delivery property `P=? [ F pc=exit & accept ]`.
pub fn to_property(auto: &Automaton, accept: &Pred) -> String {
    format!("P=? [ F pc={} & {} ]", auto.exit, pred_to_prism(accept))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate;
    use mcnetkat_core::{Field, Prog};
    use mcnetkat_num::Ratio;

    #[test]
    fn prints_a_dtmc_module() {
        let f = Field::named("pp_f");
        let prog = Prog::choice2(Prog::assign(f, 1), Ratio::new(1, 2), Prog::assign(f, 2));
        let auto = translate(&prog).unwrap();
        let src = to_prism_source(&auto, &Packet::new());
        assert!(src.starts_with("dtmc"));
        assert!(src.contains("module net"));
        assert!(src.contains("pc :"));
        assert!(src.contains("pp_f :"));
        assert!(src.contains("1/2"));
        assert!(src.contains("endmodule"));
    }

    #[test]
    fn property_mentions_exit_state() {
        let f = Field::named("pp_g");
        let auto = translate(&Prog::assign(f, 1)).unwrap();
        let prop = to_property(&auto, &Pred::test(f, 1));
        assert!(prop.contains(&format!("pc={}", auto.exit)));
        assert!(prop.contains("pp_g=1"));
    }

    #[test]
    fn variable_bounds_cover_all_values() {
        let f = Field::named("pp_h");
        let prog = Prog::ite(Pred::test(f, 7), Prog::assign(f, 3), Prog::skip());
        let auto = translate(&prog).unwrap();
        let src = to_prism_source(&auto, &Packet::new());
        assert!(src.contains("pp_h : [0..7]"));
    }
}
