//! Graphviz (DOT) reading and writing.
//!
//! McNetKAT "generates programs automatically from network topologies
//! encoded using Graphviz" (§5); this module implements the dialect the
//! generators emit: an undirected graph whose edges carry `src_port` and
//! `dst_port` attributes, with node `level` attributes.

use crate::{Level, NodeInfo, Topology};
use std::fmt;

/// Error returned when DOT parsing fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DotError {
    /// Line number (1-based) of the offending input.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for DotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DOT parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DotError {}

fn level_name(level: Level) -> &'static str {
    match level {
        Level::Host => "host",
        Level::Edge => "edge",
        Level::Agg => "agg",
        Level::Core => "core",
        Level::Plain => "plain",
    }
}

fn level_of(name: &str) -> Option<Level> {
    Some(match name {
        "host" => Level::Host,
        "edge" => Level::Edge,
        "agg" => Level::Agg,
        "core" => Level::Core,
        "plain" => Level::Plain,
        _ => return None,
    })
}

/// Renders a topology in the DOT dialect accepted by [`parse_dot`].
pub fn to_dot(topo: &Topology) -> String {
    let mut out = String::from("graph topology {\n");
    for n in topo.nodes() {
        let info = topo.info(n);
        out.push_str(&format!(
            "  {} [level={}];\n",
            info.name,
            level_name(info.level)
        ));
    }
    // Each undirected link once: emit from the lower node id.
    for n in topo.nodes() {
        for pp in topo.ports(n) {
            // Self-loops cannot occur (`link` connects distinct nodes), so
            // strict "greater" covers every link exactly once.
            if pp.peer.0 > n.0 {
                out.push_str(&format!(
                    "  {} -- {} [src_port={}, dst_port={}];\n",
                    topo.info(n).name,
                    topo.info(pp.peer).name,
                    pp.port,
                    pp.peer_port
                ));
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Parses the DOT dialect produced by [`to_dot`].
///
/// # Errors
///
/// Returns a [`DotError`] describing the first malformed line.
pub fn parse_dot(src: &str) -> Result<Topology, DotError> {
    let mut topo = Topology::new();
    for (ix, raw) in src.lines().enumerate() {
        let lineno = ix + 1;
        let line = raw.trim().trim_end_matches(';');
        if line.is_empty()
            || line.starts_with("graph")
            || line.starts_with('}')
            || line.starts_with("//")
        {
            continue;
        }
        let err = |message: String| DotError {
            line: lineno,
            message,
        };
        if let Some((endpoints, attrs)) = split_decl(line) {
            if let Some((a, b)) = endpoints.split_once("--") {
                // Edge declaration.
                let a = a.trim();
                let b = b.trim();
                let na = topo
                    .find(a)
                    .ok_or_else(|| err(format!("unknown node `{a}`")))?;
                let nb = topo
                    .find(b)
                    .ok_or_else(|| err(format!("unknown node `{b}`")))?;
                let src_port =
                    attr_u32(&attrs, "src_port").ok_or_else(|| err("missing src_port".into()))?;
                let dst_port =
                    attr_u32(&attrs, "dst_port").ok_or_else(|| err("missing dst_port".into()))?;
                topo.link_ports(na, src_port, nb, dst_port);
            } else {
                // Node declaration.
                let name = endpoints.trim();
                let level = match attr_str(&attrs, "level") {
                    Some(l) => level_of(&l).ok_or_else(|| err(format!("unknown level `{l}`")))?,
                    None => Level::Plain,
                };
                topo.add_node(NodeInfo {
                    name: name.to_owned(),
                    level,
                    pod: None,
                    pod_type: None,
                });
            }
        } else {
            return Err(err(format!("cannot parse `{line}`")));
        }
    }
    Ok(topo)
}

/// Splits `lhs [k=v, …]` into the left-hand side and attribute pairs.
fn split_decl(line: &str) -> Option<(String, Vec<(String, String)>)> {
    match line.split_once('[') {
        None => Some((line.to_owned(), Vec::new())),
        Some((lhs, rest)) => {
            let attrs_src = rest.strip_suffix(']')?;
            let attrs = attrs_src
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|pair| {
                    let (k, v) = pair.split_once('=')?;
                    Some((k.trim().to_owned(), v.trim().trim_matches('"').to_owned()))
                })
                .collect::<Option<Vec<_>>>()?;
            Some((lhs.trim().to_owned(), attrs))
        }
    }
}

fn attr_str(attrs: &[(String, String)], key: &str) -> Option<String> {
    attrs
        .iter()
        .find_map(|(k, v)| (k == key).then(|| v.clone()))
}

fn attr_u32(attrs: &[(String, String)], key: &str) -> Option<u32> {
    attr_str(attrs, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ab_fattree, chain, fattree};

    fn round_trip(t: &Topology) {
        let dot = to_dot(t);
        let back = parse_dot(&dot).expect("round trip parse");
        assert_eq!(back.len(), t.len());
        assert_eq!(back.switches().len(), t.switches().len());
        for n in t.nodes() {
            let m = back.find(&t.info(n).name).expect("node preserved");
            assert_eq!(back.ports(m).len(), t.ports(n).len());
            for pp in t.ports(n) {
                let (peer, peer_port) = back.neighbor(m, pp.port).expect("port preserved");
                assert_eq!(back.info(peer).name, t.info(pp.peer).name);
                assert_eq!(peer_port, pp.peer_port);
            }
        }
    }

    #[test]
    fn round_trips_generators() {
        round_trip(&chain(2));
        round_trip(&fattree(4));
        round_trip(&ab_fattree(4));
    }

    #[test]
    fn parses_minimal_graph() {
        let src = r#"
            graph g {
              a [level=edge];
              b [level=core];
              a -- b [src_port=1, dst_port=2];
            }
        "#;
        let t = parse_dot(src).unwrap();
        assert_eq!(t.len(), 2);
        let a = t.find("a").unwrap();
        let b = t.find("b").unwrap();
        assert_eq!(t.neighbor(a, 1), Some((b, 2)));
        assert_eq!(t.info(a).level, Level::Edge);
    }

    #[test]
    fn reports_unknown_node() {
        let src = "a [level=edge];\na -- missing [src_port=1, dst_port=1];";
        let err = parse_dot(src).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn reports_missing_ports() {
        let src = "a;\nb;\na -- b;";
        let err = parse_dot(src).unwrap_err();
        assert!(err.message.contains("src_port"));
    }

    #[test]
    fn nodes_default_to_plain() {
        let t = parse_dot("x;").unwrap();
        assert_eq!(t.info(t.find("x").unwrap()).level, Level::Plain);
    }
}
