//! AB FatTree generator (Liu et al.'s F10 topology, Figure 11a).

use crate::{PodType, Topology};

/// Builds a `p`-ary AB FatTree: the same switches as [`fattree`](crate::fattree), but pods
/// alternate between type A (conventional) and type B (staggered) core
/// wiring. A core switch therefore connects to aggregation switches of
/// *both* types, which is what makes 3-hop detours possible after an
/// aggregation-layer failure (Appendix E).
///
/// # Panics
///
/// Panics if `p` is odd or less than 2.
///
/// # Examples
///
/// ```
/// let t = mcnetkat_topo::ab_fattree(4);
/// assert_eq!(t.switches().len(), 20);
/// ```
pub fn ab_fattree(p: usize) -> Topology {
    crate::fattree::build(p, |pod| if pod % 2 == 0 { PodType::A } else { PodType::B })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fattree, Level};

    #[test]
    fn same_size_as_fattree() {
        let a = fattree(4);
        let b = ab_fattree(4);
        assert_eq!(a.switches().len(), b.switches().len());
    }

    #[test]
    fn pods_alternate_types() {
        let t = ab_fattree(4);
        for &s in t.switches() {
            if let (Some(pod), Some(ty)) = (t.info(s).pod, t.info(s).pod_type) {
                let expect = if pod % 2 == 0 { PodType::A } else { PodType::B };
                assert_eq!(ty, expect);
            }
        }
    }

    #[test]
    fn cores_see_both_pod_types() {
        // The defining property: every core switch is adjacent to
        // aggregation switches of type A and of type B.
        let t = ab_fattree(4);
        for &s in t.switches() {
            if t.info(s).level != Level::Core {
                continue;
            }
            let types: std::collections::BTreeSet<_> = t
                .ports(s)
                .iter()
                .filter_map(|pp| t.info(pp.peer).pod_type)
                .map(|ty| format!("{ty:?}"))
                .collect();
            assert_eq!(types.len(), 2, "core {} is single-typed", t.info(s).name);
        }
    }

    #[test]
    fn plain_fattree_cores_see_one_type() {
        // Contrast: in a standard FatTree every pod is type A.
        let t = fattree(4);
        for &s in t.switches() {
            if t.info(s).level != Level::Core {
                continue;
            }
            let types: std::collections::BTreeSet<_> = t
                .ports(s)
                .iter()
                .filter_map(|pp| t.info(pp.peer).pod_type)
                .map(|ty| format!("{ty:?}"))
                .collect();
            assert_eq!(types.len(), 1);
        }
    }
}
