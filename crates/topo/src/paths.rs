//! All-shortest-paths computation towards a destination, the substrate for
//! ECMP-style routing (§6).

use crate::{NodeId, Topology};
use std::collections::VecDeque;

/// Shortest-path information towards a fixed destination node.
///
/// # Examples
///
/// ```
/// use mcnetkat_topo::{chain, ShortestPaths};
/// let t = chain(1);
/// let dst = t.find("S3").unwrap();
/// let sp = ShortestPaths::towards(&t, dst);
/// let s0 = t.find("S0").unwrap();
/// assert_eq!(sp.distance(s0), Some(2));
/// assert_eq!(sp.next_hop_ports_in(&t, s0).len(), 2); // via S1 or S2 — ECMP
/// ```
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    dst: NodeId,
    dist: Vec<Option<u32>>,
}

impl ShortestPaths {
    /// BFS from `dst` over the undirected topology.
    pub fn towards(topo: &Topology, dst: NodeId) -> ShortestPaths {
        let mut dist: Vec<Option<u32>> = vec![None; topo.len()];
        dist[dst.0] = Some(0);
        let mut queue = VecDeque::from([dst]);
        while let Some(n) = queue.pop_front() {
            let d = dist[n.0].unwrap();
            for pp in topo.ports(n) {
                if dist[pp.peer.0].is_none() {
                    dist[pp.peer.0] = Some(d + 1);
                    queue.push_back(pp.peer);
                }
            }
        }
        ShortestPaths { dst, dist }
    }

    /// The destination these paths lead to.
    pub fn destination(&self) -> NodeId {
        self.dst
    }

    /// Hop distance from `n` to the destination (`None` if disconnected).
    pub fn distance(&self, n: NodeId) -> Option<u32> {
        self.dist[n.0]
    }

    /// The ports of `n` that lie on *some* shortest path to the
    /// destination — the ECMP port set.
    pub fn next_hop_ports_in(&self, topo: &Topology, n: NodeId) -> Vec<u32> {
        let Some(d) = self.dist[n.0] else {
            return Vec::new();
        };
        topo.ports(n)
            .iter()
            .filter(|pp| self.dist[pp.peer.0] == Some(d.saturating_sub(1)) && d > 0)
            .map(|pp| pp.port)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chain, fattree, Level};

    #[test]
    fn distances_in_chain() {
        let t = chain(2);
        let dst = t.find("H2").unwrap();
        let sp = ShortestPaths::towards(&t, dst);
        assert_eq!(sp.distance(dst), Some(0));
        assert_eq!(sp.distance(t.find("S7").unwrap()), Some(1));
        assert_eq!(sp.distance(t.find("S0").unwrap()), Some(6));
        assert_eq!(sp.distance(t.find("H1").unwrap()), Some(7));
    }

    #[test]
    fn ecmp_ports_split_at_diamond_heads() {
        let t = chain(1);
        let sp = ShortestPaths::towards(&t, t.find("H2").unwrap());
        let s0 = t.find("S0").unwrap();
        let ports = sp.next_hop_ports_in(&t, s0);
        assert_eq!(ports.len(), 2);
        let s1 = t.find("S1").unwrap();
        assert_eq!(sp.next_hop_ports_in(&t, s1).len(), 1);
    }

    #[test]
    fn fattree_edge_to_edge_distance_is_four_across_pods() {
        let t = fattree(4);
        let e0 = t.find("edge0_0").unwrap();
        let e2 = t.find("edge2_0").unwrap();
        let sp = ShortestPaths::towards(&t, e0);
        // edge-agg-core-agg-edge
        assert_eq!(sp.distance(e2), Some(4));
        // Within a pod: 2 hops via aggregation.
        let e0b = t.find("edge0_1").unwrap();
        assert_eq!(sp.distance(e0b), Some(2));
    }

    #[test]
    fn ecmp_width_matches_fattree_multipath() {
        let t = fattree(4);
        let dst = t.find("edge0_0").unwrap();
        let sp = ShortestPaths::towards(&t, dst);
        // From an edge switch in another pod, both aggregation switches
        // lie on shortest paths.
        let e = t.find("edge1_0").unwrap();
        assert_eq!(sp.next_hop_ports_in(&t, e).len(), 2);
        // A core switch has exactly one downward shortest path.
        let cores: Vec<_> = t
            .switches()
            .iter()
            .filter(|&&s| t.info(s).level == Level::Core)
            .collect();
        for &&c in &cores {
            assert_eq!(sp.next_hop_ports_in(&t, c).len(), 1);
        }
    }

    #[test]
    fn destination_has_no_next_hops() {
        let t = chain(1);
        let dst = t.find("S3").unwrap();
        let sp = ShortestPaths::towards(&t, dst);
        assert!(sp.next_hop_ports_in(&t, dst).is_empty());
    }
}
