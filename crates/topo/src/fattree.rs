//! FatTree generator (Al-Fares et al., Figure 6 of the paper).

use crate::{Level, NodeId, PodType, Topology};

/// Builds a `p`-ary FatTree: `p` pods of `p/2` edge and `p/2` aggregation
/// switches, plus `(p/2)²` core switches — `(5/4)p²` switches total.
///
/// Hosts are omitted (the network model's `in`/`out` predicates play that
/// role), matching the paper's switch-level models.
///
/// # Panics
///
/// Panics if `p` is odd or less than 2.
///
/// # Examples
///
/// ```
/// let t = mcnetkat_topo::fattree(4);
/// assert_eq!(t.switches().len(), 20);
/// ```
pub fn fattree(p: usize) -> Topology {
    build(p, |_| PodType::A)
}

/// Shared construction for FatTree and AB FatTree: `pod_type` picks each
/// pod's core wiring.
pub(crate) fn build(p: usize, pod_type: impl Fn(usize) -> PodType) -> Topology {
    assert!(
        p >= 2 && p.is_multiple_of(2),
        "FatTree arity must be even, got {p}"
    );
    let half = p / 2;
    let mut t = Topology::new();

    // Core switches: (p/2)^2, viewed as `half` groups of `half`.
    let cores: Vec<NodeId> = (0..half * half)
        .map(|i| t.add_switch(&format!("core{i}"), Level::Core))
        .collect();

    // Pods of edge + aggregation switches.
    let mut edges = Vec::new();
    let mut aggs = Vec::new();
    for pod in 0..p {
        let ty = pod_type(pod);
        for i in 0..half {
            let e = t.add_switch(&format!("edge{pod}_{i}"), Level::Edge);
            let info = t.info_mut(e);
            info.pod = Some(pod);
            info.pod_type = Some(ty);
            edges.push(e);
        }
        for i in 0..half {
            let a = t.add_switch(&format!("agg{pod}_{i}"), Level::Agg);
            let info = t.info_mut(a);
            info.pod = Some(pod);
            info.pod_type = Some(ty);
            aggs.push(a);
        }
        // Full bipartite edge ↔ aggregation within the pod.
        for i in 0..half {
            for j in 0..half {
                let e = edges[pod * half + i];
                let a = aggs[pod * half + j];
                t.link(e, a);
            }
        }
        // Aggregation ↔ core.
        for i in 0..half {
            let a = aggs[pod * half + i];
            for j in 0..half {
                let core = match ty {
                    // Type A: agg i connects to core group i.
                    PodType::A => cores[i * half + j],
                    // Type B: agg i connects to the i-th member of each
                    // group (staggered — this is Liu et al.'s rewiring).
                    PodType::B => cores[j * half + i],
                };
                t.link(a, core);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_count_formula() {
        for p in [2usize, 4, 6, 8] {
            let t = fattree(p);
            assert_eq!(t.switches().len(), 5 * p * p / 4, "p = {p}");
        }
    }

    #[test]
    fn degrees_are_p() {
        // In a p-ary FatTree every aggregation switch has p links
        // (p/2 down, p/2 up); edge switches have p/2 switch-level links.
        let p = 4;
        let t = fattree(p);
        for &s in t.switches() {
            match t.info(s).level {
                Level::Agg => assert_eq!(t.ports(s).len(), p),
                Level::Edge => assert_eq!(t.ports(s).len(), p / 2),
                Level::Core => assert_eq!(t.ports(s).len(), p),
                _ => {}
            }
        }
    }

    #[test]
    fn cores_reach_every_pod_once() {
        let t = fattree(4);
        for &s in t.switches() {
            if t.info(s).level != Level::Core {
                continue;
            }
            let mut pods: Vec<usize> = t
                .ports(s)
                .iter()
                .filter_map(|pp| t.info(pp.peer).pod)
                .collect();
            pods.sort_unstable();
            assert_eq!(pods, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn odd_arity_panics() {
        assert!(std::panic::catch_unwind(|| fattree(3)).is_err());
    }
}
